"""PIM applications on the platform: reconciliation and clustering.

The paper's closing outlook: "we are planning to explore PIM
applications such as reference reconciliation and clustering on top of
the iMeMex platform." Both run here against a small dataspace.

Run:  python examples/pim_applications.py
"""

from datetime import datetime

from repro.apps import cluster_by_content, reconcile_names, reconcile_views
from repro.imapsim import EmailMessage, ImapServer
from repro.imapsim.latency import no_latency
from repro.rvm import ResourceViewManager
from repro.rvm.plugins import FilesystemPlugin, ImapPlugin
from repro.vfs import VirtualFileSystem

print("=" * 70)
print("Reference reconciliation: who is the same person?")
print("=" * 70)
mentions = [
    "Jens Dittrich <jens.dittrich@inf.ethz.ch>",
    "Dittrich, Jens",
    "J. Dittrich",
    "jens.dittrich@inf.ethz.ch",
    "Marcos Antonio Vaz Salles",
    "Marcos Salles <marcos@ethz.ch>",
    "Mike Franklin",
    "M. Franklin",
    "Donald Knuth",
]
for cluster in reconcile_names(mentions):
    print(f"  person: {cluster}")

print()
print("=" * 70)
print("Reconciliation across the live dataspace (email senders)")
print("=" * 70)
imap = ImapServer(latency=no_latency())
for sender, subject in [
    ("Jens Dittrich <jens@ethz.ch>", "draft v1"),
    ("Dittrich, Jens", "draft v2"),
    ("Mike Franklin <franklin@berkeley.edu>", "dataspace vision"),
    ("M. Franklin", "re: dataspace vision"),
]:
    imap.deliver("INBOX", EmailMessage(
        subject=subject, sender=sender, to=("me@ethz.ch",),
        date=datetime(2005, 4, 1), body="hello",
    ))
rvm = ResourceViewManager()
rvm.register_plugin(ImapPlugin(imap))
rvm.sync_all()
for cluster in reconcile_views(rvm, attributes=("from",)):
    names = sorted({mention for mention, _ in cluster})
    messages = sorted({uri for _, uri in cluster})
    print(f"  {names}")
    print(f"    appearing in: {messages}")

print()
print("=" * 70)
print("Content clustering: drafts of the same document group together")
print("=" * 70)
fs = VirtualFileSystem()
fs.mkdir("/work", parents=True)
draft = ("unified versatile data model for personal dataspace management "
         "resource views components lazy evaluation")
fs.write_file("/work/paper_v1.txt", draft)
fs.write_file("/work/paper_v2.txt", draft + " now with experiments")
fs.write_file("/work/paper_final.txt", draft + " camera ready version")
fs.write_file("/work/shopping.txt", "milk bread eggs coffee apples")
fs.write_file("/work/travel.txt", "flight hotel conference seoul korea")
fs_rvm = ResourceViewManager()
fs_rvm.register_plugin(FilesystemPlugin(fs))
fs_rvm.sync_all()
for cluster in cluster_by_content(fs_rvm, threshold=0.5):
    print(f"  cluster: {[uri.rsplit('/', 1)[-1] for uri in cluster]}")
