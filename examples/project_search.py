"""The paper's two motivating examples (Section 1.2), end to end.

Example 1 — "inside versus outside files": find LaTeX 'Introduction'
sections of the PIM project containing the phrase "Mike Franklin". The
query constrains the *outside* folder hierarchy (//PIM) and the *inside*
document structure (Introduction sections) in one expression.

Example 2 — "files versus email attachments": find documents of project
'OLAP' with a figure whose caption contains "Indexing Time" — no matter
whether the document lives on disk or inside an email attachment.

Run:  python examples/project_search.py
"""

from repro import Dataspace

ds = Dataspace.demo(seed=42)
ds.sync()

print("=" * 70)
print("Example 1: bridge the inside/outside-file boundary")
print("=" * 70)
query1 = '//PIM//Introduction[class="latex_section" and "Mike Franklin"]'
print(f"iQL: {query1}\n")
result = ds.query(query1)
for hit in result.hits:
    view = hit.view(ds.rvm)
    print(f"  section '{hit.name}' in {hit.uri}")
    print(f"    text: {view.text()[:90]}...")
print(f"\n  -> {len(result)} result(s), {result.elapsed_seconds*1000:.1f} ms")

# With classic tools this needs a grep over the filesystem followed by a
# manual search inside each matching file. For contrast, keyword-only
# search returns far more noise:
noise = ds.query('"Mike Franklin"')
print(f"  (keyword-only search for the phrase returns {len(noise)} views "
      "across all components and sources)")

print()
print("=" * 70)
print("Example 2: abstract away the subsystem (filesystem vs IMAP)")
print("=" * 70)
query2 = '//OLAP//[class="figure" and "Indexing Time"]'
print(f"iQL: {query2}\n")
result = ds.query(query2)
for hit in result.hits:
    source = "email attachment" if hit.uri.startswith("imap") else "filesystem"
    view = hit.view(ds.rvm)
    print(f"  {hit.name} ({source})")
    print(f"    caption: {view.text()[:70]}")
    print(f"    label:   {view.attribute('label')}")
subsystems = {hit.uri.split(":")[0] for hit in result.hits}
print(f"\n  -> {len(result)} result(s) spanning {len(subsystems)} subsystem(s)")
