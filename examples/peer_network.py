"""A network of P2P iMeMex instances (the paper's Section 8 outlook).

Three machines — laptop, desktop, office — each run their own dataspace;
the network federates iQL queries and ranked search across all of them,
tagging every result with its peer of origin.

Run:  python examples/peer_network.py
"""

from repro.facade import Dataspace
from repro.imapsim.latency import LatencyModel, no_latency
from repro.p2p import PeerNetwork
from repro.vfs import VirtualFileSystem


def machine(files: dict[str, str]) -> Dataspace:
    fs = VirtualFileSystem()
    for path, content in files.items():
        fs.write_file(path, content, parents=True)
    dataspace = Dataspace(vfs=fs)
    dataspace.sync()
    return dataspace


network = PeerNetwork()
network.join("laptop", machine({
    "/papers/idm_draft.tex":
        r"\begin{document}\section{Introduction}The dataspace vision"
        r" with Mike Franklin.\end{document}",
    "/notes/talk.txt": "slides for the database seminar",
}), latency=no_latency())
network.join("desktop", machine({
    "/papers/idm_draft.tex":
        r"\begin{document}\section{Introduction}Older local copy of the"
        r" dataspace draft.\end{document}",
    "/music/list.txt": "not much text here",
}), latency=no_latency())
network.join("office", machine({
    "/admin/budget.txt": "database hardware budget for 2006",
}), latency=LatencyModel(connect=0.2, per_operation=0.03,
                         per_kilobyte=0.02))

print(f"peers: {network.peers()}\n")

print('federated query: "database"')
result = network.query('"database"')
for hit in result.hits:
    print(f"  [{hit.peer:7s}] {hit.uri}")
print(f"  hits per peer: {result.by_peer()}")
print(f"  simulated network time: {result.simulated_seconds:.3f} s "
      "(only the office link costs anything)\n")

print("the same draft exists on two machines — provenance keeps both:")
for hit in network.query("//idm_draft.tex").hits:
    print(f"  {hit.global_uri}")

print("\nstructural queries federate too:")
for hit in network.query('//papers//Introduction[class="latex_section"]').hits:
    print(f"  [{hit.peer}] section found in {hit.uri}")

print("\nask a subset of the network (the office machine only):")
subset = network.query('"budget"', peers=["office"])
print(f"  {[h.global_uri for h in subset.hits]}")

print("\nfederated ranked search for 'dataspace draft':")
for hit in network.search("dataspace draft", limit=4):
    print(f"  [{hit.peer:7s}] {hit.hit.name or hit.uri}")
