"""Observing the dataspace: metrics, structured events, slow queries.

Every subsystem of the PDSMS records into one process-global telemetry
spine (``repro.obs``): counters and gauges under a dotted naming
convention, a structured JSON event log, and a slow-query log that
captures the EXPLAIN ANALYZE span tree of any query over the
threshold. This demo syncs a dataspace with one faulty source, runs a
few queries, and shows what each organ saw — ending with the
Prometheus exposition a scraper would collect.

Run:  python examples/observability_demo.py
"""

from repro import obs
from repro.dataset import TINY_PROFILE, PersonalDataspaceGenerator
from repro.facade import Dataspace
from repro.imapsim.latency import no_latency
from repro.resilience import FaultPlan, ResilienceConfig, RetryPolicy


def build() -> Dataspace:
    generated = PersonalDataspaceGenerator(
        TINY_PROFILE, seed=42, imap_latency=no_latency()
    ).generate()
    return Dataspace(
        vfs=generated.vfs, imap=generated.imap, feeds=generated.feeds,
        resilience=ResilienceConfig(
            retry=RetryPolicy(max_attempts=3),
            breaker_failure_threshold=3,
        ).with_fast_backoff(),
    )


obs.reset(slow_query_seconds=0.0)  # demo: capture *every* query as slow

print("=" * 70)
print("1. a sync over a flaky source feeds sync.* and resilience.*")
print("=" * 70)
dataspace = build()
dataspace.inject_faults("imap", FaultPlan(seed=7, transient_rate=0.4))
report = dataspace.sync()
print(f"synced {report.views_total} views "
      f"(degraded={report.is_degraded})")
snapshot = dataspace.telemetry()
for name in ("sync.sources_scanned", "sync.views_synced",
             'resilience.retries{source="imap"}'):
    print(f"  {name} = {snapshot.get(name, 0)}")

print()
print("=" * 70)
print("2. structured events say what happened, as JSON")
print("=" * 70)
for event in dataspace.events(limit=4):
    print(f"  {event.to_json()}")

print()
print("=" * 70)
print("3. queries feed query.* — and slow ones land in the slow log")
print("=" * 70)
dataspace.query('"database"')
with dataspace.serve(workers=2) as service:
    service.execute("/*")
snapshot = dataspace.telemetry()
for name in ("query.executions", "query.engine.rows",
             "service.queries.served"):
    print(f"  {name} = {snapshot.get(name, 0)}")

print()
print("the slow-query log captured the span tree "
      "(threshold 0 for the demo):")
entry = dataspace.slow_queries()[0]
for line in entry.render().splitlines()[:8]:
    print(f"  {line}")

print()
print("=" * 70)
print("4. the Prometheus exposition a scraper would collect (excerpt)")
print("=" * 70)
for line in obs.global_metrics().render_prometheus().splitlines()[:12]:
    print(f"  {line}")
print("  ...")
print("\n(try: python -m repro stats --format prometheus | "
      "python -m repro.obs.promcheck)")
