"""Data streams, push operators, and RSS pseudo-streams (Sections 3.4,
4.4.2).

Run:  python examples/streams_and_feeds.py
"""

import itertools
from datetime import datetime

from repro.core.components import Schema
from repro.datamodel import rss_stream_view, tuple_stream_view
from repro.pushops import (
    CollectSink,
    FilterOperator,
    MapOperator,
    WindowAggregate,
)
from repro.pushops.operators import pipeline
from repro.rss import FeedEntry, FeedPoller, FeedServer

print("=" * 70)
print("A tuple stream (class tupstream): infinite Q of tuple views")
print("=" * 70)
SCHEMA = Schema(["symbol", "price"])


def ticks():
    for index in itertools.count():
        yield ("IDMX", 100.0 + (index * 7) % 13)


stream = tuple_stream_view(SCHEMA, ticks)
print(f"stream class: {stream.class_name}, finite: {stream.group.is_finite}")
print("first five ticks:",
      [v.tuple_component["price"] for v in stream.group.take(5)])

print()
print("=" * 70)
print("Push operators: filter -> map -> sliding-window mean")
print("=" * 70)
sink = CollectSink()
head = pipeline(
    FilterOperator(lambda view: view.tuple_component["price"] > 102),
    MapOperator(lambda view: view.tuple_component["price"]),
    WindowAggregate(3, aggregate=lambda xs: round(sum(xs) / len(xs), 2)),
    sink,
)
for view in stream.group.take(12):
    head.push(view)
print(f"windowed means of prices > 102: {sink.items}")

print()
print("=" * 70)
print("RSS: a polled document becomes a pseudo data stream")
print("=" * 70)
feeds = FeedServer()
feeds.publish("feeds.example.org/db", "Database News", [
    FeedEntry("g1", "VLDB 2006 CFP", "Seoul, Korea", datetime(2006, 1, 5)),
    FeedEntry("g2", "iMeMex demo", "personal dataspaces", datetime(2006, 2, 1)),
])
poller = FeedPoller(feeds, "feeds.example.org/db")
rss_view = rss_stream_view(poller, max_polls=1)
print(f"stream class: {rss_view.class_name} (items are xmldoc views)")
for item in rss_view.group.take(10):
    from repro.core.graph import traverse
    texts = [v.text() for v, _ in traverse(item) if v.class_name == "xmltext"]
    print(f"  item: {texts[1] if len(texts) > 1 else texts}")

# polling again later only surfaces *new* entries — the "generic polling
# facility" converting state into a stream:
feeds.add_entry("feeds.example.org/db",
                FeedEntry("g3", "Benchmarks released", "fresh numbers",
                          datetime(2006, 3, 1)))
fresh = poller.poll()
print(f"next poll found {len(fresh)} new entr(y/ies): "
      f"{[e.title for e in fresh]}")
print(f"feed server was fetched {feeds.fetch_count} times "
      "(RSS has no notifications — clients must poll)")
