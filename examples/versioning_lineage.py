"""Versioning and lineage — the paper's Section 8 follow-ups.

"iDM allows the representation of the entire dataspace of a user in one
model. Thus, the implementation of versioning is strongly simplified."
And: "with a unified model such as iDM, it is possible to keep lineage
information across data sources and formats."

Run:  python examples/versioning_lineage.py
"""

from repro.core.identity import ViewId
from repro.core.lineage import LineageTracker
from repro.core.resource_view import ResourceView
from repro.core.versioning import VersionStore

print("=" * 70)
print("Versioning: every commit is a new version of the whole dataspace")
print("=" * 70)
store = VersionStore()

draft_id = ViewId("fs", "/Projects/PIM/vldb2006.tex")
store.record(ResourceView("vldb2006.tex", content="% first draft",
                          view_id=draft_id))
store.record(ResourceView("Grant.txt", content="grant v1",
                          view_id=ViewId("fs", "/Projects/PIM/Grant.txt")))
v1 = store.commit()
print(f"version {v1}: {sorted(str(k) for k in store.snapshot(v1))}")

store.record(ResourceView("vldb2006.tex", content="% camera ready",
                          view_id=draft_id))
v2 = store.commit()
print(f"version {v2}: the draft changed")
print("  history of the draft:")
for version, record in store.history(draft_id):
    print(f"    v{version}: digest {record.content_digest[:12]}...")
print(f"  changed between v1 and v2: "
      f"{[str(u) for u in store.changed_between(v1, v2)]}")

# time travel: the whole dataspace at version 1
old = store.get(draft_id, version=1)
new = store.get(draft_id)
print(f"  v1 digest != v2 digest: {old.content_digest != new.content_digest}")

print()
print("=" * 70)
print("Lineage: provenance across data sources and formats")
print("=" * 70)
tracker = LineageTracker()

# a LaTeX file on disk ...
fs_file = ViewId("fs", "/Projects/PIM/vldb2006.tex")
# ... its converter-derived Introduction section ...
section = ViewId("fs", "/Projects/PIM/vldb2006.tex#s1")
tracker.record("latex2idm", [fs_file], [section])
# ... the copy attached to an email ...
attachment = ViewId("imap", "INBOX/42#a0")
tracker.record("attach", [fs_file], [attachment])
# ... and a note synthesized from the section and a second email:
mail = ViewId("imap", "INBOX/43")
note = ViewId("mem", "notes/summary")
tracker.record("summarize", [section, mail], [note])

print(f"ancestors of the summary note:")
for ancestor in sorted(str(a) for a in tracker.ancestors(note)):
    print(f"  {ancestor}")
print(f"\nderivation chain of the note:")
for derivation in tracker.chain(note):
    inputs = ", ".join(str(i) for i in derivation.inputs)
    print(f"  {derivation.operation}({inputs})")
print(f"\neverything derived from the file on disk:")
for descendant in sorted(str(d) for d in tracker.descendants(fs_file)):
    print(f"  {descendant}")
print(f"\nis the fs file a base view (no provenance)? "
      f"{tracker.is_base(fs_file)}")
