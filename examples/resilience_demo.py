"""Surviving flaky sources: retries, circuit breakers, partial answers.

A personal dataspace federates sources that are routinely slow or
offline — a laptop's IMAP server disappears with the WiFi, a feed host
rate-limits, a network share unmounts. This demo injects a seeded
fault schedule into one of three sources and shows the resilience
layer at work: transient faults absorbed by retries, a permanent
outage tripping the circuit breaker, and queries that keep answering
from the remaining sources while reporting exactly what they had to do
without.

Run:  python examples/resilience_demo.py
"""

from repro.facade import Dataspace
from repro.dataset import TINY_PROFILE, PersonalDataspaceGenerator
from repro.imapsim.latency import no_latency
from repro.resilience import FaultPlan, ResilienceConfig, RetryPolicy

QUERY = "/*"  # the sources' root views: touches every source, live


def build() -> Dataspace:
    generated = PersonalDataspaceGenerator(
        TINY_PROFILE, seed=42, imap_latency=no_latency()
    ).generate()
    return Dataspace(
        vfs=generated.vfs, imap=generated.imap, feeds=generated.feeds,
        resilience=ResilienceConfig(
            retry=RetryPolicy(max_attempts=3),
            breaker_failure_threshold=3,
            breaker_cooldown_seconds=30.0,
        ).with_fast_backoff(),  # demo: don't actually sleep
    )


print("=" * 70)
print("1. transient faults: retries make them invisible")
print("=" * 70)
dataspace = build()
report = dataspace.sync()
print(f"synced {report.views_total} views from "
      f"{len(report.sources)} sources")

flaky = FaultPlan(seed=7, transient_rate=0.4)  # 40% of calls fail
dataspace.inject_faults("imap", flaky)
result = dataspace.query(QUERY)
print(f"\nquery under a 40% transient schedule on imap:")
print(f"  answered {len(result.uris())} roots, "
      f"degraded={result.is_degraded}")
print(f"  imap guard: {dataspace.health()['imap']['retries']} retries "
      "absorbed the faults")

print()
print("=" * 70)
print("2. a permanent outage: the breaker opens, queries keep answering")
print("=" * 70)
dataspace = build()
dataspace.sync()
dataspace.inject_faults("imap", FaultPlan(seed=7).outage())
for number in range(1, 6):
    result = dataspace.query(QUERY)
    health = dataspace.health()["imap"]
    print(f"  query {number}: {len(result.uris())} roots, "
          f"degraded={result.is_degraded}, "
          f"breaker={health['state']}, "
          f"short_circuits={health['short_circuits']}")

result = dataspace.query(QUERY)
print("\nthe degradation report tells the caller what is missing:")
for line in result.degradation.render().splitlines():
    print(f"  {line}")

print()
print("=" * 70)
print("3. the health snapshot (what `repro chaos` and serve() expose)")
print("=" * 70)
for authority, row in sorted(dataspace.health().items()):
    print(f"  {authority:5s} state={row['state']:7s} "
          f"calls={row['calls']:3d} failures={row['failures']:2d} "
          f"retries={row['retries']:2d} "
          f"short_circuits={row['short_circuits']}")
print("\n(degraded results are never cached by the query service, so a")
print("recovered source immediately serves full answers again)")
