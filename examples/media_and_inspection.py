"""Non-text content indexing and dataspace inspection.

* similarity search over pseudo-images with the histogram content index
  (the QBIC-style index the paper cites as a non-text content index);
* standing queries: get notified the moment matching data enters the
  dataspace;
* DOT / GraphML export of resource view graphs.

Run:  python examples/media_and_inspection.py
"""

from repro.core.graph import to_dot, to_graphml
from repro.facade import Dataspace
from repro.query.standing import StandingQueries
from repro.rvm import IndexingPolicy
from repro.vfs import VirtualFileSystem


def fake_image(palette: str, size: int = 800) -> str:
    """A pseudo-image: non-printable symbols drawn from a palette."""
    return "".join(palette[i % len(palette)] for i in range(size))


fs = VirtualFileSystem()
fs.mkdir("/Pictures", parents=True)
fs.write_file("/Pictures/sunset_beach.jpg", fake_image("\x01\x02\x03"))
fs.write_file("/Pictures/sunset_hills.jpg", fake_image("\x01\x02\x03\x02"))
fs.write_file("/Pictures/forest_walk.jpg", fake_image("\x08\x09\x0a"))
fs.write_file("/Pictures/forest_creek.jpg", fake_image("\x08\x0a\x09"))
fs.write_file("/notes.txt", "picture trip notes")

ds = Dataspace(vfs=fs, policy=IndexingPolicy.with_media())
ds.sync()

print("=" * 70)
print("Histogram similarity over non-text content components")
print("=" * 70)
media = ds.rvm.indexes.media_index
print(f"indexed {len(media)} pseudo-images "
      "(text files go to the full-text index instead)")
for probe in ("fs:///Pictures/sunset_beach.jpg",
              "fs:///Pictures/forest_walk.jpg"):
    neighbors = media.similar_to_key(probe, k=2)
    print(f"\nmost similar to {probe.rsplit('/', 1)[-1]}:")
    for uri, score in neighbors:
        print(f"  {score:.3f}  {uri.rsplit('/', 1)[-1]}")

print()
print("=" * 70)
print("Standing queries: information filters over the change stream")
print("=" * 70)
ds.watch()
standing = StandingQueries(ds.rvm.bus)
standing.register(
    '"vacation"',
    lambda notification: print(
        f"  !! matched {notification.view.name} "
        f"(standing query: {notification.query})"
    ),
)
print("registered standing query '\"vacation\"'; writing two files ...")
fs.write_file("/Pictures/plan.txt", "vacation plan for the summer")
fs.write_file("/Pictures/other.txt", "unrelated text")
ds.refresh()

print()
print("=" * 70)
print("Graph export")
print("=" * 70)
pictures = ds.rvm.view("fs:///Pictures")
dot = to_dot(pictures)
graphml = to_graphml(pictures)
print(f"DOT export: {len(dot.splitlines())} lines "
      f"(render with `dot -Tpng`)")
print(f"GraphML export: {len(graphml.splitlines())} lines "
      "(open in yEd/Gephi)")
print("\nDOT preview:")
print("\n".join(dot.splitlines()[:8]) + "\n  ...")
