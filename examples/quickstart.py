"""Quickstart: build a personal dataspace, sync it, query it.

Run:  python examples/quickstart.py
"""

from repro import Dataspace

# 1. A small synthetic personal dataspace: a virtual filesystem full of
#    folders, text/LaTeX/XML files, a simulated IMAP server with emails
#    and attachments, and a couple of RSS feeds.
print("Generating a demo personal dataspace ...")
ds = Dataspace.demo(seed=42)

# 2. One sync pass scans every data source, registers each resource view
#    in the catalog and feeds the four index/replica structures.
report = ds.sync()
print(f"Indexed {ds.view_count} resource views:")
for authority, source in report.sources.items():
    print(f"  {authority:5s}  base={source.views_base:5d}  "
          f"derived(xml)={source.views_derived_xml:5d}  "
          f"derived(latex)={source.views_derived_latex:5d}")

# 3. iQL queries — from plain keyword search ...
print('\nQuery: "database tuning"')
for hit in ds.query('"database tuning"').hits[:5]:
    print(f"  {hit.uri}")

# ... to structural path queries that cross the inside/outside-file
# boundary (the whole point of iDM):
print('\nQuery: //PIM//Introduction[class="latex_section" and "Mike Franklin"]')
for hit in ds.query(
    '//PIM//Introduction[class="latex_section" and "Mike Franklin"]'
).hits:
    print(f"  {hit.name}  <-  {hit.uri}")

# ... to joins that bridge subsystems (filesystem vs email):
print("\nQuery: join(emails' .tex attachments with /papers .tex files on name)")
result = ds.query(
    'join ( //*[class = "emailmessage"]//*.tex as A, '
    "//papers//*.tex as B, A.name = B.name )"
)
for pair in result.pairs[:5]:
    print(f"  {pair.left.uri}  <->  {pair.right.uri}")

# 4. Every query comes with its physical plan:
print("\nPlan for //papers//*Vision:")
print(ds.explain("//papers//*Vision"))

# 5. Index sizes (the paper's Table 3 for this dataspace):
sizes = ds.index_sizes()
print("\nIndex sizes [KB]:")
for key in ("name", "tuple", "content", "group", "catalog"):
    print(f"  {key:8s} {sizes[key] / 1024:8.1f}")
