"""Serving the dataspace: the concurrent query service.

Run:  python examples/service_demo.py
"""

import threading
import time

from repro import Dataspace
from repro.core.errors import Overloaded

# 1. A demo dataspace behind a query service: 4 worker threads, a
#    bounded admission queue, plan + result caches, metrics.
print("Generating and serving a demo personal dataspace ...")
ds = Dataspace.demo(seed=42)

with ds.serve(workers=4, max_queue_depth=16) as service:
    # 2. Blocking calls — the second one is served from the result cache.
    t0 = time.perf_counter()
    cold = service.execute('"database tuning"')
    cold_ms = (time.perf_counter() - t0) * 1000
    t0 = time.perf_counter()
    service.execute('"database tuning"')
    warm_ms = (time.perf_counter() - t0) * 1000
    print(f"\ncold: {cold_ms:.2f} ms, warm (cached): {warm_ms:.3f} ms, "
          f"{len(cold)} hits")

    # 3. Sessions: per-client defaults and statistics.
    alice = service.open_session("alice", deadline=5.0)
    bob = service.open_session("bob", use_cache=False)
    for session in (alice, bob):
        session.query('//papers//*.tex')
    print(f"alice served={alice.served}, bob served={bob.served}")

    # 4. Concurrent clients — submit asynchronously, collect tickets.
    tickets = [service.submit(iql) for iql in (
        '"database"', '[size > 1000]', '//papers//*.tex',
    )]
    for ticket in tickets:
        print(f"  {ticket.iql:24s} -> {len(ticket.result(10.0))} hits")

    # 5. Changes invalidate cached results — no stale answers, ever.
    ds.watch()
    ds.generated.vfs.write_file("/Projects/hot.txt", "database tuning notes")
    ds.refresh()
    fresh = service.execute('"database tuning"')
    print(f"\nafter adding a file: {len(fresh)} hits "
          f"(was {len(cold)}; the cache entry was flushed, not reused)")

    # 6. Overload: a tiny queue sheds load with typed rejections.
    def hammer():
        try:
            service.submit('"database"', use_cache=False)
        except Overloaded:
            pass

    threads = [threading.Thread(target=hammer) for _ in range(64)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    print("\nservice metrics:")
    print(service.metrics.render())
