"""The ActiveXML use-case (Section 4.3.1): intensional data in iDM.

An ActiveXML document embeds web-service calls; the result of a call is
inserted into the document when the service runs. iDM models this with
an ``axml`` element whose group is ``<V_sc [, V_scresult]>`` — and,
because every component is lazy, the service is only invoked when
someone actually asks.

Run:  python examples/active_xml.py
"""

from repro.core.graph import descendants, to_dot
from repro.core.intensional import ServiceRegistry, intensional_view
from repro.core.resource_view import ResourceView
from repro.datamodel import axml_document

# -- a simulated remote-service world ---------------------------------------
registry = ServiceRegistry()
registry.register(
    "web.server.com/GetDepartments",
    lambda: ("<deplist>"
             "<entry><name>Accounting</name></entry>"
             "<entry><name>Research</name></entry>"
             "<entry><name>Sales</name></entry>"
             "</deplist>"),
)

print("=" * 70)
print("The paper's <dep> document")
print("=" * 70)
dep = axml_document("dep", "web.server.com/GetDepartments", registry)
print("before the call, the group holds only the service-call view:")
print(f"  {[v.name for v in dep.view.group]}")
print(f"  service invocations so far: "
      f"{registry.calls_to('web.server.com/GetDepartments')}")

print("\ncalling the service inserts <scresult> into the document:")
dep.call_service()
print(f"  {[v.name for v in dep.view.group]}")
names = sorted(v.text() for v in descendants(dep.view)
               if v.class_name == "xmltext")
print(f"  departments: {names}")
print(f"  invocations: "
      f"{registry.calls_to('web.server.com/GetDepartments')} "
      "(idempotent — calling again stays at 1):")
dep.call_service()
print(f"  invocations: "
      f"{registry.calls_to('web.server.com/GetDepartments')}")

print()
print("=" * 70)
print("Intensional views: dynamic folders backed by queries")
print("=" * 70)
# iDM is not restricted to XML: ANY group component may be intensional.
# Here a "dynamic folder" computes its members on demand.
catalog = [ResourceView(f"report_{year}.txt", content=f"report for {year}")
           for year in (2004, 2005, 2006)]

recent = intensional_view(
    "Recent Reports",
    lambda: [v for v in catalog if "2005" in v.name or "2006" in v.name],
)
print(f"dynamic folder '{recent.name}' members: "
      f"{[v.name for v in recent.group]}")

print("\nresource view graph of the ActiveXML document (DOT):")
print(to_dot(dep.view, max_views=12))
