"""The email use-case (Section 4.4.1): state vs stream modelling.

Option 1 models the *state* of the INBOX — a finite, re-readable window.
Option 2 models the message *stream* itself — infinite, single-shot,
consuming messages off the server.

Run:  python examples/email_dataspace.py
"""

from datetime import datetime

from repro.core.graph import find_by_name
from repro.datamodel import inbox_state_view, inbox_stream_view
from repro.datamodel.latexmodel import latexfile_group_provider
from repro.imapsim import Attachment, EmailMessage, ImapServer, LatencyModel

REPORT_TEX = r"""
\begin{document}
\section{Status Report}
Everything on schedule for the OLAP project.
\begin{figure}\caption{Indexing Time by week}\label{fig:w}\end{figure}
\end{document}
"""

server = ImapServer(latency=LatencyModel())
for week in range(1, 4):
    server.deliver("INBOX", EmailMessage(
        subject=f"week {week} report",
        sender="alice@dbis.edu", to=("jens@ethz.ch",),
        date=datetime(2005, 3, week * 7),
        body=f"status for week {week}, database work continues",
        attachments=(Attachment("report.tex", REPORT_TEX, "text/x-tex"),),
    ))

print("=" * 70)
print("Option 1: model the STATE of the INBOX (re-readable window)")
print("=" * 70)
server.connect()
server_state = server  # same server; the state view does not consume
inbox = inbox_state_view(server_state, "INBOX",
                         content_converter=latexfile_group_provider)
messages = list(inbox.group)
print(f"window holds {len(messages)} messages:")
for message in messages:
    print(f"  {message.name:16s} from {message.tuple_component['from']}")
# reading the state again is fine — nothing was consumed
print(f"second read sees {len(list(inbox.group))} messages (unchanged)")

# attachments carry full structural subgraphs, like files on disk:
attachment = next(iter(messages[0].group))
sections = find_by_name(attachment, "Status Report")
print(f"attachment '{attachment.name}' contains section "
      f"'{sections[0].name}' with text: {sections[0].text()[:50]}...")
print(f"simulated IMAP time so far: "
      f"{server.latency.simulated_seconds:.2f} s "
      f"({server.latency.operations} operations)")

print()
print("=" * 70)
print("Option 2: model the message STREAM (single-shot, consuming)")
print("=" * 70)
stream_server = ImapServer(latency=LatencyModel())
for index in range(3):
    stream_server.deliver("INBOX", EmailMessage(
        subject=f"streamed {index}", sender="a@b", to=("c@d",),
        date=datetime(2005, 4, index + 1), body="stream payload",
    ))
stream_server.connect()
stream = inbox_stream_view(stream_server, "INBOX")
print("consuming the stream:")
for message in stream.group.take(10):
    print(f"  -> {message.name}")
print(f"INBOX now holds {stream_server.select('INBOX')} messages "
      "(the stream removed them)")
try:
    stream.group.take(1)
except Exception as error:  # single-shot: a second read is an error
    print(f"second read raises: {type(error).__name__}: {error}")
