"""Tests for the vertically partitioned tuple index."""

from datetime import date, datetime

import pytest

from repro.core.components import TupleComponent
from repro.tupleindex import TupleIndex, VerticalColumn


class TestVerticalColumn:
    def test_equals(self):
        column = VerticalColumn("size")
        column.insert("a", 10)
        column.insert("b", 20)
        column.insert("c", 10)
        assert sorted(column.equals(10)) == ["a", "c"]

    def test_range(self):
        column = VerticalColumn("size")
        for index, value in enumerate([5, 10, 15, 20]):
            column.insert(f"k{index}", value)
        assert sorted(column.range(10, 15)) == ["k1", "k2"]

    def test_range_exclusive(self):
        column = VerticalColumn("size")
        for index, value in enumerate([5, 10, 15]):
            column.insert(f"k{index}", value)
        assert column.range(5, 15, include_low=False,
                            include_high=False) == ["k1"]

    def test_open_range(self):
        column = VerticalColumn("n")
        for index in range(5):
            column.insert(f"k{index}", index)
        assert sorted(column.range(low=3)) == ["k3", "k4"]
        assert sorted(column.range(high=1)) == ["k0", "k1"]

    def test_remove(self):
        column = VerticalColumn("x")
        column.insert("a", 1)
        assert column.remove("a", 1)
        assert column.equals(1) == []
        assert not column.remove("a", 1)

    def test_mixed_types_grouped(self):
        column = VerticalColumn("v")
        column.insert("num", 5)
        column.insert("txt", "five")
        # a numeric range never sees the string entries
        assert column.range(0, 10) == ["num"]
        assert column.equals("five") == ["txt"]

    def test_dates_comparable_with_datetimes(self):
        column = VerticalColumn("modified")
        column.insert("d", date(2005, 6, 1))
        column.insert("dt", datetime(2005, 7, 1, 12))
        assert sorted(column.range(high=datetime(2005, 6, 15))) == ["d"]


class TestTupleIndex:
    @pytest.fixture()
    def index(self):
        idx = TupleIndex()
        idx.add("file1", TupleComponent.from_dict(
            {"size": 500_000, "modified": datetime(2005, 5, 1)}
        ))
        idx.add("file2", TupleComponent.from_dict(
            {"size": 100, "modified": datetime(2005, 8, 1)}
        ))
        idx.add("elem1", TupleComponent.from_dict({"label": "fig:a"}))
        idx.add("empty", TupleComponent.empty())
        return idx

    def test_replica_serves_components(self, index):
        assert index.tuple_of("file1")["size"] == 500_000
        assert index.tuple_of("empty").is_empty
        assert index.tuple_of("ghost") is None

    def test_paper_q3_predicate(self, index):
        """[size > 420000 and lastmodified < @12.06.2005]"""
        big = index.greater_than("size", 420_000)
        old = index.less_than("modified", datetime(2005, 6, 12))
        assert big & old == {"file1"}

    def test_equals(self, index):
        assert index.equals("label", "fig:a") == {"elem1"}

    def test_equals_unknown_attribute(self, index):
        assert index.equals("ghost", 1) == set()

    def test_inclusive_bounds(self, index):
        assert index.greater_than("size", 100, inclusive=True) >= {"file2"}
        assert index.less_than("size", 100, inclusive=True) == {"file2"}

    def test_keys_with_attribute(self, index):
        assert index.keys_with_attribute("size") == {"file1", "file2"}

    def test_sparse_attributes_independent(self, index):
        # per-tuple schemas: label exists only on elem1
        assert index.keys_with_attribute("label") == {"elem1"}

    def test_remove_cleans_columns(self, index):
        index.remove("elem1")
        assert index.equals("label", "fig:a") == set()
        assert "label" not in index.attributes()

    def test_readd_replaces(self, index):
        index.add("file1", TupleComponent.from_dict({"size": 7}))
        assert index.greater_than("size", 420_000) == set()
        assert index.equals("size", 7) == {"file1"}

    def test_none_values_not_indexed(self):
        idx = TupleIndex()
        idx.add("k", TupleComponent.from_dict({"maybe": None}))
        assert idx.keys_with_attribute("maybe") == set()
        assert idx.tuple_of("k").get("maybe") is None

    def test_size_bytes_grows(self, index):
        before = index.size_bytes()
        index.add("new", TupleComponent.from_dict(
            {"size": 1, "extra": "text" * 50}
        ))
        assert index.size_bytes() > before

    def test_stats(self, index):
        stats = index.stats()
        assert stats.name == "tuple"
        assert stats.entries == 4
        assert stats.detail["attributes"] == 3
        assert stats.bytes_estimate == index.size_bytes()

    def test_equivalence_with_naive_scan(self):
        """Property-ish: vertical index answers match a full scan."""
        import random
        rng = random.Random(5)
        idx = TupleIndex()
        rows = {}
        for i in range(200):
            row = {"a": rng.randrange(50), "b": rng.random()}
            rows[f"k{i}"] = row
            idx.add(f"k{i}", TupleComponent.from_dict(row))
        threshold = 25
        naive = {k for k, row in rows.items() if row["a"] > threshold}
        assert idx.greater_than("a", threshold) == naive
        value = rows["k0"]["a"]
        naive_eq = {k for k, row in rows.items() if row["a"] == value}
        assert idx.equals("a", value) == naive_eq
