"""Tests for the simulated IMAP server, MIME format and latency model."""

from datetime import datetime

import pytest

from repro.core.errors import ImapError
from repro.imapsim import (
    Attachment,
    EmailMessage,
    ImapServer,
    LatencyModel,
    parse_rfc822,
    serialize_rfc822,
)
from repro.imapsim.latency import no_latency


def _message(subject="Hello", attachments=()):
    return EmailMessage(
        subject=subject, sender="a@x.org", to=("b@y.org", "c@z.org"),
        cc=("d@w.org",), date=datetime(2005, 3, 1, 9, 30),
        body="body text here", attachments=tuple(attachments),
    )


class TestMime:
    def test_roundtrip_simple(self):
        message = _message()
        parsed = parse_rfc822(serialize_rfc822(message))
        assert parsed.subject == message.subject
        assert parsed.sender == message.sender
        assert parsed.to == message.to
        assert parsed.cc == message.cc
        assert parsed.date == message.date
        assert parsed.body == message.body

    def test_roundtrip_with_attachments(self):
        attachment = Attachment("notes.tex", "\\section{X} body",
                                "text/x-tex")
        parsed = parse_rfc822(serialize_rfc822(_message(
            attachments=[attachment]
        )))
        assert len(parsed.attachments) == 1
        assert parsed.attachments[0].filename == "notes.tex"
        assert parsed.attachments[0].content == attachment.content
        assert parsed.attachments[0].mime_type == "text/x-tex"

    def test_multiple_attachments_ordered(self):
        attachments = [Attachment(f"f{i}.txt", f"c{i}") for i in range(3)]
        parsed = parse_rfc822(serialize_rfc822(_message(
            attachments=attachments
        )))
        assert [a.filename for a in parsed.attachments] == [
            "f0.txt", "f1.txt", "f2.txt"
        ]

    def test_missing_date_rejected(self):
        from repro.core.errors import ParseError
        with pytest.raises(ParseError):
            parse_rfc822("Subject: x\n\nbody")

    def test_message_size_includes_attachments(self):
        small = _message().size
        big = _message(attachments=[Attachment("a", "x" * 1000)]).size
        assert big == small + 1000


class TestMailbox:
    def test_uids_never_reused(self):
        server = ImapServer(latency=no_latency())
        uid1 = server.deliver("INBOX", _message("one"))
        server.connect()
        server.delete_message("INBOX", uid1)
        uid2 = server.deliver("INBOX", _message("two"))
        assert uid2 > uid1

    def test_create_duplicate_mailbox_rejected(self):
        server = ImapServer(latency=no_latency())
        with pytest.raises(ImapError):
            server.create_mailbox("INBOX")

    def test_unknown_mailbox_raises(self):
        server = ImapServer(latency=no_latency())
        server.connect()
        with pytest.raises(ImapError):
            server.select("Ghost")


class TestClientApi:
    @pytest.fixture()
    def server(self):
        server = ImapServer(latency=no_latency())
        server.create_mailbox("Work")
        server.deliver("INBOX", _message("first"))
        server.deliver("INBOX", _message("second"))
        server.deliver("Work", _message("task"))
        server.connect()
        return server

    def test_requires_connection(self):
        server = ImapServer(latency=no_latency())
        with pytest.raises(ImapError):
            server.list_mailboxes()

    def test_list_mailboxes(self, server):
        assert server.list_mailboxes() == ["INBOX", "Work"]

    def test_select_counts(self, server):
        assert server.select("INBOX") == 2
        assert server.select("Work") == 1

    def test_fetch_headers(self, server):
        headers = server.fetch_headers("INBOX", 1)
        assert headers["Subject"] == "first"

    def test_fetch_message_roundtrips(self, server):
        parsed = parse_rfc822(server.fetch_message("INBOX", 2))
        assert parsed.subject == "second"

    def test_fetch_unknown_uid(self, server):
        with pytest.raises(ImapError):
            server.fetch_message("INBOX", 99)

    def test_delete_message(self, server):
        assert server.delete_message("INBOX", 1)
        assert server.uids("INBOX") == [2]
        assert not server.delete_message("INBOX", 1)


class TestNotifications:
    def test_subscription_fires_on_delivery(self):
        server = ImapServer(latency=no_latency())
        seen = []
        server.subscribe(lambda mbox, msg: seen.append((mbox, msg.subject)))
        server.deliver("INBOX", _message("ping"))
        assert seen == [("INBOX", "ping")]

    def test_unsubscribe(self):
        server = ImapServer(latency=no_latency())
        seen = []
        unsubscribe = server.subscribe(lambda m, s: seen.append(1))
        unsubscribe()
        server.deliver("INBOX", _message())
        assert seen == []


class TestStreamOption:
    """Option 2 of Section 4.4.1: the message stream consumes."""

    def test_stream_yields_and_removes(self):
        server = ImapServer(latency=no_latency())
        server.deliver("INBOX", _message("a"))
        server.deliver("INBOX", _message("b"))
        server.connect()
        subjects = [m.subject for m in server.message_stream("INBOX")]
        assert subjects == ["a", "b"]
        assert server.select("INBOX") == 0

    def test_streamed_messages_not_retrievable_again(self):
        server = ImapServer(latency=no_latency())
        server.deliver("INBOX", _message("once"))
        server.connect()
        list(server.message_stream("INBOX"))
        assert list(server.message_stream("INBOX")) == []


class TestLatencyModel:
    def test_costs_accumulate(self):
        model = LatencyModel(connect=0.3, per_operation=0.05,
                             per_kilobyte=0.01)
        model.charge_connect()
        model.charge(bytes_transferred=2048)
        assert model.simulated_seconds == pytest.approx(0.3 + 0.05 + 0.02)
        assert model.operations == 2

    def test_server_charges_fetches(self):
        model = LatencyModel(connect=0.1, per_operation=0.01,
                             per_kilobyte=0.0)
        server = ImapServer(latency=model)
        server.deliver("INBOX", _message())
        server.connect()
        server.select("INBOX")
        server.fetch_message("INBOX", 1)
        # connect + select + fetch = 0.1 + 0.01 + 0.01
        assert model.simulated_seconds == pytest.approx(0.12)

    def test_transfer_scales_with_size(self):
        model = LatencyModel(connect=0.0, per_operation=0.0,
                             per_kilobyte=1.0)
        server = ImapServer(latency=model)
        server.deliver("INBOX", _message(
            attachments=[Attachment("big", "x" * 10_240)]
        ))
        server.connect()
        server.fetch_message("INBOX", 1)
        assert model.simulated_seconds > 10  # >10 KB at 1 s/KB

    def test_reset(self):
        model = LatencyModel()
        model.charge()
        model.reset()
        assert model.simulated_seconds == 0.0
        assert model.operations == 0

    def test_no_latency_is_free(self):
        model = no_latency()
        model.charge_connect()
        model.charge(bytes_transferred=10_000)
        assert model.simulated_seconds == 0.0


class TestMailboxPoller:
    """The generic polling facility applied to a mailbox (footnote 5)."""

    def _server(self):
        server = ImapServer(latency=no_latency())
        server.deliver("INBOX", _message("first"))
        server.connect()
        return server

    def test_first_poll_returns_window(self):
        from repro.imapsim import MailboxPoller
        server = self._server()
        poller = MailboxPoller(server, "INBOX")
        assert [m.subject for m in poller.poll()] == ["first"]

    def test_repeat_poll_empty_without_changes(self):
        from repro.imapsim import MailboxPoller
        server = self._server()
        poller = MailboxPoller(server, "INBOX")
        poller.poll()
        assert poller.poll() == []

    def test_new_delivery_detected(self):
        from repro.imapsim import MailboxPoller
        server = self._server()
        poller = MailboxPoller(server, "INBOX")
        poller.poll()
        server.deliver("INBOX", _message("second"))
        assert [m.subject for m in poller.poll()] == ["second"]

    def test_non_consuming(self):
        from repro.imapsim import MailboxPoller
        server = self._server()
        MailboxPoller(server, "INBOX").poll()
        assert server.select("INBOX") == 1  # messages stay on the server

    def test_subscribers_pushed(self):
        from repro.imapsim import MailboxPoller
        server = self._server()
        poller = MailboxPoller(server, "INBOX")
        seen = []
        poller.subscribe(lambda m: seen.append(m.subject))
        poller.poll()
        assert seen == ["first"]

    def test_stream_bounded(self):
        from repro.imapsim import MailboxPoller
        server = self._server()
        poller = MailboxPoller(server, "INBOX")
        subjects = [m.subject for m in poller.stream(max_polls=3)]
        assert subjects == ["first"]
        assert poller.last_uid == 1

    def test_polling_charges_latency(self):
        from repro.imapsim import MailboxPoller
        model = LatencyModel(connect=0.0, per_operation=0.01,
                             per_kilobyte=0.0)
        server = ImapServer(latency=model)
        server.deliver("INBOX", _message("x"))
        server.connect()
        MailboxPoller(server, "INBOX").poll()
        assert model.simulated_seconds > 0
