"""Fixtures for the supervised-shard suite.

``REPRO_CHAOS_SEED`` (the CI chaos matrix) offsets the worker dataset
seeds, so each matrix job replays the SIGKILL failover story against a
different — but individually deterministic — shard population.
"""

from __future__ import annotations

import os

from repro import obs

#: The CI chaos matrix seed (see tests/resilience/conftest.py).
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))

#: The query mix every integration test drives (all answerable by the
#: tiny per-shard datasets; correctness is asserted by *equality across
#: incarnations*, not by absolute counts).
QUERIES = ['"database"', '[size > 1000]', '"database" and "tuning"']


def counter(name: str) -> int:
    """A process-global obs counter's current value (0 if unborn)."""
    value = obs.global_metrics().snapshot().get(name, 0)
    return int(value)


def histogram_count(name: str) -> int:
    """How many observations a global obs histogram has recorded."""
    snap = obs.global_metrics().snapshot().get(name)
    return snap.count if snap is not None else 0
