"""Supervisor internals, no subprocesses: fencing, futures, config.

The epoch fence is pinned white-box here — :meth:`_handle_frame` fed
hand-built frames — because the integration suite can only prove the
fence *held* (``replies.duplicate == 0``), not exercise the discard
branch deterministically.
"""

import pytest

from repro import obs
from repro.core.errors import (
    QuerySyntaxError,
    ServiceClosed,
    ServiceError,
    ShardUnavailable,
)
from repro.supervise import PendingCall, ShardSupervisor, SupervisorConfig
from repro.supervise.supervisor import ShardState, _typed_error

from .conftest import counter


@pytest.fixture()
def sup(tmp_path):
    """A supervisor that never spawned: pure in-parent state."""
    return ShardSupervisor(tmp_path / "space", shards=1)


def pending_query(sup, shard, *, epoch):
    call = sup._new_call("query", {"iql": '"database"'}, shard.index)
    call.epoch = epoch
    shard.pending[call.id] = call
    return call


class TestEpochFencing:
    def test_stale_epoch_frame_is_discarded(self, sup):
        shard = sup._shards[0]
        shard.epoch = 2
        call = pending_query(sup, shard, epoch=1)
        fenced_before = counter("supervise.replies.fenced")
        sup._handle_frame(shard, {"op": "reply", "id": call.id,
                                  "epoch": 1, "ok": True, "count": 99})
        assert not call.done                    # the old reply resolved nothing
        assert call.id in shard.pending         # still awaiting epoch 2
        assert counter("supervise.replies.fenced") == fenced_before + 1

    def test_current_epoch_frame_resolves(self, sup):
        shard = sup._shards[0]
        shard.epoch = 2
        call = pending_query(sup, shard, epoch=2)
        sup._handle_frame(shard, {"op": "reply", "id": call.id,
                                  "epoch": 2, "ok": True, "count": 4})
        assert call.done
        assert call.result(0)["count"] == 4
        assert call.id not in shard.pending

    def test_replayed_reply_is_orphaned_not_double_resolved(self, sup):
        shard = sup._shards[0]
        shard.epoch = 1
        call = pending_query(sup, shard, epoch=1)
        frame = {"op": "reply", "id": call.id, "epoch": 1, "ok": True}
        sup._handle_frame(shard, frame)
        orphaned = counter("supervise.replies.orphaned")
        sup._handle_frame(shard, dict(frame))   # replay: id no longer pending
        assert counter("supervise.replies.orphaned") == orphaned + 1

    def test_duplicate_resolution_is_counted_not_applied(self, sup):
        shard = sup._shards[0]
        shard.epoch = 1
        call = pending_query(sup, shard, epoch=1)
        call._resolve({"ok": True, "count": 1})
        duplicates = counter("supervise.replies.duplicate")
        # a protocol bug would re-register a resolved call; the frame
        # must bounce off the guard and only bump the counter
        sup._handle_frame(shard, {"op": "reply", "id": call.id,
                                  "epoch": 1, "ok": True, "count": 2})
        assert call.result(0)["count"] == 1
        assert counter("supervise.replies.duplicate") == duplicates + 1


class TestPendingCall:
    def test_resolve_exactly_once(self):
        call = PendingCall(1, "query", {}, 0)
        assert call._resolve({"ok": True, "count": 1}) is True
        assert call._resolve({"ok": True, "count": 2}) is False
        assert call.result(0)["count"] == 1

    def test_fail_after_resolve_is_a_noop(self):
        call = PendingCall(1, "query", {}, 0)
        call._resolve({"ok": True, "count": 1})
        call._fail(ShardUnavailable("too late", shard=0))
        assert call.result(0)["count"] == 1

    def test_error_reply_raises_typed(self):
        call = PendingCall(1, "query", {}, 0)
        call._resolve({"ok": False, "error": "QuerySyntaxError",
                       "message": "bad token"})
        with pytest.raises(QuerySyntaxError, match="bad token"):
            call.result(0)

    def test_result_timeout(self):
        call = PendingCall(1, "query", {}, 3)
        with pytest.raises(TimeoutError, match="shard 3"):
            call.result(0.01)


class TestTypedErrors:
    def test_known_exception_rehydrates(self):
        error = _typed_error({"error": "QuerySyntaxError", "message": "x"})
        assert isinstance(error, QuerySyntaxError)

    def test_unknown_name_degrades_to_service_error(self):
        error = _typed_error({"error": "NoSuchThing", "message": "boom"})
        assert isinstance(error, ServiceError)
        assert "NoSuchThing" in str(error) and "boom" in str(error)

    def test_non_idm_names_are_not_instantiated(self):
        # names resolving to non-IdmError attributes must not be called
        error = _typed_error({"error": "annotations", "message": "m"})
        assert isinstance(error, ServiceError)


class TestAdmission:
    def test_submit_to_down_shard_fails_fast(self, sup):
        with pytest.raises(ShardUnavailable, match="stopped") as info:
            sup.submit("query", {"iql": '"x"'}, 0)
        assert info.value.shard == 0

    def test_submit_after_close_raises_service_closed(self, sup):
        sup.close()
        with pytest.raises(ServiceClosed):
            sup.submit("query", {"iql": '"x"'}, 0)

    def test_close_is_idempotent(self, sup):
        sup.close()
        sup.close()
        assert sup.shard_states() == {0: ShardState.STOPPED.value}


class TestConfig:
    def test_shard_count_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="shards"):
            ShardSupervisor(tmp_path, shards=0)

    def test_kwarg_overrides(self, tmp_path):
        sup = ShardSupervisor(tmp_path, shards=1, seed=7,
                              heartbeat_interval=0.1)
        assert sup.config.seed == 7
        assert sup.config.heartbeat_interval == 0.1

    def test_explicit_config_plus_overrides(self, tmp_path):
        config = SupervisorConfig(seed=5, tick_seconds=0.5)
        sup = ShardSupervisor(tmp_path, shards=1, config=config, seed=9)
        assert sup.config.seed == 9
        assert sup.config.tick_seconds == 0.5

    def test_routing_key_defaults_to_query_text(self, tmp_path):
        sup = ShardSupervisor(tmp_path, shards=3)
        assert sup.shard_for('"database"') == sup.ring.lookup('"database"')
