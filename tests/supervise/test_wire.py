"""The length-prefixed frame protocol: round trips and torn streams."""

import io
import struct

import pytest

from repro.core.errors import WireError
from repro.supervise import MAX_FRAME_BYTES, read_frame, write_frame


def roundtrip(*payloads: dict) -> list[dict]:
    buffer = io.BytesIO()
    for payload in payloads:
        write_frame(buffer, payload)
    buffer.seek(0)
    frames = []
    while True:
        frame = read_frame(buffer)
        if frame is None:
            break
        frames.append(frame)
    return frames


class TestRoundTrip:
    def test_single_frame(self):
        assert roundtrip({"op": "ping", "id": 7}) == [{"op": "ping", "id": 7}]

    def test_many_frames_in_order(self):
        frames = [{"op": "query", "id": n, "iql": f"q{n}"} for n in range(20)]
        assert roundtrip(*frames) == frames

    def test_unicode_payload_survives(self):
        payload = {"op": "reply", "uris": ["imap://boîte/mé™"], "ok": True}
        assert roundtrip(payload) == [payload]

    def test_nested_values_survive(self):
        payload = {"op": "reply", "id": 1, "uris": ["a", "b"],
                   "stats": {"count": 2, "elapsed": 0.25}, "ok": True}
        assert roundtrip(payload) == [payload]

    def test_eof_at_frame_boundary_is_clean(self):
        assert read_frame(io.BytesIO(b"")) is None


class TestTornStreams:
    def test_truncated_header(self):
        with pytest.raises(WireError, match="truncated"):
            read_frame(io.BytesIO(b"\x00\x00"))

    def test_truncated_payload(self):
        buffer = io.BytesIO()
        write_frame(buffer, {"op": "ping", "id": 1})
        torn = buffer.getvalue()[:-3]
        with pytest.raises(WireError, match="truncated"):
            read_frame(io.BytesIO(torn))

    def test_missing_payload_after_length(self):
        header = struct.pack(">I", 10)
        with pytest.raises(WireError, match="truncated"):
            read_frame(io.BytesIO(header))

    def test_oversized_declared_length(self):
        header = struct.pack(">I", MAX_FRAME_BYTES + 1)
        with pytest.raises(WireError, match="exceeds"):
            read_frame(io.BytesIO(header))

    def test_undecodable_json(self):
        body = b"not json at all"
        framed = struct.pack(">I", len(body)) + body
        with pytest.raises(WireError, match="undecodable"):
            read_frame(io.BytesIO(framed))

    def test_non_object_payload(self):
        body = b"[1,2,3]"
        framed = struct.pack(">I", len(body)) + body
        with pytest.raises(WireError, match="JSON object"):
            read_frame(io.BytesIO(framed))

    def test_write_rejects_oversized_frame(self):
        huge = {"blob": "x" * (MAX_FRAME_BYTES + 16)}
        with pytest.raises(WireError, match="exceeds"):
            write_frame(io.BytesIO(), huge)
