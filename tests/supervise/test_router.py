"""Consistent-hash routing: stability, balance, minimal movement."""

import pytest

from repro.supervise import HashRing, stable_hash

KEYS = [f"client-{n}" for n in range(2000)]


class TestStableHash:
    def test_process_independent(self):
        # pinned values: placement must survive interpreter restarts
        # and PYTHONHASHSEED changes (blake2b, not builtin hash)
        assert stable_hash("client-0") == stable_hash("client-0")
        assert stable_hash("a") != stable_hash("b")

    def test_64_bit_range(self):
        for key in KEYS[:100]:
            assert 0 <= stable_hash(key) < 2 ** 64


class TestHashRing:
    def test_lookup_is_deterministic_across_instances(self):
        first, second = HashRing(4), HashRing(4)
        assert [first.lookup(k) for k in KEYS] == \
               [second.lookup(k) for k in KEYS]

    def test_every_shard_owns_keyspace(self):
        spread = HashRing(4).spread(KEYS)
        assert sorted(spread) == [0, 1, 2, 3]
        # 64 vnodes/shard keeps the imbalance modest: nobody starves
        assert all(count > len(KEYS) * 0.10 for count in spread.values())
        assert sum(spread.values()) == len(KEYS)

    def test_remove_moves_only_the_lost_shards_keys(self):
        ring = HashRing(4)
        before = {key: ring.lookup(key) for key in KEYS}
        ring.remove(2)
        for key, owner in before.items():
            if owner == 2:
                assert ring.lookup(key) != 2
            else:
                # the consistent-hashing contract: surviving shards
                # keep every key they already owned
                assert ring.lookup(key) == owner

    def test_add_is_idempotent(self):
        ring = HashRing(3)
        points = list(ring._points)
        ring.add(1)
        assert ring._points == points

    def test_add_restores_prior_placement(self):
        ring = HashRing(4)
        before = {key: ring.lookup(key) for key in KEYS}
        ring.remove(2)
        ring.add(2)
        assert {key: ring.lookup(key) for key in KEYS} == before

    def test_empty_ring_rejects_lookup(self):
        with pytest.raises(ValueError, match="empty"):
            HashRing(0).lookup("anything")

    def test_len_and_shards(self):
        ring = HashRing(3)
        assert len(ring) == 3
        assert ring.shards == [0, 1, 2]
        ring.remove(1)
        assert len(ring) == 2
        assert ring.shards == [0, 2]

    def test_replicas_must_be_positive(self):
        with pytest.raises(ValueError, match="replicas"):
            HashRing(2, replicas=0)
