"""Fleet observability over real worker processes.

Three contracts, end to end: stitched traces (one EXPLAIN ANALYZE tree
spanning the supervisor and the worker — both incarnations when the
query was re-dispatched, never a fenced incarnation's spans), metrics
federation (every worker's series appear under ``{shard=N}`` labels,
and a SIGKILL can never double-count a merged counter, because a
respawned worker's exporter restarts its deltas from zero), and the
failover timeline (died → respawn → recovered) in the event log.
"""

from __future__ import annotations

import time

import pytest

from repro import obs
from repro.supervise import PendingCall, ShardSupervisor
from repro.trace import TraceCollector, span_to_wire
from repro.trace.span import Span

from .conftest import CHAOS_SEED

#: Series the federated fleet snapshot must carry per shard.
LABELED = ('query.executions{{shard="{0}"}}',
           'service.queries.served{{shard="{0}"}}')


def labeled_counter(name: str, **labels) -> int:
    key = (name + "{"
           + ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
           + "}")
    value = obs.global_metrics().snapshot().get(key, 0)
    return int(value)


def key_for_shard(sup: ShardSupervisor, shard: int) -> str:
    for n in range(256):
        key = f"client-{n}"
        if sup.shard_for(key) == shard:
            return key
    raise AssertionError(f"no probe key routed to shard {shard}")


@pytest.fixture(scope="module")
def fleet(tmp_path_factory):
    """Two shard workers exporting aggressively (every reply)."""
    sup = ShardSupervisor(
        tmp_path_factory.mktemp("obsfleet"), shards=2,
        seed=500 + CHAOS_SEED, heartbeat_interval=0.2,
        metrics_interval=0.0001,
    ).start()
    yield sup
    sup.close(drain=False)


class TestStitchedTraces:
    def test_tree_spans_both_processes(self, fleet):
        report = fleet.explain_analyze('"database"', tenant="acme")
        text = report.render()
        # supervisor-side spans
        assert "ShardedQuery" in text
        assert "RingLookup(shard" in text
        assert "Dispatch(epoch=" in text
        assert "WorkerQueue(executor hand-off)" in text
        # the worker's own operator tree, grafted under the dispatch
        assert "ContentSearch" in text
        # the worker's substrate counters federate into the report
        assert report.trace.counters.get("ctx.content_search", 0) >= 1
        assert report.result.count >= 0

    def test_untraced_queries_ship_no_spans(self, fleet):
        result = fleet.query('"database"', key=key_for_shard(fleet, 0))
        assert result.count == len(result.uris)
        # no collector was passed, so nothing was stitched anywhere —
        # cheap sanity that tracing is strictly opt-in per query

    def test_fenced_dispatches_contribute_no_spans(self, fleet):
        """A stale incarnation's reply is dropped whole: the stitched
        tree marks the fence but adopts spans only from live replies."""
        call = PendingCall(99, "query", {"iql": '"x"', "trace": True}, 0)
        worker_span = Span(operator="ContentSearch",
                           detail="ContentSearch(phrase: 'x')", depth=0,
                           actual_rows=3, elapsed_seconds=0.001,
                           status="ok")
        call.dispatches = [
            {"epoch": 1, "started": 0.0, "ended": 0.1, "status": "died",
             "spans": None, "counters": None, "queue_wait": None},
            {"epoch": 2, "started": 0.1, "ended": 0.2, "status": "ok",
             "spans": [span_to_wire(worker_span)],
             "counters": {"ctx.content_search": 1}, "queue_wait": 0.0001},
        ]
        call.fenced = 2
        trace = TraceCollector()
        fleet._stitch_trace(trace, call, iql='"x"', shard_index=0,
                            lookup_seconds=0.0, total_seconds=0.2, rows=3)
        [root] = trace.roots
        dispatches = [s for s in root.children if s.operator == "Dispatch"]
        assert len(dispatches) == 2
        died, redispatched = dispatches
        assert died.status == "error" and "worker died" in died.detail
        # the dead incarnation contributed NO worker spans
        assert [c.operator for c in died.children] == []
        assert "re-dispatch" in redispatched.detail
        assert [c.operator for c in redispatched.children] == [
            "WorkerQueue", "ContentSearch"]
        [fence] = [s for s in root.children if s.operator == "EpochFence"]
        assert "dropped 2 stale" in fence.detail
        assert trace.counters["ctx.content_search"] == 1


class TestFederation:
    def test_every_shard_federates_labeled_series(self, fleet):
        for shard in (0, 1):
            fleet.query('"database"', key=key_for_shard(fleet, shard),
                        tenant="acme")
        fleet.flush_telemetry()
        snapshot = obs.global_metrics().snapshot()
        for shard in (0, 1):
            for template in LABELED:
                assert snapshot.get(template.format(shard), 0) >= 1, \
                    f"missing {template.format(shard)}"
        # tenant and shard labels compose on one series
        assert labeled_counter("query.executions",
                               shard=0, tenant="acme") >= 1

    def test_stats_carries_federated_p99(self, fleet):
        fleet.query('"database"', key=key_for_shard(fleet, 0))
        fleet.flush_telemetry()
        stats = fleet.stats()
        assert stats["shard.0.served"] >= 1
        assert stats["shard.0.p99_seconds"] > 0
        assert stats["shard.0.stale"] is False

    def test_sigkill_cannot_double_count(self, fleet):
        """Counters merged across a SIGKILL are the sum of what each
        incarnation actually served — never re-shipped lifetime totals."""
        key = key_for_shard(fleet, 0)
        fleet.flush_telemetry()
        before = labeled_counter("service.queries.served", shard=0)

        for _ in range(3):
            fleet.query('"database"', key=key)
        fleet.flush_telemetry()
        after_first = labeled_counter("service.queries.served", shard=0)
        assert after_first == before + 3

        fleet.kill_shard(0)
        # the shard's series go stale the moment the worker dies
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            stale = obs.global_metrics().snapshot().get(
                'supervise.obs.stale{shard="0"}', 0)
            if stale:
                break
            time.sleep(0.01)
        else:
            raise AssertionError("stale gauge never rose after SIGKILL")

        assert fleet.wait_until_up(0, timeout=120.0)
        for _ in range(2):
            fleet.query('"database"', key=key)
        fleet.flush_telemetry()
        after_failover = labeled_counter("service.queries.served", shard=0)
        # the fresh incarnation's deltas restarted from zero: exactly
        # the two new queries arrived, nothing replayed
        assert after_failover == after_first + 2
        assert fleet.stats()["shard.0.stale"] is False

    def test_failover_timeline_reads_whole(self, fleet):
        def shard1_names(marker: int) -> list[str]:
            return [e.name for e in obs.global_events().snapshot()[marker:]
                    if e.subsystem == "supervise"
                    and e.fields.get("shard") == 1]

        marker = len(obs.global_events().snapshot())
        fleet.kill_shard(1)
        # wait_until_up alone can win the race against death detection,
        # so first wait for the supervisor to notice the corpse
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if "supervise.shard.died" in shard1_names(marker):
                break
            time.sleep(0.01)
        assert fleet.wait_until_up(1, timeout=120.0)
        names = shard1_names(marker)
        died = names.index("supervise.shard.died")
        respawn = names.index("supervise.shard.respawn")
        recovered = names.index("supervise.shard.recovered")
        assert died < respawn < recovered


class TestLogRotation:
    def test_rotation_shifts_generations(self, tmp_path):
        sup = ShardSupervisor(tmp_path / "space", shards=1,
                              log_max_bytes=64, log_keep=2)
        path = tmp_path / "space" / "shard-00" / "worker.log"
        path.parent.mkdir(parents=True, exist_ok=True)
        for generation in (b"first", b"second", b"third"):
            path.write_bytes(generation * 64)
            sup._rotate_log(path)
        assert not path.exists()
        assert path.with_name("worker.log.1").read_bytes().startswith(
            b"third")
        assert path.with_name("worker.log.2").read_bytes().startswith(
            b"second")
        # keep=2: the oldest generation fell off the end
        assert not path.with_name("worker.log.3").exists()

    def test_small_logs_left_alone(self, tmp_path):
        sup = ShardSupervisor(tmp_path / "space", shards=1,
                              log_max_bytes=1 << 20, log_keep=2)
        path = tmp_path / "space" / "shard-00" / "worker.log"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"tiny")
        sup._rotate_log(path)
        assert path.read_bytes() == b"tiny"
        assert not path.with_name("worker.log.1").exists()


class TestRedispatchTrace:
    def test_both_incarnations_in_one_tree(self, tmp_path):
        """Crash the worker mid-query under a trace: the stitched tree
        shows the dead epoch as an error and the re-dispatch (with the
        worker's spans) under the new epoch."""
        sup = ShardSupervisor(
            tmp_path / "space", shards=1, seed=700 + CHAOS_SEED,
            worker_extra_args=("--crash-after-queries", "1"),
        )
        with sup:
            first = sup.query('"database"', timeout=120.0)
            assert first.epoch == 1
            report = sup.explain_analyze('"database"', timeout=120.0)
        assert report.result.redispatched
        assert report.result.epoch == 2
        text = report.render()
        assert "Dispatch(epoch=1, pipe round-trip, worker died)" in text
        assert "Dispatch(epoch=2, pipe round-trip, re-dispatch)" in text
        # the worker spans hang under the SURVIVING incarnation only
        assert text.count("ContentSearch") == 1
        assert "!error" in text
