"""The SIGKILL failover contract, end to end with real worker processes.

The acceptance story, per shard death: no acknowledged result is lost
(anything a client already saw is identical after recovery), no reply
is ever delivered twice (epoch fencing), the *other* shards keep
answering throughout, and the killed shard comes back on its own via
``Dataspace.open`` recovery and passes in-worker engine ≡ oracle
verification.

``REPRO_CHAOS_SEED`` varies the shard datasets per CI matrix job; all
assertions are equalities across incarnations, never absolute counts.
"""

import time
from dataclasses import replace

import pytest

from repro.core.errors import (
    QuerySyntaxError,
    ServiceClosed,
    ShardUnavailable,
)
from repro.supervise import ShardSupervisor

from .conftest import CHAOS_SEED, QUERIES, counter, histogram_count


def key_for_shard(sup: ShardSupervisor, shard: int) -> str:
    """A routing key the ring sends to ``shard`` (probed, stable)."""
    for n in range(256):
        key = f"client-{n}"
        if sup.shard_for(key) == shard:
            return key
    raise AssertionError(f"no probe key routed to shard {shard}")


@pytest.fixture(scope="module")
def duo(tmp_path_factory):
    """Two shard workers under one supervisor, shared by this module.

    Tests run top to bottom and may kill workers, but each one leaves
    every shard UP again; assertions tolerate epochs > 1.
    """
    sup = ShardSupervisor(
        tmp_path_factory.mktemp("duo"), shards=2,
        seed=300 + CHAOS_SEED, heartbeat_interval=0.2,
    ).start()
    yield sup
    sup.close(drain=False)


class TestServing:
    def test_both_shards_come_up_and_serve(self, duo):
        states = duo.shard_states()
        assert states == {0: "up", 1: "up"}
        stats = duo.stats()
        assert stats["shards"] == 2
        assert stats["shard.0.views"] > 0 and stats["shard.1.views"] > 0

    def test_query_routes_by_ring(self, duo):
        for n in range(6):
            key = f"client-{n}"
            result = duo.query('"database"', key=key)
            assert result.shard == duo.shard_for(key)
            assert result.epoch >= 1

    def test_repeat_query_is_deterministic(self, duo):
        key = key_for_shard(duo, 0)
        first = duo.query('[size > 1000]', key=key)
        second = duo.query('[size > 1000]', key=key)
        assert first.uris == second.uris

    def test_query_all_fans_out(self, duo):
        results = duo.query_all('"database"')
        assert sorted(results) == [0, 1]
        # distinct per-shard datasets (seeded seed+index): the fan-out
        # really hit two different dataspaces
        assert all(r.count == len(r.uris) for r in results.values())

    def test_limit_is_honored(self, duo):
        unlimited = duo.query('"database"', key=key_for_shard(duo, 1))
        if unlimited.count < 2:
            pytest.skip("dataset too small to exercise limit")
        limited = duo.query('"database"', key=key_for_shard(duo, 1), limit=1)
        assert limited.count == 1

    def test_worker_errors_come_back_typed(self, duo):
        with pytest.raises(QuerySyntaxError):
            duo.query('//[[broken', key=key_for_shard(duo, 0))

    def test_checkpoint_shard(self, duo):
        reply = duo.checkpoint_shard(0)
        assert reply["lsn"] >= 0


class TestSigkillFailover:
    def test_failover_contract(self, duo):
        """Kill shard 0 with a burst in flight; prove the full contract."""
        key0, key1 = key_for_shard(duo, 0), key_for_shard(duo, 1)

        # 1. acknowledged baseline: the client has SEEN these answers
        acked = {iql: duo.query(iql, key=key0).uris for iql in QUERIES}
        epoch_before = duo.stats()["shard.0.epoch"]
        duplicates_before = counter("supervise.replies.duplicate")
        failovers_before = histogram_count("supervise.failover_seconds")

        # 2. a burst of in-flight queries, then SIGKILL mid-burst
        burst = [duo.submit("query", {"iql": QUERIES[n % len(QUERIES)]}, 0)
                 for n in range(6)]
        duo.kill_shard(0)

        # 3. the OTHER shard answers throughout the failover window
        while not all(call.done for call in burst):
            assert duo.query('"database"', key=key1).shard == 1
            time.sleep(0.01)

        # 4. every in-flight call resolves exactly once, with the same
        #    answer the healthy incarnation gave (some re-dispatched)
        for call in burst:
            reply = call.result(timeout=60)
            assert reply["uris"] == acked[call.payload["iql"]]
        assert counter("supervise.replies.duplicate") == duplicates_before

        # 5. the shard recovered on its own, epoch fenced forward
        assert duo.wait_until_up(0, timeout=60)
        stats = duo.stats()
        assert stats["shard.0.epoch"] == epoch_before + 1
        assert stats["shard.0.restarts"] >= 1
        assert histogram_count("supervise.failover_seconds") == \
            failovers_before + 1

        # 6. no acknowledged-result loss: recovery reproduced the state
        for iql, uris in acked.items():
            assert duo.query(iql, key=key0).uris == uris, iql

        # 7. the recovered engine still matches the reference oracle
        report = duo.verify_shard(0, seed=CHAOS_SEED, count=15)
        assert report["verify_ok"] and report["mismatches"] == 0

    def test_fail_fast_while_recovering(self, duo):
        duo.kill_shard(1)
        deadline = time.monotonic() + 10
        while duo.shard_states()[1] == "up":
            assert time.monotonic() < deadline, "death never detected"
            time.sleep(0.002)
        # a request during the outage gets a typed refusal, instantly
        with pytest.raises(ShardUnavailable) as info:
            duo.submit("query", {"iql": '"database"'}, 1)
        assert info.value.shard == 1
        assert duo.wait_until_up(1, timeout=60)
        assert duo.query('"database"', key=key_for_shard(duo, 1)).count >= 0


class TestExactlyOnce:
    @pytest.fixture()
    def solo(self, tmp_path):
        """One shard whose worker SIGKILLs itself on the 4th query."""
        sup = ShardSupervisor(
            tmp_path / "solo", shards=1, seed=400 + CHAOS_SEED,
            worker_extra_args=("--crash-after-queries", "3"),
        ).start()
        yield sup
        sup.close(drain=False)

    def test_inflight_query_redispatched_exactly_once(self, solo):
        # queries 1..3 are acknowledged by the first incarnation
        acked = [solo.query(QUERIES[n % len(QUERIES)]).uris
                 for n in range(3)]
        redispatched_before = counter("supervise.queries.redispatched")
        # query 4 arrives, the worker dies with it unanswered; the
        # supervisor parks it and re-dispatches it once after recovery
        result = solo.query(QUERIES[0], timeout=60)
        assert result.redispatched is True
        assert result.epoch == 2
        assert result.uris == acked[0]
        assert counter("supervise.queries.redispatched") == \
            redispatched_before + 1
        assert solo.stats()["shard.0.restarts"] == 1

    def test_second_crash_fails_typed_instead_of_looping(self, tmp_path):
        # every incarnation dies on its first query: the re-dispatch
        # crashes too, and the call must fail rather than retry forever
        with ShardSupervisor(
            tmp_path / "loop", shards=1, seed=500 + CHAOS_SEED,
            worker_extra_args=("--crash-after-queries", "0"),
        ) as sup:
            with pytest.raises(ShardUnavailable, match="again"):
                sup.query('"database"', timeout=60)
            # the shard itself still recovers (crashes only on queries)
            assert sup.wait_until_up(0, timeout=60)


class TestCrashLoopBreaker:
    def test_start_crash_loop_opens_breaker_then_half_open_heals(
            self, tmp_path):
        """A shard that cannot even start degrades to BROKEN (breaker
        open, fail-fast with retry_after), then heals through the
        half-open restart probe once the cool-down elapses."""
        sup = ShardSupervisor(
            tmp_path / "broken", shards=1, seed=600 + CHAOS_SEED,
            breaker_failure_threshold=3, breaker_cooldown_seconds=1.0,
        ).start()
        try:
            # poison every respawn: an argv the worker rejects at parse
            healthy = sup.config
            sup.config = replace(healthy,
                                 worker_extra_args=("--no-such-flag",))
            sup.kill_shard(0)
            deadline = time.monotonic() + 30
            while sup.shard_states()[0] != "broken":
                assert time.monotonic() < deadline, \
                    f"breaker never opened: {sup.stats()}"
                time.sleep(0.01)
            with pytest.raises(ShardUnavailable) as info:
                sup.submit("query", {"iql": '"database"'}, 0)
            assert info.value.retry_after is not None
            assert sup.stats()["shard.0.breaker"] == "open"
            # heal the spawn recipe; the half-open probe restarts it
            sup.config = healthy
            assert sup.wait_until_up(0, timeout=60)
            assert sup.stats()["shard.0.breaker"] == "closed"
            assert sup.query('"database"').count >= 0
        finally:
            sup.close(drain=False)


class TestCloseSemantics:
    def test_drain_close_and_closed_submit(self, tmp_path):
        sup = ShardSupervisor(tmp_path / "one", shards=1,
                              seed=700 + CHAOS_SEED).start()
        calls = [sup.submit("query", {"iql": QUERIES[n % len(QUERIES)]}, 0)
                 for n in range(4)]
        sup.close(drain=True)
        # drain: every in-flight call finished before the worker died
        assert all(call.result(0)["ok"] for call in calls)
        assert sup.shard_states() == {0: "stopped"}
        with pytest.raises(ServiceClosed):
            sup.submit("query", {"iql": '"database"'}, 0)

    def test_context_manager_lifecycle(self, tmp_path):
        with ShardSupervisor(tmp_path / "ctx", shards=1,
                             seed=800 + CHAOS_SEED) as sup:
            assert sup.query('"database"').shard == 0
        assert sup.shard_states() == {0: "stopped"}
