"""Tests for the PIM applications: reconciliation and clustering."""

from datetime import datetime

import pytest

from repro.apps import (
    cluster_by_content,
    normalize_person,
    reconcile_names,
    reconcile_views,
)
from repro.imapsim import EmailMessage, ImapServer
from repro.imapsim.latency import no_latency
from repro.rvm import ResourceViewManager
from repro.rvm.plugins import FilesystemPlugin, ImapPlugin
from repro.vfs import VirtualFileSystem


class TestNormalization:
    def test_plain_name(self):
        assert normalize_person("Jens Dittrich") == ("jens", "dittrich")

    def test_angle_address_stripped(self):
        assert normalize_person("Jens Dittrich <jens@ethz.ch>") == \
            ("jens", "dittrich")

    def test_last_first_inverted(self):
        assert normalize_person("Dittrich, Jens") == ("jens", "dittrich")

    def test_initials_dotted(self):
        assert normalize_person("J. Dittrich") == ("j", "dittrich")

    def test_bare_address_uses_local_part(self):
        assert normalize_person("jens.dittrich@ethz.ch") == \
            ("jens", "dittrich")

    def test_empty(self):
        assert normalize_person("   ") == ()


class TestReconcileNames:
    def test_spelling_variants_cluster(self):
        clusters = reconcile_names([
            "Jens Dittrich <jens@ethz.ch>",
            "Dittrich, Jens",
            "J. Dittrich",
            "jens.dittrich@ethz.ch",
            "Donald Knuth",
        ])
        assert len(clusters) == 2
        assert len(clusters[0]) == 4  # all the Dittrich variants
        assert clusters[1] == ["Donald Knuth"]

    def test_different_surnames_never_merge(self):
        clusters = reconcile_names(["Anna Gray", "Anna Codd"])
        assert len(clusters) == 2

    def test_same_surname_different_first_names_separate(self):
        clusters = reconcile_names(["Anna Gray", "Robert Gray"])
        assert len(clusters) == 2

    def test_initial_expands_to_full_name(self):
        clusters = reconcile_names(["M. Franklin", "Mike Franklin"])
        assert len(clusters) == 1

    def test_middle_name_subset(self):
        clusters = reconcile_names([
            "Marcos Antonio Vaz Salles" , "Marcos Salles",
        ])
        # shared surname 'salles'; 'marcos' matches, extra middles drop
        assert len(clusters) == 1

    def test_deterministic_order(self):
        mentions = ["B Last", "A Last", "C Other"]
        assert reconcile_names(mentions) == reconcile_names(mentions)

    def test_empty_input(self):
        assert reconcile_names([]) == []


class TestReconcileViews:
    def test_clusters_email_senders(self):
        imap = ImapServer(latency=no_latency())
        for sender in ("Jens Dittrich <jens@ethz.ch>",
                       "Dittrich, Jens",
                       "Donald Knuth <don@stanford.edu>"):
            imap.deliver("INBOX", EmailMessage(
                subject="s", sender=sender, to=("x@y.z",),
                date=datetime(2005, 1, 1), body="b",
            ))
        rvm = ResourceViewManager()
        rvm.register_plugin(ImapPlugin(imap))
        rvm.sync_all()
        clusters = reconcile_views(rvm, attributes=("from",))
        assert len(clusters) == 1  # only the Dittrich variants co-refer
        mentions = {mention for mention, _ in clusters[0]}
        assert mentions == {"Jens Dittrich <jens@ethz.ch>",
                            "Dittrich, Jens"}

    def test_uris_attached(self):
        imap = ImapServer(latency=no_latency())
        imap.deliver("INBOX", EmailMessage(
            subject="s", sender="A. Gray", to=("x@y.z",),
            date=datetime(2005, 1, 1), body="b",
        ))
        imap.deliver("INBOX", EmailMessage(
            subject="s2", sender="Anna Gray", to=("x@y.z",),
            date=datetime(2005, 1, 2), body="b",
        ))
        rvm = ResourceViewManager()
        rvm.register_plugin(ImapPlugin(imap))
        rvm.sync_all()
        clusters = reconcile_views(rvm, attributes=("from",))
        assert len(clusters) == 1
        uris = {uri for _, uri in clusters[0]}
        assert all(uri.startswith("imap://INBOX") for uri in uris)


class TestContentClustering:
    @pytest.fixture()
    def rvm(self):
        fs = VirtualFileSystem()
        fs.mkdir("/d", parents=True)
        draft = ("the unified dataspace model for personal information "
                 "management with resource views and components")
        fs.write_file("/d/draft_v1.txt", draft)
        fs.write_file("/d/draft_v2.txt", draft + " plus one new sentence")
        fs.write_file("/d/recipe.txt",
                      "carrots onions garlic simmer soup dinner kitchen")
        fs.write_file("/d/groceries.txt",
                      "carrots onions garlic bread milk kitchen list")
        manager = ResourceViewManager()
        manager.register_plugin(FilesystemPlugin(fs))
        manager.sync_all()
        return manager

    def test_near_duplicates_cluster(self, rvm):
        clusters = cluster_by_content(rvm, threshold=0.5)
        by_member = {uri: tuple(c) for c in clusters for uri in c}
        assert by_member["fs:///d/draft_v1.txt"] == \
            by_member["fs:///d/draft_v2.txt"]

    def test_unrelated_content_separate(self, rvm):
        clusters = cluster_by_content(rvm, threshold=0.5)
        by_member = {uri: tuple(c) for c in clusters for uri in c}
        assert by_member["fs:///d/draft_v1.txt"] != \
            by_member["fs:///d/recipe.txt"]

    def test_high_threshold_splits(self, rvm):
        loose = cluster_by_content(rvm, threshold=0.3)
        tight = cluster_by_content(rvm, threshold=0.99)
        assert len(tight) >= len(loose)

    def test_min_cluster_size_filter(self, rvm):
        multi = cluster_by_content(rvm, threshold=0.5, min_cluster_size=2)
        assert all(len(c) >= 2 for c in multi)

    def test_explicit_uris_subset(self, rvm):
        clusters = cluster_by_content(
            rvm, ["fs:///d/recipe.txt", "fs:///d/groceries.txt"],
            threshold=0.3,
        )
        members = {uri for c in clusters for uri in c}
        assert members == {"fs:///d/recipe.txt", "fs:///d/groceries.txt"}

    def test_deterministic(self, rvm):
        assert cluster_by_content(rvm) == cluster_by_content(rvm)
