"""Tests for the Dataspace facade."""

from datetime import datetime

import pytest

from repro.facade import Dataspace
from repro.imapsim import EmailMessage, ImapServer
from repro.imapsim.latency import no_latency
from repro.rvm import IndexingPolicy
from repro.vfs import VirtualFileSystem


class TestConstruction:
    def test_empty_dataspace(self):
        dataspace = Dataspace()
        report = dataspace.sync()
        assert report.views_total == 0
        assert dataspace.view_count == 0

    def test_fs_only(self):
        fs = VirtualFileSystem()
        fs.write_file("/a.txt", "hello", parents=True)
        dataspace = Dataspace(vfs=fs)
        dataspace.sync()
        assert dataspace.view_count == 2  # root + file

    def test_imap_only(self):
        imap = ImapServer(latency=no_latency())
        imap.deliver("INBOX", EmailMessage(
            subject="hi", sender="a@b", to=("c@d",),
            date=datetime(2005, 1, 1), body="text",
        ))
        dataspace = Dataspace(imap=imap)
        dataspace.sync()
        assert dataspace.view_count == 2  # INBOX + message

    def test_generate_passthrough_kwargs(self):
        dataspace = Dataspace.generate(
            scale=0.001, imap_latency=no_latency(),
            policy=IndexingPolicy.minimal(), optimizer="cost",
            expansion="auto",
        )
        assert dataspace.processor.optimizer_mode == "cost"
        assert dataspace.processor.expansion == "auto"
        assert not dataspace.rvm.indexes.policy.index_content

    def test_demo_reproducible(self):
        a = Dataspace.demo(seed=9)
        b = Dataspace.demo(seed=9)
        assert a.sync().views_total == b.sync().views_total


class TestQuerying:
    def test_query_autosyncs(self):
        fs = VirtualFileSystem()
        fs.write_file("/x.txt", "needle content", parents=True)
        dataspace = Dataspace(vfs=fs)
        # no explicit sync()
        assert len(dataspace.query('"needle"')) == 1

    def test_search_with_iql_filter(self):
        fs = VirtualFileSystem()
        fs.write_file("/a/in.txt", "target words here", parents=True)
        fs.write_file("/b/out.txt", "target words there", parents=True)
        dataspace = Dataspace(vfs=fs)
        dataspace.sync()
        everything = dataspace.search("target")
        filtered = dataspace.search("target", iql="//a//*.txt")
        assert len(filtered) == 1
        assert filtered[0].uri == "fs:///a/in.txt"
        assert len(everything) == 2

    def test_explain(self):
        dataspace = Dataspace(vfs=VirtualFileSystem())
        assert "ContentSearch" in dataspace.explain('"x"')


class TestLifecycle:
    def test_watch_and_refresh(self):
        fs = VirtualFileSystem()
        fs.write_file("/seed.txt", "seed", parents=True)
        dataspace = Dataspace(vfs=fs)
        dataspace.sync()
        supported = dataspace.watch()
        assert supported["fs"] is True
        fs.write_file("/late.txt", "tardigrade facts")
        processed = dataspace.refresh()
        assert processed > 0
        assert len(dataspace.query('"tardigrade"')) == 1

    def test_resync_idempotent(self):
        dataspace = Dataspace.generate(scale=0.001,
                                       imap_latency=no_latency())
        first = dataspace.sync().views_total
        second = dataspace.sync().views_total
        assert first == second
        assert dataspace.view_count == first

    def test_index_sizes_shape(self):
        dataspace = Dataspace.generate(scale=0.001,
                                       imap_latency=no_latency())
        dataspace.sync()
        sizes = dataspace.index_sizes()
        assert sizes["total"] > 0
        assert sizes["net_input"] > 0


class TestPersistenceSurface:
    def _small(self):
        fs = VirtualFileSystem()
        fs.write_file("/a/notes.txt", "database tuning notes", parents=True)
        fs.write_file("/a/more.txt", "durable dataspace", parents=True)
        return Dataspace(vfs=fs)

    def test_save_load_round_trip(self, tmp_path):
        dataspace = self._small()
        manifest = dataspace.save(tmp_path / "snap")  # auto-syncs
        assert manifest["counts"]["catalog"] == dataspace.view_count
        restored = Dataspace()
        restored.load(tmp_path / "snap")
        assert restored.view_count == dataspace.view_count
        # no sync needed: the restored indexes answer directly
        assert set(restored.query('"database"').uris()) \
            == set(dataspace.query('"database"').uris())

    def test_load_refuses_non_empty(self, tmp_path):
        from repro.core.errors import StoreError
        dataspace = self._small()
        dataspace.save(tmp_path / "snap")
        with pytest.raises(StoreError):
            dataspace.load(tmp_path / "snap")
        dataspace.load(tmp_path / "snap", merge=True)

    def test_durable_dataspace_reopens(self, tmp_path):
        fs = VirtualFileSystem()
        fs.write_file("/a/notes.txt", "database tuning notes", parents=True)
        with Dataspace(vfs=fs, durability=tmp_path / "space") as dataspace:
            dataspace.sync()
            count = dataspace.view_count
            hits = set(dataspace.query('"database"').uris())
        with Dataspace.open(tmp_path / "space") as reopened:
            assert reopened.view_count == count
            assert set(reopened.query('"database"').uris()) == hits
            assert reopened.last_recovery is not None

    def test_checkpoint_requires_durability(self):
        from repro.core.errors import DurabilityError
        with pytest.raises(DurabilityError):
            self._small().checkpoint()

    def test_durability_accepts_config_object(self, tmp_path):
        from repro.durability import DurabilityConfig
        dataspace = Dataspace(
            vfs=VirtualFileSystem(),
            durability=DurabilityConfig(directory=tmp_path / "d",
                                        fsync="off"),
        )
        assert dataspace.durability.wal.fsync_policy == "off"
        dataspace.close()
