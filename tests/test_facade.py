"""Tests for the Dataspace facade."""

from datetime import datetime

import pytest

from repro.facade import Dataspace
from repro.imapsim import EmailMessage, ImapServer
from repro.imapsim.latency import no_latency
from repro.rvm import IndexingPolicy
from repro.vfs import VirtualFileSystem


class TestConstruction:
    def test_empty_dataspace(self):
        dataspace = Dataspace()
        report = dataspace.sync()
        assert report.views_total == 0
        assert dataspace.view_count == 0

    def test_fs_only(self):
        fs = VirtualFileSystem()
        fs.write_file("/a.txt", "hello", parents=True)
        dataspace = Dataspace(vfs=fs)
        dataspace.sync()
        assert dataspace.view_count == 2  # root + file

    def test_imap_only(self):
        imap = ImapServer(latency=no_latency())
        imap.deliver("INBOX", EmailMessage(
            subject="hi", sender="a@b", to=("c@d",),
            date=datetime(2005, 1, 1), body="text",
        ))
        dataspace = Dataspace(imap=imap)
        dataspace.sync()
        assert dataspace.view_count == 2  # INBOX + message

    def test_generate_passthrough_kwargs(self):
        dataspace = Dataspace.generate(
            scale=0.001, imap_latency=no_latency(),
            policy=IndexingPolicy.minimal(), optimizer="cost",
            expansion="auto",
        )
        assert dataspace.processor.optimizer_mode == "cost"
        assert dataspace.processor.expansion == "auto"
        assert not dataspace.rvm.indexes.policy.index_content

    def test_demo_reproducible(self):
        a = Dataspace.demo(seed=9)
        b = Dataspace.demo(seed=9)
        assert a.sync().views_total == b.sync().views_total


class TestQuerying:
    def test_query_autosyncs(self):
        fs = VirtualFileSystem()
        fs.write_file("/x.txt", "needle content", parents=True)
        dataspace = Dataspace(vfs=fs)
        # no explicit sync()
        assert len(dataspace.query('"needle"')) == 1

    def test_search_with_iql_filter(self):
        fs = VirtualFileSystem()
        fs.write_file("/a/in.txt", "target words here", parents=True)
        fs.write_file("/b/out.txt", "target words there", parents=True)
        dataspace = Dataspace(vfs=fs)
        dataspace.sync()
        everything = dataspace.search("target")
        filtered = dataspace.search("target", iql="//a//*.txt")
        assert len(filtered) == 1
        assert filtered[0].uri == "fs:///a/in.txt"
        assert len(everything) == 2

    def test_explain(self):
        dataspace = Dataspace(vfs=VirtualFileSystem())
        assert "ContentSearch" in dataspace.explain('"x"')


class TestLifecycle:
    def test_watch_and_refresh(self):
        fs = VirtualFileSystem()
        fs.write_file("/seed.txt", "seed", parents=True)
        dataspace = Dataspace(vfs=fs)
        dataspace.sync()
        supported = dataspace.watch()
        assert supported["fs"] is True
        fs.write_file("/late.txt", "tardigrade facts")
        processed = dataspace.refresh()
        assert processed > 0
        assert len(dataspace.query('"tardigrade"')) == 1

    def test_resync_idempotent(self):
        dataspace = Dataspace.generate(scale=0.001,
                                       imap_latency=no_latency())
        first = dataspace.sync().views_total
        second = dataspace.sync().views_total
        assert first == second
        assert dataspace.view_count == first

    def test_index_sizes_shape(self):
        dataspace = Dataspace.generate(scale=0.001,
                                       imap_latency=no_latency())
        dataspace.sync()
        sizes = dataspace.index_sizes()
        assert sizes["total"] > 0
        assert sizes["net_input"] > 0
