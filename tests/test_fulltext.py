"""Tests for the full-text engine (the Lucene substitute)."""

import pytest

from repro.core.errors import FullTextError, QuerySyntaxError
from repro.fulltext import (
    Analyzer,
    And,
    InvertedIndex,
    MatchAll,
    Not,
    Or,
    Phrase,
    Term,
    Wildcard,
    parse_query,
    tokenize,
)
from repro.fulltext.analyzer import DEFAULT_STOPWORDS
from repro.fulltext.query import search
from repro.fulltext.scoring import score_query, score_tfidf


@pytest.fixture()
def index():
    idx = InvertedIndex()
    idx.add("d1", "Database tuning is an art. Database systems rule.")
    idx.add("d2", "A database stores structured data collections.")
    idx.add("d3", "Guitar tuning and indexing time both matter.")
    idx.add("d4", "Completely unrelated text about cooking.")
    return idx


class TestAnalyzer:
    def test_lowercases(self):
        assert [t.term for t in tokenize("Hello WORLD")] == ["hello", "world"]

    def test_positions_consecutive(self):
        assert [t.position for t in tokenize("a b c")] == [0, 1, 2]

    def test_punctuation_splits(self):
        assert [t.term for t in tokenize("foo-bar,baz")] == ["foo", "bar", "baz"]

    def test_numbers_kept(self):
        assert [t.term for t in tokenize("VLDB 2006")] == ["vldb", "2006"]

    def test_stopwords_leave_position_gaps(self):
        analyzer = Analyzer(stopwords=DEFAULT_STOPWORDS)
        tokens = list(analyzer.tokens("to be or not to be queried"))
        # the surviving token keeps its original position, so phrases
        # cannot falsely match across removed words
        assert tokens[-1].term == "queried"
        assert tokens[-1].position == 6

    def test_min_length_filter(self):
        analyzer = Analyzer(min_length=3)
        assert analyzer.terms("a bb ccc dddd") == ["ccc", "dddd"]

    def test_max_length_filter(self):
        analyzer = Analyzer(max_length=4)
        assert analyzer.terms("tiny enormousword") == ["tiny"]


class TestIndexWrites:
    def test_add_and_contains(self, index):
        assert "d1" in index
        assert index.document_count == 4

    def test_remove(self, index):
        assert index.remove("d1")
        assert "d1" not in index
        assert Term("art").docs(index) == set()

    def test_remove_missing_returns_false(self, index):
        assert not index.remove("ghost")

    def test_readd_replaces(self, index):
        index.add("d1", "entirely new words")
        assert search(index, "entirely") == {"d1"}
        assert search(index, "art") == set()

    def test_empty_postings_pruned(self):
        idx = InvertedIndex()
        idx.add("only", "solitary")
        idx.remove("only")
        assert idx.term_count == 0

    def test_doc_length_tracked(self, index):
        # "Database tuning is an art. Database systems rule." -> 8 tokens
        assert index.doc_length(index.doc_of("d1")) == 8


class TestQueries:
    def test_term(self, index):
        assert search(index, "database") == {"d1", "d2"}

    def test_term_case_insensitive(self, index):
        assert Term("DATABASE").docs(index) == Term("database").docs(index)

    def test_unknown_term_empty(self, index):
        assert search(index, "xyzzy") == set()

    def test_phrase(self, index):
        assert search(index, '"database tuning"') == {"d1"}

    def test_phrase_requires_adjacency(self, index):
        # d3 has "tuning" and "indexing" but not adjacent in this order
        assert search(index, '"tuning indexing"') == set()
        assert search(index, '"tuning and indexing"') == {"d3"}

    def test_phrase_subset_of_and(self, index):
        phrase = Phrase.of("database tuning").docs(index)
        conjunction = And((Term("database"), Term("tuning"))).docs(index)
        assert phrase <= conjunction

    def test_and(self, index):
        assert search(index, "database and tuning") == {"d1"}

    def test_juxtaposition_is_and(self, index):
        assert search(index, "database tuning") == {"d1"}

    def test_or(self, index):
        assert search(index, "cooking or guitar") == {"d3", "d4"}

    def test_not(self, index):
        assert search(index, "not database") == {"d3", "d4"}

    def test_parens(self, index):
        result = search(index, "(database or guitar) and tuning")
        assert result == {"d1", "d3"}

    def test_wildcard_prefix(self, index):
        assert search(index, "index*") == {"d3"}

    def test_wildcard_question(self, index):
        assert Wildcard("d?ta").docs(index) == Term("data").docs(index)

    def test_match_all(self, index):
        assert len(MatchAll().docs(index)) == 4

    def test_empty_query_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("   ")

    def test_unbalanced_paren_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("(a or b")

    def test_multiword_term_becomes_phrase(self, index):
        # Term("database tuning") analyzes to two tokens -> phrase
        assert Term("database tuning").docs(index) == {
            index.doc_of("d1")
        }


class TestScoring:
    def test_ranked_by_relevance(self, index):
        ranked = score_tfidf(index, "database tuning")
        assert ranked[0][0] == "d1"  # contains both terms, twice

    def test_scores_positive_and_sorted(self, index):
        ranked = score_tfidf(index, "database")
        scores = [s for _, s in ranked]
        assert all(s > 0 for s in scores)
        assert scores == sorted(scores, reverse=True)

    def test_limit(self, index):
        assert len(score_tfidf(index, "database", limit=1)) == 1

    def test_empty_index(self):
        assert score_tfidf(InvertedIndex(), "term") == []

    def test_score_query_filters_then_ranks(self, index):
        ranked = score_query(index, Term("tuning"), "tuning")
        assert {key for key, _ in ranked} == {"d1", "d3"}


class TestReplicaBehavior:
    def test_non_replica_cannot_return_text(self, index):
        with pytest.raises(FullTextError):
            index.stored_text("d1")

    def test_replica_returns_text(self):
        idx = InvertedIndex(store_text=True)
        idx.add("k", "Original Name")
        assert idx.stored_text("k") == "Original Name"

    def test_stored_items_iterates(self):
        idx = InvertedIndex(store_text=True)
        idx.add("a", "x")
        idx.add("b", "y")
        assert dict(idx.stored_items()) == {"a": "x", "b": "y"}

    def test_stored_items_requires_replica(self, index):
        with pytest.raises(FullTextError):
            list(index.stored_items())


class TestSizeAccounting:
    def test_sizes_grow_with_content(self):
        idx = InvertedIndex()
        idx.add("a", "one two three")
        small = idx.size_bytes()
        idx.add("b", "four five six seven eight nine ten" * 10)
        assert idx.size_bytes() > small

    def test_input_bytes_accumulate(self):
        idx = InvertedIndex()
        idx.add("a", "abcd")
        assert idx.total_input_bytes == 4

    def test_stats_shape(self, index):
        stats = index.stats()
        assert stats.name == "fulltext"
        assert stats.entries == index.document_count
        assert stats.bytes_estimate == index.size_bytes()
        assert stats.detail["terms"] == index.term_count
        assert stats.detail["input_bytes"] == index.total_input_bytes
        assert set(stats.as_dict()) == {
            "name", "entries", "bytes_estimate", "terms", "input_bytes"
        }
