"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.dataset import TINY_PROFILE, PersonalDataspaceGenerator
from repro.facade import Dataspace
from repro.imapsim.latency import no_latency


@pytest.fixture(scope="session")
def tiny_dataspace() -> Dataspace:
    """One synced tiny dataspace shared by read-only integration tests."""
    dataspace = Dataspace.generate(profile=TINY_PROFILE, seed=7,
                                   imap_latency=no_latency())
    dataspace.sync()
    return dataspace


@pytest.fixture()
def generated_tiny():
    """A fresh (unsynced) generated dataspace for mutation tests."""
    return PersonalDataspaceGenerator(
        TINY_PROFILE, seed=11, imap_latency=no_latency()
    ).generate()
