"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import pytest
from hypothesis import settings

from repro.dataset import TINY_PROFILE, PersonalDataspaceGenerator
from repro.facade import Dataspace
from repro.imapsim.latency import no_latency

# Reproducible property testing: the "ci" profile derandomizes example
# generation (a fixed seed derived from each test), so a CI failure
# replays locally with HYPOTHESIS_PROFILE=ci.
settings.register_profile("ci", deadline=None, derandomize=True,
                          print_blob=True)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


@pytest.fixture(scope="session")
def tiny_dataspace() -> Dataspace:
    """One synced tiny dataspace shared by read-only integration tests."""
    dataspace = Dataspace.generate(profile=TINY_PROFILE, seed=7,
                                   imap_latency=no_latency())
    dataspace.sync()
    return dataspace


@pytest.fixture()
def generated_tiny():
    """A fresh (unsynced) generated dataspace for mutation tests."""
    return PersonalDataspaceGenerator(
        TINY_PROFILE, seed=11, imap_latency=no_latency()
    ).generate()
