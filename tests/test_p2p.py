"""Tests for P2P federation across dataspaces."""

import pytest

from repro.facade import Dataspace
from repro.imapsim.latency import LatencyModel, no_latency
from repro.p2p import Peer, PeerNetwork
from repro.p2p.network import PeerError
from repro.vfs import VirtualFileSystem


def _dataspace(files: dict[str, str]) -> Dataspace:
    fs = VirtualFileSystem()
    for path, content in files.items():
        fs.write_file(path, content, parents=True)
    dataspace = Dataspace(vfs=fs)
    dataspace.sync()
    return dataspace


@pytest.fixture()
def network():
    network = PeerNetwork()
    network.join("laptop", _dataspace({
        "/docs/draft.tex": r"\begin{document}\section{Shared}laptop copy"
                           r" about databases\end{document}",
        "/docs/local.txt": "only on the laptop, kumquat notes",
    }))
    network.join("desktop", _dataspace({
        "/docs/draft.tex": r"\begin{document}\section{Shared}desktop copy"
                           r" about databases\end{document}",
        "/music/playlist.txt": "desktop only, durian tracks",
    }))
    return network


class TestMembership:
    def test_peers_listed(self, network):
        assert network.peers() == ["desktop", "laptop"]

    def test_duplicate_name_rejected(self, network):
        with pytest.raises(PeerError):
            network.join("laptop", _dataspace({}))

    def test_bad_name_rejected(self):
        with pytest.raises(PeerError):
            Peer("a!b", _dataspace({}))

    def test_leave(self, network):
        network.leave("desktop")
        assert network.peers() == ["laptop"]
        with pytest.raises(PeerError):
            network.leave("desktop")

    def test_unknown_peer_lookup(self, network):
        with pytest.raises(PeerError):
            network.peer("server")


class TestFederatedQueries:
    def test_union_across_peers(self, network):
        result = network.query('"databases"')
        peers_seen = {hit.peer for hit in result.hits}
        assert peers_seen == {"desktop", "laptop"}

    def test_provenance_preserved(self, network):
        result = network.query('"kumquat"')
        assert len(result) == 1
        assert result.hits[0].peer == "laptop"
        assert result.hits[0].global_uri.startswith("laptop!fs://")

    def test_peer_subset(self, network):
        result = network.query('"databases"', peers=["desktop"])
        assert result.peers_asked == ("desktop",)
        assert {hit.peer for hit in result.hits} == {"desktop"}

    def test_unknown_peer_in_subset(self, network):
        with pytest.raises(PeerError):
            network.query('"x"', peers=["ghost"])

    def test_same_local_uri_on_two_peers_both_kept(self, network):
        result = network.query("//draft.tex")
        # both peers hold /docs/draft.tex — the federation keeps both,
        # distinguished by the peer tag
        uris = [hit.global_uri for hit in result.hits]
        assert len(uris) == 2
        assert len(set(uris)) == 2

    def test_by_peer_counts(self, network):
        result = network.query('"databases"')
        counts = result.by_peer()
        assert set(counts) == {"desktop", "laptop"}
        assert sum(counts.values()) == len(result)

    def test_structural_queries_federate(self, network):
        result = network.query('//docs//Shared[class="latex_section"]')
        assert len(result) == 2

    def test_join_queries_run_per_peer(self, network):
        result = network.query(
            'join( //docs//*.tex as A, //docs//*.tex as B, A.name = B.name )'
        )
        peers = {peer for peer, _ in result.join_pairs}
        assert peers == {"desktop", "laptop"}

    def test_empty_result(self, network):
        assert len(network.query('"zzznothing"')) == 0


class TestFederatedSearch:
    def test_merged_by_score(self, network):
        hits = network.search("databases", limit=10)
        assert hits
        peers_seen = {hit.peer for hit in hits}
        assert peers_seen == {"desktop", "laptop"}

    def test_limit_applies_to_merge(self, network):
        assert len(network.search("databases", limit=1)) == 1


class TestLatencyAccounting:
    def test_remote_peer_costs(self):
        network = PeerNetwork()
        network.join("local", _dataspace({"/a.txt": "needle here"}),
                     latency=no_latency())
        network.join("remote", _dataspace({"/b.txt": "needle there"}),
                     latency=LatencyModel(connect=0, per_operation=0.05,
                                          per_kilobyte=0.01))
        result = network.query('"needle"')
        assert result.simulated_seconds > 0
        local_only = network.query('"needle"', peers=["local"])
        assert local_only.simulated_seconds == 0
