"""Recovery rebuilds the URI dictionary: ids are derived state.

The dictionary is never persisted (DESIGN.md §4h) — snapshot load and
WAL replay re-register every view through the catalog, which re-interns
every URI. These tests prove the contract end to end: a recovered
dataspace answers through genuine integer batches, identically to both
the pre-close answers and the string-based reference oracle.
"""

from array import array

import pytest

from repro.durability import DurabilityConfig, verify_engine_matches_oracle
from repro.facade import Dataspace
from repro.dataset import TINY_PROFILE
from repro.imapsim.latency import no_latency
from repro.rvm.uridict import global_uri_dictionary

SPOT_QUERIES = [
    '"database"',
    '//*[class = "emailmessage"]',
    '[size > 1000]',
    'not "database"',
    '"the" and "paper"',
]


@pytest.fixture(scope="module")
def recovered(tmp_path_factory):
    """(pre-close answers, reopened dataspace) across a clean shutdown."""
    directory = tmp_path_factory.mktemp("dict-durable") / "space"
    config = DurabilityConfig(directory=directory, fsync="off")
    dataspace = Dataspace.generate(profile=TINY_PROFILE, seed=13,
                                   imap_latency=no_latency(),
                                   durability=config)
    dataspace.sync()
    answers = {q: set(dataspace.query(q).uris()) for q in SPOT_QUERIES}
    dataspace.checkpoint()
    dataspace.close()
    return answers, Dataspace.open(directory, durable=False)


class TestDictionaryRecovery:
    def test_recovered_catalog_is_fully_interned(self, recovered):
        """Every recovered URI has a dictionary id without any query
        having run — recovery itself rebuilds the mapping."""
        _, dataspace = recovered
        dictionary = global_uri_dictionary()
        uris = dataspace.rvm.catalog.all_uris()
        assert uris
        assert all(uri in dictionary for uri in uris)

    def test_recovered_dataspace_answers_identically(self, recovered):
        answers, dataspace = recovered
        for query, expected in answers.items():
            assert set(dataspace.query(query).uris()) == expected, query

    def test_recovered_answers_flow_through_integer_batches(self, recovered):
        """The equality above must come from the dictionary path, not a
        string fallback: result batches carry int64 key columns."""
        _, dataspace = recovered
        result = dataspace.query('"database"')
        assert result.batches
        for batch in result.batches:
            assert isinstance(batch.keys, array)
            assert batch.keys.typecode == "q"
            assert batch.view is not None
            assert batch.uris == batch.view.uris_for(batch.keys)

    def test_engine_matches_oracle_after_recovery(self, recovered):
        _, dataspace = recovered
        report = verify_engine_matches_oracle(dataspace, seed=13, count=40)
        assert report.ok, report.mismatches
