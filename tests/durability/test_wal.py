"""Unit tests for the segmented write-ahead log.

Torn tails, CRC corruption, segment rotation, truncation and the fsync
policies — everything the WAL promises about surviving ill-timed
crashes, exercised by damaging real segment files.
"""

import struct

import pytest

from repro.core.errors import DurabilityError
from repro.durability.wal import (
    FRAME_HEADER,
    FSYNC_POLICIES,
    WriteAheadLog,
    _first_lsn_of,
    _segment_name,
)


def unit(i):
    """A distinguishable single-record commit unit."""
    return [{"t": "name", "uri": f"fs:///f{i}", "name": f"file-{i}"}]


def replayed(wal, *, after_lsn=0):
    return list(wal.replay(after_lsn=after_lsn))


class TestAppendReplay:
    def test_lsns_are_monotonic_from_one(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync="off") as wal:
            assert wal.last_lsn == 0
            assert [wal.append(unit(i)) for i in range(5)] == [1, 2, 3, 4, 5]
            assert wal.last_lsn == 5

    def test_replay_round_trips_payloads(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync="off") as wal:
            for i in range(4):
                wal.append(unit(i))
            frames = replayed(wal)
        assert [lsn for lsn, _ in frames] == [1, 2, 3, 4]
        assert frames[2][1] == {"r": unit(2)}

    def test_replay_after_lsn_skips_prefix(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync="off") as wal:
            for i in range(6):
                wal.append(unit(i))
            assert [lsn for lsn, _ in replayed(wal, after_lsn=4)] == [5, 6]

    def test_reopen_continues_lsn_sequence(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync="off") as wal:
            wal.append(unit(0))
            wal.append(unit(1))
        with WriteAheadLog(tmp_path, fsync="off") as wal:
            assert wal.last_lsn == 2
            assert wal.append(unit(2)) == 3
            assert [lsn for lsn, _ in replayed(wal)] == [1, 2, 3]

    def test_append_after_close_raises(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="off")
        wal.close()
        with pytest.raises(DurabilityError):
            wal.append(unit(0))


class TestRotation:
    def test_segments_rotate_at_threshold(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync="off",
                           segment_max_bytes=256) as wal:
            for i in range(20):
                wal.append(unit(i))
            segments = wal._segments()
            assert len(segments) > 1
            assert wal.rotations == len(segments) - 1
            # each segment is named after its first frame's LSN
            firsts = [_first_lsn_of(p) for p in segments]
            assert firsts == sorted(firsts) and firsts[0] == 1
            assert [lsn for lsn, _ in replayed(wal)] == list(range(1, 21))

    def test_reopen_lands_in_last_segment(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync="off",
                           segment_max_bytes=256) as wal:
            for i in range(20):
                wal.append(unit(i))
        with WriteAheadLog(tmp_path, fsync="off",
                           segment_max_bytes=256) as wal:
            assert wal.last_lsn == 20
            wal.append(unit(20))
            assert [lsn for lsn, _ in replayed(wal)] == list(range(1, 22))


class TestTornTail:
    def test_partial_frame_is_truncated_on_open(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync="off") as wal:
            for i in range(3):
                wal.append(unit(i))
            tail = wal._segments()[-1]
        # simulate a crash mid-append: half a frame header at the end
        with tail.open("ab") as handle:
            handle.write(b"\x07\x00\x00")
        with WriteAheadLog(tmp_path, fsync="off") as wal:
            assert wal.last_lsn == 3
            assert wal.append(unit(3)) == 4
            assert [lsn for lsn, _ in replayed(wal)] == [1, 2, 3, 4]

    def test_crc_corrupt_final_frame_is_dropped(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync="off") as wal:
            offsets = []
            for i in range(3):
                wal.append(unit(i))
                offsets.append(wal._handle.tell())
            tail = wal._segments()[-1]
        # flip one payload byte of the last frame
        with tail.open("r+b") as handle:
            handle.seek(offsets[1] + FRAME_HEADER.size + 5)
            byte = handle.read(1)
            handle.seek(-1, 1)
            handle.write(bytes([byte[0] ^ 0xFF]))
        with WriteAheadLog(tmp_path, fsync="off") as wal:
            assert wal.last_lsn == 2          # frame 3 fell to the CRC
            assert [lsn for lsn, _ in replayed(wal)] == [1, 2]

    def test_absurd_length_field_is_a_torn_tail(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync="off") as wal:
            wal.append(unit(0))
            tail = wal._segments()[-1]
        with tail.open("ab") as handle:
            handle.write(FRAME_HEADER.pack(2, 2**31, 0))
        with WriteAheadLog(tmp_path, fsync="off") as wal:
            assert wal.last_lsn == 1

    def test_corruption_in_non_final_segment_raises(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync="off",
                           segment_max_bytes=256) as wal:
            for i in range(20):
                wal.append(unit(i))
            first = wal._segments()[0]
        # damage an *early* segment: intact frames provably follow, so
        # replay must refuse rather than silently lose them
        data = bytearray(first.read_bytes())
        data[FRAME_HEADER.size + 4] ^= 0xFF
        first.write_bytes(bytes(data))
        with WriteAheadLog(tmp_path, fsync="off",
                           segment_max_bytes=256) as wal:
            with pytest.raises(DurabilityError):
                replayed(wal)

    def test_empty_directory_opens_clean(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync="off") as wal:
            assert wal.last_lsn == 0
            assert replayed(wal) == []


class TestTruncation:
    def test_covered_segments_are_deleted(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync="off",
                           segment_max_bytes=256) as wal:
            for i in range(20):
                wal.append(unit(i))
            before = wal._segments()
            assert len(before) > 2
            cut = _first_lsn_of(before[-1]) - 1   # everything before tail
            removed = wal.truncate_through(cut)
            assert removed == len(before) - 1
            assert [lsn for lsn, _ in replayed(wal)] \
                == list(range(cut + 1, 21))

    def test_active_tail_always_survives(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync="off") as wal:
            for i in range(5):
                wal.append(unit(i))
            assert wal.truncate_through(wal.last_lsn) == 0
            assert len(wal._segments()) == 1
            wal.append(unit(5))
            assert [lsn for lsn, _ in replayed(wal)] == list(range(1, 7))

    def test_partial_coverage_keeps_segment(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync="off",
                           segment_max_bytes=256) as wal:
            for i in range(20):
                wal.append(unit(i))
            second_first = _first_lsn_of(wal._segments()[1])
            # lsn inside the second segment: only the first is covered
            assert wal.truncate_through(second_first) == 1
            assert [lsn for lsn, _ in replayed(wal)] \
                == list(range(second_first, 21))


class TestFsyncPolicies:
    def test_unknown_policy_rejected(self, tmp_path):
        with pytest.raises(DurabilityError):
            WriteAheadLog(tmp_path, fsync="sometimes")

    def test_always_fsyncs_every_append(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync="always") as wal:
            for i in range(5):
                wal.append(unit(i))
            assert wal.fsyncs == 5

    def test_off_never_fsyncs_until_forced(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync="off") as wal:
            for i in range(5):
                wal.append(unit(i))
            assert wal.fsyncs == 0
            wal.sync()
            assert wal.fsyncs == 1

    def test_interval_bounds_fsync_rate(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync="interval",
                           fsync_interval_seconds=3600.0) as wal:
            for i in range(50):
                wal.append(unit(i))
            assert wal.fsyncs <= 1

    def test_policies_tuple_is_exhaustive(self, tmp_path):
        for policy in FSYNC_POLICIES:
            WriteAheadLog(tmp_path / policy, fsync=policy).close()


class TestFraming:
    def test_header_layout_is_stable(self):
        # the on-disk format: little-endian u64 lsn, u32 length, u32 crc
        assert FRAME_HEADER.size == 16
        assert FRAME_HEADER.pack(1, 2, 3) == struct.pack("<QII", 1, 2, 3)

    def test_segment_names_sort_with_lsns(self):
        names = [_segment_name(lsn) for lsn in (1, 9, 10, 11, 100, 10**15)]
        assert names == sorted(names)
        assert all(_first_lsn_of(__import__("pathlib").Path(n)) == lsn
                   for n, lsn in zip(names, (1, 9, 10, 11, 100, 10**15)))
