"""Checkpoints, recovery, and the durable Dataspace surface.

The scenarios a durability layer lives for: reopen after clean close,
reopen with a WAL tail past the checkpoint, checkpoint garbage
collection, policy pinning, and the engine ≡ oracle check on recovered
state.
"""

import json

import pytest

from repro.core.errors import DurabilityError
from repro.dataset import TINY_PROFILE
from repro.durability import (
    DurabilityConfig,
    DurabilityManager,
    latest_checkpoint,
    load_config,
    policy_from_config,
    standard_queries,
    verify_engine_matches_oracle,
)
from repro.durability.checkpoint import POINTER_NAME, checkpoint_path
from repro.facade import Dataspace
from repro.imapsim.latency import no_latency
from repro.rvm.indexes import IndexingPolicy


def durable_tiny(directory, **kwargs):
    config = DurabilityConfig(directory=directory, fsync="off")
    return Dataspace.generate(profile=TINY_PROFILE, seed=7,
                              imap_latency=no_latency(),
                              durability=config, **kwargs)


@pytest.fixture(scope="module")
def checkpointed(tmp_path_factory):
    """A synced + checkpointed durable dataspace (left open, module-wide)."""
    directory = tmp_path_factory.mktemp("durable") / "space"
    dataspace = durable_tiny(directory)
    dataspace.sync()
    info = dataspace.checkpoint()
    return dataspace, directory, info


SPOT_QUERIES = [
    '"database"',
    '//*[class = "emailmessage"]',
    '[size > 1000]',
]


class TestCheckpoint:
    def test_checkpoint_records_wal_position(self, checkpointed):
        dataspace, directory, info = checkpointed
        assert info.lsn == dataspace.durability.wal.last_lsn
        assert info.manifest["wal_lsn"] == info.lsn
        assert (info.path / "manifest.json").exists()

    def test_pointer_names_the_checkpoint(self, checkpointed):
        _, directory, info = checkpointed
        assert int((directory / POINTER_NAME).read_text()) == info.lsn
        assert latest_checkpoint(directory) == (info.lsn, info.path)

    def test_requires_durability_manager(self):
        dataspace = Dataspace()
        with pytest.raises(DurabilityError):
            dataspace.checkpoint()

    def test_config_pins_indexing_policy(self, checkpointed):
        _, directory, _ = checkpointed
        config = load_config(directory)
        assert config["policy"]["index_content"] is True
        assert policy_from_config(config) == IndexingPolicy()

    def test_garbage_collection_keeps_newest(self, tmp_path):
        dataspace = durable_tiny(tmp_path / "space")
        dataspace.sync()
        manager = dataspace.durability
        infos = []
        for i in range(4):
            # one tiny mutation between checkpoints so LSNs advance
            manager.wal.append([{"t": "name", "uri": f"fs:///x{i}",
                                 "name": f"x{i}"}])
            infos.append(dataspace.checkpoint())
        survivors = sorted(tmp_path.glob("space/checkpoint-*"))
        assert len(survivors) == manager.checkpointer.keep
        assert checkpoint_path(manager.directory, infos[-1].lsn) in survivors
        dataspace.close()


class TestRecovery:
    def test_reopen_answers_queries_identically(self, checkpointed):
        dataspace, directory, _ = checkpointed
        reopened = Dataspace.open(directory, durable=False)
        for iql in SPOT_QUERIES:
            assert set(reopened.query(iql).uris()) \
                == set(dataspace.query(iql).uris()), iql
        assert reopened.index_sizes() == dataspace.index_sizes()

    def test_recovery_report_shape(self, checkpointed):
        dataspace, directory, info = checkpointed
        reopened = Dataspace.open(directory, durable=False)
        report = reopened.last_recovery
        assert report.from_checkpoint
        assert report.checkpoint_lsn == info.lsn
        assert report.views == dataspace.view_count
        assert "recovered" in report.summary()

    def test_wal_tail_past_checkpoint_replays(self, tmp_path):
        dataspace = durable_tiny(tmp_path / "space")
        dataspace.sync()
        dataspace.checkpoint()
        # mutate *after* the checkpoint: delete one indexed file
        victim = next(r.uri for r in dataspace.rvm.catalog.all_records()
                      if r.uri.startswith("fs://")
                      and r.class_name == "file")
        path = victim[len("fs://"):]
        dataspace.vfs.delete(path)
        dataspace.watch()
        dataspace.refresh()
        assert dataspace.rvm.catalog.get(victim) is None
        dataspace.close()

        reopened = Dataspace.open(tmp_path / "space", durable=False)
        assert reopened.last_recovery.frames_replayed > 0
        assert reopened.rvm.catalog.get(victim) is None
        assert reopened.view_count == dataspace.view_count

    def test_recovery_without_checkpoint_is_wal_only(self, tmp_path):
        dataspace = durable_tiny(tmp_path / "space")
        dataspace.sync()
        dataspace.close()
        reopened = Dataspace.open(tmp_path / "space", durable=False)
        assert not reopened.last_recovery.from_checkpoint
        assert reopened.view_count == dataspace.view_count
        assert set(reopened.query('"database"').uris()) \
            == set(dataspace.query('"database"').uris())

    def test_durable_reopen_appends_at_recovered_tail(self, tmp_path):
        dataspace = durable_tiny(tmp_path / "space")
        dataspace.sync()
        tail = dataspace.durability.wal.last_lsn
        dataspace.close()
        with Dataspace.open(tmp_path / "space") as reopened:
            assert reopened.durability.wal.last_lsn == tail
            lsn = reopened.durability.wal.append(
                [{"t": "name", "uri": "fs:///new", "name": "new"}])
            assert lsn == tail + 1

    def test_policy_mismatch_refused(self, tmp_path):
        dataspace = durable_tiny(tmp_path / "space")
        dataspace.sync()
        dataspace.close()
        with pytest.raises(DurabilityError, match="policy"):
            DurabilityManager(
                Dataspace(policy=IndexingPolicy(index_content=False)).rvm,
                DurabilityConfig(directory=tmp_path / "space"),
            )

    def test_unreadable_pointer_raises(self, tmp_path):
        dataspace = durable_tiny(tmp_path / "space")
        dataspace.sync()
        dataspace.checkpoint()
        dataspace.close()
        (tmp_path / "space" / POINTER_NAME).write_text("not-a-number\n")
        with pytest.raises(DurabilityError):
            latest_checkpoint(tmp_path / "space")

    def test_stale_pointer_falls_back_to_scan(self, checkpointed):
        _, directory, info = checkpointed
        pointer = directory / POINTER_NAME
        original = pointer.read_text()
        try:
            # a crash between snapshot and pointer update leaves the
            # pointer naming a checkpoint that never materialized
            pointer.write_text(f"{info.lsn + 999}\n")
            assert latest_checkpoint(directory) == (info.lsn, info.path)
        finally:
            pointer.write_text(original)


class TestVerifyHarness:
    def test_generated_queries_are_deterministic(self):
        assert standard_queries(12, seed=3) == standard_queries(12, seed=3)
        assert standard_queries(12, seed=3) != standard_queries(12, seed=4)

    def test_recovered_engine_matches_oracle(self, checkpointed):
        _, directory, _ = checkpointed
        reopened = Dataspace.open(directory, durable=False)
        report = verify_engine_matches_oracle(reopened, count=15)
        assert report.ok, report.mismatches
        assert report.checked == 15
        assert "engine" in report.summary()


class TestDurabilityOverhead:
    def test_wal_covers_every_indexed_view(self, checkpointed):
        dataspace, _, _ = checkpointed
        assert dataspace.durability.wal.appends >= dataspace.view_count

    def test_config_json_round_trips(self, tmp_path):
        dataspace = durable_tiny(tmp_path / "space")
        raw = json.loads((tmp_path / "space" / "config.json").read_text())
        assert raw["config_version"] == 1
        assert set(raw["policy"]) == {
            "index_names", "index_content", "index_tuples",
            "replicate_groups", "index_media",
        }
        dataspace.close()
