"""Crash recovery: SIGKILL a child mid-sync, recover, verify the engine.

The child process (:mod:`repro.durability.crashchild`) builds a durable
dataspace with ``fsync="always"`` and arms the WAL's crash hook, which
delivers a real ``SIGKILL`` after N appends — no flush, no cleanup,
exactly a power failure. The parent recovers the torn directory and
pins the recovered state two ways:

* every recovered structure agrees with the WAL's record of it
  (frame-by-frame replay into a second RVM gives identical indexes);
* the batched query engine ≡ the set-at-a-time reference oracle on a
  deterministic generated query suite over the recovered state.

``REPRO_CRASH_SEED`` selects the generator-seed/kill-point pair, so CI
can sweep several crash landings without test-code changes.
"""

import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.durability import (
    recover_state,
    verify_engine_matches_oracle,
)
from repro.facade import Dataspace

#: seed → (dataset seed, kill after N WAL appends): three different
#: crash landings — early in the fs scan, mid-scan, and deep enough to
#: reach the imap source.
CRASH_PROFILES = {
    0: (7, 60),
    1: (11, 300),
    2: (23, 900),
}

SEED, KILL_AFTER = CRASH_PROFILES[
    int(os.environ.get("REPRO_CRASH_SEED", "0")) % len(CRASH_PROFILES)
]


def crash_child(directory: Path) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.durability.crashchild",
         str(directory), "--seed", str(SEED),
         "--kill-after", str(KILL_AFTER)],
        capture_output=True, text=True, timeout=300, env=env,
    )


@pytest.fixture(scope="module")
def torn_directory(tmp_path_factory):
    """A durability directory torn by a real SIGKILL mid-``sync_all``."""
    directory = tmp_path_factory.mktemp("crash") / "space"
    result = crash_child(directory)
    # the hook must have fired: SIGKILL, not a clean exit
    assert result.returncode == -signal.SIGKILL, (
        f"child survived (rc={result.returncode}): "
        f"{result.stdout}\n{result.stderr}"
    )
    assert "SURVIVED" not in result.stdout
    return directory


class TestCrashRecovery:
    def test_recovery_replays_every_acknowledged_frame(self, torn_directory):
        dataspace = Dataspace.open(torn_directory, durable=False)
        report = dataspace.last_recovery
        # fsync="always": every appended frame survived the SIGKILL
        assert report.frames_replayed == KILL_AFTER
        assert report.views > 0

    def test_recovered_state_is_replay_consistent(self, torn_directory):
        # two independent recoveries agree byte for byte
        first = Dataspace.open(torn_directory, durable=False)
        second = Dataspace.open(torn_directory, durable=False)
        assert first.view_count == second.view_count
        assert first.index_sizes() == second.index_sizes()
        assert sorted(r.uri for r in first.rvm.catalog.all_records()) \
            == sorted(r.uri for r in second.rvm.catalog.all_records())

    def test_engine_matches_oracle_on_recovered_state(self, torn_directory):
        dataspace = Dataspace.open(torn_directory, durable=False)
        report = verify_engine_matches_oracle(dataspace, seed=SEED,
                                              count=25)
        assert report.ok, report.mismatches

    def test_recovered_directory_reopens_durable(self, torn_directory):
        # recovery is not one-shot: the directory stays writable
        with Dataspace.open(torn_directory) as dataspace:
            assert dataspace.durability.wal.last_lsn \
                >= dataspace.last_recovery.last_lsn
            info = dataspace.checkpoint()
            assert info.lsn == dataspace.durability.wal.last_lsn
        # and a third recovery now starts from that checkpoint
        final = Dataspace.open(torn_directory, durable=False)
        assert final.last_recovery.from_checkpoint
        assert final.view_count == dataspace.view_count

    def test_double_crash_recovers_once_more(self, torn_directory,
                                             tmp_path):
        # recover_state into a plain RVM, no facade, as a second angle
        from repro.rvm import ResourceViewManager
        rvm = ResourceViewManager()
        report = recover_state(torn_directory, rvm)
        assert len(rvm.catalog) == report.views
