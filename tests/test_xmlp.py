"""Tests for the from-scratch XML parser and writer."""

import pytest

from repro.core.errors import XmlParseError
from repro.xmlp import (
    XmlComment,
    XmlElement,
    XmlPI,
    XmlText,
    parse,
    serialize,
)


class TestBasicParsing:
    def test_single_element(self):
        doc = parse("<a/>")
        assert doc.root.name == "a"
        assert doc.root.children == []

    def test_nested_elements(self):
        doc = parse("<a><b><c/></b></a>")
        assert [e.name for e in doc.iter()] == ["a", "b", "c"]

    def test_text_content(self):
        doc = parse("<a>hello</a>")
        assert doc.root.text() == "hello"

    def test_mixed_content_order(self):
        doc = parse("<a>x<b>y</b>z</a>")
        assert doc.root.text() == "xyz"

    def test_attributes(self):
        doc = parse('<a x="1" y=\'two\'/>')
        assert doc.root.attributes == {"x": "1", "y": "two"}

    def test_xml_declaration(self):
        doc = parse('<?xml version="1.0" encoding="utf-8"?><a/>')
        assert doc.declaration == {"version": "1.0", "encoding": "utf-8"}

    def test_no_declaration(self):
        assert parse("<a/>").declaration is None

    def test_comment_preserved(self):
        doc = parse("<a><!-- note --></a>")
        assert isinstance(doc.root.children[0], XmlComment)

    def test_prolog_comment(self):
        doc = parse("<!-- head --><a/>")
        assert isinstance(doc.prolog[0], XmlComment)

    def test_processing_instruction(self):
        doc = parse('<a><?style x="y"?></a>')
        pi = doc.root.children[0]
        assert isinstance(pi, XmlPI)
        assert pi.target == "style"

    def test_cdata_is_raw_text(self):
        doc = parse("<a><![CDATA[<raw> & stuff]]></a>")
        assert doc.root.text() == "<raw> & stuff"

    def test_doctype_skipped(self):
        doc = parse('<!DOCTYPE html><a/>')
        assert doc.root.name == "a"

    def test_namespace_prefixes_kept_verbatim(self):
        doc = parse('<ns:a xmlns:ns="urn:x"><ns:b/></ns:a>')
        assert doc.root.name == "ns:a"
        assert doc.root.attributes["xmlns:ns"] == "urn:x"


class TestEntities:
    def test_predefined_entities(self):
        doc = parse("<a>&lt;&gt;&amp;&apos;&quot;</a>")
        assert doc.root.text() == "<>&'\""

    def test_decimal_charref(self):
        assert parse("<a>&#65;</a>").root.text() == "A"

    def test_hex_charref(self):
        assert parse("<a>&#x41;</a>").root.text() == "A"

    def test_entities_in_attributes(self):
        doc = parse('<a x="1 &amp; 2"/>')
        assert doc.root.attributes["x"] == "1 & 2"

    def test_unknown_entity_rejected(self):
        with pytest.raises(XmlParseError):
            parse("<a>&nbsp;</a>")

    def test_unterminated_entity_rejected(self):
        with pytest.raises(XmlParseError):
            parse("<a>&amp</a>")


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "",                      # no root
        "<a>",                   # missing end tag
        "<a></b>",               # mismatched end tag
        "<a><b></a></b>",        # crossed nesting
        "<a/><b/>",              # two roots
        "text only",             # content outside root
        '<a x="1" x="2"/>',      # duplicate attribute
        '<a x=1/>',              # unquoted attribute
        "<a><!-- -- --></a>",    # double dash in comment
        '<a x="<"/>',            # < in attribute value
        "<1tag/>",               # bad name start
    ])
    def test_rejected(self, bad):
        with pytest.raises(XmlParseError):
            parse(bad)

    def test_error_carries_location(self):
        try:
            parse("<a>\n<b></c></a>")
        except XmlParseError as error:
            assert error.line == 2
        else:  # pragma: no cover
            pytest.fail("expected XmlParseError")


class TestNavigation:
    def test_find_first_child(self):
        doc = parse("<a><b i='1'/><b i='2'/></a>")
        assert doc.root.find("b").attributes["i"] == "1"

    def test_find_missing_is_none(self):
        assert parse("<a/>").root.find("b") is None

    def test_find_all(self):
        doc = parse("<a><b/><c/><b/></a>")
        assert len(doc.root.find_all("b")) == 2

    def test_child_elements_skips_text(self):
        doc = parse("<a>t<b/>t</a>")
        assert [e.name for e in doc.root.child_elements()] == ["b"]


class TestSerialization:
    def test_roundtrip_simple(self):
        source = '<a x="1"><b>text</b><c/></a>'
        assert serialize(parse(source)) == source

    def test_roundtrip_escapes(self):
        doc = parse("<a>&lt;tag&gt; &amp; more</a>")
        again = parse(serialize(doc))
        assert again.root.text() == "<tag> & more"

    def test_attribute_quote_escaped(self):
        element = XmlElement("a", attributes={"x": 'say "hi"'})
        assert "&quot;" in serialize(element)

    def test_declaration_flag(self):
        doc = parse("<a/>")
        assert serialize(doc, declaration=True).startswith("<?xml")

    def test_self_closing_for_empty(self):
        assert serialize(XmlElement("a")) == "<a/>"

    def test_text_node(self):
        assert serialize(XmlText("a<b")) == "a&lt;b"

    def test_double_roundtrip_stable(self):
        source = ('<doc a="1&amp;2"><!--c--><x>one&#65;two</x>'
                  "<y><![CDATA[z]]></y></doc>")
        once = serialize(parse(source))
        twice = serialize(parse(once))
        assert once == twice
