"""Tests for the virtual filesystem substrate."""

import pytest

from repro.core.errors import VfsError
from repro.vfs import (
    FsEvent,
    FsEventKind,
    LogicalClock,
    VirtualFileSystem,
)


@pytest.fixture()
def fs():
    fs = VirtualFileSystem()
    fs.mkdir("/Projects/PIM", parents=True)
    fs.write_file("/Projects/PIM/paper.tex", "content here")
    return fs


class TestClock:
    def test_strictly_increasing(self):
        clock = LogicalClock()
        times = [clock.tick() for _ in range(5)]
        assert times == sorted(times)
        assert len(set(times)) == 5

    def test_deterministic(self):
        assert LogicalClock().tick() == LogicalClock().tick()

    def test_advance(self):
        clock = LogicalClock()
        t1 = clock.now()
        clock.advance(10)
        assert clock.now() > t1
        with pytest.raises(ValueError):
            clock.advance(-1)


class TestNavigation:
    def test_exists(self, fs):
        assert fs.exists("/Projects/PIM/paper.tex")
        assert not fs.exists("/nope")

    def test_kind_predicates(self, fs):
        assert fs.is_dir("/Projects")
        assert fs.is_file("/Projects/PIM/paper.tex")
        assert not fs.is_file("/Projects")

    def test_listdir_sorted(self, fs):
        fs.write_file("/Projects/PIM/a.txt", "")
        assert fs.listdir("/Projects/PIM") == ["a.txt", "paper.tex"]

    def test_listdir_on_file_raises(self, fs):
        with pytest.raises(VfsError):
            fs.listdir("/Projects/PIM/paper.tex")

    def test_read(self, fs):
        assert fs.read("/Projects/PIM/paper.tex") == "content here"

    def test_read_directory_raises(self, fs):
        with pytest.raises(VfsError):
            fs.read("/Projects")

    def test_relative_path_rejected(self, fs):
        with pytest.raises(VfsError):
            fs.read("Projects/PIM/paper.tex")

    def test_stat_shape(self, fs):
        stat = fs.stat("/Projects/PIM/paper.tex")
        assert stat["size"] == len("content here")
        assert stat["kind"] == "file"
        assert stat["path"] == "/Projects/PIM/paper.tex"
        assert stat["created"] <= stat["modified"]

    def test_walk_covers_tree(self, fs):
        fs.mkdir("/Projects/OLAP")
        walked = list(fs.walk("/"))
        dirs = [entry[0] for entry in walked]
        assert "/" in dirs and "/Projects/PIM" in dirs
        assert any("paper.tex" in files for _, _, files in walked)


class TestMutation:
    def test_mkdir_requires_parents(self):
        fs = VirtualFileSystem()
        with pytest.raises(VfsError):
            fs.mkdir("/a/b")
        fs.mkdir("/a/b", parents=True)
        assert fs.is_dir("/a/b")

    def test_mkdir_existing_rejected(self, fs):
        with pytest.raises(VfsError):
            fs.mkdir("/Projects")

    def test_overwrite_updates_mtime(self, fs):
        before = fs.stat("/Projects/PIM/paper.tex")["modified"]
        fs.write_file("/Projects/PIM/paper.tex", "new")
        after = fs.stat("/Projects/PIM/paper.tex")
        assert after["modified"] > before
        assert fs.read("/Projects/PIM/paper.tex") == "new"

    def test_write_over_directory_rejected(self, fs):
        with pytest.raises(VfsError):
            fs.write_file("/Projects", "x")

    def test_delete_file(self, fs):
        fs.delete("/Projects/PIM/paper.tex")
        assert not fs.exists("/Projects/PIM/paper.tex")

    def test_delete_nonempty_dir_requires_recursive(self, fs):
        with pytest.raises(VfsError):
            fs.delete("/Projects")
        fs.delete("/Projects", recursive=True)
        assert not fs.exists("/Projects")

    def test_move(self, fs):
        fs.move("/Projects/PIM/paper.tex", "/Projects/final.tex")
        assert fs.read("/Projects/final.tex") == "content here"
        assert not fs.exists("/Projects/PIM/paper.tex")

    def test_move_onto_existing_rejected(self, fs):
        fs.write_file("/Projects/other.txt", "x")
        with pytest.raises(VfsError):
            fs.move("/Projects/other.txt", "/Projects/PIM/paper.tex")


class TestLinks:
    def test_link_resolves(self, fs):
        fs.make_link("/Projects/PIM/All Projects", "/Projects")
        assert fs.is_link("/Projects/PIM/All Projects")
        assert fs.resolve_link("/Projects/PIM/All Projects") == "/Projects"

    def test_resolve_non_link_raises(self, fs):
        with pytest.raises(VfsError):
            fs.resolve_link("/Projects")

    def test_link_over_existing_rejected(self, fs):
        with pytest.raises(VfsError):
            fs.make_link("/Projects/PIM/paper.tex", "/Projects")


class TestEvents:
    def test_create_event(self, fs):
        events: list[FsEvent] = []
        fs.events.subscribe(events.append)
        fs.write_file("/Projects/new.txt", "x")
        assert events[-1].kind is FsEventKind.CREATED
        assert events[-1].path == "/Projects/new.txt"

    def test_modify_event(self, fs):
        events: list[FsEvent] = []
        fs.events.subscribe(events.append)
        fs.write_file("/Projects/PIM/paper.tex", "y")
        assert events[-1].kind is FsEventKind.MODIFIED

    def test_delete_event(self, fs):
        events: list[FsEvent] = []
        fs.events.subscribe(events.append)
        fs.delete("/Projects/PIM/paper.tex")
        assert events[-1].kind is FsEventKind.DELETED

    def test_move_event_carries_old_path(self, fs):
        events: list[FsEvent] = []
        fs.events.subscribe(events.append)
        fs.move("/Projects/PIM/paper.tex", "/Projects/p.tex")
        assert events[-1].kind is FsEventKind.MOVED
        assert events[-1].old_path == "/Projects/PIM/paper.tex"

    def test_unsubscribe(self, fs):
        events: list[FsEvent] = []
        unsubscribe = fs.events.subscribe(events.append)
        unsubscribe()
        fs.write_file("/Projects/x.txt", "x")
        assert events == []

    def test_mkdir_parents_emits_per_directory(self):
        fs = VirtualFileSystem()
        events: list[FsEvent] = []
        fs.events.subscribe(events.append)
        fs.mkdir("/a/b/c", parents=True)
        assert [e.path for e in events] == ["/a", "/a/b", "/a/b/c"]


class TestStatistics:
    def test_count_entries(self, fs):
        fs.make_link("/Projects/PIM/link", "/Projects")
        counts = fs.count_entries()
        assert counts == {"files": 1, "dirs": 2, "links": 1}

    def test_total_content_bytes(self, fs):
        assert fs.total_content_bytes() == len("content here")
