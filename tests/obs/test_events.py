"""The structured event log: ring, severities, sinks, sampling."""

from __future__ import annotations

import json

from repro.obs import DEBUG, ERROR, INFO, WARNING, EventLog, severity_name


class TestEmission:
    def test_emit_returns_the_event(self):
        log = EventLog(clock=lambda: 12.5)
        event = log.emit(INFO, "sync", "sync.done", "all synced", views=4)
        assert event is not None
        assert event.timestamp == 12.5
        assert event.fields == {"views": 4}
        assert log.snapshot() == [event]

    def test_below_min_severity_filtered(self):
        log = EventLog(min_severity=WARNING)
        assert log.emit(INFO, "x", "x.info") is None
        assert log.emit(WARNING, "x", "x.warn") is not None
        assert len(log) == 1

    def test_shorthands_map_to_severities(self):
        log = EventLog(min_severity=DEBUG)
        assert log.debug("s", "n").severity == DEBUG
        assert log.info("s", "n").severity == INFO
        assert log.warning("s", "n").severity == WARNING
        assert log.error("s", "n").severity == ERROR


class TestRing:
    def test_old_events_evict_at_capacity(self):
        log = EventLog(capacity=3)
        for index in range(5):
            log.info("test", f"event.{index}")
        names = [event.name for event in log.snapshot()]
        assert names == ["event.2", "event.3", "event.4"]
        assert log.emitted == 5  # lifetime count survives eviction

    def test_snapshot_filters(self):
        log = EventLog()
        log.info("sync", "a")
        log.warning("query", "b")
        log.info("query", "c")
        assert [e.name for e in log.snapshot(subsystem="query")] == ["b", "c"]
        assert [e.name for e in log.snapshot(min_severity=WARNING)] == ["b"]
        assert [e.name for e in log.snapshot(limit=1)] == ["c"]


class TestSink:
    def test_sink_receives_accepted_events(self):
        received = []
        log = EventLog(sink=received.append, min_severity=WARNING)
        log.info("x", "filtered.out")
        kept = log.warning("x", "kept")
        assert received == [kept]

    def test_broken_sink_never_breaks_the_caller(self):
        def explode(_event):
            raise RuntimeError("sink down")

        log = EventLog(sink=explode)
        event = log.info("x", "survives")
        assert event is not None
        assert len(log) == 1


class TestSampling:
    def test_keep_one_in_n_deterministically(self):
        log = EventLog(sampling={"noisy": 10})
        kept = sum(1 for _ in range(100)
                   if log.emit(INFO, "x", "noisy") is not None)
        assert kept == 10
        assert log.dropped_by_sampling == 90

    def test_unsampled_names_unaffected(self):
        log = EventLog(sampling={"noisy": 10})
        for _ in range(20):
            log.emit(INFO, "x", "quiet")
        assert log.emitted == 20


class TestJson:
    def test_render_json_lines_round_trips(self):
        log = EventLog(clock=lambda: 1.0)
        log.info("sync", "sync.done", "ok", views=3)
        log.warning("query", "query.slow", "1.2s", elapsed_ms=1200)
        lines = log.render_json_lines().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first == {"ts": 1.0, "severity": "info",
                         "subsystem": "sync", "event": "sync.done",
                         "message": "ok", "views": 3}

    def test_severity_name(self):
        assert severity_name(INFO) == "info"
        assert severity_name(99) == "99"
