"""End-to-end telemetry: every subsystem feeds the global registry.

One tiny dataspace with resilience, synced and queried through a serve
session, must light up all five namespaces; the slow-query log must
capture slow executions (span tree included) and ignore fast ones; the
service ``stats()`` must carry both the legacy flat keys and their
dotted-convention aliases.
"""

from __future__ import annotations

from repro import obs
from repro.dataset import TINY_PROFILE, PersonalDataspaceGenerator
from repro.facade import Dataspace
from repro.imapsim.latency import no_latency
from repro.resilience import FaultPlan, ResilienceConfig, RetryPolicy


def build_dataspace() -> Dataspace:
    generated = PersonalDataspaceGenerator(
        TINY_PROFILE, seed=7, imap_latency=no_latency()
    ).generate()
    config = ResilienceConfig(
        retry=RetryPolicy(max_attempts=2)
    ).with_fast_backoff()
    return Dataspace(vfs=generated.vfs, imap=generated.imap,
                     feeds=generated.feeds, resilience=config)


class TestNamespaceCoverage:
    def test_sync_and_serve_light_up_all_namespaces(self):
        dataspace = build_dataspace()
        dataspace.sync()
        with dataspace.serve(workers=2) as service:
            service.execute('"database"')
            service.execute("/*")
        snapshot = obs.global_metrics().snapshot()
        namespaces = {name.split(".", 1)[0].split("{", 1)[0]
                      for name in snapshot}
        assert {"query", "sync", "index",
                "resilience", "service"} <= namespaces
        # a few load-bearing series, by name
        assert snapshot["sync.sources_scanned"] == 3
        assert snapshot["sync.views_synced"] > 0
        assert snapshot["query.executions"] >= 2
        assert snapshot["service.queries.served"] >= 2
        assert snapshot['index.entries{index="catalog"}'] > 0
        assert snapshot['resilience.breaker_state{source="imap"}'] == 0
        assert snapshot['resilience.calls{source="fs"}'] > 0

    def test_sync_emits_structured_events(self):
        dataspace = build_dataspace()
        dataspace.sync()
        events = obs.global_events().snapshot(subsystem="sync")
        assert any(e.name == "sync.source_scanned" for e in events)

    def test_engine_counts_rows_for_traced_and_untraced_alike(self):
        dataspace = build_dataspace()
        dataspace.sync()
        dataspace.query('"database"')
        untraced = obs.global_metrics().snapshot()["query.engine.rows"]
        assert untraced > 0
        dataspace.explain_analyze('"database"')
        traced = obs.global_metrics().snapshot()["query.engine.rows"]
        assert traced == 2 * untraced  # same names, same counts

    def test_telemetry_facade_accessors(self):
        dataspace = build_dataspace()
        dataspace.sync()
        assert dataspace.telemetry()["sync.sources_scanned"] == 3
        assert dataspace.slow_queries() == []
        assert any(e.subsystem == "sync" for e in dataspace.events())


class TestDictionaryMetrics:
    def test_query_dict_series_populate(self):
        """The URI dictionary reports size, lookups and remaps under
        ``query.dict.*`` — at batch granularity, so a single query adds
        a handful of increments, not one per row."""
        from repro.rvm.uridict import global_uri_dictionary

        dataspace = build_dataspace()
        dataspace.sync()
        # the process-global dictionary may already cover this corpus
        # from earlier tests; a probe intern forces the next execution
        # to remap inside this test's fresh registry
        global_uri_dictionary().intern("probe://dict-metrics")
        dataspace.query('"database"')
        snapshot = obs.global_metrics().snapshot()
        assert snapshot["query.dict.size"] > 0
        assert snapshot["query.dict.lookups"] > 0
        assert snapshot["query.dict.remaps"] >= 1
        # and the dictionary namespace rides inside query.*
        assert {"query.dict.size", "query.dict.lookups",
                "query.dict.remaps"} <= set(snapshot)


class TestSlowQueryCapture:
    def test_slow_queries_capture_with_span_tree(self):
        obs.configure(slow_query_seconds=0.0)
        dataspace = build_dataspace()
        dataspace.sync()
        dataspace.query('"database"')
        entries = obs.global_slowlog().entries()
        assert len(entries) == 1
        entry = entries[0]
        assert entry.query == '"database"'
        assert entry.recaptured  # untraced run re-executed under a trace
        assert "ContentSearch" in entry.span_tree
        assert obs.global_metrics().snapshot()["query.slow"] == 1
        warnings = obs.global_events().snapshot(min_severity=obs.WARNING)
        assert any(e.name == "query.slow" for e in warnings)

    def test_fast_queries_stay_out_of_the_slow_log(self):
        obs.configure(slow_query_seconds=1000.0)
        dataspace = build_dataspace()
        dataspace.sync()
        dataspace.query('"database"')
        assert obs.global_slowlog().entries() == []
        assert "query.slow" not in obs.global_metrics().snapshot()

    def test_traced_executions_capture_without_recapture(self):
        obs.configure(slow_query_seconds=0.0,
                      slow_query_recapture=False)
        dataspace = build_dataspace()
        dataspace.sync()
        dataspace.explain_analyze('"database"')
        entries = obs.global_slowlog().entries()
        assert len(entries) == 1
        assert not entries[0].recaptured
        assert "ContentSearch" in entries[0].span_tree

    def test_streamed_executions_never_trigger_capture(self):
        obs.configure(slow_query_seconds=0.0)
        dataspace = build_dataspace()
        dataspace.sync()
        with dataspace.query_iter('"database"') as stream:
            list(stream)
        assert obs.global_slowlog().entries() == []
        snapshot = obs.global_metrics().snapshot()
        assert snapshot["query.streamed"] == 1
        assert snapshot["query.stream_seconds"].count == 1


class TestServiceStatsAliases:
    def test_trace_keys_alias_to_query_namespace(self):
        dataspace = build_dataspace()
        with dataspace.serve(workers=1, trace_queries=True) as service:
            service.execute('"database"', use_cache=False)
            stats = service.stats()
        assert stats["trace.op.ContentSearch.calls"] >= 1  # legacy
        assert (stats["query.op.ContentSearch.calls"]
                == stats["trace.op.ContentSearch.calls"])

    def test_resilience_keys_alias_to_source_namespace(self):
        dataspace = build_dataspace()
        with dataspace.serve(workers=1) as service:
            service.execute("/*")
            stats = service.stats()
        assert stats["resilience.imap.state"] == "closed"  # legacy
        assert stats["resilience.source.imap.state"] == "closed"

    def test_global_snapshot_folds_into_stats(self):
        dataspace = build_dataspace()
        with dataspace.serve(workers=1) as service:
            service.execute('"database"')
            stats = service.stats()
            local_only = service.stats(include_global=False)
        assert "sync.views_synced" in stats
        assert "sync.views_synced" not in local_only

    def test_breaker_transitions_count_and_announce(self):
        generated = PersonalDataspaceGenerator(
            TINY_PROFILE, seed=7, imap_latency=no_latency()
        ).generate()
        config = ResilienceConfig(
            retry=RetryPolicy(max_attempts=1),
            breaker_failure_threshold=2,
        ).with_fast_backoff()
        dataspace = Dataspace(vfs=generated.vfs, imap=generated.imap,
                              feeds=generated.feeds, resilience=config)
        dataspace.sync()
        dataspace.inject_faults("imap", FaultPlan(seed=1).outage())
        for _ in range(3):
            dataspace.query("/*")
        snapshot = obs.global_metrics().snapshot()
        assert snapshot['resilience.breaker_opened{source="imap"}'] == 1
        assert snapshot['resilience.breaker_state{source="imap"}'] == 1
        assert snapshot['resilience.failures{source="imap"}'] >= 2
        events = obs.global_events().snapshot(subsystem="resilience")
        assert any(e.name == "resilience.breaker_opened" for e in events)
