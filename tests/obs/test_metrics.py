"""The global metrics registry: concurrency, labels, callback gauges."""

from __future__ import annotations

import gc
import threading

from repro import obs
from repro.obs.metrics import MetricsRegistry, _percentile


class TestConcurrency:
    THREADS = 8
    PER_THREAD = 2500

    def test_no_lost_counter_increments(self):
        barrier = threading.Barrier(self.THREADS)

        def worker(index: int) -> None:
            barrier.wait()
            for _ in range(self.PER_THREAD):
                obs.increment("test.shared")
                obs.increment("test.per_thread",
                              labels={"thread": str(index)})

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(self.THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        snapshot = obs.global_metrics().snapshot()
        assert snapshot["test.shared"] == self.THREADS * self.PER_THREAD
        for index in range(self.THREADS):
            key = f'test.per_thread{{thread="{index}"}}'
            assert snapshot[key] == self.PER_THREAD

    def test_no_lost_histogram_observations(self):
        barrier = threading.Barrier(self.THREADS)

        def worker() -> None:
            barrier.wait()
            for step in range(self.PER_THREAD):
                obs.observe("test.latency", step * 0.001)

        threads = [threading.Thread(target=worker)
                   for _ in range(self.THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        snap = obs.global_metrics().snapshot()["test.latency"]
        assert snap.count == self.THREADS * self.PER_THREAD

    def test_snapshot_while_recording_is_consistent(self):
        stop = threading.Event()
        errors: list[BaseException] = []

        def writer() -> None:
            while not stop.is_set():
                obs.increment("test.race")
                obs.observe("test.race_hist", 0.001)

        def reader() -> None:
            try:
                for _ in range(200):
                    snapshot = obs.global_metrics().snapshot()
                    value = snapshot.get("test.race", 0)
                    assert isinstance(value, int) and value >= 0
            except BaseException as error:  # noqa: BLE001
                errors.append(error)

        writers = [threading.Thread(target=writer) for _ in range(4)]
        readers = [threading.Thread(target=reader) for _ in range(2)]
        for thread in writers + readers:
            thread.start()
        for thread in readers:
            thread.join()
        stop.set()
        for thread in writers:
            thread.join()
        assert not errors


class TestLabels:
    def test_each_label_set_is_its_own_series(self):
        registry = MetricsRegistry()
        registry.increment("hits", labels={"source": "imap"})
        registry.increment("hits", 2, labels={"source": "fs"})
        registry.increment("hits")
        snapshot = registry.snapshot()
        assert snapshot['hits{source="imap"}'] == 1
        assert snapshot['hits{source="fs"}'] == 2
        assert snapshot["hits"] == 1

    def test_label_order_does_not_split_series(self):
        registry = MetricsRegistry()
        registry.increment("x", labels={"a": "1", "b": "2"})
        registry.increment("x", labels={"b": "2", "a": "1"})
        assert registry.snapshot() == {'x{a="1",b="2"}': 2}


class TestCallbackGauges:
    def test_callback_evaluated_at_snapshot_time(self):
        registry = MetricsRegistry()

        class Box:
            n = 1

        box = Box()
        registry.register_gauge_callback("box.n", lambda b: b.n,
                                         owner=box)
        assert registry.snapshot()["box.n"] == 1
        box.n = 7
        assert registry.snapshot()["box.n"] == 7

    def test_dead_owner_drops_the_series(self):
        registry = MetricsRegistry()

        class Owner:
            size = 3

        owner = Owner()
        registry.register_gauge_callback("owner.size",
                                         lambda o: o.size, owner=owner)
        assert registry.snapshot()["owner.size"] == 3
        del owner
        gc.collect()
        assert "owner.size" not in registry.snapshot()

    def test_callback_exception_reads_zero(self):
        registry = MetricsRegistry()

        class Owner:
            pass

        owner = Owner()
        registry.register_gauge_callback(
            "broken", lambda o: o.missing_attribute, owner=owner)
        assert registry.snapshot()["broken"] == 0.0

    def test_reregistration_replaces_last_writer_wins(self):
        registry = MetricsRegistry()

        class Owner:
            def __init__(self, n):
                self.n = n

        first, second = Owner(1), Owner(2)
        registry.register_gauge_callback("n", lambda o: o.n, owner=first)
        registry.register_gauge_callback("n", lambda o: o.n, owner=second)
        assert registry.snapshot()["n"] == 2


class TestHistogram:
    def test_percentiles_nearest_rank(self):
        assert _percentile([], 0.5) == 0.0
        ordered = [float(v) for v in range(1, 101)]
        assert _percentile(ordered, 0.0) == 1.0
        assert _percentile(ordered, 1.0) == 100.0
        assert _percentile(ordered, 0.95) == 95.0

    def test_snapshot_totals(self):
        registry = MetricsRegistry()
        for value in (1.0, 2.0, 3.0, 4.0):
            registry.observe("h", value)
        snap = registry.snapshot()["h"]
        assert snap.count == 4
        assert snap.total == 10.0
        assert snap.minimum == 1.0
        assert snap.maximum == 4.0
        assert snap.mean == 2.5

    def test_reservoir_keeps_count_and_sum_exact(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h")
        for _ in range(histogram.reservoir + 100):
            histogram.observe(1.0)
        snap = histogram.snapshot()
        assert snap.count == histogram.reservoir + 100
        assert snap.total == float(histogram.reservoir + 100)


class TestDisabled:
    def test_disabled_helpers_record_nothing(self):
        obs.configure(enabled=False)
        obs.increment("off.counter")
        obs.observe("off.hist", 1.0)
        obs.set_gauge("off.gauge", 1.0)
        obs.emit_event(obs.INFO, "test", "off.event")
        assert obs.global_metrics().snapshot() == {}
        assert len(obs.global_events()) == 0

    def test_gauge_callbacks_register_even_while_disabled(self):
        obs.configure(enabled=False)

        class Box:
            n = 5

        box = Box()
        obs.gauge_callback("off.box", lambda b: b.n, owner=box)
        obs.configure(enabled=True)
        assert obs.global_metrics().snapshot()["off.box"] == 5
        del box


class TestCompatibilityShim:
    def test_service_metrics_imports_from_obs(self):
        from repro.obs import metrics as obs_metrics
        from repro.service import metrics as service_metrics
        assert service_metrics.MetricsRegistry is obs_metrics.MetricsRegistry
        assert service_metrics.Counter is obs_metrics.Counter
        assert service_metrics.Histogram is obs_metrics.Histogram
