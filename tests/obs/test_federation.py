"""Metrics federation: delta exports, labeled merges, event buffering.

The contract under test is the one the sharded service leans on: an
exporter ships exact counter/histogram deltas against its own lifetime
(so a respawned worker's fresh exporter can never re-ship what the dead
incarnation already sent), and :func:`merge_export` folds an export
into another registry under extra labels without disturbing the
unlabeled series.
"""

from __future__ import annotations

import pytest

from repro.obs import EventLog, MetricsRegistry, WARNING
from repro.obs.federation import (
    ForwardingEventBuffer,
    RegistryExporter,
    merge_export,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestExporter:
    def test_empty_registry_exports_nothing(self, registry):
        assert RegistryExporter(registry).export() is None

    def test_counter_deltas_are_exact(self, registry):
        exporter = RegistryExporter(registry)
        registry.increment("queries", 5)
        first = exporter.export()
        assert first["c"] == [["queries", [], 5]]
        registry.increment("queries", 2)
        second = exporter.export()
        assert second["c"] == [["queries", [], 2]]
        # nothing moved since: the export is None, not an empty dict
        assert exporter.export() is None

    def test_labeled_series_round_trip(self, registry):
        exporter = RegistryExporter(registry)
        registry.increment("retries", 3, labels={"source": "imap"})
        export = exporter.export()
        [(name, labels, delta)] = export["c"]
        assert (name, delta) == ("retries", 3)
        # in memory the pairs are tuples; over the wire JSON makes
        # them lists — merge_export accepts either
        assert [list(pair) for pair in labels] == [["source", "imap"]]

    def test_gauge_ships_only_on_change(self, registry):
        exporter = RegistryExporter(registry)
        registry.set_gauge("depth", 4.0)
        assert exporter.export()["g"] == [["depth", [], 4.0]]
        registry.increment("tick")  # some other movement
        assert "g" not in exporter.export()
        registry.set_gauge("depth", 5.0)
        registry.increment("tick")
        assert exporter.export()["g"] == [["depth", [], 5.0]]

    def test_histogram_delta_count_and_sum(self, registry):
        exporter = RegistryExporter(registry)
        registry.observe("latency", 0.5)
        registry.observe("latency", 1.5)
        [(_, _, data)] = exporter.export()["h"]
        assert data["n"] == 2 and data["s"] == pytest.approx(2.0)
        registry.observe("latency", 0.25)
        [(_, _, data)] = exporter.export()["h"]
        assert data["n"] == 1 and data["s"] == pytest.approx(0.25)
        assert data["o"] == [0.25]  # only the new tail ships

    def test_callback_gauges_rate_limited(self, registry):
        # reading a callback gauge may walk an index — the exporter
        # must not do that on every per-reply export
        reads = []
        registry.register_gauge_callback(
            "index.bytes", lambda: reads.append(1) or 7.0)
        throttled = RegistryExporter(registry,
                                     callback_gauge_interval=3600.0)
        assert throttled.export()["g"] == [["index.bytes", [], 7.0]]
        registry.increment("tick")
        throttled.export()
        assert len(reads) == 1  # second export skipped the callback

        eager = RegistryExporter(registry, callback_gauge_interval=0.0)
        eager.export()
        registry.increment("tick")
        eager.export()
        assert len(reads) == 3  # every export re-read it


class TestMerge:
    def test_merge_adds_extra_labels(self, registry):
        source = MetricsRegistry()
        exporter = RegistryExporter(source)
        source.increment("queries", 4)
        source.observe("latency", 0.5)
        merged = merge_export(registry, exporter.export(), {"shard": "3"})
        assert merged == 2
        snap = registry.snapshot()
        assert snap['queries{shard="3"}'] == 4
        assert snap['latency{shard="3"}'].count == 1
        assert "queries" not in snap  # unlabeled series untouched

    def test_merged_counters_accumulate_across_exports(self, registry):
        source = MetricsRegistry()
        exporter = RegistryExporter(source)
        for round_increments in (5, 2):
            source.increment("queries", round_increments)
            merge_export(registry, exporter.export(), {"shard": "0"})
        assert registry.snapshot()['queries{shard="0"}'] == 7

    def test_respawn_cannot_double_count(self, registry):
        # incarnation 1: records 5, exports, dies
        first = MetricsRegistry()
        first.increment("queries", 5)
        merge_export(registry, RegistryExporter(first).export(),
                     {"shard": "0"})
        # incarnation 2: a FRESH registry and exporter — its deltas
        # restart from zero, so the merged total is 5 + 3, never 5 + 8
        second = MetricsRegistry()
        second.increment("queries", 3)
        merge_export(registry, RegistryExporter(second).export(),
                     {"shard": "0"})
        assert registry.snapshot()['queries{shard="0"}'] == 8

    def test_histogram_merge_preserves_extremes(self, registry):
        source = MetricsRegistry()
        exporter = RegistryExporter(source)
        for value in (0.010, 0.500, 0.020):
            source.observe("latency", value)
        merge_export(registry, exporter.export(), {"shard": "1"})
        snap = registry.snapshot()['latency{shard="1"}']
        assert snap.count == 3
        assert snap.minimum == pytest.approx(0.010)
        assert snap.maximum == pytest.approx(0.500)


class TestForwardingEventBuffer:
    def test_buffers_only_warning_and_above(self):
        log = EventLog()
        buffer = ForwardingEventBuffer()
        buffer.attach(log)
        log.info("sync", "sync.done", "fine")
        log.warning("sync", "sync.slow", "source lagging", source="imap")
        log.error("wal", "wal.torn", "truncated tail")
        records = buffer.drain()
        assert [r["name"] for r in records] == ["sync.slow", "wal.torn"]
        assert records[0]["sev"] >= WARNING
        assert records[0]["fields"] == {"source": "imap"}
        assert buffer.drain() == []  # drain empties

    def test_attach_composes_with_existing_sink(self):
        seen = []
        log = EventLog(sink=seen.append)
        buffer = ForwardingEventBuffer()
        buffer.attach(log)
        log.warning("x", "x.warn", "both sinks fire")
        assert len(seen) == 1
        assert len(buffer.drain()) == 1

    def test_bounded_under_pressure(self):
        log = EventLog(capacity=64)
        buffer = ForwardingEventBuffer(capacity=4)
        buffer.attach(log)
        for n in range(10):
            log.warning("x", f"x.{n}", "flood")
        names = [r["name"] for r in buffer.drain()]
        assert names == ["x.6", "x.7", "x.8", "x.9"]  # oldest dropped
