"""Per-tenant telemetry labels, admission through execution.

The labeling contract is *additive*: the unlabeled ``query.*`` /
``service.*`` series record exactly as before (existing dashboards see
no change), and a ``{tenant="..."}`` variant records alongside them
only when a tenant is attached — at ``open_session`` (every query of
the session inherits it) or per ``submit``.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.dataset import TINY_PROFILE
from repro.facade import Dataspace
from repro.imapsim.latency import no_latency


@pytest.fixture
def dataspace():
    space = Dataspace.generate(profile=TINY_PROFILE, seed=7,
                               imap_latency=no_latency())
    space.sync()
    return space


def snapshot():
    return obs.global_metrics().snapshot()


class TestExecutorLabels:
    def test_tenant_records_labeled_and_unlabeled(self, dataspace):
        processor = dataspace.processor
        prepared = processor.prepare('"database"')
        processor.execute_prepared(prepared, tenant="acme")
        snap = snapshot()
        assert snap['query.executions{tenant="acme"}'] == 1
        assert snap["query.executions"] == 1  # the unlabeled twin
        assert snap['query.latency_seconds{tenant="acme"}'].count == 1
        assert snap['query.rows{tenant="acme"}'] == snap["query.rows"]

    def test_no_tenant_means_no_labeled_series(self, dataspace):
        dataspace.query('"database"')
        assert not any("tenant=" in name for name in snapshot())

    def test_tenants_get_distinct_series(self, dataspace):
        processor = dataspace.processor
        prepared = processor.prepare('"database"')
        processor.execute_prepared(prepared, tenant="acme")
        processor.execute_prepared(prepared, tenant="acme")
        processor.execute_prepared(prepared, tenant="globex")
        snap = snapshot()
        assert snap['query.executions{tenant="acme"}'] == 2
        assert snap['query.executions{tenant="globex"}'] == 1
        assert snap["query.executions"] == 3


class TestServiceLabels:
    def test_session_tenant_inherited_by_queries(self, dataspace):
        with dataspace.serve(workers=2) as service:
            session = service.open_session(tenant="acme")
            session.submit('"database"').result(timeout=60.0)
        snap = snapshot()
        assert snap['service.queries.submitted{tenant="acme"}'] == 1
        assert snap['service.queries.served{tenant="acme"}'] == 1
        assert snap['service.latency.total_seconds{tenant="acme"}'].count == 1
        # the executor-side series carry the same label end to end
        assert snap['query.executions{tenant="acme"}'] == 1

    def test_submit_tenant_overrides_session(self, dataspace):
        with dataspace.serve(workers=2) as service:
            service.submit('"database"',
                           tenant="globex").result(timeout=60.0)
        snap = snapshot()
        assert snap['service.queries.served{tenant="globex"}'] == 1

    def test_cached_hits_count_under_the_tenant(self, dataspace):
        with dataspace.serve(workers=2, cache_results=True) as service:
            service.submit('"database"', tenant="acme").result(timeout=60.0)
            service.submit('"database"', tenant="acme").result(timeout=60.0)
        snap = snapshot()
        assert snap['service.queries.served{tenant="acme"}'] == 2
        assert snap['service.queries.submitted{tenant="acme"}'] == 2
