"""Prometheus exposition: golden render, escaping, promcheck round-trip."""

from __future__ import annotations

import pytest

from repro.obs.metrics import MetricsRegistry, _prom_name
from repro.obs.promcheck import parse_samples, validate


def build_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.increment("sync.views_synced", 12)
    registry.increment("resilience.retries", 2, labels={"source": "imap"})
    registry.set_gauge("index.entries", 42, labels={"index": "name"})
    for value in (1.0, 2.0, 3.0, 4.0):
        registry.observe("query.latency_seconds", value)
    return registry


GOLDEN = """\
# TYPE repro_index_entries gauge
repro_index_entries{index="name"} 42
# TYPE repro_query_latency_seconds summary
repro_query_latency_seconds{quantile="0.5"} 3
repro_query_latency_seconds{quantile="0.95"} 4
repro_query_latency_seconds{quantile="0.99"} 4
repro_query_latency_seconds_count 4
repro_query_latency_seconds_sum 10
# TYPE repro_resilience_retries counter
repro_resilience_retries{source="imap"} 2
# TYPE repro_sync_views_synced counter
repro_sync_views_synced 12
"""


class TestRender:
    def test_golden(self):
        assert build_registry().render_prometheus() == GOLDEN

    def test_every_line_validates(self):
        assert validate(build_registry().render_prometheus()) == []

    def test_samples_round_trip(self):
        samples = parse_samples(build_registry().render_prometheus())
        by_key = {(name, tuple(sorted(labels.items()))): value
                  for name, labels, value in samples}
        assert by_key[("repro_sync_views_synced", ())] == 12
        assert by_key[("repro_resilience_retries",
                       (("source", "imap"),))] == 2
        assert by_key[("repro_query_latency_seconds_sum", ())] == 10.0

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""


class TestEscaping:
    def test_label_values_escape(self):
        registry = MetricsRegistry()
        registry.increment("odd.metric",
                           labels={"path": 'a"b\\c\nd'})
        text = registry.render_prometheus()
        assert validate(text) == []
        [(name, labels, value)] = parse_samples(text)
        assert name == "repro_odd_metric"
        assert labels == {"path": 'a"b\\c\nd'}
        assert value == 1.0

    @pytest.mark.parametrize("raw,sanitized", [
        ("query.latency_seconds", "query_latency_seconds"),
        ("9starts.with.digit", "_starts_with_digit"),
        ("has-dash and space", "has_dash_and_space"),
        ("name:with:colons", "name:with:colons"),
    ])
    def test_name_sanitization(self, raw, sanitized):
        assert _prom_name(raw) == sanitized


class TestValidator:
    def test_rejects_malformed_lines(self):
        assert validate("not a metric line!") != []
        assert validate("metric{unclosed 1") != []
        assert validate("metric not_a_number") != []
        assert validate("# BOGUS comment") != []

    def test_parse_samples_raises_on_malformed(self):
        with pytest.raises(ValueError):
            parse_samples("metric not_a_number")

    def test_accepts_special_values(self):
        assert validate("m +Inf\nm2 NaN\nm3 -Inf") == []


class TestPromcheckCLI:
    def test_main_validates_stdin_text(self, tmp_path, capsys):
        from repro.obs.promcheck import main
        registry = MetricsRegistry()
        registry.increment("queries", 3, labels={"shard": "0"})
        path = tmp_path / "metrics.prom"
        path.write_text(registry.render_prometheus(), encoding="utf-8")
        assert main([str(path)]) == 0
        assert "ok:" in capsys.readouterr().out

    def test_require_label_present(self, tmp_path, capsys):
        from repro.obs.promcheck import main
        registry = MetricsRegistry()
        registry.increment("queries", labels={"shard": "0"})
        registry.increment("plain")
        path = tmp_path / "metrics.prom"
        path.write_text(registry.render_prometheus(), encoding="utf-8")
        assert main([str(path), "--require-label", "shard"]) == 0
        out = capsys.readouterr().out
        assert "label 'shard':" in out

    def test_require_label_missing_fails(self, tmp_path, capsys):
        from repro.obs.promcheck import main
        registry = MetricsRegistry()
        registry.increment("plain")
        path = tmp_path / "metrics.prom"
        path.write_text(registry.render_prometheus(), encoding="utf-8")
        assert main([str(path), "--require-label", "shard"]) == 1
        assert "shard" in capsys.readouterr().err
