"""The slow-query log: thresholds, ring eviction, recapture."""

from __future__ import annotations

from repro.obs import SlowQueryLog, in_recapture
from repro.obs.slowlog import _recapturing


class FakeTrace:
    def __init__(self, counters=None):
        self.roots = []
        self.counters = dict(counters or {})


class FakeReport:
    def __init__(self):
        self.trace = FakeTrace({"ctx.content_search": 2})


class FakeProcessor:
    def __init__(self, fail=False):
        self.fail = fail
        self.calls = 0

    def explain_analyze(self, query):
        self.calls += 1
        assert in_recapture()  # the guard must be up during re-execution
        if self.fail:
            raise RuntimeError("source down")
        return FakeReport()


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


class TestThreshold:
    def test_fast_queries_are_not_captured(self):
        log = SlowQueryLog(threshold_seconds=1.0)
        assert log.record("//fast", 0.2) is None
        assert len(log) == 0

    def test_slow_queries_are_captured(self):
        log = SlowQueryLog(threshold_seconds=1.0)
        entry = log.record("//slow", 1.5)
        assert entry is not None
        assert entry.elapsed_seconds == 1.5
        assert entry.threshold_seconds == 1.0
        assert log.entries() == [entry]

    def test_none_threshold_disables_capture(self):
        log = SlowQueryLog(threshold_seconds=None)
        assert not log.is_slow(1e9)
        assert log.record("//any", 1e9) is None


class TestRing:
    def test_old_entries_evict_at_capacity(self):
        log = SlowQueryLog(threshold_seconds=0.0, capacity=2,
                           recapture=False)
        for index in range(4):
            log.record(f"//q{index}", 1.0)
        assert [e.query for e in log.entries()] == ["//q2", "//q3"]
        assert log.captured == 4  # lifetime count survives eviction


class TestCapture:
    def test_traced_execution_renders_directly(self):
        log = SlowQueryLog(threshold_seconds=0.5)
        trace = FakeTrace({"engine.batches": 3})
        entry = log.record("//traced", 0.9, trace=trace)
        assert entry.counters == {"engine.batches": 3}
        assert not entry.recaptured

    def test_untraced_execution_recaptures_via_processor(self):
        clock = FakeClock()
        processor = FakeProcessor()
        log = SlowQueryLog(threshold_seconds=0.5, clock=clock)
        entry = log.record("//untraced", 0.9, processor=processor)
        assert processor.calls == 1
        assert entry.recaptured
        assert entry.counters == {"ctx.content_search": 2}

    def test_recapture_is_rate_limited(self):
        clock = FakeClock()
        processor = FakeProcessor()
        log = SlowQueryLog(threshold_seconds=0.5, clock=clock,
                           recapture_interval_seconds=10.0)
        first = log.record("//a", 0.9, processor=processor)
        second = log.record("//b", 0.9, processor=processor)
        assert processor.calls == 1  # second capture skipped the re-run
        assert first.recaptured and not second.recaptured
        assert len(log) == 2  # the entry itself still records, tree-less
        clock.now += 11.0
        third = log.record("//c", 0.9, processor=processor)
        assert processor.calls == 2
        assert third.recaptured

    def test_failed_recapture_still_records_the_entry(self):
        log = SlowQueryLog(threshold_seconds=0.5,
                           clock=FakeClock())
        entry = log.record("//x", 0.9, processor=FakeProcessor(fail=True))
        assert entry is not None
        assert entry.span_tree == ""
        assert not entry.recaptured

    def test_reentrant_recapture_never_captures_itself(self):
        log = SlowQueryLog(threshold_seconds=0.0)
        _recapturing.active = True
        try:
            assert log.record("//inner", 5.0) is None
        finally:
            _recapturing.active = False
        assert len(log) == 0

    def test_render_mentions_timing_and_query(self):
        log = SlowQueryLog(threshold_seconds=0.5)
        entry = log.record("//slow", 1.5, plan_text="Scan(//slow)")
        text = entry.render()
        assert "1500.0 ms" in text
        assert "//slow" in text
        assert "Scan(//slow)" in text
