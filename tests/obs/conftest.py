"""Isolation for telemetry tests: the obs spine is process-global, so
every test here starts from fresh registries and leaves the default
configuration behind for whoever runs next."""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def fresh_obs():
    saved = dict(vars(obs.config()))
    obs.reset()
    yield
    obs.configure(**saved)
    obs.reset()
