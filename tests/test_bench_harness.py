"""Tests for the evaluation harness and its reporting helpers."""

import pytest

from repro.bench import (
    EvaluationHarness,
    PAPER_QUERIES,
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4,
    format_comparison,
    format_table,
)


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["name", "count"],
                            [["alpha", 1], ["b", 22_000]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "22,000" in text

    def test_format_table_title(self):
        text = format_table(["a"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_numeric_columns_right_aligned(self):
        text = format_table(["n"], [[5], [500]])
        rows = text.splitlines()[2:]
        assert rows[0].endswith("5")
        assert rows[1].endswith("500")

    def test_float_formatting(self):
        text = format_table(["x"], [[0.1234567], [12.3], [1234.5]])
        assert "0.1235" in text
        assert "12.30" in text
        assert "1,235" in text or "1,234" in text

    def test_format_comparison(self):
        line = format_comparison("total", 100, 42, unit="MB")
        assert "paper=100 MB" in line
        assert "measured=42 MB" in line


class TestPaperConstants:
    def test_eight_queries(self):
        assert list(PAPER_QUERIES) == [f"Q{i}" for i in range(1, 9)]

    def test_table2_totals_consistent(self):
        fs, imap, total = (PAPER_TABLE2["fs"], PAPER_TABLE2["imap"],
                           PAPER_TABLE2["total"])
        for key in ("base", "xml", "latex", "total"):
            assert fs[key] + imap[key] == total[key]

    def test_table3_total_sums(self):
        parts = sum(PAPER_TABLE3[k] for k in
                    ("name_mb", "tuple_mb", "content_mb", "group_mb",
                     "catalog_mb"))
        assert parts == pytest.approx(PAPER_TABLE3["total_mb"], abs=0.1)

    def test_table4_q1_is_largest(self):
        assert PAPER_TABLE4["Q1"] == max(PAPER_TABLE4.values())


class TestHarness:
    @pytest.fixture(scope="class")
    def harness(self):
        harness = EvaluationHarness(scale=0.001, seed=5)
        harness.ensure_synced()
        return harness

    def test_sync_memoized(self, harness):
        first = harness.ensure_synced()
        assert harness.ensure_synced() is first

    def test_table2_totals(self, harness):
        table = harness.table2()
        total = table["total"]
        assert total["total"] == sum(
            row["total"] for name, row in table.items() if name != "total"
        )

    def test_figure5_sources(self, harness):
        breakdown = harness.figure5()
        assert {"fs", "imap", "rss"} <= set(breakdown)
        for row in breakdown.values():
            assert row["total"] == pytest.approx(
                row["catalog"] + row["indexing"] + row["access"]
            )

    def test_table3_keys(self, harness):
        sizes = harness.table3()
        assert {"name", "tuple", "content", "group", "catalog",
                "total", "net_input"} <= set(sizes)

    def test_run_queries_measures_everything(self, harness):
        measurements = harness.run_queries(warm_runs=1)
        assert set(measurements) == set(PAPER_QUERIES)
        for measurement in measurements.values():
            assert measurement.cold_seconds > 0
            assert measurement.warm_seconds > 0
            assert measurement.results >= 0

    def test_table4_is_counts(self, harness):
        counts = harness.table4()
        assert all(isinstance(v, int) for v in counts.values())
