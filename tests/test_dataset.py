"""Tests for the synthetic personal dataspace generator."""

import pytest

from repro.dataset import (
    Corpus,
    PAPER_PROFILE,
    PersonalDataspaceGenerator,
    TINY_PROFILE,
    scaled_profile,
)
from repro.imapsim.latency import no_latency


class TestCorpus:
    def test_deterministic(self):
        a, b = Corpus(5), Corpus(5)
        assert a.paragraph() == b.paragraph()
        assert a.person_name() == b.person_name()

    def test_seeds_differ(self):
        assert Corpus(1).paragraph() != Corpus(2).paragraph()

    def test_plant_injects_phrase(self):
        text = Corpus(3).paragraph(plant=["database tuning"])
        assert "Database tuning" in text or "database tuning" in text

    def test_text_spreads_plants(self):
        text = Corpus(3).text(paragraphs=3, plant=["alpha beta", "gamma delta"])
        assert "lpha beta" in text and "amma delta" in text

    def test_file_name_extension(self):
        assert Corpus(1).file_name("tex").endswith(".tex")

    def test_binary_blob_not_texty(self):
        blob = Corpus(1).binary_blob(300)
        printable = sum(1 for c in blob if c.isprintable())
        assert printable / len(blob) < 0.3

    def test_title_capitalized(self):
        title = Corpus(1).title()
        assert title[0].isupper()


class TestProfiles:
    def test_paper_profile_matches_table2(self):
        assert PAPER_PROFILE.fs_entries == 14_297
        assert PAPER_PROFILE.emails == 6_335
        assert PAPER_PROFILE.fs_latex_docs == 282
        assert PAPER_PROFILE.fs_xml_docs == 47

    def test_scaling_proportional(self):
        half = scaled_profile(0.5)
        assert half.fs_entries == round(14_297 * 0.5)

    def test_scaling_floors(self):
        tiny = scaled_profile(0.0001)
        assert tiny.fs_latex_docs >= 8
        assert tiny.emails >= 20


class TestGenerator:
    @pytest.fixture(scope="class")
    def generated(self):
        return PersonalDataspaceGenerator(
            TINY_PROFILE, seed=13, imap_latency=no_latency()
        ).generate()

    def test_deterministic_across_runs(self):
        a = PersonalDataspaceGenerator(
            TINY_PROFILE, seed=13, imap_latency=no_latency()
        ).generate()
        b = PersonalDataspaceGenerator(
            TINY_PROFILE, seed=13, imap_latency=no_latency()
        ).generate()
        assert a.counts == b.counts
        assert a.vfs.count_entries() == b.vfs.count_entries()
        assert a.vfs.read("/Projects/PIM/vldb2006.tex") == \
            b.vfs.read("/Projects/PIM/vldb2006.tex")

    def test_entry_budget_respected(self, generated):
        counts = generated.vfs.count_entries()
        total = counts["files"] + counts["dirs"] + counts["links"]
        profile = generated.profile
        assert total == pytest.approx(profile.fs_entries, rel=0.25)

    def test_email_count(self, generated):
        total = sum(
            len(generated.imap._mailboxes[m])  # noqa: SLF001 - test probe
            for m in ("INBOX", "Sent", "Projects")
        )
        assert total == generated.counts["emails"]
        assert total >= generated.profile.emails

    def test_pim_cycle_planted(self, generated):
        assert generated.vfs.is_link("/Projects/PIM/All Projects")
        assert generated.vfs.resolve_link(
            "/Projects/PIM/All Projects"
        ) == "/Projects"

    def test_q3_large_files(self, generated):
        large = [
            path for path, _, files in generated.vfs.walk("/")
            for _ in ()
        ]
        count = 0
        for dirpath, _, files in generated.vfs.walk("/"):
            for name in files:
                full = dirpath.rstrip("/") + "/" + name
                if generated.vfs.is_file(full) and \
                        generated.vfs.stat(full)["size"] > 420_000:
                    count += 1
        assert count == generated.planted["q3_large_files"]

    def test_latex_docs_present(self, generated):
        tex_files = [
            name for _, _, files in generated.vfs.walk("/")
            for name in files if name.endswith(".tex")
        ]
        assert len(tex_files) >= generated.profile.fs_latex_docs

    def test_xml_docs_present(self, generated):
        xml_files = [
            name for _, _, files in generated.vfs.walk("/")
            for name in files if name.endswith(".xml")
        ]
        assert len(xml_files) >= generated.profile.fs_xml_docs

    def test_shared_tex_names_for_q8(self, generated):
        fs_tex = {
            name for _, _, files in generated.vfs.walk("/papers")
            for name in files if name.endswith(".tex")
        }
        mailbox = generated.imap._mailboxes["INBOX"]  # noqa: SLF001
        attached = {
            a.filename for m in mailbox for a in m.attachments
            if a.filename.endswith(".tex")
        }
        assert fs_tex & attached

    def test_feeds_published(self, generated):
        assert len(generated.feeds.urls()) == generated.profile.feeds

    def test_planted_ground_truth_keys(self, generated):
        assert {"q3_large_files", "q4_vision_sections",
                "q5_conclusion_sections", "q7_figure_refs",
                "q8_shared_tex"} <= set(generated.planted)
