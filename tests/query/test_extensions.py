"""Tests for the query-engine extensions: expansion strategies,
cost-based optimization, and ranked search."""

from datetime import datetime

import pytest

from repro.core.errors import QueryExecutionError
from repro.imapsim import ImapServer
from repro.imapsim.latency import no_latency
from repro.query import QueryProcessor
from repro.query.ranking import ranked_search
from repro.rvm import IndexingPolicy, ResourceViewManager, default_content_converter
from repro.rvm.plugins import FilesystemPlugin
from repro.vfs import VirtualFileSystem

TEX = r"""
\documentclass{article}
\begin{document}
\section{Introduction}
Rare xenolith keyword appears here with database words.
\begin{center}\begin{figure}\caption{Indexing time}\label{f:1}
\end{figure}\end{center}
\section{Conclusions}
systems text, see \ref{f:1}.
\end{document}
"""


@pytest.fixture(scope="module")
def rvm():
    fs = VirtualFileSystem()
    fs.mkdir("/papers/VLDB2006", parents=True)
    fs.write_file("/papers/VLDB2006/a.tex", TEX)
    fs.write_file("/papers/VLDB2006/b.tex",
                  TEX.replace("xenolith", "ordinary"))
    fs.write_file("/papers/notes.txt", "database notes, nothing else")
    manager = ResourceViewManager()
    manager.register_plugin(FilesystemPlugin(
        fs, content_converter=default_content_converter()
    ))
    manager.sync_all()
    return manager


PATH_QUERIES = [
    '//papers//Introduction',
    '//VLDB2006//*[class="environment"]//figure*',
    '//papers//*[class="texref"]',
    '//papers//Conclusions/*["systems"]',
]


class TestExpansionStrategies:
    @pytest.mark.parametrize("query", PATH_QUERIES)
    def test_all_strategies_agree(self, rvm, query):
        results = {}
        for strategy in ("forward", "backward", "auto"):
            qp = QueryProcessor(rvm, expansion=strategy)
            results[strategy] = set(qp.execute(query).uris())
        assert results["forward"] == results["backward"] == results["auto"]

    def test_backward_visits_fewer_for_selective_targets(self, rvm):
        """With few candidates and many sources, backward expansion
        touches fewer intermediate views — [30]'s observation."""
        query = '//papers//*[class="texref"]'
        forward = QueryProcessor(rvm, expansion="forward").execute(query)
        backward = QueryProcessor(rvm, expansion="backward").execute(query)
        assert len(forward) == len(backward)
        assert backward.expanded_views < forward.expanded_views

    def test_auto_never_expands_more_than_both(self, rvm):
        """The bidirectional heuristic picks the smaller frontier, so it
        does at most the work of the direction it selects."""
        query = '//papers//*[class="texref"]'
        forward = QueryProcessor(rvm, expansion="forward").execute(query)
        backward = QueryProcessor(rvm, expansion="backward").execute(query)
        auto = QueryProcessor(rvm, expansion="auto").execute(query)
        assert set(auto.uris()) == set(forward.uris())
        assert auto.expanded_views <= max(forward.expanded_views,
                                          backward.expanded_views)
        assert auto.expanded_views in (forward.expanded_views,
                                       backward.expanded_views)

    def test_strategy_shows_in_plan(self, rvm):
        qp = QueryProcessor(rvm, expansion="backward")
        assert "strategy=backward" in qp.explain("//papers//Introduction")

    def test_unknown_strategy_rejected(self, rvm):
        with pytest.raises(QueryExecutionError):
            QueryProcessor(rvm, expansion="sideways")

    def test_backward_without_replica_rejected(self):
        fs = VirtualFileSystem()
        fs.write_file("/a/x.txt", "content", parents=True)
        manager = ResourceViewManager(policy=IndexingPolicy(
            replicate_groups=False
        ))
        manager.register_plugin(FilesystemPlugin(fs))
        manager.sync_all()
        qp = QueryProcessor(manager, expansion="backward")
        with pytest.raises(QueryExecutionError):
            qp.execute("//a//x.txt")


class TestCostBasedOptimizer:
    def test_results_match_rule_optimizer(self, rvm):
        queries = [
            '[class="latex_section" and "xenolith"]',
            '"database" and not "xenolith"',
            '//papers//Introduction[class="latex_section"]',
        ]
        for query in queries:
            rule = QueryProcessor(rvm, optimizer="rule").execute(query)
            cost = QueryProcessor(rvm, optimizer="cost").execute(query)
            assert set(rule.uris()) == set(cost.uris()), query

    def test_rare_term_ordered_first(self, rvm):
        """'xenolith' occurs in one document only; the latex_section
        class matches more views — cost-based ordering puts the rare
        term first, rule-based puts the class lookup first."""
        query = '[class="latex_section" and "xenolith"]'
        rule_plan = QueryProcessor(rvm, optimizer="rule").explain(query)
        cost_plan = QueryProcessor(rvm, optimizer="cost").explain(query)
        assert rule_plan.splitlines()[1].strip().startswith("ClassLookup")
        assert cost_plan.splitlines()[1].strip().startswith("ContentSearch")

    def test_estimates_reflect_document_frequency(self, rvm):
        from repro.query.executor import ExecutionContext
        from repro.query.functions import FunctionTable
        ctx = ExecutionContext(rvm, FunctionTable())
        rare = ctx.content_estimate("xenolith", is_phrase=True,
                                    wildcard=False)
        common = ctx.content_estimate("database", is_phrase=True,
                                      wildcard=False)
        assert 0 < rare < common

    def test_unknown_term_estimates_zero(self, rvm):
        from repro.query.executor import ExecutionContext
        from repro.query.functions import FunctionTable
        ctx = ExecutionContext(rvm, FunctionTable())
        assert ctx.content_estimate("zzzznope", is_phrase=True,
                                    wildcard=False) == 0

    def test_unknown_optimizer_rejected(self, rvm):
        with pytest.raises(QueryExecutionError):
            QueryProcessor(rvm, optimizer="quantum")


class TestRankedSearch:
    def test_scores_descending(self, rvm):
        hits = ranked_search(rvm, "database indexing", limit=10)
        scores = [h.score for h in hits]
        assert scores == sorted(scores, reverse=True)
        assert all(s > 0 for s in scores)

    def test_name_matches_boosted(self, rvm):
        # 'notes.txt' matches "notes" in both name and content; content
        # views that merely mention the word rank below it
        hits = ranked_search(rvm, "notes", limit=5)
        assert hits[0].uri == "fs:///papers/notes.txt"

    def test_limit_respected(self, rvm):
        assert len(ranked_search(rvm, "database", limit=2)) == 2

    def test_within_filters(self, rvm):
        everything = ranked_search(rvm, "database", limit=50)
        only_notes = ranked_search(
            rvm, "database", limit=50,
            within={"fs:///papers/notes.txt"},
        )
        assert len(only_notes) == 1
        assert len(everything) > 1

    def test_no_matches(self, rvm):
        assert ranked_search(rvm, "qqqqq", limit=5) == []


class TestPolicyFallbacks:
    @pytest.fixture(scope="class")
    def pair(self):
        def build(policy):
            fs = VirtualFileSystem()
            fs.mkdir("/docs", parents=True)
            fs.write_file("/docs/a.tex", TEX)
            fs.write_file("/docs/n.txt", "database tuning text")
            manager = ResourceViewManager(policy=policy)
            manager.register_plugin(FilesystemPlugin(
                fs, content_converter=default_content_converter()
            ))
            manager.sync_all()
            return manager

        return build(None), build(IndexingPolicy.minimal())

    @pytest.mark.parametrize("query", [
        '"database tuning"',
        '[size > 10]',
        '//docs//Introduction',
        '//docs//?onclusion*',
    ])
    def test_minimal_policy_equivalent(self, pair, query):
        full, minimal = pair
        full_result = QueryProcessor(full).execute(query)
        minimal_result = QueryProcessor(minimal).execute(query)
        assert set(full_result.uris()) == set(minimal_result.uris())

    def test_minimal_policy_smaller_indexes(self, pair):
        full, minimal = pair
        assert minimal.indexes.total_size_bytes() < \
            full.indexes.total_size_bytes()

    def test_minimal_skips_structures(self, pair):
        _, minimal = pair
        assert minimal.indexes.content_index.document_count == 0
        assert minimal.indexes.name_index.document_count == 0
        assert len(minimal.indexes.tuple_index) == 0
        assert len(minimal.indexes.group_replica) == 0
