"""Unit tests for the iQL unparser (round-trips are property-tested)."""

from datetime import datetime

import pytest

from repro.bench import PAPER_QUERIES
from repro.query.ast import (
    Comparison,
    CompareOp,
    FunctionCall,
    KeywordAtom,
    Literal,
    PredicateExpr,
    QualifiedRef,
)
from repro.query.parser import parse_iql
from repro.query.unparse import unparse


class TestCanonicalForms:
    def test_phrase(self):
        assert unparse(parse_iql('"Donald Knuth"')) == '"Donald Knuth"'

    def test_keyword_and(self):
        assert unparse(parse_iql('"a" and "b"')) == '"a" and "b"'

    def test_comparisons_bracketed(self):
        text = unparse(parse_iql("[size > 42000]"))
        assert text == '[size > 42000]'

    def test_date_literal(self):
        text = unparse(parse_iql("[lastmodified < @12.06.2005]"))
        assert "@12.06.2005" in text

    def test_function(self):
        text = unparse(parse_iql("[modified < yesterday()]"))
        assert "yesterday()" in text

    def test_path_with_predicate(self):
        text = unparse(parse_iql('//Introduction[class="latex_section"]'))
        assert text == '//Introduction[class = "latex_section"]'

    def test_quoted_name_test(self):
        text = unparse(parse_iql('//"All Projects"'))
        assert text == '//"All Projects"'

    def test_union(self):
        text = unparse(parse_iql('union( //A, //B )'))
        assert text == "union( //A, //B )"

    def test_join(self):
        text = unparse(parse_iql(
            'join( //X as A, //Y as B, A.name = B.tuple.label )'
        ))
        assert "as A" in text and "A.name = B.tuple.label" in text

    def test_nested_boolean_parenthesized(self):
        text = unparse(parse_iql('"a" and ("b" or "c")'))
        reparsed = parse_iql(text)
        assert unparse(reparsed) == text


class TestPaperQueries:
    @pytest.mark.parametrize("query_id", list(PAPER_QUERIES))
    def test_all_paper_queries_roundtrip(self, query_id):
        original = parse_iql(PAPER_QUERIES[query_id])
        text = unparse(original)
        reparsed = parse_iql(text)
        assert unparse(reparsed) == text


class TestOperands:
    def test_string_literal_quoted(self):
        pred = Comparison("label", CompareOp.EQ, Literal("fig:1"))
        assert '"fig:1"' in unparse(PredicateExpr(pred))

    def test_qualified_ref_forms(self):
        from repro.query.unparse import _unparse_operand
        assert _unparse_operand(QualifiedRef("A", "name")) == "A.name"
        assert _unparse_operand(
            QualifiedRef("B", "tuple", "label")
        ) == "B.tuple.label"

    def test_datetime_formats_as_date_literal(self):
        from repro.query.unparse import _unparse_operand
        assert _unparse_operand(
            Literal(datetime(2005, 6, 12))
        ) == "@12.06.2005"
