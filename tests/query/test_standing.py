"""Tests for standing queries (information-filter notifications)."""

from datetime import datetime

import pytest

from repro.core.errors import QueryError
from repro.core.resource_view import ResourceView
from repro.pushops import ChangeKind
from repro.query.parser import parse_iql
from repro.query.standing import StandingQueries, matches_view
from repro.rvm import ResourceViewManager, default_content_converter
from repro.rvm.plugins import FilesystemPlugin
from repro.vfs import VirtualFileSystem


def _predicate(text: str):
    return parse_iql(text).predicate


class TestMatchesView:
    def test_phrase_match(self):
        view = ResourceView("n", content="the database tuning guide")
        assert matches_view(_predicate('"database tuning"'), view)
        assert not matches_view(_predicate('"tuning database"'), view)

    def test_single_keyword(self):
        view = ResourceView("n", content="Database systems!")
        assert matches_view(_predicate("database"), view)
        assert not matches_view(_predicate("filesystems"), view)

    def test_wildcard_keyword(self):
        view = ResourceView("n", content="indexing matters")
        assert matches_view(_predicate("index*"), view)

    def test_boolean_combinations(self):
        view = ResourceView("n", content="alpha beta")
        assert matches_view(_predicate('"alpha" and "beta"'), view)
        assert matches_view(_predicate('"alpha" or "gamma"'), view)
        assert matches_view(_predicate('not "gamma"'), view)
        assert not matches_view(_predicate('"alpha" and "gamma"'), view)

    def test_name_comparison(self):
        view = ResourceView("report.txt")
        assert matches_view(_predicate('[name = "report.txt"]'), view)
        assert matches_view(_predicate('[name = "*.txt"]'), view)
        assert matches_view(_predicate('[name != "other"]'), view)

    def test_class_comparison_subclass_aware(self):
        view = ResourceView("f", class_name="figure")
        assert matches_view(_predicate('[class = "figure"]'), view)
        assert matches_view(_predicate('[class = "environment"]'), view)
        assert not matches_view(_predicate('[class = "latex_section"]'),
                                view)

    def test_tuple_comparison_with_alias(self):
        view = ResourceView("f", tuple_component={
            "size": 900, "modified": datetime(2005, 2, 1),
        })
        assert matches_view(_predicate("[size > 800]"), view)
        assert matches_view(
            _predicate("[lastmodified < @01.01.2006]"), view
        )
        assert not matches_view(_predicate("[size < 800]"), view)

    def test_missing_attribute_never_matches(self):
        view = ResourceView("f")
        assert not matches_view(_predicate("[size > 0]"), view)

    def test_incomparable_types_never_match(self):
        view = ResourceView("f", tuple_component={"size": "large"})
        assert not matches_view(_predicate("[size > 10]"), view)

    def test_function_operand(self):
        view = ResourceView("f", tuple_component={
            "modified": datetime(2004, 1, 1),
        })
        assert matches_view(_predicate("[modified < yesterday()]"), view)

    def test_infinite_content_sampled(self):
        from repro.core.components import ContentComponent

        def forever():
            while True:
                yield from "needle "

        view = ResourceView("s", content=ContentComponent.infinite(forever))
        assert matches_view(_predicate('"needle"'), view)


class TestStandingQueryRegistry:
    def _world(self):
        fs = VirtualFileSystem()
        fs.write_file("/seed.txt", "boring seed", parents=True)
        rvm = ResourceViewManager()
        rvm.register_plugin(FilesystemPlugin(
            fs, content_converter=default_content_converter()
        ))
        rvm.sync_all()
        rvm.subscribe_all()
        return fs, rvm

    def test_new_view_triggers_notification(self):
        fs, rvm = self._world()
        standing = StandingQueries(rvm.bus)
        received = []
        standing.register('"urgent"', received.append)
        fs.write_file("/mail.txt", "urgent business proposal")
        rvm.process_notifications()
        assert len(received) == 1
        assert received[0].view.name == "mail.txt"
        assert received[0].kind is ChangeKind.ADDED

    def test_non_matching_view_silent(self):
        fs, rvm = self._world()
        standing = StandingQueries(rvm.bus)
        received = []
        standing.register('"urgent"', received.append)
        fs.write_file("/other.txt", "nothing special")
        rvm.process_notifications()
        assert received == []

    def test_initial_scan_views_also_match(self):
        fs = VirtualFileSystem()
        fs.write_file("/pre.txt", "urgent pre-existing", parents=True)
        rvm = ResourceViewManager()
        rvm.register_plugin(FilesystemPlugin(fs))
        standing = StandingQueries(rvm.bus)
        received = []
        standing.register('"urgent"', received.append)
        rvm.sync_all()  # scan publishes ADDED events for every view
        assert len(received) == 1

    def test_structural_predicate(self):
        fs, rvm = self._world()
        standing = StandingQueries(rvm.bus)
        received = []
        standing.register('[class = "latex_section" and "budget"]',
                          received.append)
        fs.write_file(
            "/new.tex",
            r"\begin{document}\section{Plan}budget discussion"
            r"\end{document}",
        )
        rvm.process_notifications()
        assert len(received) == 1
        assert received[0].view.class_name == "latex_section"

    def test_cancel(self):
        fs, rvm = self._world()
        standing = StandingQueries(rvm.bus)
        received = []
        subscription = standing.register('"urgent"', received.append)
        assert standing.cancel(subscription)
        assert not standing.cancel(subscription)
        fs.write_file("/late.txt", "urgent!")
        rvm.process_notifications()
        assert received == []

    def test_multiple_subscriptions_independent(self):
        fs, rvm = self._world()
        standing = StandingQueries(rvm.bus)
        a_hits, b_hits = [], []
        standing.register('"alpha"', a_hits.append)
        standing.register('"beta"', b_hits.append)
        fs.write_file("/x.txt", "alpha only")
        rvm.process_notifications()
        assert len(a_hits) == 1 and len(b_hits) == 0
        assert len(standing) == 2

    def test_path_query_rejected(self):
        fs, rvm = self._world()
        standing = StandingQueries(rvm.bus)
        with pytest.raises(QueryError):
            standing.register("//papers//x", lambda n: None)

    def test_match_counter(self):
        fs, rvm = self._world()
        standing = StandingQueries(rvm.bus)
        standing.register('"zebra"', lambda n: None)
        fs.write_file("/z1.txt", "zebra one")
        fs.write_file("/z2.txt", "zebra two")
        rvm.process_notifications()
        assert standing.matched == 2


class TestNotificationSemantics:
    def test_exactly_once_per_new_file(self):
        """A file write dirties both the file and its parent; the
        standing query must still fire exactly once (ADDED semantics)."""
        fs = VirtualFileSystem()
        fs.write_file("/seed.txt", "seed", parents=True)
        rvm = ResourceViewManager()
        rvm.register_plugin(FilesystemPlugin(fs))
        rvm.sync_all()
        rvm.subscribe_all()
        standing = StandingQueries(rvm.bus)
        received = []
        standing.register('"vacation"', received.append)
        fs.write_file("/plan.txt", "vacation plan")
        rvm.process_notifications()
        assert len(received) == 1

    def test_modified_kind_available(self):
        fs = VirtualFileSystem()
        fs.write_file("/doc.txt", "original prose", parents=True)
        rvm = ResourceViewManager()
        rvm.register_plugin(FilesystemPlugin(fs))
        rvm.sync_all()
        rvm.subscribe_all()
        standing = StandingQueries(rvm.bus)
        received = []
        standing.register(
            '"edited"', received.append,
            on=frozenset({ChangeKind.ADDED, ChangeKind.MODIFIED}),
        )
        fs.write_file("/doc.txt", "edited prose")
        rvm.process_notifications()
        assert len(received) == 1
        assert received[0].kind is ChangeKind.MODIFIED

    def test_added_only_ignores_modifications(self):
        fs = VirtualFileSystem()
        fs.write_file("/doc.txt", "payload word", parents=True)
        rvm = ResourceViewManager()
        rvm.register_plugin(FilesystemPlugin(fs))
        rvm.sync_all()
        rvm.subscribe_all()
        standing = StandingQueries(rvm.bus)
        received = []
        standing.register('"payload"', received.append)  # ADDED only
        fs.write_file("/doc.txt", "payload again")
        rvm.process_notifications()
        assert received == []
