"""Unit tests for the batched engine's operators.

These drive operators directly with static batch sources (no dataspace,
no compiler), pinning the protocol contracts end-to-end tests cannot
see: laziness (who gets pulled when), early close propagation, ordered
stream discipline across batch boundaries, and the engine-wide
determinism rule (equal scores tie-break by URI ascending).
"""

from __future__ import annotations

import pytest

from repro.query.ast import Axis
from repro.query.engine import (
    Batch,
    EngineConfig,
    TopKHeap,
    chunked,
    partitioned_filter,
)
from repro.query.engine.operators import (
    ConcatUnion,
    ExpandOperator,
    LimitOp,
    MergeDiff,
    MergeIntersect,
    MergeUnion,
    Operator,
    SetScan,
    Sort,
    TopKOperator,
    _Cursor,
    drain,
)


class StaticSource(Operator):
    """Emits pre-built batches, counting pulls and closes."""

    def __init__(self, *chunks, ordered: bool = False,
                 scores: bool = False):
        self.ordered = ordered
        self._chunks = [
            Batch(tuple(u for u, _ in chunk) if scores else tuple(chunk),
                  scores=tuple(s for _, s in chunk) if scores else None,
                  ordered=ordered)
            for chunk in chunks
        ]
        self.pulls = 0
        self.closes = 0
        self._index = 0

    def open(self, ctx) -> None:
        self._index = 0

    def next_batch(self):
        self.pulls += 1
        if self._index >= len(self._chunks):
            return None
        batch = self._chunks[self._index]
        self._index += 1
        return batch

    def close(self) -> None:
        self.closes += 1


class FakeCtx:
    """The slice of ExecutionContext the operators touch.

    Runs the operators in *string mode*: ``dict_view`` is ``None`` and
    the key helpers are identities, so batch keys are URI strings and
    the ordered-stream contract is plain lexicographic order — the same
    ordering the dictionary's integer sort keys encode in production.
    """

    dict_view = None

    def __init__(self, batch_size: int = 4, graph=None):
        self.engine = EngineConfig(batch_size=batch_size)
        self.expanded_views = 0
        self._graph = graph or {}

    def checkpoint(self) -> None:
        pass

    def count(self, name: str, amount: int = 1) -> None:
        pass

    def children_of(self, uri: str):
        return tuple(self._graph.get(uri, ()))

    # identity key mapping (production converts URIs to int64 keys)

    def keys_for_set(self, uris):
        return tuple(sorted(uris))

    def keys_in_order(self, uris):
        return tuple(uris)

    def key_for_uri(self, uri):
        return uri

    def uri_of_key(self, key):
        return key


def run(op: Operator, ctx=None) -> list[str]:
    op.open(ctx if ctx is not None else FakeCtx())
    return list(drain(op))


# -- Batch / chunked ---------------------------------------------------------

class TestBatch:
    def test_score_column_must_match_length(self):
        with pytest.raises(ValueError):
            Batch(uris=("a", "b"), scores=(1.0,))

    def test_truncated_keeps_scores_and_order_flag(self):
        batch = Batch(uris=("a", "b", "c"), scores=(3.0, 2.0, 1.0),
                      ordered=True)
        cut = batch.truncated(2)
        assert cut.uris == ("a", "b")
        assert cut.scores == (3.0, 2.0)
        assert cut.ordered

    def test_truncated_beyond_length_is_identity(self):
        batch = Batch(uris=("a",))
        assert batch.truncated(5) is batch

    def test_chunked_slices_and_flags(self):
        batches = list(chunked("abcdefg", 3, ordered=True))
        assert [b.uris for b in batches] == [
            ("a", "b", "c"), ("d", "e", "f"), ("g",)]
        assert all(b.ordered for b in batches)


# -- cursor ------------------------------------------------------------------

class TestCursor:
    def test_advance_to_skips_across_batches(self):
        source = StaticSource(["a", "c"], ["e", "g"], ordered=True)
        source.open(FakeCtx())
        cursor = _Cursor(source)
        assert cursor.ensure() and cursor.value == "a"
        assert cursor.advance_to("d") and cursor.value == "e"
        assert not cursor.advance_to("z")
        assert cursor.exhausted

    def test_skips_empty_batches(self):
        source = StaticSource([], ["b"], ordered=True)
        source.open(FakeCtx())
        cursor = _Cursor(source)
        assert cursor.ensure() and cursor.value == "b"


# -- top-k -------------------------------------------------------------------

class TestTopKHeap:
    def test_keeps_the_k_best(self):
        heap = TopKHeap(2)
        for uri, score in [("a", 1.0), ("b", 5.0), ("c", 3.0)]:
            heap.push(uri, score)
        assert heap.best_first() == [("b", 5.0), ("c", 3.0)]

    def test_equal_scores_tie_break_by_uri_ascending(self):
        """The engine-wide determinism rule: at equal score the
        lexically smaller URI wins a heap slot and ranks first."""
        heap = TopKHeap(2)
        for uri in ["c", "a", "b"]:
            heap.push(uri, 1.0)
        assert heap.best_first() == [("a", 1.0), ("b", 1.0)]


# -- partitioned filter ------------------------------------------------------

class TestPartitionedFilter:
    def test_matches_sequential_filter_and_preserves_order(self):
        rows = [f"row-{i}" for i in range(100)]
        predicate = lambda row: row.endswith(("0", "5"))  # noqa: E731
        expected = [row for row in rows if predicate(row)]
        assert partitioned_filter(rows, predicate, threads=1) == expected
        assert partitioned_filter(rows, predicate, threads=4) == expected

    def test_more_threads_than_rows(self):
        assert partitioned_filter(["x"], lambda r: True, threads=8) == ["x"]


# -- scans -------------------------------------------------------------------

class TestSetScan:
    def test_fetch_deferred_to_first_pull(self):
        calls = []

        def fetch(ctx):
            calls.append(1)
            return {"b", "a", "c"}

        scan = SetScan(fetch)
        scan.open(FakeCtx(batch_size=2))
        assert calls == []  # open() does no substrate work
        assert list(drain(scan)) == ["a", "b", "c"]  # sorted, chunked
        assert calls == [1]


# -- merge family ------------------------------------------------------------

def _ordered(*uris):
    return StaticSource(list(uris), ordered=True)


class TestMergeOperators:
    def test_intersect_across_batch_boundaries(self):
        left = StaticSource(["a", "b"], ["d", "f"], ordered=True)
        right = StaticSource(["b", "d"], ["e", "f", "g"], ordered=True)
        assert run(MergeIntersect([left, right]),
                   FakeCtx(batch_size=2)) == ["b", "d", "f"]

    def test_intersect_empty_first_input_skips_the_rest(self):
        empty = StaticSource(ordered=True)
        sibling = _ordered("a", "b")
        assert run(MergeIntersect([empty, sibling])) == []
        assert sibling.pulls == 0  # never pulled: the short-circuit
        assert sibling.closes >= 1  # but still released

    def test_union_dedups_across_inputs(self):
        out = run(MergeUnion([_ordered("a", "c"), _ordered("b", "c", "d")]),
                  FakeCtx(batch_size=2))
        assert out == ["a", "b", "c", "d"]

    def test_union_dedups_across_batch_boundaries(self):
        # batch fills exactly at "b" while the other child's equal "b"
        # is still on the heap — the next batch must not re-emit it
        union = MergeUnion([_ordered("a", "b"), _ordered("b", "c")])
        union.open(FakeCtx(batch_size=2))
        batches = []
        while (batch := union.next_batch()) is not None:
            batches.append(batch.uris)
        assert batches == [("a", "b"), ("c",)]

    def test_union_stream_is_strictly_increasing(self):
        union = MergeUnion([_ordered("a", "b", "c"), _ordered("b", "c", "d")])
        union.open(FakeCtx(batch_size=1))
        out = list(drain(union))
        assert out == sorted(set(out)) == ["a", "b", "c", "d"]

    def test_diff_streams_the_anti_join(self):
        universe = _ordered("a", "b", "c", "d", "e")
        assert run(MergeDiff(universe, _ordered("b", "d"))) == ["a", "c", "e"]

    def test_diff_with_empty_subtrahend(self):
        assert run(MergeDiff(_ordered("a", "b"), _ordered())) == ["a", "b"]


class TestConcatUnion:
    def test_dedups_with_a_seen_set(self):
        out = run(ConcatUnion([StaticSource(["b", "a"]),
                               StaticSource(["a", "c"])]))
        assert out == ["b", "a", "c"]  # pipeline order, not sorted

    def test_later_children_not_pulled_until_earlier_exhaust(self):
        first = StaticSource(["a"], ["b"])
        second = StaticSource(["c"])
        union = ConcatUnion([first, second])
        union.open(FakeCtx())
        assert union.next_batch().uris == ("a",)
        assert second.pulls == 0


# -- limit / sort / top-k ----------------------------------------------------

class TestLimitOp:
    def test_truncates_and_closes_the_child_early(self):
        source = StaticSource(["a", "b", "c"], ["d", "e"])
        limit = LimitOp(source, 2)
        limit.open(FakeCtx())
        batch = limit.next_batch()
        assert batch.uris == ("a", "b")
        assert source.pulls == 1  # the second batch is never produced
        assert source.closes >= 1  # the scan below was told to stop
        assert limit.next_batch() is None
        assert source.pulls == 1  # ...and is not pulled again

    def test_limit_skips_trailing_union_children(self):
        first = StaticSource(["a", "b"])
        second = StaticSource(["c"])
        out = run(LimitOp(ConcatUnion([first, second]), 2))
        assert out == ["a", "b"]
        assert second.pulls == 0

    def test_limit_larger_than_stream(self):
        assert run(LimitOp(StaticSource(["a"]), 9)) == ["a"]


class TestSort:
    def test_orders_and_dedups(self):
        out = run(Sort(StaticSource(["c", "a"], ["b", "a"])),
                  FakeCtx(batch_size=2))
        assert out == ["a", "b", "c"]


class TestTopKOperator:
    def test_emits_best_first_with_scores(self):
        source = StaticSource([("a", 1.0), ("b", 9.0)], [("c", 5.0)],
                              scores=True)
        top = TopKOperator(source, 2)
        top.open(FakeCtx())
        batch = top.next_batch()
        assert batch.uris == ("b", "c")
        assert batch.scores == (9.0, 5.0)
        assert source.closes >= 1


# -- expansion ---------------------------------------------------------------

class TestExpandOperator:
    def test_forward_descendant_terminates_on_cycles(self):
        graph = {"a": ("b",), "b": ("c",), "c": ("a",)}  # a 3-cycle
        ctx = FakeCtx(graph=graph)
        expand = ExpandOperator(StaticSource(["a"]), None,
                                Axis.DESCENDANT, "forward")
        out = run(expand, ctx)
        assert sorted(out) == ["a", "b", "c"]
        assert ctx.expanded_views == 3  # each view discovered once

    def test_forward_child_is_one_hop(self):
        graph = {"a": ("b",), "b": ("c",)}
        out = run(ExpandOperator(StaticSource(["a"]), None,
                                 Axis.CHILD, "forward"),
                  FakeCtx(graph=graph))
        assert out == ["b"]

    def test_candidates_filter_the_stream(self):
        graph = {"a": ("b", "c", "d")}
        out = run(ExpandOperator(StaticSource(["a"]),
                                 StaticSource(["c", "d"]),
                                 Axis.CHILD, "forward"),
                  FakeCtx(graph=graph))
        assert sorted(out) == ["c", "d"]
