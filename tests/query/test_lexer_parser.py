"""Tests for the iQL lexer and parser."""

from datetime import datetime

import pytest

from repro.core.errors import QuerySyntaxError
from repro.query.ast import (
    Axis,
    CompareOp,
    Comparison,
    FunctionCall,
    IntersectExpr,
    JoinExpr,
    KeywordAtom,
    Literal,
    PathExpr,
    PredAnd,
    PredNot,
    PredOr,
    PredicateExpr,
    QualifiedRef,
    UnionExpr,
)
from repro.query.lexer import TokenKind, tokenize_iql
from repro.query.parser import parse_iql


class TestLexer:
    def test_path_tokens(self):
        kinds = [t.kind for t in tokenize_iql("//a/b")]
        assert kinds == [TokenKind.DSLASH, TokenKind.WORD, TokenKind.SLASH,
                         TokenKind.WORD, TokenKind.END]

    def test_string_token(self):
        tokens = tokenize_iql('"Mike Franklin"')
        assert tokens[0].kind is TokenKind.STRING
        assert tokens[0].value == "Mike Franklin"

    def test_unterminated_string(self):
        with pytest.raises(QuerySyntaxError):
            tokenize_iql('"oops')

    def test_date_token(self):
        tokens = tokenize_iql("@12.06.2005")
        assert tokens[0].kind is TokenKind.DATE
        assert tokens[0].value == "12.06.2005"

    def test_number_token(self):
        tokens = tokenize_iql("42000")
        assert tokens[0].kind is TokenKind.NUMBER

    def test_wildcard_words(self):
        tokens = tokenize_iql("*Vision ?onclusion* *.tex")
        assert all(t.kind is TokenKind.WORD for t in tokens[:-1])

    def test_two_char_operators(self):
        values = [t.value for t in tokenize_iql("a != b <= c >= d")]
        assert "!=" in values and "<=" in values and ">=" in values

    def test_unexpected_character(self):
        with pytest.raises(QuerySyntaxError):
            tokenize_iql("a # b")


class TestKeywordQueries:
    def test_phrase(self):
        ast = parse_iql('"Donald Knuth"')
        assert isinstance(ast, PredicateExpr)
        assert ast.predicate == KeywordAtom("Donald Knuth", is_phrase=True)

    def test_and_of_phrases(self):
        ast = parse_iql('"Donald" and "Knuth"')
        assert isinstance(ast.predicate, PredAnd)
        assert len(ast.predicate.parts) == 2

    def test_or_precedence(self):
        ast = parse_iql('"a" and "b" or "c"')
        assert isinstance(ast.predicate, PredOr)
        assert isinstance(ast.predicate.parts[0], PredAnd)

    def test_not(self):
        ast = parse_iql('not "spam"')
        assert isinstance(ast.predicate, PredNot)

    def test_parens_override(self):
        ast = parse_iql('"a" and ("b" or "c")')
        assert isinstance(ast.predicate, PredAnd)
        assert isinstance(ast.predicate.parts[1], PredOr)

    def test_bare_word_keyword(self):
        ast = parse_iql("database")
        assert ast.predicate == KeywordAtom("database", is_phrase=False)

    def test_wildcard_keyword(self):
        ast = parse_iql("index*")
        assert ast.predicate.wildcard

    def test_empty_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_iql("  ")


class TestPredicateExpressions:
    def test_size_comparison(self):
        ast = parse_iql("[size > 42000]")
        cmp_ = ast.predicate
        assert isinstance(cmp_, Comparison)
        assert cmp_.attribute == "size"
        assert cmp_.op is CompareOp.GT
        assert cmp_.operand == Literal(42000)

    def test_paper_q3(self):
        ast = parse_iql("[size > 420000 and lastmodified < @12.06.2005]")
        parts = ast.predicate.parts
        assert parts[1].operand == Literal(datetime(2005, 6, 12))

    def test_function_operand(self):
        ast = parse_iql("[lastmodified < yesterday()]")
        assert ast.predicate.operand == FunctionCall("yesterday")

    def test_class_equality(self):
        ast = parse_iql('[class="latex_section"]')
        assert ast.predicate == Comparison(
            "class", CompareOp.EQ, Literal("latex_section")
        )

    def test_bad_date_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_iql("[x < @99.99]")

    def test_float_literal(self):
        ast = parse_iql("[score >= 0.5]")
        assert ast.predicate.operand == Literal(0.5)


class TestPathExpressions:
    def test_single_step(self):
        ast = parse_iql("//Introduction")
        assert isinstance(ast, PathExpr)
        step = ast.steps[0]
        assert step.axis is Axis.DESCENDANT
        assert step.name_test == "Introduction"
        assert step.predicate is None

    def test_step_with_predicate(self):
        ast = parse_iql('//Introduction[class="latex_section"]')
        assert ast.steps[0].predicate is not None

    def test_multi_step(self):
        ast = parse_iql('//PIM//Introduction')
        assert len(ast.steps) == 2

    def test_child_axis(self):
        ast = parse_iql('//papers//*Vision/*["Franklin"]')
        assert [s.axis for s in ast.steps] == [
            Axis.DESCENDANT, Axis.DESCENDANT, Axis.CHILD
        ]
        assert ast.steps[1].name_test == "*Vision"
        assert ast.steps[2].name_test is None  # '*' = any

    def test_predicate_only_step(self):
        ast = parse_iql('//OLAP//[class="figure" and "Indexing time"]')
        assert ast.steps[1].name_test is None
        assert isinstance(ast.steps[1].predicate, PredAnd)

    def test_quoted_name_test(self):
        ast = parse_iql('//"All Projects"')
        assert ast.steps[0].name_test == "All Projects"

    def test_wildcard_detection(self):
        ast = parse_iql("//VLDB200?//?onclusion*")
        assert ast.steps[0].has_wildcard
        assert ast.steps[1].has_wildcard

    def test_extension_pattern(self):
        ast = parse_iql("//*.tex")
        assert ast.steps[0].name_test == "*.tex"


class TestCompoundQueries:
    def test_union(self):
        ast = parse_iql('union( //A//["x"], //B//["x"])')
        assert isinstance(ast, UnionExpr)
        assert len(ast.parts) == 2

    def test_intersect(self):
        ast = parse_iql('intersect( "a", "b" )')
        assert isinstance(ast, IntersectExpr)

    def test_union_needs_two_parts(self):
        with pytest.raises(QuerySyntaxError):
            parse_iql('union( "a" )')

    def test_join_structure(self):
        ast = parse_iql(
            'join( //X//*[class="texref"] as A, //Y//figure* as B, '
            "A.name = B.tuple.label )"
        )
        assert isinstance(ast, JoinExpr)
        assert ast.left_var == "A" and ast.right_var == "B"
        assert ast.condition.left == QualifiedRef("A", "name")
        assert ast.condition.right == QualifiedRef("B", "tuple", "label")

    def test_join_unknown_variable_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_iql('join( "a" as A, "b" as B, C.name = B.name )')

    def test_join_bad_component_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_iql('join( "a" as A, "b" as B, A.banana = B.name )')

    def test_tuple_ref_needs_attribute(self):
        with pytest.raises(QuerySyntaxError):
            parse_iql('join( "a" as A, "b" as B, A.tuple = B.name )')

    def test_join_with_literal_rhs(self):
        ast = parse_iql('join( "a" as A, "b" as B, A.name = "x" )')
        assert ast.condition.right == Literal("x")

    def test_word_union_without_paren_is_keyword(self):
        ast = parse_iql("union")
        assert isinstance(ast, PredicateExpr)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_iql('"a" ]')
