"""Tests for the iQL function table."""

from datetime import datetime

import pytest

from repro.core.errors import QueryExecutionError
from repro.query.functions import DEFAULT_REFERENCE, FunctionTable


class TestBuiltins:
    def test_now_is_reference(self):
        reference = datetime(2005, 9, 23, 14, 30)
        table = FunctionTable(reference)
        assert table.call("now") == reference

    def test_today_truncates(self):
        table = FunctionTable(datetime(2005, 9, 23, 14, 30))
        assert table.call("today") == datetime(2005, 9, 23)

    def test_yesterday(self):
        table = FunctionTable(datetime(2005, 9, 23, 14, 30))
        assert table.call("yesterday") == datetime(2005, 9, 22)

    def test_default_reference(self):
        assert FunctionTable().call("now") == DEFAULT_REFERENCE

    def test_unknown_function(self):
        with pytest.raises(QueryExecutionError):
            FunctionTable().call("fortnight")

    def test_register_custom(self):
        table = FunctionTable()
        table.register("answer", lambda: 42)
        assert table.call("answer") == 42
        assert "answer" in table.names()

    def test_names_sorted(self):
        names = FunctionTable().names()
        assert names == sorted(names)
        assert {"now", "today", "yesterday"} <= set(names)


class TestDeterminism:
    def test_same_reference_same_results(self):
        a = FunctionTable(datetime(2005, 1, 1))
        b = FunctionTable(datetime(2005, 1, 1))
        assert a.call("yesterday") == b.call("yesterday")
