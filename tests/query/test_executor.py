"""Tests for iQL planning, optimization and execution over a small RVM."""

from datetime import datetime

import pytest

from repro.core.errors import QueryExecutionError, StreamingUnsupportedError
from repro.imapsim import Attachment, EmailMessage, ImapServer
from repro.imapsim.latency import no_latency
from repro.query import QueryProcessor
from repro.query.optimizer import optimize
from repro.query.plan import (
    AllViews,
    ClassLookup,
    Complement,
    ContentSearch,
    Intersect,
    NameEquals,
    NamePattern,
    Union,
    wildcard_regex,
)
from repro.rvm import ResourceViewManager, default_content_converter
from repro.rvm.plugins import FilesystemPlugin, ImapPlugin
from repro.vfs import VirtualFileSystem

PAPER_TEX = r"""
\documentclass{article}
\begin{document}
\section{Introduction}\label{s:i}
Working with Mike Franklin on dataspaces and database topics.
\section{The Grand Vision}
Franklin outlines the plan.
\begin{center}\begin{figure}\caption{Indexing time}\label{fig:one}
\end{figure}\end{center}
\section{Conclusions}
Wonderful systems everywhere, see \ref{fig:one}. Useful documents.
\end{document}
"""


@pytest.fixture(scope="module")
def rvm():
    fs = VirtualFileSystem()
    fs.mkdir("/papers/VLDB2006", parents=True)
    fs.mkdir("/papers/VLDB2005", parents=True)
    fs.write_file("/papers/VLDB2006/main.tex", PAPER_TEX)
    fs.write_file("/papers/VLDB2005/old.tex",
                  r"\begin{document}\section{Intro}"
                  r"Old documents about database tuning.\end{document}")
    fs.write_file("/papers/big.log", "x" * 500_000)
    fs.write_file("/notes.txt", "database tuning every day")

    imap = ImapServer(latency=no_latency())
    imap.deliver("INBOX", EmailMessage(
        subject="review", sender="a@b", to=("c@d",),
        date=datetime(2005, 3, 1), body="database comments",
        attachments=(Attachment("main.tex", PAPER_TEX),),
    ))

    manager = ResourceViewManager()
    converter = default_content_converter()
    manager.register_plugin(FilesystemPlugin(fs,
                                             content_converter=converter))
    manager.register_plugin(ImapPlugin(imap, content_converter=converter))
    manager.sync_all()
    return manager


@pytest.fixture(scope="module")
def qp(rvm):
    return QueryProcessor(rvm,
                          reference_datetime=datetime(2005, 12, 31))


class TestKeywordQueries:
    def test_single_keyword(self, qp):
        result = qp.execute('"database"')
        assert len(result) >= 4

    def test_phrase(self, qp):
        result = qp.execute('"database tuning"')
        uris = set(result.uris())
        assert "fs:///notes.txt" in uris
        assert not any("VLDB2006" in u for u in uris)

    def test_and_keywords(self, qp):
        both = qp.execute('"database" and "tuning"')
        phrase = qp.execute('"database tuning"')
        assert set(phrase.uris()) <= set(both.uris())

    def test_or(self, qp):
        result = qp.execute('"tuning" or "Franklin"')
        assert len(result) >= 3

    def test_not(self, qp):
        everything = len(qp.rvm.catalog)
        no_db = qp.execute('not "database"')
        with_db = qp.execute('"database"')
        assert len(no_db) == everything - len(with_db)


class TestTuplePredicates:
    def test_size_threshold(self, qp):
        result = qp.execute("[size > 420000]")
        assert "fs:///papers/big.log" in result.uris()

    def test_size_and_date(self, qp):
        result = qp.execute("[size > 420000 and lastmodified < @12.06.2005]")
        assert "fs:///papers/big.log" in result.uris()

    def test_date_function(self, qp):
        result = qp.execute("[lastmodified < yesterday()]")
        assert len(result) > 0

    def test_lastmodified_alias(self, qp):
        explicit = qp.execute("[modified < yesterday()]")
        aliased = qp.execute("[lastmodified < yesterday()]")
        assert set(explicit.uris()) == set(aliased.uris())

    def test_equality_on_label(self, qp):
        result = qp.execute('[label = "fig:one"]')
        assert len(result) == 2  # figure view on fs and in the attachment

    def test_unknown_function_raises(self, qp):
        with pytest.raises(QueryExecutionError):
            qp.execute("[modified < fortnight()]")


class TestPathQueries:
    def test_name_and_class(self, qp):
        result = qp.execute('//Introduction[class="latex_section"]')
        assert len(result) == 2  # file + attachment copies

    def test_descendant_scoping(self, qp):
        scoped = qp.execute('//VLDB2006//Introduction')
        assert len(scoped) == 1
        assert scoped.hits[0].uri.startswith("fs:///papers/VLDB2006/")

    def test_intro_example1(self, qp):
        result = qp.execute(
            '//papers//Introduction[class="latex_section" and "Mike Franklin"]'
        )
        assert len(result) == 1

    def test_wildcard_names(self, qp):
        result = qp.execute('//papers//*Vision')
        assert len(result) == 1
        assert result.hits[0].name == "The Grand Vision"

    def test_child_axis(self, qp):
        result = qp.execute('//papers//*Vision/*["Franklin"]')
        assert len(result) == 1
        assert result.hits[0].class_name == "latex_text"

    def test_question_mark_wildcard(self, qp):
        result = qp.execute('//VLDB200?//?onclusion*/*["systems"]')
        assert len(result) == 1

    def test_class_subclass_semantics(self, qp):
        environments = qp.execute('//VLDB2006//*[class="environment"]')
        figures = qp.execute('//VLDB2006//*[class="figure"]')
        assert set(figures.uris()) <= set(environments.uris())
        assert len(environments) > len(figures)

    def test_leading_child_axis_roots(self, qp):
        result = qp.execute('/*')
        # roots: fs root folder + INBOX
        names = {h.name for h in result.hits}
        assert "INBOX" in names

    def test_empty_result(self, qp):
        assert len(qp.execute("//NoSuchNameAnywhere")) == 0


class TestCompound:
    def test_union_dedups(self, qp):
        result = qp.execute(
            'union( //VLDB2005//*["documents"], //VLDB2005//*["documents"])'
        )
        solo = qp.execute('//VLDB2005//*["documents"]')
        assert len(result) == len(solo)

    def test_union_combines(self, qp):
        result = qp.execute(
            'union( //VLDB2005//*["documents"], //VLDB2006//*["documents"])'
        )
        assert len(result) >= 2

    def test_intersect(self, qp):
        result = qp.execute('intersect( "database", "tuning" )')
        both = qp.execute('"database" and "tuning"')
        assert set(result.uris()) == set(both.uris())


class TestJoins:
    def test_q7_shape(self, qp):
        result = qp.execute(
            'join( //VLDB2006//*[class="texref"] as A, '
            '//VLDB2006//*[class="environment"]//figure* as B, '
            "A.name = B.tuple.label )"
        )
        assert len(result) == 1
        pair = result.pairs[0]
        assert pair.left.name == "fig:one"
        assert pair.right.name.startswith("figure")

    def test_q8_cross_subsystem(self, qp):
        result = qp.execute(
            'join ( //*[class = "emailmessage"]//*.tex as A, '
            "//papers//*.tex as B, A.name = B.name )"
        )
        assert len(result) == 1
        pair = result.pairs[0]
        assert pair.left.uri.startswith("imap://")
        assert pair.right.uri.startswith("fs:///papers/")

    def test_join_tracks_expansion_effort(self, qp):
        result = qp.execute(
            'join ( //*[class = "emailmessage"]//*.tex as A, '
            "//papers//*.tex as B, A.name = B.name )"
        )
        assert result.expanded_views > 0
        assert result.is_join

    def test_join_inequality(self, qp):
        result = qp.execute(
            'join( //VLDB2006//Introduction as A, '
            "//VLDB2005//Intro as B, A.name != B.name )"
        )
        assert len(result) == 1


class TestOptimizer:
    def test_intersect_ordered_by_cost(self):
        plan = optimize(Intersect((
            ContentSearch(text="x"),
            ClassLookup(class_name="file"),
            NamePattern(pattern="*x"),
        )))
        costs = [p.COST for p in plan.parts]
        assert costs == sorted(costs)
        assert isinstance(plan.parts[0], ClassLookup)

    def test_nested_intersects_flattened(self):
        plan = optimize(Intersect((
            Intersect((NameEquals(name="a"), NameEquals(name="b"))),
            NameEquals(name="c"),
        )))
        assert len(plan.parts) == 3

    def test_allviews_dropped_from_intersect(self):
        plan = optimize(Intersect((AllViews(), NameEquals(name="a"))))
        assert isinstance(plan, NameEquals)

    def test_double_negation_eliminated(self):
        plan = optimize(Complement(Complement(NameEquals(name="a"))))
        assert isinstance(plan, NameEquals)

    def test_unions_flattened(self):
        plan = optimize(Union((
            Union((NameEquals(name="a"), NameEquals(name="b"))),
            NameEquals(name="c"),
        )))
        assert len(plan.parts) == 3

    def test_explain_produces_tree(self, qp):
        text = qp.explain('//PIM//Introduction[class="latex_section"]')
        assert "ExpandStep" in text
        assert "ClassLookup" in text

    def test_wildcard_regex(self):
        assert wildcard_regex("?onclusion*").match("Conclusions")
        assert wildcard_regex("*.tex").match("main.tex")
        assert not wildcard_regex("*.tex").match("main.texx")


class TestResultShape:
    def test_hits_sorted_and_described(self, qp):
        result = qp.execute('"database"')
        uris = result.uris()
        assert uris == sorted(uris)
        assert all(isinstance(h.name, str) for h in result.hits)

    def test_elapsed_recorded(self, qp):
        assert qp.execute('"database"').elapsed_seconds > 0

    def test_hit_resolves_view(self, qp, rvm):
        result = qp.execute('//notes.txt')
        view = result.hits[0].view(rvm)
        assert view is not None and "tuning" in view.text()

    def test_result_carries_its_batches(self, qp):
        result = qp.execute('"database"')
        assert result.batches
        streamed = {uri for batch in result.batches for uri in batch.uris}
        assert streamed == set(result.uris())


class TestJoinResultShape:
    """Pins the ``__len__``/``uris()`` contract for joins. The old
    asymmetry: ``len()`` counted pairs while ``uris()`` read the unary
    hit list — always empty for a join."""

    QUERY = ('join ( //*[class = "emailmessage"]//*.tex as A, '
             "//papers//*.tex as B, A.name = B.name )")

    def test_len_counts_pairs_and_uris_lists_pair_members(self, qp):
        result = qp.execute(self.QUERY)
        assert result.is_join
        assert len(result) == len(result.pairs) == 1
        members = {hit.uri for pair in result.pairs
                   for hit in (pair.left, pair.right)}
        assert set(result.uris()) == members
        assert result.uris() == sorted(result.uris())

    def test_empty_join_counts_zero_not_the_hit_list(self, qp):
        result = qp.execute(
            'join( //no_such_name as A, //also_missing as B, '
            "A.name = B.name )"
        )
        assert result.is_join
        assert len(result) == 0
        assert result.uris() == []


class TestLimit:
    def test_limit_caps_the_result(self, qp):
        full = qp.execute('"database"')
        limited = qp.execute('"database"', limit=2)
        assert len(limited) == 2
        assert set(limited.uris()) <= set(full.uris())

    def test_limit_zero(self, qp):
        assert len(qp.execute('"database"', limit=0)) == 0

    def test_limit_applies_to_joins(self, qp):
        result = qp.execute(TestJoinResultShape.QUERY, limit=0)
        assert result.is_join and len(result) == 0


class TestStreaming:
    def test_execute_iter_matches_materialized_execution(self, qp):
        streamed = list(qp.execute_iter('"database"'))
        assert len(streamed) == len(set(streamed))  # distinct rows
        assert sorted(streamed) == qp.execute('"database"').uris()

    def test_abandoning_the_stream_closes_it(self, qp):
        from repro.query.engine import EngineConfig
        stream = qp.execute_iter("//*e*", engine=EngineConfig(batch_size=2))
        batches = stream.batches()
        first = next(batches)
        assert first.uris
        stream.close()
        assert next(batches, None) is None  # generator is closed

    def test_execute_iter_rejects_joins(self, qp):
        # the dedicated subclass: callers fall back to the materialized
        # path on this without swallowing real execution failures
        with pytest.raises(StreamingUnsupportedError):
            qp.execute_iter(TestJoinResultShape.QUERY)

    def test_streaming_respects_limit(self, qp):
        assert len(list(qp.execute_iter('"database"', limit=3))) == 3
