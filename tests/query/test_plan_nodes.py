"""Direct tests for physical plan nodes, estimates and joins."""

from datetime import datetime

import pytest

from repro.core.errors import QueryExecutionError
from repro.query.ast import Axis, CompareOp, QualifiedRef
from repro.query.executor import ExecutionContext
from repro.query.functions import FunctionTable
from repro.query.plan import (
    AllViews,
    ClassLookup,
    Complement,
    ContentSearch,
    ExpandStep,
    Intersect,
    JoinPlan,
    NameEquals,
    NamePattern,
    RootViews,
    TupleCompare,
    Union,
    compare_values,
)
from repro.rvm import ResourceViewManager, default_content_converter
from repro.rvm.plugins import FilesystemPlugin
from repro.vfs import VirtualFileSystem


@pytest.fixture(scope="module")
def ctx():
    fs = VirtualFileSystem()
    fs.mkdir("/docs", parents=True)
    fs.write_file("/docs/a.txt", "alpha beta")
    fs.write_file("/docs/b.txt", "beta gamma")
    fs.write_file(
        "/docs/p.tex",
        r"\begin{document}\section{One}alpha\section{Two}gamma"
        r"\end{document}",
    )
    rvm = ResourceViewManager()
    rvm.register_plugin(FilesystemPlugin(
        fs, content_converter=default_content_converter()
    ))
    rvm.sync_all()
    return ExecutionContext(rvm, FunctionTable())


class TestLeafNodes:
    def test_all_views(self, ctx):
        assert AllViews().execute(ctx) == set(ctx.rvm.catalog.all_uris())

    def test_root_views(self, ctx):
        assert RootViews().execute(ctx) == {"fs:///"}

    def test_content_search_term(self, ctx):
        found = ContentSearch(text="alpha", is_phrase=False).execute(ctx)
        assert "fs:///docs/a.txt" in found

    def test_name_equals(self, ctx):
        assert NameEquals(name="a.txt").execute(ctx) == {"fs:///docs/a.txt"}

    def test_name_pattern(self, ctx):
        found = NamePattern(pattern="*.txt").execute(ctx)
        assert found == {"fs:///docs/a.txt", "fs:///docs/b.txt"}

    def test_class_lookup(self, ctx):
        sections = ClassLookup(class_name="latex_section").execute(ctx)
        assert len(sections) == 2

    def test_tuple_compare(self, ctx):
        big = TupleCompare(attribute="size", op=CompareOp.GT,
                           value=5).execute(ctx)
        assert "fs:///docs/a.txt" in big

    def test_describe_strings(self, ctx):
        assert "ContentSearch" in ContentSearch(text="x").describe()
        assert "NameEquals" in NameEquals(name="x").describe()
        assert "NamePattern" in NamePattern(pattern="x*").describe()
        assert "ClassLookup" in ClassLookup(class_name="file").describe()
        assert "TupleCompare" in TupleCompare(
            attribute="size", op=CompareOp.GT, value=1
        ).describe()


class TestCombinators:
    def test_intersect_empty_short_circuits(self, ctx):
        plan = Intersect((NameEquals(name="nope"),
                          ContentSearch(text="alpha")))
        assert plan.execute(ctx) == set()

    def test_union(self, ctx):
        plan = Union((NameEquals(name="a.txt"), NameEquals(name="b.txt")))
        assert len(plan.execute(ctx)) == 2

    def test_complement(self, ctx):
        everything = AllViews().execute(ctx)
        some = NameEquals(name="a.txt")
        assert Complement(some).execute(ctx) == everything - some.execute(ctx)

    def test_estimates_bounded_by_universe(self, ctx):
        universe = len(ctx.all_uris())
        for node in (AllViews(), ContentSearch(text="alpha"),
                     NameEquals(name="a.txt"),
                     ClassLookup(class_name="latex_section"),
                     TupleCompare(attribute="size", op=CompareOp.GT,
                                  value=0)):
            assert 0 <= node.estimate(ctx) <= universe

    def test_intersect_estimate_is_min(self, ctx):
        cheap = NameEquals(name="a.txt")
        plan = Intersect((AllViews(), cheap))
        assert plan.estimate(ctx) == cheap.estimate(ctx)


class TestExpandStepDirect:
    def test_child_axis_single_hop(self, ctx):
        step = ExpandStep(input=NameEquals(name="docs"), axis=Axis.CHILD)
        children = step.execute(ctx)
        assert children == {"fs:///docs/a.txt", "fs:///docs/b.txt",
                            "fs:///docs/p.tex"}

    def test_descendant_axis_transitive(self, ctx):
        step = ExpandStep(input=NameEquals(name="docs"),
                          axis=Axis.DESCENDANT)
        reached = step.execute(ctx)
        assert any("#s" in uri for uri in reached)  # latex sections

    def test_backward_child_axis(self, ctx):
        step = ExpandStep(input=NameEquals(name="docs"), axis=Axis.CHILD,
                          candidates=NamePattern(pattern="*.txt"),
                          strategy="backward")
        assert step.execute(ctx) == {"fs:///docs/a.txt", "fs:///docs/b.txt"}

    def test_expanded_views_counted(self, ctx):
        fresh = ExecutionContext(ctx.rvm, FunctionTable())
        ExpandStep(input=NameEquals(name="docs"),
                   axis=Axis.DESCENDANT).execute(fresh)
        assert fresh.expanded_views > 0


class TestJoinPlan:
    def test_hash_join_on_names(self, ctx):
        plan = JoinPlan(
            left=NamePattern(pattern="*.txt"),
            right=NamePattern(pattern="*.txt"),
            left_ref=QualifiedRef("A", "name"),
            right_ref=QualifiedRef("B", "name"),
        )
        pairs = plan.execute_pairs(ctx)
        # each file joins itself on equal names
        assert ("fs:///docs/a.txt", "fs:///docs/a.txt") in pairs

    def test_literal_rhs_filters_left(self, ctx):
        plan = JoinPlan(
            left=NamePattern(pattern="*.txt"),
            right=NameEquals(name="docs"),
            left_ref=QualifiedRef("A", "name"),
            right_ref="a.txt",
        )
        pairs = plan.execute_pairs(ctx)
        assert all(left == "fs:///docs/a.txt" for left, _ in pairs)

    def test_inequality_nested_loop(self, ctx):
        plan = JoinPlan(
            left=NameEquals(name="a.txt"),
            right=NamePattern(pattern="*.txt"),
            left_ref=QualifiedRef("A", "name"),
            right_ref=QualifiedRef("B", "name"),
            op=CompareOp.NE,
        )
        pairs = plan.execute_pairs(ctx)
        assert pairs == [("fs:///docs/a.txt", "fs:///docs/b.txt")]

    def test_content_component_join_key(self, ctx):
        value = ctx.component_value("fs:///docs/a.txt",
                                    QualifiedRef("A", "content"))
        assert value == "alpha beta"

    def test_class_component_join_key(self, ctx):
        value = ctx.component_value("fs:///docs/a.txt",
                                    QualifiedRef("A", "class"))
        assert value == "file"

    def test_missing_tuple_attr_is_none(self, ctx):
        value = ctx.component_value(
            "fs:///docs/a.txt", QualifiedRef("A", "tuple", "nonexistent")
        )
        assert value is None


class TestCompareValues:
    def test_date_datetime_coercion(self):
        from datetime import date
        assert compare_values(CompareOp.LT, date(2005, 1, 1),
                              datetime(2005, 6, 1))
        assert compare_values(CompareOp.GT, datetime(2005, 6, 1),
                              date(2005, 1, 1))

    def test_incomparable_raises(self):
        with pytest.raises(QueryExecutionError):
            compare_values(CompareOp.LT, "text", 5)

    def test_equality_never_raises(self):
        assert not compare_values(CompareOp.EQ, "text", 5)
        assert compare_values(CompareOp.NE, "text", 5)
