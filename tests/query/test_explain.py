"""Golden-file tests for EXPLAIN and EXPLAIN ANALYZE output.

Each case renders a plan (or an executed, trace-annotated plan) over
the deterministic tiny dataspace and compares it byte-for-byte against
a checked-in golden file under ``tests/query/golden/``. Wall-clock
times are redacted (``time=-``) so the output is stable.

To regenerate after an intentional output change::

    REPRO_REGOLD=1 PYTHONPATH=src python -m pytest tests/query/test_explain.py
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.dataset import TINY_PROFILE
from repro.facade import Dataspace
from repro.imapsim.latency import no_latency

GOLDEN_DIR = Path(__file__).parent / "golden"

#: (name, optimizer, mode, query). The double-negation case pins the
#: eliminate-double-negation rewrite; the intersect cases pin the
#: rule-based reorder (selective indexes first) and the statistics
#: reorder (smallest estimate first) respectively.
CASES = [
    ("explain_double_negation", "rule", "explain",
     'not not "database"'),
    ("explain_intersect_reorder", "rule", "explain",
     '"database" and size > 10000 and class = "latex_section"'),
    ("analyze_double_negation", "rule", "analyze",
     'not not "database"'),
    ("analyze_intersect_rule", "rule", "analyze",
     '"database" and size > 10000 and class = "latex_section"'),
    ("analyze_intersect_cost", "cost", "analyze",
     '"database" and size > 10000 and class = "latex_section"'),
    ("analyze_union_expand", "rule", "analyze",
     'union( //*[name="README"], //*.tex )'),
]


@pytest.fixture(scope="module")
def spaces() -> dict[str, Dataspace]:
    built = {}
    for optimizer in ("rule", "cost"):
        dataspace = Dataspace.generate(
            profile=TINY_PROFILE, seed=7, imap_latency=no_latency(),
            optimizer=optimizer,
        )
        dataspace.sync()
        built[optimizer] = dataspace
    return built


def _render(dataspace: Dataspace, mode: str, query: str) -> str:
    if mode == "explain":
        return dataspace.explain(query)
    return dataspace.explain_analyze(query).render(redact_timing=True)


@pytest.mark.parametrize("name,optimizer,mode,query", CASES,
                         ids=[case[0] for case in CASES])
def test_golden(spaces, name, optimizer, mode, query):
    actual = _render(spaces[optimizer], mode, query).rstrip("\n") + "\n"
    golden = GOLDEN_DIR / f"{name}.txt"
    if os.environ.get("REPRO_REGOLD"):
        golden.write_text(actual, encoding="utf-8")
        pytest.skip(f"regenerated {golden.name}")
    assert golden.exists(), (
        f"missing golden file {golden}; run with REPRO_REGOLD=1 to create")
    expected = golden.read_text(encoding="utf-8")
    assert actual == expected, (
        f"{name}: output drifted from {golden.name} "
        f"(REPRO_REGOLD=1 regenerates)")


def test_analyze_output_is_deterministic(spaces):
    """Two runs of the same query render identically once timing is
    redacted — counters, rewrites and cardinalities are all stable."""
    first = _render(spaces["rule"], "analyze", 'not "database"')
    second = _render(spaces["rule"], "analyze", 'not "database"')
    assert first == second
