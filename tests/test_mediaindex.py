"""Tests for the histogram similarity index (non-text content)."""

import pytest

from repro.core.errors import IdmError
from repro.mediaindex import (
    HistogramIndex,
    compute_histogram,
    cosine_similarity,
)


def _blob(palette: str, size: int = 400) -> str:
    """Synthetic 'image': symbols drawn cyclically from a palette."""
    return "".join(palette[i % len(palette)] for i in range(size))


class TestHistogram:
    def test_normalized(self):
        histogram = compute_histogram("abcabc")
        assert sum(histogram) == pytest.approx(1.0)

    def test_empty_content(self):
        assert sum(compute_histogram("")) == 0.0

    def test_deterministic(self):
        assert compute_histogram("xyz") == compute_histogram("xyz")

    def test_length_equals_buckets(self):
        assert len(compute_histogram("abc", buckets=8)) == 8

    def test_invalid_buckets(self):
        with pytest.raises(IdmError):
            compute_histogram("abc", buckets=0)

    def test_sampling_bounds_cost(self):
        short = compute_histogram("ab" * 10, sample=10)
        assert sum(short) == pytest.approx(1.0)


class TestCosine:
    def test_identical_is_one(self):
        signature = compute_histogram("same content")
        assert cosine_similarity(signature, signature) == pytest.approx(1.0)

    def test_disjoint_is_zero(self):
        a = compute_histogram("\x00" * 50, buckets=4)   # bucket 0 only
        b = compute_histogram("\x01" * 50, buckets=4)   # bucket 1 only
        assert cosine_similarity(a, b) == 0.0

    def test_empty_is_zero(self):
        a = compute_histogram("", buckets=4)
        b = compute_histogram("x", buckets=4)
        assert cosine_similarity(a, b) == 0.0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(IdmError):
            cosine_similarity((1.0,), (1.0, 0.0))

    def test_symmetric(self):
        a = compute_histogram("abcd" * 10)
        b = compute_histogram("wxyz" * 10)
        assert cosine_similarity(a, b) == pytest.approx(
            cosine_similarity(b, a)
        )


class TestHistogramIndex:
    @pytest.fixture()
    def index(self):
        index = HistogramIndex()
        index.add("sunset1", _blob("\x01\x02\x03"))
        index.add("sunset2", _blob("\x01\x02\x03\x02"))
        index.add("forest1", _blob("\x08\x09\x0a"))
        index.add("forest2", _blob("\x08\x09\x0a\x09"))
        return index

    def test_similar_groups_by_palette(self, index):
        neighbors = index.similar_to_key("sunset1", k=1)
        assert neighbors[0][0] == "sunset2"
        neighbors = index.similar_to_key("forest1", k=1)
        assert neighbors[0][0] == "forest2"

    def test_self_excluded(self, index):
        neighbors = index.similar_to_key("sunset1", k=10)
        assert all(key != "sunset1" for key, _ in neighbors)

    def test_similarity_scores_ordered(self, index):
        neighbors = index.similar_to_key("sunset1", k=10)
        scores = [score for _, score in neighbors]
        assert scores == sorted(scores, reverse=True)

    def test_probe_by_raw_content(self, index):
        neighbors = index.similar(_blob("\x01\x02\x03"), k=2)
        assert {key for key, _ in neighbors} == {"sunset1", "sunset2"}

    def test_unknown_key_raises(self, index):
        with pytest.raises(IdmError):
            index.similar_to_key("nope")

    def test_remove(self, index):
        assert index.remove("sunset2")
        assert "sunset2" not in index
        assert not index.remove("sunset2")

    def test_k_limits(self, index):
        assert len(index.similar_to_key("sunset1", k=2)) == 2

    def test_size_accounting(self, index):
        before = index.size_bytes()
        index.add("new", _blob("\x04\x05"))
        assert index.size_bytes() > before
