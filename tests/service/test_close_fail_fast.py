"""close(drain=False) must abort, not execute, the queued backlog.

The failure this pins: a no-drain close used to let workers race
requests out of the admission queue and *execute* them, so a caller
blocked in ``ticket.result()`` behind a slow backlog stayed blocked
until the backlog finished — the opposite of "abort now". Every ticket
alive at close time must resolve promptly, either with its result (it
ran before close) or with a typed :class:`ServiceClosed`.
"""

import time

import pytest

from repro.core.errors import ServiceClosed
from repro.facade import Dataspace
from repro.service import DataspaceService


@pytest.fixture(scope="module")
def demo_dataspace():
    dataspace = Dataspace.demo()
    dataspace.sync()
    return dataspace


class TestNoDrainClose:
    def test_queued_tickets_fail_fast_not_block(self, demo_dataspace):
        service = demo_dataspace.serve(workers=1, max_queue_depth=64,
                                       cache_results=False)
        with service as service:
            tickets = [service.submit('"database" and "tuning"',
                                      use_cache=False)
                       for _ in range(16)]
            started = time.monotonic()
            service.close(drain=False)
            outcomes = []
            for ticket in tickets:
                try:
                    ticket.result(timeout=5.0)   # must NOT hang
                    outcomes.append("served")
                except ServiceClosed:
                    outcomes.append("closed")
            elapsed = time.monotonic() - started
        # the single worker cannot have burned through 16 uncached
        # queries in the instant before close: most were aborted
        assert "closed" in outcomes
        assert elapsed < 5.0
        assert len(outcomes) == 16

    def test_dequeued_request_is_failed_not_executed(self, demo_dataspace):
        # white-box: the worker-side guard. A request already pulled
        # off the queue when fail-fast flips must fail, not execute.
        service = DataspaceService(demo_dataspace, workers=1,
                                   autostart=False)
        ticket = service.submit('"database"', use_cache=False)
        request = service.admission.take(timeout=1.0)
        assert request is not None and request.ticket is ticket
        service._fail_fast = True
        service._process(request)
        with pytest.raises(ServiceClosed, match="before execution"):
            ticket.result(0)
        assert service.metrics.counter("queries.failed").value == 1

    def test_drain_close_still_serves_the_backlog(self, demo_dataspace):
        service = demo_dataspace.serve(workers=1, cache_results=False)
        with service as service:
            tickets = [service.submit('"database"', use_cache=False)
                       for _ in range(4)]
            service.close(drain=True)
        for ticket in tickets:
            assert len(ticket.result(timeout=5.0)) >= 0

    def test_submit_racing_close_cannot_strand_its_ticket(
            self, demo_dataspace):
        # the strand race: a submit that passed the _closed check while
        # close() was between its final drain and returning must
        # self-drain — its ticket resolves instead of blocking forever
        service = demo_dataspace.serve(workers=1, cache_results=False)
        with service as service:
            service.close(drain=False)
            service._closed = False      # replay the lost race
            ticket = service.submit('"database"', use_cache=False)
            with pytest.raises(ServiceClosed):
                ticket.result(timeout=5.0)
