"""Tests for the DataspaceService: concurrency, sessions, shutdown."""

import threading

import pytest

from repro.core.errors import QuerySyntaxError, ServiceClosed
from repro.facade import Dataspace
from repro.query import PreparedQuery
from repro.service import DataspaceService


@pytest.fixture(scope="module")
def demo_dataspace():
    dataspace = Dataspace.demo()
    dataspace.sync()
    return dataspace


QUERIES = ['"database"', '//papers//*.tex', '[size > 1000]',
           '"database" and "tuning"']


class TestBasics:
    def test_execute_matches_direct_query(self, demo_dataspace):
        with demo_dataspace.serve(workers=2) as service:
            for iql in QUERIES:
                direct = demo_dataspace.query(iql)
                served = service.execute(iql)
                assert served.uris() == direct.uris(), iql

    def test_serve_syncs_unsynced_dataspace(self):
        dataspace = Dataspace.demo()
        assert not dataspace._synced
        with dataspace.serve(workers=1) as service:
            assert dataspace._synced
            assert len(service.execute('"database"')) > 0

    def test_parse_error_fails_the_ticket(self, demo_dataspace):
        with demo_dataspace.serve(workers=1) as service:
            with pytest.raises(QuerySyntaxError):
                service.execute('//[[nonsense')
            assert service.metrics.counter("queries.failed").value == 1

    def test_ticket_async_interface(self, demo_dataspace):
        with demo_dataspace.serve(workers=2) as service:
            ticket = service.submit('"database"')
            result = ticket.result(timeout=10.0)
            assert ticket.done
            assert ticket.exception() is None
            assert len(result) > 0


class TestConcurrentClients:
    def test_parallel_correctness(self, demo_dataspace):
        """4 threads x the query mix: every answer matches the
        single-threaded result."""
        expected = {iql: demo_dataspace.query(iql).uris()
                    for iql in QUERIES}
        failures = []

        with demo_dataspace.serve(workers=4) as service:
            def client(offset: int) -> None:
                for step in range(12):
                    iql = QUERIES[(offset + step) % len(QUERIES)]
                    served = service.execute(iql, timeout=30.0)
                    if served.uris() != expected[iql]:
                        failures.append(iql)

            threads = [threading.Thread(target=client, args=(index,))
                       for index in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            stats = service.stats()
        assert not failures
        assert stats["queries.served"] == 48
        assert stats["cache.result.hits"] > 0

    def test_plan_cache_reuses_prepared_queries(self, demo_dataspace):
        with demo_dataspace.serve(workers=1,
                                  cache_results=False) as service:
            for _ in range(3):
                service.execute('//papers//*.tex', use_cache=False)
            assert service.metrics.counter("cache.plan.misses").value == 1
            assert service.metrics.counter("cache.plan.hits").value == 2


class TestPreparedQueries:
    def test_rule_mode_plan_memoized(self, demo_dataspace):
        processor = demo_dataspace.processor
        prepared = processor.prepare('"database"')
        assert isinstance(prepared, PreparedQuery)
        assert prepared.plan is None
        first = processor.execute_prepared(prepared)
        assert prepared.plan is not None
        again = processor.execute_prepared(prepared)
        assert again.uris() == first.uris()

    def test_join_prepared(self, demo_dataspace):
        iql = ('join( //*[class = "emailmessage"]//*.tex as A, '
               '//papers//*.tex as B, A.name = B.name )')
        prepared = demo_dataspace.processor.prepare(iql)
        assert prepared.is_join
        result = demo_dataspace.processor.execute_prepared(prepared)
        direct = demo_dataspace.query(iql)
        assert len(result) == len(direct)


class TestSessions:
    def test_session_statistics(self, demo_dataspace):
        with demo_dataspace.serve(workers=2) as service:
            session = service.open_session("alice")
            session.query('"database"')
            session.query('"database"')
            assert session.submitted == 2
            assert session.served == 2
            assert session.failed == 0
            assert service.session_count == 1
            session.close()
            assert service.session_count == 0

    def test_closed_session_rejects(self, demo_dataspace):
        with demo_dataspace.serve(workers=1) as service:
            session = service.open_session()
            session.close()
            with pytest.raises(ServiceClosed):
                session.submit('"database"')

    def test_duplicate_session_id_rejected(self, demo_dataspace):
        with demo_dataspace.serve(workers=1) as service:
            service.open_session("bob")
            with pytest.raises(ValueError):
                service.open_session("bob")

    def test_session_failure_statistics(self, demo_dataspace):
        with demo_dataspace.serve(workers=1) as service:
            session = service.open_session("carol")
            with pytest.raises(QuerySyntaxError):
                session.query('//[[broken')
            assert session.failed == 1


class TestShutdown:
    def test_drain_completes_queued_work(self, demo_dataspace):
        service = demo_dataspace.serve(workers=1, max_queue_depth=16,
                                       autostart=False)
        tickets = [service.submit('"database"', use_cache=False)
                   for _ in range(8)]
        service.start()
        service.close(drain=True)
        for ticket in tickets:
            assert len(ticket.result(timeout=1.0)) > 0

    def test_hard_close_fails_queued_tickets(self, demo_dataspace):
        service = demo_dataspace.serve(workers=1, max_queue_depth=16,
                                       autostart=False)
        tickets = [service.submit('"database"', use_cache=False)
                   for _ in range(4)]
        service.close(drain=False)
        failed = sum(
            1 for ticket in tickets
            if isinstance(ticket.exception(timeout=1.0), ServiceClosed)
        )
        assert failed == 4

    def test_submit_after_close_raises(self, demo_dataspace):
        service = demo_dataspace.serve(workers=1)
        service.close()
        with pytest.raises(ServiceClosed):
            service.submit('"database"')
        with pytest.raises(ServiceClosed):
            service.open_session()

    def test_close_is_idempotent(self, demo_dataspace):
        service = demo_dataspace.serve(workers=1)
        service.close()
        service.close()

    def test_closed_service_cannot_restart(self, demo_dataspace):
        service = demo_dataspace.serve(workers=1)
        service.close()
        with pytest.raises(ServiceClosed):
            service.start()
