"""Tests for the service metrics registry."""

import threading

from repro.service import Counter, Histogram, MetricsRegistry
from repro.service.metrics import _percentile


class TestCounter:
    def test_increments(self):
        counter = Counter("queries")
        counter.increment()
        counter.increment(4)
        assert counter.value == 5

    def test_thread_safety(self):
        counter = Counter("contended")

        def spin():
            for _ in range(10_000):
                counter.increment()

        threads = [threading.Thread(target=spin) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 40_000


class TestPercentile:
    def test_empty(self):
        assert _percentile([], 0.5) == 0.0

    def test_known_distribution(self):
        ordered = [float(value) for value in range(1, 101)]
        assert _percentile(ordered, 0.50) == 50.0 or \
            _percentile(ordered, 0.50) == 51.0
        assert _percentile(ordered, 0.95) in (95.0, 96.0)
        assert _percentile(ordered, 0.99) in (99.0, 100.0)
        assert _percentile(ordered, 0.0) == 1.0
        assert _percentile(ordered, 1.0) == 100.0


class TestHistogram:
    def test_snapshot_statistics(self):
        histogram = Histogram("latency")
        for value in range(1, 101):
            histogram.observe(float(value))
        snapshot = histogram.snapshot()
        assert snapshot.count == 100
        assert snapshot.minimum == 1.0
        assert snapshot.maximum == 100.0
        assert snapshot.mean == 50.5
        assert snapshot.p50 <= snapshot.p95 <= snapshot.p99

    def test_empty_snapshot(self):
        snapshot = Histogram("empty").snapshot()
        assert snapshot.count == 0
        assert snapshot.p99 == 0.0

    def test_reservoir_bounds_memory(self):
        histogram = Histogram("bounded", reservoir=100)
        for value in range(1000):
            histogram.observe(float(value))
        assert histogram.count == 1000
        assert len(histogram._observations) <= 100
        # recent observations dominate the percentile estimates
        assert histogram.snapshot().p50 > 500


class TestRegistry:
    def test_created_on_first_use(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")

    def test_snapshot_mixes_kinds(self):
        registry = MetricsRegistry()
        registry.counter("served").increment(3)
        registry.histogram("wait").observe(0.25)
        snapshot = registry.snapshot()
        assert snapshot["served"] == 3
        assert snapshot["wait"].count == 1

    def test_render_is_text(self):
        registry = MetricsRegistry()
        registry.counter("served").increment()
        registry.histogram("wait").observe(0.001)
        text = registry.render()
        assert "served: 1" in text
        assert "p95" in text
