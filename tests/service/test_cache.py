"""Tests for the plan/result caches and their invalidation protocol."""

from repro.core.identity import ViewId
from repro.facade import Dataspace
from repro.pushops import ChangeEvent, ChangeKind, ComponentKind, PushBus
from repro.service import LRUCache, QueryKey, ResultCache


def _event(uri: str = "fs:///x", kind: ChangeKind = ChangeKind.MODIFIED):
    return ChangeEvent(ViewId.parse(uri), ComponentKind.GROUP, kind)


class TestLRUCache:
    def test_put_get(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("b") is None
        assert cache.hits == 1 and cache.misses == 1

    def test_evicts_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # refresh a; b is now the LRU entry
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.evictions == 1

    def test_epoch_entries_expire(self):
        cache = LRUCache(4)
        cache.put("a", 1, epoch=1)
        assert cache.get("a", min_epoch=1) == 1
        assert cache.get("a", min_epoch=2) is None   # dropped as stale
        assert cache.get("a", min_epoch=1) is None   # really gone
        assert cache.invalidations == 1

    def test_clear(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.clear() == 2
        assert len(cache) == 0


class TestResultCache:
    def test_round_trip_without_bus(self):
        cache = ResultCache(8)
        key = QueryKey('"x"', "rule", "forward")
        cache.put(key, "result")
        assert cache.get(key) == "result"

    def test_any_change_event_invalidates(self):
        bus = PushBus()
        cache = ResultCache(8, bus=bus)
        key = QueryKey('"x"', "rule", "forward")
        cache.put(key, "result")
        bus.publish(_event())
        assert cache.get(key) is None
        assert cache.invalidations == 1

    def test_added_and_removed_events_also_invalidate(self):
        for kind in (ChangeKind.ADDED, ChangeKind.REMOVED):
            bus = PushBus()
            cache = ResultCache(8, bus=bus)
            key = QueryKey('"x"', "rule", "forward")
            cache.put(key, "result")
            bus.publish(_event(kind=kind))
            assert cache.get(key) is None, kind

    def test_entry_written_before_midflight_change_is_stale(self):
        """A change landing between epoch capture and put() kills the
        entry: it was computed against pre-change data."""
        bus = PushBus()
        cache = ResultCache(8, bus=bus)
        key = QueryKey('"x"', "rule", "forward")
        epoch = cache.epoch          # captured at execution start
        bus.publish(_event())        # data changes mid-execution
        cache.put(key, "stale-result", epoch=epoch)
        assert cache.get(key) is None

    def test_detach_stops_invalidation(self):
        bus = PushBus()
        cache = ResultCache(8, bus=bus)
        key = QueryKey('"x"', "rule", "forward")
        cache.detach()
        cache.put(key, "result")
        bus.publish(_event())
        assert cache.get(key) == "result"


class TestServiceInvalidation:
    """Satellite: cached results are flushed — never served stale —
    after a vfs modification propagates through ``rvm.sync``."""

    def test_modified_file_flushes_dependent_result(self, generated_tiny):
        dataspace = Dataspace(vfs=generated_tiny.vfs,
                              imap=generated_tiny.imap)
        dataspace.sync()
        dataspace.watch()
        generated_tiny.vfs.write_file("/Projects/note.txt", "okapi herd")
        dataspace.refresh()
        with dataspace.serve(workers=2) as service:
            first = service.execute('"okapi"')
            assert len(first) == 1
            # warm: the repeat must come from the result cache
            again = service.execute('"okapi"')
            assert service.stats()["cache.result.hits"] == 1
            assert again.uris() == first.uris()
            # modify the file; the sync pass must flush the entry
            generated_tiny.vfs.write_file("/Projects/note.txt",
                                          "gnu stampede")
            dataspace.refresh()
            stale = service.execute('"okapi"')
            fresh = service.execute('"gnu"')
            assert len(stale) == 0, "stale cached result was served"
            assert len(fresh) == 1

    def test_new_file_extends_cached_result(self, generated_tiny):
        """ADD events must invalidate too: the old result simply does
        not mention the new view."""
        dataspace = Dataspace(vfs=generated_tiny.vfs,
                              imap=generated_tiny.imap)
        dataspace.sync()
        dataspace.watch()
        with dataspace.serve(workers=2) as service:
            before = len(service.execute('"database"'))
            generated_tiny.vfs.write_file("/Projects/extra.txt",
                                          "database of wonders")
            dataspace.refresh()
            after = len(service.execute('"database"'))
            assert after == before + 1

    def test_deletion_shrinks_cached_result(self, generated_tiny):
        dataspace = Dataspace(vfs=generated_tiny.vfs,
                              imap=generated_tiny.imap)
        dataspace.sync()
        dataspace.watch()
        generated_tiny.vfs.write_file("/Projects/doomed.txt", "vanishing ibex")
        dataspace.refresh()
        with dataspace.serve(workers=2) as service:
            assert len(service.execute('"ibex"')) == 1
            generated_tiny.vfs.delete("/Projects/doomed.txt")
            dataspace.refresh()
            assert len(service.execute('"ibex"')) == 0
