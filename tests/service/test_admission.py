"""Tests for admission control, deadlines and cancellation."""

import time

import pytest

from repro.core.errors import (
    DeadlineExceeded,
    Overloaded,
    QueryCancelled,
)
from repro.facade import Dataspace
from repro.service import AdmissionController, CancellationToken


@pytest.fixture(scope="module")
def demo_dataspace():
    dataspace = Dataspace.demo()
    dataspace.sync()
    return dataspace


class TestCancellationToken:
    def test_fresh_token_passes(self):
        CancellationToken().check()

    def test_cancel_raises(self):
        token = CancellationToken()
        token.cancel("client went away")
        assert token.cancelled
        with pytest.raises(QueryCancelled, match="client went away"):
            token.check()

    def test_deadline_raises_after_expiry(self):
        token = CancellationToken.with_timeout(0.001)
        time.sleep(0.005)
        assert token.expired
        with pytest.raises(DeadlineExceeded):
            token.check()

    def test_remaining(self):
        assert CancellationToken().remaining() is None
        assert CancellationToken.with_timeout(10).remaining() > 9


class TestAdmissionController:
    def test_rejects_beyond_depth(self):
        controller = AdmissionController(max_queue_depth=2)
        controller.submit("a")
        controller.submit("b")
        with pytest.raises(Overloaded) as exc_info:
            controller.submit("c")
        assert exc_info.value.queued == 2
        assert exc_info.value.limit == 2
        assert controller.rejected == 1
        assert controller.admitted == 2

    def test_fifo_order(self):
        controller = AdmissionController(max_queue_depth=4)
        for item in ("a", "b", "c"):
            controller.submit(item)
        assert [controller.take() for _ in range(3)] == ["a", "b", "c"]

    def test_take_times_out_empty(self):
        controller = AdmissionController(max_queue_depth=4)
        assert controller.take(timeout=0.01) is None

    def test_poison_bypasses_depth_check(self):
        controller = AdmissionController(max_queue_depth=1)
        controller.submit("a")
        controller.poison(2)
        assert controller.take() == "a"
        assert controller.take() is None

    def test_drain_skips_poison(self):
        controller = AdmissionController(max_queue_depth=2)
        controller.submit("a")
        controller.poison()
        controller.submit("b")
        assert controller.drain() == ["a", "b"]
        assert controller.depth == 0


class TestExecutorCancellation:
    """The token threads into the executor and aborts cooperatively."""

    def test_cancelled_token_aborts_query(self, demo_dataspace):
        token = CancellationToken()
        token.cancel()
        with pytest.raises(QueryCancelled):
            demo_dataspace.processor.execute('"database"',
                                             cancel_token=token)

    def test_expired_deadline_aborts_query(self, demo_dataspace):
        token = CancellationToken(deadline=time.monotonic() - 1.0)
        with pytest.raises(DeadlineExceeded):
            demo_dataspace.processor.execute('//papers//*.tex',
                                             cancel_token=token)

    def test_live_token_leaves_query_alone(self, demo_dataspace):
        token = CancellationToken.with_timeout(30.0)
        result = demo_dataspace.processor.execute('"database"',
                                                  cancel_token=token)
        assert len(result) > 0


class TestServiceAdmission:
    """Satellite: saturating the service beyond ``max_queue_depth``
    yields typed Overloaded rejections, counted by the metrics."""

    def test_saturation_rejects_and_counts(self, demo_dataspace):
        # workers not started: submissions stay queued deterministically
        service = demo_dataspace.serve(workers=1, max_queue_depth=2,
                                       autostart=False)
        tickets = [service.submit('"database"', use_cache=False)
                   for _ in range(2)]
        with pytest.raises(Overloaded) as exc_info:
            service.submit('"database"', use_cache=False)
        assert exc_info.value.limit == 2
        assert service.metrics.counter("admission.rejected").value == 1
        assert service.stats()["admission.rejected"] == 1
        # once started, the admitted requests all complete
        service.start()
        for ticket in tickets:
            assert len(ticket.result(timeout=10.0)) > 0
        service.close()

    def test_queued_deadline_enforced_without_execution(self,
                                                        demo_dataspace):
        service = demo_dataspace.serve(workers=1, max_queue_depth=4,
                                       autostart=False)
        ticket = service.submit('"database"', deadline=0.001,
                                use_cache=False)
        time.sleep(0.01)
        service.start()
        with pytest.raises(DeadlineExceeded):
            ticket.result(timeout=10.0)
        assert service.metrics.counter("queries.deadline_missed").value == 1
        service.close()

    def test_queued_ticket_cancellation(self, demo_dataspace):
        service = demo_dataspace.serve(workers=1, max_queue_depth=4,
                                       autostart=False)
        ticket = service.submit('"database"', use_cache=False)
        ticket.cancel("test cancel")
        service.start()
        with pytest.raises(QueryCancelled, match="test cancel"):
            ticket.result(timeout=10.0)
        assert service.metrics.counter("queries.cancelled").value == 1
        service.close()
