"""Tests for the push-based stream machinery (Section 4.4.2)."""

import pytest

from repro.core.identity import ViewId
from repro.pushops import (
    ChangeEvent,
    ChangeKind,
    CollectSink,
    ComponentKind,
    CountingSink,
    CountWindow,
    FilterOperator,
    JoinOperator,
    MapOperator,
    PushBus,
    WindowAggregate,
)
from repro.pushops.operators import pipeline


def _event(path="x", component=ComponentKind.CONTENT):
    return ChangeEvent(ViewId("fs", path), component, ChangeKind.MODIFIED)


class TestBus:
    def test_publish_reaches_subscriber(self):
        bus = PushBus()
        seen = []
        bus.subscribe(seen.append)
        bus.publish(_event())
        assert len(seen) == 1

    def test_component_filter(self):
        bus = PushBus()
        seen = []
        bus.subscribe(seen.append, component=ComponentKind.GROUP)
        bus.publish(_event(component=ComponentKind.CONTENT))
        assert seen == []
        bus.publish(_event(component=ComponentKind.GROUP))
        assert len(seen) == 1

    def test_view_filter(self):
        bus = PushBus()
        seen = []
        bus.subscribe(seen.append, view_id=ViewId("fs", "a"))
        bus.publish(_event("b"))
        bus.publish(_event("a"))
        assert len(seen) == 1

    def test_unsubscribe(self):
        bus = PushBus()
        seen = []
        unsubscribe = bus.subscribe(seen.append)
        unsubscribe()
        bus.publish(_event())
        assert seen == []

    def test_publish_returns_receiver_count(self):
        bus = PushBus()
        bus.subscribe(lambda e: None)
        bus.subscribe(lambda e: None)
        assert bus.publish(_event()) == 2
        assert bus.delivered == 2


class TestWindow:
    def test_capacity_enforced(self):
        window = CountWindow(3)
        for i in range(5):
            window.push(i)
        assert window.items() == [2, 3, 4]
        assert window.total_seen == 5

    def test_eviction_returned(self):
        window = CountWindow(2)
        assert window.push(1) is None
        assert window.push(2) is None
        assert window.push(3) == 1

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            CountWindow(0)

    def test_is_full(self):
        window = CountWindow(1)
        assert not window.is_full
        window.push(1)
        assert window.is_full


class TestOperators:
    def test_filter(self):
        sink = CollectSink()
        head = pipeline(FilterOperator(lambda x: x > 2), sink)
        for value in range(5):
            head.push(value)
        assert sink.items == [3, 4]

    def test_map(self):
        sink = CollectSink()
        head = pipeline(MapOperator(lambda x: x * x), sink)
        head.push(3)
        assert sink.items == [9]

    def test_chained_pipeline(self):
        sink = CountingSink()
        head = pipeline(
            FilterOperator(lambda x: x % 2 == 0),
            MapOperator(lambda x: x + 1),
            FilterOperator(lambda x: x > 3),
            sink,
        )
        for value in range(10):
            head.push(value)
        # evens -> +1 -> {1,3,5,7,9} -> >3 -> {5,7,9}
        assert sink.count == 3

    def test_window_aggregate(self):
        sink = CollectSink()
        head = pipeline(WindowAggregate(3, aggregate=sum), sink)
        for value in (1, 2, 3, 4):
            head.push(value)
        assert sink.items == [1, 3, 6, 9]

    def test_operator_counts_inputs(self):
        op = FilterOperator(lambda x: True)
        op.push(1)
        op.push(2)
        assert op.received == 2
        assert op.passed == 2

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError):
            pipeline()


class TestJoin:
    def test_symmetric_hash_join(self):
        join = JoinOperator(lambda l: l["k"], lambda r: r["k"])
        sink = CollectSink()
        join.connect(sink)
        join.push_left({"k": 1, "side": "L"})
        join.push_right({"k": 1, "side": "R"})
        join.push_right({"k": 2, "side": "R2"})
        assert len(sink.items) == 1
        left, right = sink.items[0]
        assert left["side"] == "L" and right["side"] == "R"

    def test_join_emits_on_both_directions(self):
        join = JoinOperator(lambda l: l, lambda r: r)
        sink = CollectSink()
        join.connect(sink)
        join.push_right(7)
        join.push_left(7)   # arrives second, still matches
        assert sink.items == [(7, 7)]

    def test_window_bounds_join_state(self):
        join = JoinOperator(lambda l: l, lambda r: r, window=1)
        sink = CollectSink()
        join.connect(sink)
        join.push_left(1)
        join.push_left(2)   # evicts 1 from the left window
        join.push_right(1)
        assert sink.items == []

    def test_plain_push_rejected(self):
        with pytest.raises(TypeError):
            JoinOperator(lambda l: l, lambda r: r).push(1)


class TestBusIntegration:
    def test_operator_attached_to_bus(self):
        bus = PushBus()
        sink = CollectSink()
        head = FilterOperator(
            lambda e: e.component is ComponentKind.GROUP
        )
        head.connect(sink)
        head.attach(bus)
        bus.publish(_event(component=ComponentKind.GROUP))
        bus.publish(_event(component=ComponentKind.NAME))
        assert len(sink.items) == 1

    def test_attach_with_component_filter(self):
        bus = PushBus()
        sink = CollectSink()
        sink.attach(bus, component=ComponentKind.TUPLE)
        bus.publish(_event(component=ComponentKind.TUPLE))
        bus.publish(_event(component=ComponentKind.NAME))
        assert len(sink.items) == 1
