"""Tests for the tracing layer (repro.trace).

Three angles: the laziness story (tracing proves a name-only query
never touches content components), cooperative cancellation (spans stop
at the checkpoint that tripped), and the estimate-vs-actual contract
(every node type reports both sides, no ``None`` holes).
"""

from __future__ import annotations

import pytest

from repro.core.errors import QueryCancelled
from repro.core.resource_view import ResourceView
from repro.dataset import TINY_PROFILE
from repro.facade import Dataspace
from repro.imapsim.latency import no_latency
from repro.rvm.indexes import IndexingPolicy
from repro.trace import TraceCollector


@pytest.fixture(scope="module")
def unindexed_content_dataspace() -> Dataspace:
    """Content *not* replicated: keyword queries fall back to the
    query-shipping path (scanning live views) instead of the index."""
    dataspace = Dataspace.generate(
        profile=TINY_PROFILE, seed=5, imap_latency=no_latency(),
        policy=IndexingPolicy(index_content=False),
    )
    dataspace.sync()
    return dataspace


class TestLazinessVisibility:
    def test_name_only_query_fetches_no_content(self, tiny_dataspace):
        report = tiny_dataspace.explain_analyze("//*.tex")
        counters = report.trace.counters
        assert counters.get("ctx.content_search", 0) == 0
        assert counters.get("component.content.materialized", 0) == 0
        assert counters.get("ctx.name_pattern", 0) >= 1

    def test_keyword_query_hits_the_content_index_not_the_views(
            self, tiny_dataspace):
        """With the content replica in place, even keyword search stays
        index-only — zero component materializations."""
        report = tiny_dataspace.explain_analyze('"database"')
        counters = report.trace.counters
        assert counters.get("ctx.content_search", 0) >= 1
        assert counters.get("component.content.materialized", 0) == 0

    def test_query_shipping_falls_back_to_a_content_scan(
            self, unindexed_content_dataspace):
        """Without the content index, keyword search must take the
        query-shipping path — and the trace makes that visible. (The
        scan reads live views whose components sync already forced, so
        no *new* materializations occur; first-force accounting is
        covered by the direct tests below.)"""
        report = unindexed_content_dataspace.explain_analyze('"database"')
        counters = report.trace.counters
        assert counters.get("ctx.content_scan", 0) >= 1
        assert len(report.result) > 0

    def test_name_only_query_shipping_still_fetches_no_content(
            self, unindexed_content_dataspace):
        report = unindexed_content_dataspace.explain_analyze("//*.tex")
        assert report.trace.counters.get(
            "component.content.materialized", 0) == 0

    def test_first_force_of_a_lazy_component_is_counted_once(self):
        trace = TraceCollector()
        view = ResourceView(name=lambda: "report.tex",
                            content=lambda: "hello dataspace")
        with trace.activate():
            view.content.text()
            view.content.text()  # second read: already materialized
            view.name
        assert trace.counters["component.content.materialized"] == 1
        assert trace.counters["component.name.materialized"] == 1

    def test_forcing_outside_an_active_trace_counts_nothing(self):
        trace = TraceCollector()
        view = ResourceView(content=lambda: "hello")
        view.content.text()  # forced before the trace activates
        with trace.activate():
            view.content.text()
        assert "component.content.materialized" not in trace.counters

    def test_eager_components_never_report_materialization(self):
        trace = TraceCollector()
        view = ResourceView(name="plain", content="eager text")
        with trace.activate():
            view.content.text()
            view.name
        assert not any(key.startswith("component.")
                       for key in trace.counters)


class _TripAfter:
    """A cancel token that trips on the n-th checkpoint."""

    def __init__(self, checks: int):
        self.remaining = checks

    def check(self) -> None:
        self.remaining -= 1
        if self.remaining < 0:
            raise QueryCancelled("tripped by test token")


class TestCancellationTracing:
    def test_cancelled_query_stops_emitting_spans(self, tiny_dataspace):
        processor = tiny_dataspace.processor
        query = '"database" or "tuning" or "vision" or "indexing"'
        # full run: Union + 4 ContentSearch spans
        full = processor.explain_analyze(query)
        assert full.trace.span_count == 5

        trace = TraceCollector()
        prepared = processor.prepare(query)
        token = _TripAfter(checks=1)  # second content_search checkpoint trips
        with pytest.raises(QueryCancelled):
            processor.execute_prepared(prepared, cancel_token=token,
                                       trace=trace)
        # spans stop at the checkpoint: Union + first search (ok) +
        # second search (cancelled); searches 3 and 4 never started
        assert trace.cancelled
        spans = list(trace.spans())
        assert len(spans) == 3
        statuses = {span.detail: span.status for span in spans}
        assert "cancelled" in statuses.values()
        assert all(span.status in ("ok", "cancelled") for span in spans)

    def test_aborted_spans_are_sealed_with_timings(self, tiny_dataspace):
        trace = TraceCollector()
        prepared = tiny_dataspace.processor.prepare('"database"')
        with pytest.raises(QueryCancelled):
            tiny_dataspace.processor.execute_prepared(
                prepared, cancel_token=_TripAfter(checks=0), trace=trace)
        for span in trace.spans():
            assert span.status != "running"
            assert span.elapsed_seconds is not None


class TestEarlyTermination:
    """The engine's work counters prove LIMIT and cancellation stop the
    scan mid-corpus — latency flatness is benchmarked, but *these* pin
    the mechanism: ``engine.rows_scanned`` is the rows the streaming
    scans actually consumed."""

    QUERY = "//*e*"  # a streaming NameScan over every catalog name

    def _scanned(self, dataspace, *, limit=None, engine=None,
                 cancel_token=None) -> tuple[TraceCollector, int]:
        trace = TraceCollector()
        processor = dataspace.processor
        processor.execute_prepared(processor.prepare(self.QUERY),
                                   trace=trace, limit=limit, engine=engine,
                                   cancel_token=cancel_token)
        return trace, trace.counters.get("engine.rows_scanned", 0)

    def test_limit_scans_rows_proportional_to_k_not_the_corpus(
            self, tiny_dataspace):
        from repro.query.engine import EngineConfig
        _, full_scan = self._scanned(tiny_dataspace)
        corpus = tiny_dataspace.view_count
        assert full_scan >= corpus // 2  # the unlimited query scans all
        # limit 10 with a 16-row vector: the scan stops after one batch
        trace, limited_scan = self._scanned(
            tiny_dataspace, limit=10, engine=EngineConfig(batch_size=16))
        assert limited_scan <= 200, (
            f"LIMIT 10 scanned {limited_scan} of {corpus} rows")
        assert limited_scan * 5 < full_scan
        # the sealed scan span records its bounded batch count
        scan = next(s for s in trace.spans()
                    if s.operator == "NamePattern")
        assert scan.status == "ok" and scan.batches == 1

    def test_cancellation_between_batches_stops_the_scan(
            self, tiny_dataspace):
        from repro.query.engine import EngineConfig
        with pytest.raises(QueryCancelled):
            self._scanned(tiny_dataspace,
                          engine=EngineConfig(batch_size=32),
                          cancel_token=_TripAfter(checks=2))
        # re-run to inspect: the token admits two pulls, so only ~two
        # vectors of rows are consumed before the abort
        trace = TraceCollector()
        processor = tiny_dataspace.processor
        with pytest.raises(QueryCancelled):
            processor.execute_prepared(
                processor.prepare(self.QUERY), trace=trace,
                engine=EngineConfig(batch_size=32),
                cancel_token=_TripAfter(checks=2))
        assert trace.cancelled
        scanned = trace.counters.get("engine.rows_scanned", 0)
        assert scanned < tiny_dataspace.view_count // 4, (
            f"cancelled scan still consumed {scanned} rows")
        for span in trace.spans():
            assert span.status in ("ok", "cancelled")
            assert span.elapsed_seconds is not None


class TestEstimateContract:
    #: queries that together cover every plan-node type: AllViews,
    #: RootViews, ContentSearch, NameEquals, NamePattern, ClassLookup,
    #: TupleCompare, Intersect, Union, Complement, ExpandStep, Join
    QUERIES = [
        '"database" and size > 100',
        'not "database"',
        '//*[class="latex_section"]//*["figure"]',
        '/*',                               # RootViews
        'union( //*[name="README"], //*.tex )',  # NameEquals, NamePattern
        'join( //*[class="texref"] as A, //*[class="figure"] as B, '
        'A.name = B.tuple.label )',
    ]

    def test_every_span_reports_estimate_and_actual(self, tiny_dataspace):
        seen_operators = set()
        for query in self.QUERIES:
            report = tiny_dataspace.explain_analyze(query)
            for span in report.trace.spans():
                seen_operators.add(span.operator)
                assert span.estimate is not None, (query, span.detail)
                assert span.actual_rows is not None, (query, span.detail)
                assert span.elapsed_seconds is not None
                assert span.status == "ok"
        assert {"ContentSearch", "TupleCompare", "Intersect", "Union",
                "Complement", "ExpandStep", "Join", "RootViews",
                "NameEquals", "NamePattern", "ClassLookup"} <= seen_operators

    def test_leaf_estimates_are_exact_for_index_lookups(self, tiny_dataspace):
        report = tiny_dataspace.explain_analyze('//*[class="figure"]')
        lookup = next(s for s in report.trace.spans()
                      if s.operator == "ClassLookup")
        assert lookup.estimate == lookup.actual_rows


class TestServiceTraceMetrics:
    def test_trace_aggregates_fold_into_service_metrics(self, tiny_dataspace):
        with tiny_dataspace.serve(workers=2, trace_queries=True) as service:
            service.execute('"database"', use_cache=False)
            service.execute('"database" and size > 100', use_cache=False)
            stats = service.stats()
        assert stats["trace.op.ContentSearch.calls"] >= 2
        assert stats["trace.op.ContentSearch.rows"] > 0
        assert stats["trace.op.ContentSearch.seconds"].count >= 2
        assert stats["trace.ctx.content_search"] >= 2

    def test_tracing_is_off_by_default(self, tiny_dataspace):
        with tiny_dataspace.serve(workers=1) as service:
            service.execute('"database"', use_cache=False)
            stats = service.stats()
        assert not any(name.startswith("trace.") for name in stats)
