"""Tests for the LaTeX lexer and structure parser."""

from repro.latexp import (
    Environment,
    Paragraph,
    Reference,
    Section,
    TokenType,
    parse,
    tokenize,
)


class TestLexer:
    def test_command_token(self):
        tokens = tokenize(r"\section{Intro}")
        assert tokens[0].type is TokenType.COMMAND
        assert tokens[0].value == "section"

    def test_starred_command(self):
        tokens = tokenize(r"\section*{Intro}")
        assert tokens[0].value == "section*"

    def test_groups(self):
        kinds = [t.type for t in tokenize("{x}")]
        assert kinds == [TokenType.BEGIN_GROUP, TokenType.TEXT,
                         TokenType.END_GROUP]

    def test_comment_dropped(self):
        tokens = tokenize("before % comment\nafter")
        text = "".join(t.value for t in tokens if t.type is TokenType.TEXT)
        assert "comment" not in text
        assert "before" in text and "after" in text

    def test_escaped_percent_is_text(self):
        tokens = tokenize(r"100\% sure")
        text = "".join(t.value for t in tokens if t.type is TokenType.TEXT)
        assert "%" in text

    def test_math_span(self):
        tokens = tokenize(r"$x + y$")
        assert tokens[0].type is TokenType.MATH
        assert tokens[0].value == "x + y"

    def test_display_math(self):
        tokens = tokenize("$$a$$")
        assert tokens[0].type is TokenType.MATH

    def test_options(self):
        kinds = [t.type for t in tokenize("[11pt]")]
        assert kinds[0] is TokenType.OPTION_START
        assert kinds[-1] is TokenType.OPTION_END


class TestStructure:
    SOURCE = r"""
\documentclass[11pt]{article}
\title{iDM: A Unified Model}
\author{Jens Dittrich and Marcos Vaz Salles}
\begin{document}
\begin{abstract}
We present a data model.
\end{abstract}
\section{Introduction}\label{sec:intro}
Personal information is heterogeneous.
\subsection{The Problem}
Queries bridge inside and outside, see Section~\ref{sec:prelim}.
\section{Preliminaries}\label{sec:prelim}
Definitions follow.
\begin{figure}
\caption{Indexing time over dataset size}
\label{fig:indexing}
\end{figure}
The figure is \ref{fig:indexing}.
\end{document}
"""

    def test_document_class(self):
        assert parse(self.SOURCE).document_class == "article"

    def test_title(self):
        assert parse(self.SOURCE).title == "iDM: A Unified Model"

    def test_authors_split_on_and(self):
        assert parse(self.SOURCE).authors == [
            "Jens Dittrich", "Marcos Vaz Salles"
        ]

    def test_abstract_extracted(self):
        assert "data model" in parse(self.SOURCE).abstract

    def test_section_nesting(self):
        doc = parse(self.SOURCE)
        top = doc.sections()
        assert [s.title for s in top] == ["Introduction", "Preliminaries"]
        assert [s.title for s in top[0].subsections()] == ["The Problem"]

    def test_section_levels(self):
        doc = parse(self.SOURCE)
        levels = {s.title: s.level for s in doc.all_sections()}
        assert levels["Introduction"] == 1
        assert levels["The Problem"] == 2

    def test_section_labels(self):
        doc = parse(self.SOURCE)
        labels = {s.title: s.label for s in doc.all_sections()}
        assert labels["Introduction"] == "sec:intro"

    def test_section_text_excludes_subsections(self):
        doc = parse(self.SOURCE)
        intro = doc.sections()[0]
        assert "heterogeneous" in intro.text()
        assert "bridge" not in intro.text()

    def test_figure_environment(self):
        doc = parse(self.SOURCE)
        figures = [e for e in doc.all_environments() if e.name == "figure"]
        assert len(figures) == 1
        assert figures[0].caption.startswith("Indexing time")
        assert figures[0].label == "fig:indexing"

    def test_labels_resolved(self):
        doc = parse(self.SOURCE)
        assert set(doc.labels) == {"sec:intro", "sec:prelim", "fig:indexing"}

    def test_refs_point_at_targets(self):
        doc = parse(self.SOURCE)
        targets = {r.label: r.target for r in doc.all_references()}
        assert isinstance(targets["sec:prelim"], Section)
        assert targets["sec:prelim"].title == "Preliminaries"
        assert isinstance(targets["fig:indexing"], Environment)

    def test_unresolved_ref_is_none(self):
        doc = parse(r"\begin{document}\section{A}See \ref{ghost}.\end{document}")
        refs = list(doc.all_references())
        assert refs[0].target is None


class TestRobustness:
    def test_empty_input(self):
        doc = parse("")
        assert doc.body == []

    def test_plain_text_without_commands(self):
        doc = parse("just some words")
        assert isinstance(doc.body[0], Paragraph)

    def test_unclosed_environment_closes_at_eof(self):
        doc = parse(r"\begin{itemize} item text")
        envs = list(doc.all_environments())
        assert envs[0].name == "itemize"
        assert "item text" in envs[0].text()

    def test_unmatched_end_ignored(self):
        doc = parse(r"text \end{itemize} more")
        assert "more" in doc.text()

    def test_unknown_command_argument_becomes_text(self):
        doc = parse(r"\emph{important} stuff")
        assert "important" in doc.text()

    def test_ignored_commands_consume_arguments(self):
        doc = parse(r"\usepackage{graphicx} body")
        assert "graphicx" not in doc.text()
        assert "body" in doc.text()

    def test_nested_environments(self):
        doc = parse(
            r"\begin{center}\begin{figure}\caption{C}\label{f}"
            r"\end{figure}\end{center}"
        )
        envs = list(doc.all_environments())
        assert [e.name for e in envs] == ["center", "figure"]
        # caption and label attach to the innermost environment
        assert envs[1].caption == "C"
        assert envs[0].caption == ""

    def test_section_auto_closes_previous(self):
        doc = parse(r"\section{A} one \section{B} two")
        assert [s.title for s in doc.sections()] == ["A", "B"]

    def test_subsection_closes_on_new_section(self):
        doc = parse(r"\section{A}\subsection{A1}\section{B}")
        top = doc.sections()
        assert [s.title for s in top] == ["A", "B"]
        assert [s.title for s in top[0].subsections()] == ["A1"]

    def test_math_contributes_text(self):
        doc = parse(r"value $x^2$ here")
        assert "x^2" in doc.text()
