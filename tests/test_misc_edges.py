"""Edge cases across modules that the main suites do not reach."""

import pytest

from repro.core.errors import ParseError, TableError
from repro.store.types import BLOB, type_by_name


class TestParseErrorLocations:
    def test_line_only(self):
        error = ParseError("boom", line=3)
        assert "line 3" in str(error)
        assert error.column is None

    def test_line_and_column(self):
        error = ParseError("boom", line=3, column=9)
        assert "line 3, column 9" in str(error)

    def test_no_location(self):
        assert str(ParseError("boom")) == "boom"


class TestBlobType:
    def test_accepts_bytes(self):
        BLOB.validate(b"\x00\x01", nullable=True)

    def test_rejects_str(self):
        with pytest.raises(TableError):
            BLOB.validate("text", nullable=True)

    def test_size_varies(self):
        assert BLOB.size_of(b"abcd") > BLOB.size_of(b"a")

    def test_lookup(self):
        assert type_by_name("blob") is BLOB


class TestXmlWriterEdges:
    def test_pi_without_data(self):
        from repro.xmlp import XmlPI, serialize
        assert serialize(XmlPI("target", "")) == "<?target?>"

    def test_pi_with_data(self):
        from repro.xmlp import XmlPI, serialize
        assert serialize(XmlPI("t", 'a="b"')) == '<?t a="b"?>'

    def test_epilog_preserved(self):
        from repro.xmlp import parse, serialize
        source = "<a/><!-- after -->"
        assert serialize(parse(source)) == source


class TestVfsEdges:
    def test_link_size_is_target_length(self):
        from repro.vfs import VirtualFileSystem
        fs = VirtualFileSystem()
        fs.mkdir("/t")
        fs.make_link("/l", "/t")
        assert fs.stat("/l")["size"] == len("/t")
        assert fs.stat("/l")["kind"] == "link"

    def test_root_stat(self):
        from repro.vfs import VirtualFileSystem
        fs = VirtualFileSystem()
        stat = fs.stat("/")
        assert stat["kind"] == "dir"
        assert stat["path"] == "/"

    def test_root_cannot_be_deleted(self):
        from repro.core.errors import VfsError
        from repro.vfs import VirtualFileSystem
        with pytest.raises(VfsError):
            VirtualFileSystem().delete("/")


class TestCliEdges:
    def test_unknown_command_exits(self):
        from repro.cli import main
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_search_no_matches(self, capsys):
        from repro.cli import main
        assert main(["search", "zzyzxunfindable", "--scale", "0.001"]) == 0
        assert "no matches" in capsys.readouterr().out


class TestAnalyzerStopwordConstant:
    def test_default_index_keeps_stopwords(self):
        """The default analyzer indexes everything (see the module's
        rationale: phrase queries must not break on function words)."""
        from repro.fulltext import InvertedIndex
        from repro.fulltext.query import search
        index = InvertedIndex()
        index.add("d", "to be or not to be")
        assert search(index, '"to be or not to be"') == {"d"}


class TestCatalogChildCounts:
    def test_child_count_recorded_by_sync(self):
        from repro.rvm import ResourceViewManager
        from repro.rvm.plugins import FilesystemPlugin
        from repro.vfs import VirtualFileSystem
        fs = VirtualFileSystem()
        fs.write_file("/d/a.txt", "x", parents=True)
        fs.write_file("/d/b.txt", "y")
        rvm = ResourceViewManager()
        rvm.register_plugin(FilesystemPlugin(fs))
        rvm.sync_all()
        record = rvm.catalog.get("fs:///d")
        assert record.child_count == 2
        assert record.kind == "base"


class TestPushOperatorAttach:
    def test_attach_returns_unsubscribe(self):
        from repro.pushops import CollectSink, PushBus
        from repro.pushops.bus import ChangeEvent, ChangeKind, ComponentKind
        from repro.core.identity import ViewId
        bus = PushBus()
        sink = CollectSink()
        unsubscribe = sink.attach(bus)
        event = ChangeEvent(ViewId("x", "1"), ComponentKind.NAME,
                            ChangeKind.ADDED)
        bus.publish(event)
        unsubscribe()
        bus.publish(event)
        assert len(sink.items) == 1
