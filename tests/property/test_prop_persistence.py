"""Property-based tests: snapshot and WAL round-trip exactness.

A snapshot (``save_state``/``load_state``) must preserve every catalog
row, name-index entry and full-text posting *exactly* — not just
query-equivalently — and a WAL must replay precisely the commit units
that were appended, in order, across reopens.
"""

import string
from datetime import datetime

from hypothesis import given, settings, strategies as st

from repro.core.components import GroupComponent, TupleComponent, ViewSequence
from repro.core.identity import ViewId
from repro.core.resource_view import ResourceView
from repro.durability.wal import WriteAheadLog
from repro.rvm import ResourceViewManager
from repro.rvm.persistence import StubView, load_state, save_state

_SEGMENT = st.text(alphabet=string.ascii_lowercase + string.digits,
                   min_size=1, max_size=8)
_WORDS = st.lists(
    st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6),
    min_size=0, max_size=12,
)
_VALUE = st.one_of(
    st.integers(min_value=-2**31, max_value=2**31),
    st.text(alphabet=string.printable, max_size=20),
    st.datetimes(min_value=datetime(1990, 1, 1),
                 max_value=datetime(2038, 1, 1)),
)

_VIEW = st.fixed_dictionaries({
    "path": st.lists(_SEGMENT, min_size=1, max_size=3).map("/".join),
    "name": _SEGMENT,
    "class_name": st.sampled_from(["file", "folder", "emailmessage",
                                   "xmlelem", "latex_section"]),
    "text": _WORDS.map(" ".join),
    "values": st.dictionaries(_SEGMENT, _VALUE, max_size=4),
    "children": st.lists(_SEGMENT, max_size=4, unique=True),
})

_VIEWS = st.lists(_VIEW, min_size=1, max_size=10,
                  unique_by=lambda v: v["path"])


def _populate(rvm, views):
    for spec in views:
        uri = f"fs:///{spec['path']}"
        view = ResourceView(spec["name"], class_name=spec["class_name"],
                            view_id=ViewId.parse(uri))
        rvm.catalog.register(view, kind="base", size=len(spec["text"]),
                             child_count=len(spec["children"]))
        rvm.indexes.name_index.add(uri, spec["name"])
        if spec["text"]:
            rvm.indexes.content_index.add(uri, spec["text"])
        if spec["values"]:
            rvm.indexes.tuple_index.add(
                uri, TupleComponent.from_dict(spec["values"]))
        if spec["children"]:
            members = [StubView(f"{uri}/{child}")
                       for child in spec["children"]]
            rvm.indexes.group_replica.add_group(
                ViewId.parse(uri),
                GroupComponent(set_part=ViewSequence(members),
                               seq_part=ViewSequence([])),
            )
    return rvm


def _postings_map(content):
    return {
        term: sorted(
            (content.key_of(p.doc), tuple(p.positions))
            for p in content.postings(term)
        )
        for term in content.terms_matching(lambda t: True)
    }


class TestSnapshotRoundTrip:
    @given(views=_VIEWS)
    @settings(max_examples=60, deadline=None)
    def test_catalog_rows_preserved_exactly(self, views, tmp_path_factory):
        base = tmp_path_factory.mktemp("snap")
        original = _populate(ResourceViewManager(), views)
        save_state(original, base / "s")
        restored = ResourceViewManager()
        load_state(restored, base / "s")
        assert sorted(
            (r.uri, r.name, r.class_name, r.kind, r.size, r.child_count)
            for r in restored.catalog.all_records()
        ) == sorted(
            (r.uri, r.name, r.class_name, r.kind, r.size, r.child_count)
            for r in original.catalog.all_records()
        )

    @given(views=_VIEWS)
    @settings(max_examples=60, deadline=None)
    def test_name_entries_preserved_exactly(self, views, tmp_path_factory):
        base = tmp_path_factory.mktemp("snap")
        original = _populate(ResourceViewManager(), views)
        save_state(original, base / "s")
        restored = ResourceViewManager()
        load_state(restored, base / "s")
        assert sorted(restored.indexes.name_index.stored_items()) \
            == sorted(original.indexes.name_index.stored_items())

    @given(views=_VIEWS)
    @settings(max_examples=60, deadline=None)
    def test_fulltext_postings_preserved_exactly(self, views,
                                                 tmp_path_factory):
        base = tmp_path_factory.mktemp("snap")
        original = _populate(ResourceViewManager(), views)
        save_state(original, base / "s")
        restored = ResourceViewManager()
        load_state(restored, base / "s")
        assert _postings_map(restored.indexes.content_index) \
            == _postings_map(original.indexes.content_index)
        for uri in (f"fs:///{v['path']}" for v in views if v["text"]):
            original_doc = original.indexes.content_index.doc_of(uri)
            restored_doc = restored.indexes.content_index.doc_of(uri)
            assert original.indexes.content_index.doc_length(original_doc) \
                == restored.indexes.content_index.doc_length(restored_doc)

    @given(views=_VIEWS)
    @settings(max_examples=60, deadline=None)
    def test_tuples_and_groups_preserved(self, views, tmp_path_factory):
        base = tmp_path_factory.mktemp("snap")
        original = _populate(ResourceViewManager(), views)
        save_state(original, base / "s")
        restored = ResourceViewManager()
        load_state(restored, base / "s")
        for spec in views:
            uri = f"fs:///{spec['path']}"
            original_tuple = original.indexes.tuple_index.tuple_of(uri)
            restored_tuple = restored.indexes.tuple_index.tuple_of(uri)
            if original_tuple is None:
                assert restored_tuple is None
            else:
                assert restored_tuple.as_dict() == original_tuple.as_dict()
            assert restored.indexes.group_replica.children(uri) \
                == original.indexes.group_replica.children(uri)


_UNITS = st.lists(
    st.lists(
        st.fixed_dictionaries({
            "t": st.just("name"),
            "uri": _SEGMENT.map("fs:///{}".format),
            "name": _SEGMENT,
        }),
        min_size=1, max_size=4,
    ),
    min_size=1, max_size=25,
)


class TestWalRoundTrip:
    @given(units=_UNITS,
           segment_max=st.integers(min_value=64, max_value=512))
    @settings(max_examples=60, deadline=None)
    def test_replay_equals_appends_across_reopen(self, units, segment_max,
                                                 tmp_path_factory):
        base = tmp_path_factory.mktemp("wal")
        with WriteAheadLog(base, fsync="off",
                           segment_max_bytes=segment_max) as wal:
            for records in units:
                wal.append(records)
        with WriteAheadLog(base, fsync="off",
                           segment_max_bytes=segment_max) as wal:
            frames = list(wal.replay())
        assert [lsn for lsn, _ in frames] == list(range(1, len(units) + 1))
        assert [frame["r"] for _, frame in frames] == units
