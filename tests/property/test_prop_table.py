"""Property-based tests: the store table against a dict model."""

from hypothesis import given, settings, strategies as st

from repro.core.errors import TableError
from repro.store import Column, Database, INT, TEXT

_KEYS = st.text(alphabet="abcdef", min_size=1, max_size=3)
_VALUES = st.integers(-50, 50)

_OPERATIONS = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), _KEYS, _VALUES),
        st.tuples(st.just("update"), _KEYS, _VALUES),
        st.tuples(st.just("delete"), _KEYS, _VALUES),
    ),
    max_size=120,
)


def _apply(operations):
    db = Database()
    table = db.create_table(
        "t", [Column("k", TEXT), Column("v", INT)], primary_key="k"
    )
    table.create_index("by_v", "v")
    model: dict[str, int] = {}
    for op, key, value in operations:
        if op == "insert":
            if key in model:
                try:
                    table.insert({"k": key, "v": value})
                    raise AssertionError("duplicate PK accepted")
                except TableError:
                    pass
            else:
                table.insert({"k": key, "v": value})
                model[key] = value
        elif op == "update":
            updated = table.update(key, {"v": value})
            assert updated == (key in model)
            if key in model:
                model[key] = value
        else:
            deleted = table.delete(key)
            assert deleted == (key in model)
            model.pop(key, None)
    return table, model


class TestAgainstModel:
    @given(_OPERATIONS)
    @settings(max_examples=100, deadline=None)
    def test_point_lookups_match(self, operations):
        table, model = _apply(operations)
        assert len(table) == len(model)
        for key in "abcdef":
            row = table.get(key)
            if key in model:
                assert row == {"k": key, "v": model[key]}
            else:
                assert row is None

    @given(_OPERATIONS)
    @settings(max_examples=100, deadline=None)
    def test_secondary_index_consistent(self, operations):
        table, model = _apply(operations)
        for value in set(model.values()):
            expected = {k for k, v in model.items() if v == value}
            got = {row["k"] for row in table.lookup("by_v", value)}
            assert got == expected

    @given(_OPERATIONS, st.integers(-50, 50), st.integers(-50, 50))
    @settings(max_examples=100, deadline=None)
    def test_range_scan_matches(self, operations, a, b):
        low, high = min(a, b), max(a, b)
        table, model = _apply(operations)
        expected = sorted(
            k for k, v in model.items() if low <= v <= high
        )
        got = sorted(row["k"] for row in table.range("by_v", low, high))
        assert got == expected

    @given(_OPERATIONS)
    @settings(max_examples=100, deadline=None)
    def test_scan_returns_live_rows_only(self, operations):
        table, model = _apply(operations)
        scanned = {row["k"]: row["v"] for row in table.scan()}
        assert scanned == model
