"""Property-based tests: tuple index equals naive predicate evaluation."""

from hypothesis import given, settings, strategies as st

from repro.core.components import TupleComponent
from repro.tupleindex import TupleIndex

_ROWS = st.lists(
    st.dictionaries(
        keys=st.sampled_from(["size", "count", "score"]),
        values=st.integers(-100, 100),
        max_size=3,
    ),
    min_size=1, max_size=40,
)


def _build(rows):
    index = TupleIndex()
    for position, row in enumerate(rows):
        index.add(f"k{position}", TupleComponent.from_dict(row))
    return index


class TestEquivalenceWithScan:
    @given(_ROWS, st.sampled_from(["size", "count"]), st.integers(-100, 100))
    @settings(max_examples=150, deadline=None)
    def test_greater_than(self, rows, attribute, threshold):
        index = _build(rows)
        naive = {f"k{i}" for i, row in enumerate(rows)
                 if attribute in row and row[attribute] > threshold}
        assert index.greater_than(attribute, threshold) == naive

    @given(_ROWS, st.sampled_from(["size", "count"]), st.integers(-100, 100))
    @settings(max_examples=150, deadline=None)
    def test_less_than_inclusive(self, rows, attribute, threshold):
        index = _build(rows)
        naive = {f"k{i}" for i, row in enumerate(rows)
                 if attribute in row and row[attribute] <= threshold}
        assert index.less_than(attribute, threshold,
                               inclusive=True) == naive

    @given(_ROWS, st.integers(-100, 100))
    @settings(max_examples=150, deadline=None)
    def test_equals(self, rows, value):
        index = _build(rows)
        naive = {f"k{i}" for i, row in enumerate(rows)
                 if row.get("size") == value}
        assert index.equals("size", value) == naive

    @given(_ROWS)
    @settings(max_examples=100, deadline=None)
    def test_replica_faithful(self, rows):
        index = _build(rows)
        for position, row in enumerate(rows):
            assert index.tuple_of(f"k{position}").as_dict() == row

    @given(_ROWS)
    @settings(max_examples=100, deadline=None)
    def test_remove_all_leaves_empty(self, rows):
        index = _build(rows)
        for position in range(len(rows)):
            assert index.remove(f"k{position}")
        assert len(index) == 0
        assert index.attributes() == []

    @given(_ROWS, st.integers(-50, 50), st.integers(-50, 50))
    @settings(max_examples=100, deadline=None)
    def test_range_window(self, rows, a, b):
        low, high = min(a, b), max(a, b)
        index = _build(rows)
        naive = {f"k{i}" for i, row in enumerate(rows)
                 if "size" in row and low <= row["size"] <= high}
        assert index.range("size", low, high) == naive
