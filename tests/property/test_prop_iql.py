"""Property-based tests: iQL parse/unparse round-tripping on generated ASTs."""

import string
from datetime import datetime

from hypothesis import given, settings, strategies as st

from repro.query.ast import (
    Axis,
    CompareOp,
    Comparison,
    FunctionCall,
    JoinCondition,
    JoinExpr,
    KeywordAtom,
    Literal,
    PathExpr,
    PredAnd,
    PredicateExpr,
    PredNot,
    PredOr,
    QualifiedRef,
    Step,
    UnionExpr,
)
from repro.query.parser import parse_iql
from repro.query.unparse import unparse

_WORDS = st.text(alphabet=string.ascii_letters, min_size=1, max_size=8)
_PHRASES = st.lists(_WORDS, min_size=1, max_size=3).map(" ".join)
_NAME_TESTS = st.one_of(
    _WORDS,
    _WORDS.map(lambda w: w + "*"),
    _WORDS.map(lambda w: "?" + w),
    st.just("*.tex"),
)
_ATTRIBUTES = st.sampled_from(["size", "modified", "label", "level"])
_OPS = st.sampled_from(list(CompareOp))


def _literals():
    return st.one_of(
        st.integers(0, 10_000).map(Literal),
        _PHRASES.map(Literal),
        st.dates(min_value=datetime(1990, 1, 1).date(),
                 max_value=datetime(2020, 1, 1).date())
          .map(lambda d: Literal(datetime(d.year, d.month, d.day))),
        st.sampled_from(["now", "today", "yesterday"])
          .map(lambda n: FunctionCall(n)),
    )


@st.composite
def _predicates(draw, depth=0):
    if depth >= 2:
        choices = st.one_of(
            _PHRASES.map(lambda t: KeywordAtom(t, is_phrase=True)),
            st.builds(Comparison, _ATTRIBUTES, _OPS, _literals()),
        )
        return draw(choices)
    kind = draw(st.sampled_from(["atom", "cmp", "and", "or", "not"]))
    if kind == "atom":
        return KeywordAtom(draw(_PHRASES), is_phrase=True)
    if kind == "cmp":
        return Comparison(draw(_ATTRIBUTES), draw(_OPS), draw(_literals()))
    if kind == "not":
        return PredNot(draw(_predicates(depth=depth + 1)))
    parts = tuple(draw(st.lists(_predicates(depth=depth + 1),
                                min_size=2, max_size=3)))
    return PredAnd(parts) if kind == "and" else PredOr(parts)


@st.composite
def _paths(draw):
    steps = []
    count = draw(st.integers(1, 3))
    for index in range(count):
        axis = draw(st.sampled_from([Axis.DESCENDANT, Axis.CHILD]))
        if index == 0:
            axis = Axis.DESCENDANT  # leading '/' has root semantics
        name = draw(st.one_of(st.none(), _NAME_TESTS))
        predicate = draw(st.one_of(st.none(), _predicates()))
        if name is None and predicate is None:
            name = draw(_NAME_TESTS)
        steps.append(Step(axis, name, predicate))
    return PathExpr(tuple(steps))


_QUERIES = st.one_of(
    _paths(),
    _predicates().map(PredicateExpr),
    st.builds(lambda a, b: UnionExpr((a, b)), _paths(), _paths()),
    st.builds(
        lambda a, b, attr: JoinExpr(
            a, "A", b, "B",
            JoinCondition(QualifiedRef("A", "name"), CompareOp.EQ,
                          QualifiedRef("B", "tuple", attr)),
        ),
        _paths(), _paths(), _ATTRIBUTES,
    ),
)


class TestRoundTrip:
    @given(_QUERIES)
    @settings(max_examples=250, deadline=None)
    def test_parse_unparse_fixpoint(self, query):
        text = unparse(query)
        reparsed = parse_iql(text)
        assert unparse(reparsed) == text

    @given(_predicates())
    @settings(max_examples=250, deadline=None)
    def test_predicate_semantics_preserved(self, predicate):
        """The reparsed predicate is structurally identical."""
        text = unparse(PredicateExpr(predicate))
        reparsed = parse_iql(text)
        assert isinstance(reparsed, PredicateExpr)
        # compare through a second unparse: normalization is idempotent
        assert unparse(reparsed) == text

    @given(_paths())
    @settings(max_examples=250, deadline=None)
    def test_paths_reparse_to_same_steps(self, path):
        reparsed = parse_iql(unparse(path))
        assert isinstance(reparsed, PathExpr)
        assert len(reparsed.steps) == len(path.steps)
        for original, parsed in zip(path.steps, reparsed.steps):
            assert parsed.axis == original.axis
            # '*' normalizes to None (any view) — both mean the same
            expected = (None if original.name_test == "*"
                        else original.name_test)
            assert parsed.name_test == expected
