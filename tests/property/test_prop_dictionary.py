"""Differential properties for the dictionary-encoded engine.

The batched engine now moves ``int64`` dictionary sort keys through its
operators and materializes URI strings only at the result boundary
(DESIGN.md §4h); :func:`repro.query.engine.reference_execute` stays
deliberately string-based. These properties pin the encoding against
that independent oracle:

* on generated queries the integer engine returns exactly the oracle's
  URI set (the acceptance bar: >= 200 queries, zero mismatches);
* result batches really are ``array('q')`` columns whose key order is
  URI order, and whose lazy ``uris`` materialization round-trips;
* ``LIMIT`` early termination through integer batches stays a subset of
  the full result;
* interleaving sync mutations with queries never leaves a stale id
  behind: executions that started on an old dictionary view keep
  materializing correctly, and new views see the new URIs.
"""

from __future__ import annotations

from array import array

from hypothesis import given, settings, strategies as st

from repro.dataset import TINY_PROFILE
from repro.durability.verify import verify_engine_matches_oracle
from repro.facade import Dataspace
from repro.imapsim.latency import no_latency
from repro.query.engine import iter_batches, reference_execute
from repro.query.executor import ExecutionContext
from repro.query.optimizer import optimize
from repro.query.plan import Limit
from repro.rvm.uridict import KEY_GAP, global_uri_dictionary

from .queries import QUERIES, SEEDS, space


def _ctx(dataspace) -> ExecutionContext:
    return ExecutionContext(dataspace.rvm, dataspace.processor.functions)


class TestIntegerEngineDifferential:
    """int-key batched engine ≡ string reference oracle."""

    @given(QUERIES, st.integers(0, len(SEEDS) - 1))
    @settings(max_examples=200, deadline=None)
    def test_integer_engine_matches_string_oracle(self, query, index):
        dataspace = space(index)
        plan = optimize(dataspace.processor._build(query))
        assert plan.execute(_ctx(dataspace)) \
            == reference_execute(plan, _ctx(dataspace))

    @given(QUERIES, st.integers(0, len(SEEDS) - 1))
    @settings(max_examples=60, deadline=None)
    def test_batches_carry_int64_keys_in_uri_order(self, query, index):
        """Every result batch is an ``array('q')`` column bound to a
        dictionary view; ordered batches ascend in key order, and key
        order reproduces URI lexicographic order exactly."""
        dataspace = space(index)
        plan = optimize(dataspace.processor._build(query))
        ctx = _ctx(dataspace)
        for batch in iter_batches(plan, ctx):
            assert isinstance(batch.keys, array)
            assert batch.keys.typecode == "q"
            assert batch.view is not None
            assert batch.uris == batch.view.uris_for(batch.keys)
            if batch.ordered:
                keys = list(batch.keys)
                assert keys == sorted(keys)
                assert list(batch.uris) == sorted(batch.uris)

    @given(QUERIES, st.integers(0, len(SEEDS) - 1), st.integers(0, 40))
    @settings(max_examples=100, deadline=None)
    def test_limit_through_integer_batches_is_a_subset(self, query, index,
                                                       k):
        """Early termination over int batches returns min(k, |full|)
        rows, all drawn from the full result."""
        dataspace = space(index)
        raw = dataspace.processor._build(query)
        full = optimize(raw).execute(_ctx(dataspace))
        limited = optimize(Limit(part=raw, count=k)).execute(
            _ctx(dataspace)
        )
        assert len(limited) == min(k, len(full))
        assert limited <= full


class TestMutationInterleaving:
    """Sync mutations interleaved with queries: no stale ids.

    A dedicated dataspace (not the shared strategy cache — these tests
    mutate it) grows across rounds; after every sync the engine must
    agree with the oracle, old dictionary views must keep materializing
    the batches they produced, and the new URIs must be findable.
    """

    # one dataspace per test class instantiation is too slow; module
    # state mirrors the strategy cache's build-once pattern
    _dataspace = None

    @classmethod
    def _mutable_space(cls) -> Dataspace:
        if cls._dataspace is None:
            cls._dataspace = Dataspace.generate(
                profile=TINY_PROFILE, seed=17, imap_latency=no_latency()
            )
            cls._dataspace.sync()
            cls._dataspace.watch()  # event-driven incremental sync
        return cls._dataspace

    def test_interleaved_syncs_and_queries_stay_differential(self):
        dataspace = self._mutable_space()
        for round_number in range(4):
            # a query executed before the mutation pins its view
            before = dataspace.query('"database"')
            old_batches = before.batches
            old_uris = [b.uris for b in old_batches]

            path = f"/Projects/dict-round-{round_number}.txt"
            dataspace.vfs.write_file(
                path, f"interleaved dictionary round {round_number} "
                      f"database views",
            )
            dataspace.refresh()

            # engine ≡ oracle on the grown corpus, every round
            report = verify_engine_matches_oracle(
                dataspace, seed=round_number, count=15
            )
            assert report.ok, report.mismatches

            # the new view is queryable through the integer engine
            hits = dataspace.query(f'name = "dict-round-{round_number}.txt"')
            assert len(hits) == 1

            # batches captured before the sync still materialize the
            # same URIs: remaps replace arrays, they never mutate a
            # live view's
            assert [b.uris for b in old_batches] == old_uris

    def test_old_view_self_heals_on_late_arrivals(self):
        """A view captured before a sync resolves post-sync URIs via
        its overlay — order-consistently — and flags itself stale."""
        dataspace = self._mutable_space()
        dictionary = global_uri_dictionary()
        old_view = dictionary.view()
        assert not old_view.is_stale

        dataspace.vfs.write_file("/Projects/late-arrival.txt",
                                 "a late arrival")
        dataspace.refresh()
        assert old_view.is_stale  # the dictionary grew past the snapshot

        late = next(uri for uri in dataspace.rvm.catalog.all_uris()
                    if "late-arrival" in uri)
        key = old_view.key_for(late)
        assert old_view.uri_for(key) == late
        # the overlay key lands in URI order relative to base keys
        neighbours = sorted(
            uri for uri in dataspace.rvm.catalog.all_uris()
            if "late-arrival" not in uri and "dict-round" not in uri
        )
        smaller = [u for u in neighbours if u < late]
        larger = [u for u in neighbours if u > late]
        if smaller:
            assert old_view.key_for(smaller[-1]) < key
        if larger:
            assert key < old_view.key_for(larger[0])
        # and the *next* view has it as a base (gap-aligned) key
        fresh = dictionary.view()
        assert not fresh.is_stale
        assert fresh.key_for(late) % KEY_GAP == 0
