"""Differential properties for the dictionary-encoded engine.

The batched engine now moves ``int64`` dictionary sort keys through its
operators and materializes URI strings only at the result boundary
(DESIGN.md §4h); :func:`repro.query.engine.reference_execute` stays
deliberately string-based. These properties pin the encoding against
that independent oracle:

* on generated queries the integer engine returns exactly the oracle's
  URI set (the acceptance bar: >= 200 queries, zero mismatches);
* result batches really are ``array('q')`` columns whose key order is
  URI order, and whose lazy ``uris`` materialization round-trips;
* ``LIMIT`` early termination through integer batches stays a subset of
  the full result;
* interleaving sync mutations with queries never leaves a stale id
  behind: executions that started on an old dictionary view keep
  materializing correctly, and new views see the new URIs.

Since the keyset refactor (DESIGN.md §4j) the index layer hands the
engine compressed :class:`~repro.rvm.keyset.KeySet` s of catalog ids,
so the 200-query differential above now also pins engine-over-keyset-
postings against the string oracle. :class:`TestKeySetHandoff` adds the
acceptance counter pin — index-backed scans perform *zero* per-URI
string conversions (``query.dict.lookups`` flat, ``handoffs`` moving) —
and :class:`TestKeySetRecovery` proves the keysets rebuild as derived
state across ``Dataspace.open``.
"""

from __future__ import annotations

from array import array

import pytest
from hypothesis import given, settings, strategies as st

from repro.dataset import TINY_PROFILE
from repro.durability import DurabilityConfig
from repro.durability.verify import verify_engine_matches_oracle
from repro.facade import Dataspace
from repro.imapsim.latency import no_latency
from repro.query.ast import CompareOp, Comparison, Literal, PredicateExpr
from repro.query.engine import iter_batches, reference_execute
from repro.query.executor import ExecutionContext
from repro.query.optimizer import optimize
from repro.query.plan import Limit
from repro.rvm.uridict import KEY_GAP, global_uri_dictionary

from .queries import QUERIES, SEEDS, space


def _ctx(dataspace) -> ExecutionContext:
    return ExecutionContext(dataspace.rvm, dataspace.processor.functions)


class TestIntegerEngineDifferential:
    """int-key batched engine ≡ string reference oracle."""

    @given(QUERIES, st.integers(0, len(SEEDS) - 1))
    @settings(max_examples=200, deadline=None)
    def test_integer_engine_matches_string_oracle(self, query, index):
        dataspace = space(index)
        plan = optimize(dataspace.processor._build(query))
        assert plan.execute(_ctx(dataspace)) \
            == reference_execute(plan, _ctx(dataspace))

    @given(QUERIES, st.integers(0, len(SEEDS) - 1))
    @settings(max_examples=60, deadline=None)
    def test_batches_carry_int64_keys_in_uri_order(self, query, index):
        """Every result batch is an ``array('q')`` column bound to a
        dictionary view; ordered batches ascend in key order, and key
        order reproduces URI lexicographic order exactly."""
        dataspace = space(index)
        plan = optimize(dataspace.processor._build(query))
        ctx = _ctx(dataspace)
        for batch in iter_batches(plan, ctx):
            assert isinstance(batch.keys, array)
            assert batch.keys.typecode == "q"
            assert batch.view is not None
            assert batch.uris == batch.view.uris_for(batch.keys)
            if batch.ordered:
                keys = list(batch.keys)
                assert keys == sorted(keys)
                assert list(batch.uris) == sorted(batch.uris)

    @given(QUERIES, st.integers(0, len(SEEDS) - 1), st.integers(0, 40))
    @settings(max_examples=100, deadline=None)
    def test_limit_through_integer_batches_is_a_subset(self, query, index,
                                                       k):
        """Early termination over int batches returns min(k, |full|)
        rows, all drawn from the full result."""
        dataspace = space(index)
        raw = dataspace.processor._build(query)
        full = optimize(raw).execute(_ctx(dataspace))
        limited = optimize(Limit(part=raw, count=k)).execute(
            _ctx(dataspace)
        )
        assert len(limited) == min(k, len(full))
        assert limited <= full


class TestMutationInterleaving:
    """Sync mutations interleaved with queries: no stale ids.

    A dedicated dataspace (not the shared strategy cache — these tests
    mutate it) grows across rounds; after every sync the engine must
    agree with the oracle, old dictionary views must keep materializing
    the batches they produced, and the new URIs must be findable.
    """

    # one dataspace per test class instantiation is too slow; module
    # state mirrors the strategy cache's build-once pattern
    _dataspace = None

    @classmethod
    def _mutable_space(cls) -> Dataspace:
        if cls._dataspace is None:
            cls._dataspace = Dataspace.generate(
                profile=TINY_PROFILE, seed=17, imap_latency=no_latency()
            )
            cls._dataspace.sync()
            cls._dataspace.watch()  # event-driven incremental sync
        return cls._dataspace

    def test_interleaved_syncs_and_queries_stay_differential(self):
        dataspace = self._mutable_space()
        for round_number in range(4):
            # a query executed before the mutation pins its view
            before = dataspace.query('"database"')
            old_batches = before.batches
            old_uris = [b.uris for b in old_batches]

            path = f"/Projects/dict-round-{round_number}.txt"
            dataspace.vfs.write_file(
                path, f"interleaved dictionary round {round_number} "
                      f"database views",
            )
            dataspace.refresh()

            # engine ≡ oracle on the grown corpus, every round
            report = verify_engine_matches_oracle(
                dataspace, seed=round_number, count=15
            )
            assert report.ok, report.mismatches

            # the new view is queryable through the integer engine
            hits = dataspace.query(f'name = "dict-round-{round_number}.txt"')
            assert len(hits) == 1

            # batches captured before the sync still materialize the
            # same URIs: remaps replace arrays, they never mutate a
            # live view's
            assert [b.uris for b in old_batches] == old_uris

    def test_old_view_self_heals_on_late_arrivals(self):
        """A view captured before a sync resolves post-sync URIs via
        its overlay — order-consistently — and flags itself stale."""
        dataspace = self._mutable_space()
        dictionary = global_uri_dictionary()
        old_view = dictionary.view()
        assert not old_view.is_stale

        dataspace.vfs.write_file("/Projects/late-arrival.txt",
                                 "a late arrival")
        dataspace.refresh()
        assert old_view.is_stale  # the dictionary grew past the snapshot

        late = next(uri for uri in dataspace.rvm.catalog.all_uris()
                    if "late-arrival" in uri)
        key = old_view.key_for(late)
        assert old_view.uri_for(key) == late
        # the overlay key lands in URI order relative to base keys
        neighbours = sorted(
            uri for uri in dataspace.rvm.catalog.all_uris()
            if "late-arrival" not in uri and "dict-round" not in uri
        )
        smaller = [u for u in neighbours if u < late]
        larger = [u for u in neighbours if u > late]
        if smaller:
            assert old_view.key_for(smaller[-1]) < key
        if larger:
            assert key < old_view.key_for(larger[0])
        # and the *next* view has it as a base (gap-aligned) key
        fresh = dictionary.view()
        assert not fresh.is_stale
        assert fresh.key_for(late) % KEY_GAP == 0

    def test_stale_execution_resolves_late_keyset_ids(self):
        """An execution whose dictionary view predates a sync still
        answers index-backed plans whose keysets contain post-snapshot
        catalog ids: those ids fall past the view's id bridge and
        detour through the string overlay (DESIGN.md §4j), and the
        result still matches the string oracle."""
        dataspace = self._mutable_space()
        dictionary = global_uri_dictionary()
        ctx = _ctx(dataspace)
        stale_view = ctx.dict_view  # pin the pre-sync snapshot

        dataspace.vfs.write_file("/Projects/late-keyset.txt",
                                 "a late keyset arrival database")
        dataspace.refresh()
        assert stale_view.is_stale

        # the name-index keyset really carries the post-snapshot id
        late_uri = next(uri for uri in dataspace.rvm.catalog.all_uris()
                        if "late-keyset" in uri)
        late_id = dictionary.intern(late_uri)
        assert late_id in dataspace.rvm.catalog.ids_by_name(
            "late-keyset.txt"
        )

        query = PredicateExpr(Comparison("name", CompareOp.EQ,
                                         Literal("late-keyset.txt")))
        plan = optimize(dataspace.processor._build(query))
        engine = plan.execute(ctx)  # stale view: overlay path
        assert engine == reference_execute(plan, _ctx(dataspace))
        assert engine == {late_uri}


class TestKeySetHandoff:
    """THE keyset acceptance pin (DESIGN.md §4j): index-backed scans
    hand compressed id sets straight to the engine.

    ``query.dict.lookups`` counts key↔URI string conversions;
    ``query.dict.handoffs`` counts id→key conversions that bypassed
    strings entirely. Draining an index-backed execution's batches —
    *without* materializing ``.uris`` — must leave the lookup counter
    flat while the handoff counter moves: no per-URI string hashing
    anywhere on the scan path.
    """

    #: every index/replica structure gets exercised: content postings,
    #: intersection and complement (catalog-universe) merges, the tuple
    #: index, and a class-bucket path scan
    INDEXED_QUERIES = (
        '"database"',
        '"the" and "paper"',
        'not "database"',
        '[size > 1000]',
        '//*[class = "emailmessage"]',
    )

    def test_indexed_scans_do_no_string_hashing(self):
        dataspace = space(0)
        dictionary = global_uri_dictionary()
        dictionary.view()  # settle any pending remap outside the window
        total_rows = 0
        handoffs_before = dictionary.handoffs
        for iql in self.INDEXED_QUERIES:
            stream = dataspace.query_iter(iql)
            lookups = dictionary.lookups
            total_rows += sum(len(batch) for batch in stream.batches())
            assert dictionary.lookups == lookups, iql  # flat: stringless
        assert total_rows > 0
        assert dictionary.handoffs > handoffs_before

    def test_uris_property_is_the_only_string_boundary(self):
        """Touching ``.uris`` on a drained batch is what converts keys
        back to strings — and only then does the lookup counter move."""
        dataspace = space(0)
        dictionary = global_uri_dictionary()
        dictionary.view()
        stream = dataspace.query_iter('not "database"')
        batches = list(stream.batches())
        assert batches
        lookups = dictionary.lookups
        materialized = sum(len(batch.uris) for batch in batches)
        assert materialized > 0
        assert dictionary.lookups == lookups + materialized


class TestKeySetRecovery:
    """Recovery via ``Dataspace.open`` rebuilds the id-keyed keysets.

    Ids never appear in snapshots or the WAL — the load path re-interns
    every URI and rebuilds the keysets as derived state. The reopened
    dataspace must answer identically to its pre-close self, agree with
    the string oracle on generated queries, and still scan stringlessly.
    """

    @pytest.fixture(scope="class")
    def reopened(self, tmp_path_factory):
        directory = tmp_path_factory.mktemp("keyset-durable") / "space"
        config = DurabilityConfig(directory=directory, fsync="off")
        dataspace = Dataspace.generate(profile=TINY_PROFILE, seed=29,
                                       imap_latency=no_latency(),
                                       durability=config)
        dataspace.sync()
        answers = {q: set(dataspace.query(q).uris())
                   for q in TestKeySetHandoff.INDEXED_QUERIES}
        dataspace.checkpoint()
        dataspace.close()
        return answers, Dataspace.open(directory, durable=False)

    def test_recovered_engine_matches_oracle(self, reopened):
        _, dataspace = reopened
        report = verify_engine_matches_oracle(dataspace, seed=29, count=40)
        assert report.ok, report.mismatches

    def test_recovered_answers_match_pre_close(self, reopened):
        answers, dataspace = reopened
        for query, expected in answers.items():
            assert set(dataspace.query(query).uris()) == expected, query

    def test_recovered_scans_stay_stringless(self, reopened):
        _, dataspace = reopened
        dictionary = global_uri_dictionary()
        dictionary.view()
        stream = dataspace.query_iter('not "database"')
        lookups = dictionary.lookups
        rows = sum(len(batch) for batch in stream.batches())
        assert rows > 0
        assert dictionary.lookups == lookups
