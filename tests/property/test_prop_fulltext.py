"""Property-based tests: full-text engine invariants."""

import string

from hypothesis import given, settings, strategies as st

from repro.fulltext import And, InvertedIndex, Not, Phrase, Term
from repro.fulltext.analyzer import DEFAULT_ANALYZER

_WORDS = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6)
_DOCS = st.lists(
    st.lists(_WORDS, min_size=1, max_size=20).map(" ".join),
    min_size=1, max_size=12,
)


def _build(texts):
    index = InvertedIndex()
    for position, text in enumerate(texts):
        index.add(f"d{position}", text)
    return index


class TestRetrievalCompleteness:
    @given(_DOCS)
    @settings(max_examples=100, deadline=None)
    def test_every_token_is_findable(self, texts):
        """Any document containing a token is returned for that token."""
        index = _build(texts)
        for position, text in enumerate(texts):
            for term in set(DEFAULT_ANALYZER.terms(text)):
                assert f"d{position}" in Term(term).keys(index)

    @given(_DOCS)
    @settings(max_examples=100, deadline=None)
    def test_no_false_positives(self, texts):
        index = _build(texts)
        vocabulary = {t for text in texts for t in DEFAULT_ANALYZER.terms(text)}
        for term in vocabulary:
            for key in Term(term).keys(index):
                doc_terms = DEFAULT_ANALYZER.terms(
                    texts[int(key[1:])]
                )
                assert term in doc_terms


class TestAlgebraicLaws:
    @given(_DOCS, _WORDS, _WORDS)
    @settings(max_examples=100, deadline=None)
    def test_phrase_subset_of_conjunction(self, texts, w1, w2):
        index = _build(texts)
        phrase = Phrase((w1, w2)).docs(index)
        conjunction = And((Term(w1), Term(w2))).docs(index)
        assert phrase <= conjunction

    @given(_DOCS, _WORDS)
    @settings(max_examples=100, deadline=None)
    def test_not_is_complement(self, texts, word):
        index = _build(texts)
        matched = Term(word).docs(index)
        complement = Not(Term(word)).docs(index)
        assert matched | complement == set(index.all_doc_ids())
        assert matched & complement == set()

    @given(_DOCS)
    @settings(max_examples=50, deadline=None)
    def test_two_word_phrases_match_adjacent_pairs(self, texts):
        index = _build(texts)
        for position, text in enumerate(texts):
            terms = DEFAULT_ANALYZER.terms(text)
            for left, right in zip(terms, terms[1:]):
                assert f"d{position}" in Phrase((left, right)).keys(index)


class TestRemovalInvariants:
    @given(_DOCS)
    @settings(max_examples=50, deadline=None)
    def test_removed_docs_never_returned(self, texts):
        index = _build(texts)
        index.remove("d0")
        vocabulary = {t for text in texts for t in DEFAULT_ANALYZER.terms(text)}
        for term in vocabulary:
            assert "d0" not in Term(term).keys(index)

    @given(_DOCS)
    @settings(max_examples=50, deadline=None)
    def test_add_remove_restores_emptiness(self, texts):
        index = InvertedIndex()
        for position, text in enumerate(texts):
            index.add(f"d{position}", text)
        for position in range(len(texts)):
            index.remove(f"d{position}")
        assert index.document_count == 0
        assert index.term_count == 0
