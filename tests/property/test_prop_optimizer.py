"""Differential plan-equivalence properties for the optimizer.

For generated iQL queries over randomized dataspaces the optimizer must
be *semantics-preserving*: the optimized plan returns exactly the URI
set of the raw (unoptimized) plan. It must also be *idempotent* —
optimizing an already-optimized plan changes nothing. Together these
pin the rewrite rules (flattening, reordering, double-negation
elimination, universe dropping) against silent regressions, which pure
golden tests cannot do.

Comparison types are constrained per attribute (``size`` is numeric,
``modified`` temporal, ``label`` textual) so both plans evaluate every
comparison without type errors — a raw/optimized divergence can then
only mean an optimizer bug.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.query.engine import reference_execute
from repro.query.executor import ExecutionContext
from repro.query.optimizer import optimize, optimize_with_statistics
from repro.query.plan import Limit

from .queries import QUERIES as _QUERIES, SEEDS as _SEEDS, space as _space


def _uris(plan, dataspace):
    ctx = ExecutionContext(dataspace.rvm, dataspace.processor.functions)
    return plan.execute(ctx)


class TestDifferentialEquivalence:
    @given(_QUERIES, st.integers(0, len(_SEEDS) - 1))
    @settings(max_examples=200, deadline=None)
    def test_optimized_plan_returns_identical_uris(self, query, index):
        """optimize(plan) and the raw plan agree on every generated
        query (the acceptance bar: >= 200 queries, zero mismatches)."""
        dataspace = _space(index)
        raw = dataspace.processor._build(query)
        optimized = optimize(raw)
        assert _uris(optimized, dataspace) == _uris(raw, dataspace)

    @given(_QUERIES, st.integers(0, len(_SEEDS) - 1))
    @settings(max_examples=100, deadline=None)
    def test_cost_optimized_plan_returns_identical_uris(self, query, index):
        """The statistics-driven reordering is equally lossless."""
        dataspace = _space(index)
        raw = dataspace.processor._build(query)
        ctx = ExecutionContext(dataspace.rvm, dataspace.processor.functions)
        optimized = optimize_with_statistics(raw, ctx)
        assert _uris(optimized, dataspace) == _uris(raw, dataspace)

    @given(_QUERIES)
    @settings(max_examples=200, deadline=None)
    def test_optimize_is_idempotent(self, query):
        """optimize(optimize(p)) == optimize(p), structurally (plan
        nodes are dataclasses, so == is deep)."""
        dataspace = _space(0)
        once = optimize(dataspace.processor._build(query))
        assert optimize(once) == once


class TestEngineDifferential:
    """The batched engine against the reference evaluator.

    :func:`reference_execute` re-implements the pre-engine semantics —
    monolithic set-at-a-time recursion, no batches, no merges, no early
    termination — as an independent oracle. The pipelined operator tree
    must return exactly its URI set on every generated query (the
    acceptance bar: >= 200 queries, zero mismatches)."""

    @given(_QUERIES, st.integers(0, len(_SEEDS) - 1))
    @settings(max_examples=200, deadline=None)
    def test_batched_engine_matches_reference_evaluator(self, query, index):
        dataspace = _space(index)
        plan = optimize(dataspace.processor._build(query))
        engine_ctx = ExecutionContext(dataspace.rvm,
                                      dataspace.processor.functions)
        oracle_ctx = ExecutionContext(dataspace.rvm,
                                      dataspace.processor.functions)
        assert plan.execute(engine_ctx) == reference_execute(plan,
                                                             oracle_ctx)

    @given(_QUERIES, st.integers(0, len(_SEEDS) - 1), st.integers(0, 40))
    @settings(max_examples=100, deadline=None)
    def test_limit_is_a_prefix_sized_subset(self, query, index, k):
        """A planned limit returns min(k, |full|) rows, all drawn from
        the full result — early termination never invents or loses."""
        dataspace = _space(index)
        raw = dataspace.processor._build(query)
        full = _uris(optimize(raw), dataspace)
        limited = _uris(optimize(Limit(part=raw, count=k)), dataspace)
        assert len(limited) == min(k, len(full))
        assert limited <= full
