"""Differential plan-equivalence properties for the optimizer.

For generated iQL queries over randomized dataspaces the optimizer must
be *semantics-preserving*: the optimized plan returns exactly the URI
set of the raw (unoptimized) plan. It must also be *idempotent* —
optimizing an already-optimized plan changes nothing. Together these
pin the rewrite rules (flattening, reordering, double-negation
elimination, universe dropping) against silent regressions, which pure
golden tests cannot do.

Comparison types are constrained per attribute (``size`` is numeric,
``modified`` temporal, ``label`` textual) so both plans evaluate every
comparison without type errors — a raw/optimized divergence can then
only mean an optimizer bug.
"""

from __future__ import annotations

import string
from datetime import datetime

from hypothesis import given, settings, strategies as st

from repro.dataset import TINY_PROFILE
from repro.facade import Dataspace
from repro.imapsim.latency import no_latency
from repro.query.ast import (
    Axis,
    CompareOp,
    Comparison,
    IntersectExpr,
    KeywordAtom,
    Literal,
    PathExpr,
    PredAnd,
    PredicateExpr,
    PredNot,
    PredOr,
    Step,
    UnionExpr,
)
from repro.query.engine import reference_execute
from repro.query.executor import ExecutionContext
from repro.query.optimizer import optimize, optimize_with_statistics
from repro.query.plan import Limit

# -- randomized dataspaces ----------------------------------------------------
# Built once per process (hypothesis replays hundreds of examples; a
# per-example dataspace would dominate the runtime). Two seeds give two
# different catalogs/graphs; the strategy picks one per example.

_SPACES: dict[int, Dataspace] = {}
_SEEDS = (3, 9)


def _space(index: int) -> Dataspace:
    seed = _SEEDS[index]
    if seed not in _SPACES:
        dataspace = Dataspace.generate(profile=TINY_PROFILE, seed=seed,
                                       imap_latency=no_latency())
        dataspace.sync()
        _SPACES[seed] = dataspace
    return _SPACES[seed]


# -- query strategies ---------------------------------------------------------
# A vocabulary mixing words that occur in the generated corpora with
# ones that never do, so result sets range from empty to large.

_WORDS = st.sampled_from([
    "database", "tuning", "vision", "section", "figure", "indexing",
    "the", "paper", "dataspace", "xyzzy", "qwxzv",
])
_NAME_TESTS = st.one_of(
    st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6),
    st.sampled_from(["*.tex", "*.txt", "Vision*", "?eadme", "*2005*"]),
)
_CLASSES = st.sampled_from([
    "file", "folder", "latex_section", "environment", "figure",
    "texref", "emailmessage", "no_such_class",
])
_ALL_OPS = st.sampled_from(list(CompareOp))
_EQ_NE = st.sampled_from([CompareOp.EQ, CompareOp.NE])

_COMPARISONS = st.one_of(
    st.builds(Comparison, st.just("size"), _ALL_OPS,
              st.integers(0, 200_000).map(Literal)),
    st.builds(Comparison, st.just("modified"), _ALL_OPS,
              st.dates(min_value=datetime(2000, 1, 1).date(),
                       max_value=datetime(2026, 1, 1).date())
                .map(lambda d: Literal(datetime(d.year, d.month, d.day)))),
    st.builds(Comparison, st.just("label"), _EQ_NE, _WORDS.map(Literal)),
    st.builds(Comparison, st.just("class"), _EQ_NE, _CLASSES.map(Literal)),
    st.builds(Comparison, st.just("name"), _EQ_NE, _WORDS.map(Literal)),
)


@st.composite
def _predicates(draw, depth=0):
    if depth >= 2:
        return draw(st.one_of(
            _WORDS.map(lambda t: KeywordAtom(t, is_phrase=True)),
            _COMPARISONS,
        ))
    kind = draw(st.sampled_from(["atom", "cmp", "and", "or", "not"]))
    if kind == "atom":
        return KeywordAtom(draw(_WORDS), is_phrase=True)
    if kind == "cmp":
        return draw(_COMPARISONS)
    if kind == "not":
        return PredNot(draw(_predicates(depth=depth + 1)))
    parts = tuple(draw(st.lists(_predicates(depth=depth + 1),
                                min_size=2, max_size=3)))
    return PredAnd(parts) if kind == "and" else PredOr(parts)


@st.composite
def _paths(draw):
    steps = []
    for index in range(draw(st.integers(1, 3))):
        axis = (Axis.DESCENDANT if index == 0
                else draw(st.sampled_from([Axis.DESCENDANT, Axis.CHILD])))
        name = draw(st.one_of(st.none(), _NAME_TESTS))
        predicate = draw(st.one_of(st.none(), _predicates()))
        if name is None and predicate is None:
            name = draw(_NAME_TESTS)
        steps.append(Step(axis, name, predicate))
    return PathExpr(tuple(steps))


_QUERIES = st.one_of(
    _predicates().map(PredicateExpr),
    _paths(),
    st.builds(lambda a, b: UnionExpr((a, b)), _paths(),
              _predicates().map(PredicateExpr)),
    st.builds(lambda a, b: IntersectExpr((a, b)),
              _predicates().map(PredicateExpr),
              _predicates().map(PredicateExpr)),
)


def _uris(plan, dataspace):
    ctx = ExecutionContext(dataspace.rvm, dataspace.processor.functions)
    return plan.execute(ctx)


class TestDifferentialEquivalence:
    @given(_QUERIES, st.integers(0, len(_SEEDS) - 1))
    @settings(max_examples=200, deadline=None)
    def test_optimized_plan_returns_identical_uris(self, query, index):
        """optimize(plan) and the raw plan agree on every generated
        query (the acceptance bar: >= 200 queries, zero mismatches)."""
        dataspace = _space(index)
        raw = dataspace.processor._build(query)
        optimized = optimize(raw)
        assert _uris(optimized, dataspace) == _uris(raw, dataspace)

    @given(_QUERIES, st.integers(0, len(_SEEDS) - 1))
    @settings(max_examples=100, deadline=None)
    def test_cost_optimized_plan_returns_identical_uris(self, query, index):
        """The statistics-driven reordering is equally lossless."""
        dataspace = _space(index)
        raw = dataspace.processor._build(query)
        ctx = ExecutionContext(dataspace.rvm, dataspace.processor.functions)
        optimized = optimize_with_statistics(raw, ctx)
        assert _uris(optimized, dataspace) == _uris(raw, dataspace)

    @given(_QUERIES)
    @settings(max_examples=200, deadline=None)
    def test_optimize_is_idempotent(self, query):
        """optimize(optimize(p)) == optimize(p), structurally (plan
        nodes are dataclasses, so == is deep)."""
        dataspace = _space(0)
        once = optimize(dataspace.processor._build(query))
        assert optimize(once) == once


class TestEngineDifferential:
    """The batched engine against the reference evaluator.

    :func:`reference_execute` re-implements the pre-engine semantics —
    monolithic set-at-a-time recursion, no batches, no merges, no early
    termination — as an independent oracle. The pipelined operator tree
    must return exactly its URI set on every generated query (the
    acceptance bar: >= 200 queries, zero mismatches)."""

    @given(_QUERIES, st.integers(0, len(_SEEDS) - 1))
    @settings(max_examples=200, deadline=None)
    def test_batched_engine_matches_reference_evaluator(self, query, index):
        dataspace = _space(index)
        plan = optimize(dataspace.processor._build(query))
        engine_ctx = ExecutionContext(dataspace.rvm,
                                      dataspace.processor.functions)
        oracle_ctx = ExecutionContext(dataspace.rvm,
                                      dataspace.processor.functions)
        assert plan.execute(engine_ctx) == reference_execute(plan,
                                                             oracle_ctx)

    @given(_QUERIES, st.integers(0, len(_SEEDS) - 1), st.integers(0, 40))
    @settings(max_examples=100, deadline=None)
    def test_limit_is_a_prefix_sized_subset(self, query, index, k):
        """A planned limit returns min(k, |full|) rows, all drawn from
        the full result — early termination never invents or loses."""
        dataspace = _space(index)
        raw = dataspace.processor._build(query)
        full = _uris(optimize(raw), dataspace)
        limited = _uris(optimize(Limit(part=raw, count=k)), dataspace)
        assert len(limited) == min(k, len(full))
        assert limited <= full
