"""Property-based tests: the version store against a dict-of-dicts model."""

from hypothesis import given, settings, strategies as st

from repro.core.identity import ViewId
from repro.core.resource_view import ResourceView
from repro.core.versioning import VersionStore

_VIEW_KEYS = st.sampled_from(["a", "b", "c", "d"])
_CONTENTS = st.sampled_from(["v1", "v2", "v3"])

# an operation batch: list of (key, content-or-None) pairs; None = delete
_BATCHES = st.lists(
    st.lists(st.tuples(_VIEW_KEYS, st.one_of(st.none(), _CONTENTS)),
             min_size=1, max_size=4),
    min_size=1, max_size=8,
)


def _run(batches):
    """Apply batches to both the store and a snapshot-per-version model."""
    store = VersionStore()
    model_states: list[dict[str, str]] = [{}]  # index = version number
    current: dict[str, str] = {}
    for batch in batches:
        for key, content in batch:
            view_id = ViewId("m", key)
            if content is None:
                if key in current:
                    store.record_deletion(view_id)
                    del current[key]
            else:
                store.record(ResourceView(key, content=content,
                                          view_id=view_id))
                current[key] = content
        version = store.commit()
        # commits without effective changes do not create versions
        while len(model_states) <= version:
            model_states.append(dict(current))
        model_states[version] = dict(current)
    return store, model_states


class TestAgainstModel:
    @given(_BATCHES)
    @settings(max_examples=100, deadline=None)
    def test_every_version_reconstructable(self, batches):
        store, model_states = _run(batches)
        for version in range(len(model_states)):
            if version > store.current_version:
                break
            snapshot = store.snapshot(version)
            expected = model_states[version]
            assert {vid.path for vid in snapshot} == set(expected)

    @given(_BATCHES)
    @settings(max_examples=100, deadline=None)
    def test_existence_matches_model(self, batches):
        store, model_states = _run(batches)
        for version, expected in enumerate(model_states):
            if version > store.current_version:
                break
            for key in ("a", "b", "c", "d"):
                assert store.exists(ViewId("m", key), version) == \
                    (key in expected)

    @given(_BATCHES)
    @settings(max_examples=100, deadline=None)
    def test_versions_monotonic(self, batches):
        store, model_states = _run(batches)
        assert store.current_version <= sum(len(b) for b in batches)

    @given(_BATCHES)
    @settings(max_examples=50, deadline=None)
    def test_history_versions_increasing(self, batches):
        store, _ = _run(batches)
        for key in ("a", "b", "c", "d"):
            versions = [v for v, _ in store.history(ViewId("m", key))]
            assert versions == sorted(versions)
            assert len(versions) == len(set(versions))
