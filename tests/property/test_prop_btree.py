"""Property-based tests: B+-tree behaves like a sorted multimap."""

from collections import defaultdict

from hypothesis import given, settings, strategies as st

from repro.store import BPlusTree

_OPERATIONS = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.integers(0, 60),
                  st.integers(0, 1000)),
        st.tuples(st.just("remove"), st.integers(0, 60),
                  st.integers(0, 1000)),
    ),
    max_size=300,
)


def _apply(operations, order):
    tree = BPlusTree(order=order)
    model: dict[int, list[int]] = defaultdict(list)
    for op, key, value in operations:
        if op == "insert":
            tree.insert(key, value)
            model[key].append(value)
        else:
            removed = tree.remove(key, value)
            if value in model.get(key, []):
                assert removed
                model[key].remove(value)
                if not model[key]:
                    del model[key]
            else:
                assert not removed
    return tree, {k: v for k, v in model.items() if v}


class TestAgainstModel:
    @given(_OPERATIONS, st.sampled_from([4, 5, 8, 32]))
    @settings(max_examples=100, deadline=None)
    def test_matches_multimap_model(self, operations, order):
        tree, model = _apply(operations, order)
        assert list(tree.keys()) == sorted(model)
        for key, values in model.items():
            assert sorted(tree.get(key)) == sorted(values)
        assert len(tree) == sum(len(v) for v in model.values())

    @given(_OPERATIONS, st.integers(0, 60), st.integers(0, 60))
    @settings(max_examples=100, deadline=None)
    def test_range_matches_model(self, operations, low, high):
        low, high = min(low, high), max(low, high)
        tree, model = _apply(operations, 6)
        got = [key for key, _ in tree.range(low, high)]
        expected = [key for key in sorted(model) if low <= key <= high]
        assert got == expected

    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_keys_always_sorted_unique(self, keys):
        tree = BPlusTree(order=4)
        for key in keys:
            tree.insert(key, key)
        out = list(tree.keys())
        assert out == sorted(set(keys))

    @given(st.lists(st.text(max_size=5), min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_string_keys(self, keys):
        tree = BPlusTree(order=5)
        for key in keys:
            tree.insert(key, 1)
        assert list(tree.keys()) == sorted(set(keys))
