"""Shared generators for the differential property suites.

Both differential harnesses — optimizer equivalence
(:mod:`test_prop_optimizer`) and dictionary-encoded engine vs. string
oracle (:mod:`test_prop_dictionary`) — draw from the same query
strategies and the same per-process dataspace cache, so a query shape
that breaks one layer is automatically thrown at the others.

Comparison types are constrained per attribute (``size`` is numeric,
``modified`` temporal, ``label`` textual) so every generated plan
evaluates without type errors — a divergence can then only mean a
genuine engine/optimizer bug.
"""

from __future__ import annotations

import string
from datetime import datetime

from hypothesis import strategies as st

from repro.dataset import TINY_PROFILE
from repro.facade import Dataspace
from repro.imapsim.latency import no_latency
from repro.query.ast import (
    Axis,
    CompareOp,
    Comparison,
    IntersectExpr,
    KeywordAtom,
    Literal,
    PathExpr,
    PredAnd,
    PredicateExpr,
    PredNot,
    PredOr,
    Step,
    UnionExpr,
)

# -- randomized dataspaces ----------------------------------------------------
# Built once per process (hypothesis replays hundreds of examples; a
# per-example dataspace would dominate the runtime). Two seeds give two
# different catalogs/graphs; strategies pick one per example.

_SPACES: dict[int, Dataspace] = {}
SEEDS = (3, 9)


def space(index: int) -> Dataspace:
    seed = SEEDS[index]
    if seed not in _SPACES:
        dataspace = Dataspace.generate(profile=TINY_PROFILE, seed=seed,
                                       imap_latency=no_latency())
        dataspace.sync()
        _SPACES[seed] = dataspace
    return _SPACES[seed]


# -- query strategies ---------------------------------------------------------
# A vocabulary mixing words that occur in the generated corpora with
# ones that never do, so result sets range from empty to large.

WORDS = st.sampled_from([
    "database", "tuning", "vision", "section", "figure", "indexing",
    "the", "paper", "dataspace", "xyzzy", "qwxzv",
])
NAME_TESTS = st.one_of(
    st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6),
    st.sampled_from(["*.tex", "*.txt", "Vision*", "?eadme", "*2005*"]),
)
CLASSES = st.sampled_from([
    "file", "folder", "latex_section", "environment", "figure",
    "texref", "emailmessage", "no_such_class",
])
_ALL_OPS = st.sampled_from(list(CompareOp))
_EQ_NE = st.sampled_from([CompareOp.EQ, CompareOp.NE])

COMPARISONS = st.one_of(
    st.builds(Comparison, st.just("size"), _ALL_OPS,
              st.integers(0, 200_000).map(Literal)),
    st.builds(Comparison, st.just("modified"), _ALL_OPS,
              st.dates(min_value=datetime(2000, 1, 1).date(),
                       max_value=datetime(2026, 1, 1).date())
                .map(lambda d: Literal(datetime(d.year, d.month, d.day)))),
    st.builds(Comparison, st.just("label"), _EQ_NE, WORDS.map(Literal)),
    st.builds(Comparison, st.just("class"), _EQ_NE, CLASSES.map(Literal)),
    st.builds(Comparison, st.just("name"), _EQ_NE, WORDS.map(Literal)),
)


@st.composite
def predicates(draw, depth=0):
    if depth >= 2:
        return draw(st.one_of(
            WORDS.map(lambda t: KeywordAtom(t, is_phrase=True)),
            COMPARISONS,
        ))
    kind = draw(st.sampled_from(["atom", "cmp", "and", "or", "not"]))
    if kind == "atom":
        return KeywordAtom(draw(WORDS), is_phrase=True)
    if kind == "cmp":
        return draw(COMPARISONS)
    if kind == "not":
        return PredNot(draw(predicates(depth=depth + 1)))
    parts = tuple(draw(st.lists(predicates(depth=depth + 1),
                                min_size=2, max_size=3)))
    return PredAnd(parts) if kind == "and" else PredOr(parts)


@st.composite
def paths(draw):
    steps = []
    for index in range(draw(st.integers(1, 3))):
        axis = (Axis.DESCENDANT if index == 0
                else draw(st.sampled_from([Axis.DESCENDANT, Axis.CHILD])))
        name = draw(st.one_of(st.none(), NAME_TESTS))
        predicate = draw(st.one_of(st.none(), predicates()))
        if name is None and predicate is None:
            name = draw(NAME_TESTS)
        steps.append(Step(axis, name, predicate))
    return PathExpr(tuple(steps))


QUERIES = st.one_of(
    predicates().map(PredicateExpr),
    paths(),
    st.builds(lambda a, b: UnionExpr((a, b)), paths(),
              predicates().map(PredicateExpr)),
    st.builds(lambda a, b: IntersectExpr((a, b)),
              predicates().map(PredicateExpr),
              predicates().map(PredicateExpr)),
)
