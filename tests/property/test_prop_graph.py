"""Property-based tests: graph traversal invariants on random digraphs."""

from hypothesis import given, settings, strategies as st

from repro.core.graph import (
    children,
    descendants,
    is_indirectly_related,
    traverse,
)
from repro.core.identity import ViewId
from repro.core.resource_view import ResourceView

_EDGE_SETS = st.sets(
    st.tuples(st.integers(0, 11), st.integers(0, 11)),
    max_size=30,
)


def _build(edges):
    """Materialize an adjacency-list digraph as resource views."""
    nodes = sorted({n for e in edges for n in e} | {0})
    adjacency = {n: sorted({b for a, b in edges if a == n}) for n in nodes}
    views: dict[int, ResourceView] = {}

    def make(node: int) -> ResourceView:
        if node not in views:
            views[node] = ResourceView(
                str(node),
                group=lambda n=node: [make(m) for m in adjacency[n]],
                view_id=ViewId("g", str(node)),
            )
        return views[node]

    for node in nodes:
        make(node)
    return views, adjacency


def _reachable(adjacency, start):
    """Transitive closure via plain BFS on the adjacency dict."""
    seen, frontier = set(), list(adjacency.get(start, []))
    while frontier:
        node = frontier.pop()
        if node in seen:
            continue
        seen.add(node)
        frontier.extend(adjacency.get(node, []))
    return seen


class TestTraversalInvariants:
    @given(_EDGE_SETS)
    @settings(max_examples=100, deadline=None)
    def test_indirect_relation_is_transitive_closure(self, edges):
        views, adjacency = _build(edges)
        start = views[0]
        expected = _reachable(adjacency, 0)
        for node, view in views.items():
            assert is_indirectly_related(start, view) == (node in expected)

    @given(_EDGE_SETS)
    @settings(max_examples=100, deadline=None)
    def test_traverse_visits_each_view_once(self, edges):
        views, _ = _build(edges)
        visited = [v.view_id for v, _ in traverse(views[0])]
        assert len(visited) == len(set(visited))

    @given(_EDGE_SETS)
    @settings(max_examples=100, deadline=None)
    def test_descendants_match_closure(self, edges):
        views, adjacency = _build(edges)
        got = {int(v.name) for v in descendants(views[0])}
        # descendants() always excludes the traversal root itself (it is
        # visited once, at depth 0, even when a cycle returns to it)
        assert got == _reachable(adjacency, 0) - {0}

    @given(_EDGE_SETS)
    @settings(max_examples=100, deadline=None)
    def test_bfs_depth_is_shortest_path(self, edges):
        views, adjacency = _build(edges)
        depths = {int(v.name): d for v, d in traverse(views[0])}
        # verify via BFS on the adjacency dict
        expected = {0: 0}
        frontier = [0]
        while frontier:
            node = frontier.pop(0)
            for neighbor in adjacency.get(node, []):
                if neighbor not in expected:
                    expected[neighbor] = expected[node] + 1
                    frontier.append(neighbor)
        assert depths == expected

    @given(_EDGE_SETS)
    @settings(max_examples=50, deadline=None)
    def test_children_equal_adjacency(self, edges):
        views, adjacency = _build(edges)
        for node, view in views.items():
            assert sorted(int(c.name) for c in children(view)) == \
                adjacency[node]
