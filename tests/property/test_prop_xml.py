"""Property-based tests: XML round-tripping on generated trees."""

import string

from hypothesis import given, settings, strategies as st

from repro.xmlp import XmlDocument, XmlElement, XmlText, parse, serialize

_NAMES = st.text(alphabet=string.ascii_letters, min_size=1, max_size=8)
_TEXTS = st.text(
    alphabet=string.ascii_letters + string.digits + " &<>'\"",
    min_size=1, max_size=30,
).filter(lambda s: s.strip())
_ATTR_VALUES = st.text(
    alphabet=string.ascii_letters + string.digits + " &<'",
    max_size=20,
)


@st.composite
def _elements(draw, depth=0):
    element = XmlElement(draw(_NAMES))
    for name in draw(st.lists(_NAMES, max_size=3, unique=True)):
        element.attributes[name] = draw(_ATTR_VALUES)
    if depth < 3:
        children = draw(st.lists(st.one_of(
            _TEXTS.map(XmlText),
            _elements(depth=depth + 1),  # type: ignore[call-arg]
        ), max_size=3))
        element.children = list(children)
    return element


def _shape(element: XmlElement):
    """Structure signature: names, attrs, children — with adjacent text
    nodes coalesced, since XML serialization merges them by nature."""
    children = []
    for child in element.children:
        if isinstance(child, XmlElement):
            children.append(_shape(child))
        elif children and isinstance(children[-1], str):
            children[-1] += child.text
        else:
            children.append(child.text)
    return (
        element.name,
        tuple(sorted(element.attributes.items())),
        tuple(children),
    )


class TestRoundTrip:
    @given(_elements())
    @settings(max_examples=150, deadline=None)
    def test_serialize_parse_preserves_structure(self, element):
        document = XmlDocument(root=element)
        parsed = parse(serialize(document))
        assert _shape(parsed.root) == _shape(element)

    @given(_elements())
    @settings(max_examples=50, deadline=None)
    def test_serialization_fixpoint(self, element):
        once = serialize(XmlDocument(root=element))
        twice = serialize(parse(once))
        assert once == twice

    @given(_TEXTS)
    @settings(max_examples=100, deadline=None)
    def test_text_escaping_roundtrips(self, text):
        document = XmlDocument(root=XmlElement("r", children=[XmlText(text)]))
        assert parse(serialize(document)).root.text() == text

    @given(_ATTR_VALUES)
    @settings(max_examples=100, deadline=None)
    def test_attribute_escaping_roundtrips(self, value):
        document = XmlDocument(
            root=XmlElement("r", attributes={"a": value})
        )
        assert parse(serialize(document)).root.attributes["a"] == value
