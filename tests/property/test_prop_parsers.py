"""Property-based robustness tests: LaTeX, MIME and iQL never crash on
inputs they should accept, and round-trip where round-trips exist."""

import string
from datetime import datetime

from hypothesis import given, settings, strategies as st

from repro.imapsim import Attachment, EmailMessage, parse_rfc822, serialize_rfc822
from repro.latexp import parse as parse_latex
from repro.query.lexer import tokenize_iql
from repro.query.parser import parse_iql

_SAFE_TEXT = st.text(
    alphabet=string.ascii_letters + string.digits + " .,;:!?",
    min_size=0, max_size=60,
)
_LATEX_SOUP = st.text(
    alphabet=string.ascii_letters + " \\{}[]%$&_^~\n",
    max_size=200,
)


class TestLatexRobustness:
    @given(_LATEX_SOUP)
    @settings(max_examples=200, deadline=None)
    def test_parser_never_crashes(self, soup):
        document = parse_latex(soup)  # must not raise
        document.text()
        list(document.all_sections())
        list(document.all_environments())

    @given(_SAFE_TEXT, _SAFE_TEXT)
    @settings(max_examples=100, deadline=None)
    def test_section_title_preserved(self, title, body):
        title = " ".join(title.split())
        source = f"\\section{{{title}}}\n{body}"
        document = parse_latex(source)
        if title:
            assert document.sections()[0].title == title


class TestMimeRoundTrip:
    _names = st.text(alphabet=string.ascii_letters + ".", min_size=1,
                     max_size=12)
    _bodies = st.text(
        alphabet=string.ascii_letters + string.digits + " .,\n",
        max_size=100,
    ).filter(lambda s: "\n\n" not in s)

    @given(_names, _bodies, st.lists(
        st.tuples(_names, _bodies), max_size=3))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip(self, subject, body, attachment_specs):
        message = EmailMessage(
            subject=" ".join(subject.split()),
            sender="a@b.c", to=("d@e.f",),
            date=datetime(2005, 6, 1, 12, 0),
            body=body.strip("\n"),
            attachments=tuple(
                Attachment(name, content.strip("\n"))
                for name, content in attachment_specs
            ),
        )
        parsed = parse_rfc822(serialize_rfc822(message))
        assert parsed.subject == message.subject
        assert parsed.body == message.body
        assert [a.filename for a in parsed.attachments] == \
            [a.filename for a in message.attachments]
        assert [a.content for a in parsed.attachments] == \
            [a.content for a in message.attachments]


class TestIqlLexing:
    _queries = st.sampled_from([
        '"database"',
        '"database tuning"',
        '[size > 420000 and lastmodified < @12.06.2005]',
        '//papers//*Vision/*["Franklin"]',
        '//VLDB200?//?onclusion*/*["systems"]',
        'union( //A//["x"], //B//["y"])',
        'join( //X as A, //Y as B, A.name = B.tuple.label )',
        '[class="figure" and "Indexing time"]',
        'not ("a" or "b") and "c"',
    ])

    @given(_queries)
    @settings(max_examples=50, deadline=None)
    def test_paper_queries_tokenize_and_parse(self, query):
        tokens = tokenize_iql(query)
        assert tokens[-1].kind.name == "END"
        parse_iql(query)  # must not raise

    @given(st.text(alphabet=string.ascii_letters + ' "/[]()*?', max_size=40))
    @settings(max_examples=200, deadline=None)
    def test_lexer_total_or_syntax_error(self, soup):
        """The lexer either tokenizes or raises QuerySyntaxError — never
        anything else."""
        from repro.core.errors import QuerySyntaxError
        try:
            tokenize_iql(soup)
        except QuerySyntaxError:
            pass
