"""Tests for dataspace versioning (Section 8, issue 1)."""

import pytest

from repro.core.errors import VersioningError
from repro.core.identity import ViewId
from repro.core.resource_view import ResourceView
from repro.core.versioning import VersionStore, ViewRecord


def _view(name: str, content: str = "", vid: str | None = None):
    return ResourceView(
        name, content=content,
        view_id=ViewId("fs", vid or f"/{name}"),
    )


class TestCommitLifecycle:
    def test_initial_version_zero(self):
        assert VersionStore().current_version == 0

    def test_commit_advances_version(self):
        store = VersionStore()
        store.record(_view("a"))
        assert store.commit() == 1

    def test_empty_commit_is_noop(self):
        store = VersionStore()
        assert store.commit() == 0

    def test_unchanged_view_not_staged(self):
        store = VersionStore()
        v = _view("a", "text")
        store.record(v)
        store.commit()
        store.record(v)  # identical state
        assert not store.has_staged_changes()
        assert store.commit() == 1

    def test_changed_content_creates_version(self):
        store = VersionStore()
        vid = ViewId("fs", "/a")
        store.record(ResourceView("a", content="v1", view_id=vid))
        store.commit()
        store.record(ResourceView("a", content="v2", view_id=vid))
        assert store.commit() == 2


class TestReads:
    def test_get_current(self):
        store = VersionStore()
        v = _view("a", "hello")
        store.record(v)
        store.commit()
        record = store.get(v.view_id)
        assert record.name == "a"

    def test_get_historical(self):
        store = VersionStore()
        vid = ViewId("fs", "/a")
        store.record(ResourceView("a", content="old", view_id=vid))
        store.commit()
        store.record(ResourceView("a", content="new", view_id=vid))
        store.commit()
        old = store.get(vid, version=1)
        new = store.get(vid, version=2)
        assert old.content_digest != new.content_digest

    def test_get_before_creation_raises(self):
        store = VersionStore()
        a = _view("a")
        store.record(a)
        store.commit()
        b = _view("b")
        store.record(b)
        store.commit()
        with pytest.raises(VersioningError):
            store.get(b.view_id, version=1)

    def test_unknown_version_raises(self):
        store = VersionStore()
        with pytest.raises(VersioningError):
            store.get(ViewId("fs", "/x"), version=5)

    def test_deleted_view_absent_from_later_versions(self):
        store = VersionStore()
        v = _view("a")
        store.record(v)
        store.commit()
        store.record_deletion(v.view_id)
        store.commit()
        assert store.exists(v.view_id, version=1)
        assert not store.exists(v.view_id, version=2)

    def test_delete_unknown_raises(self):
        with pytest.raises(VersioningError):
            VersionStore().record_deletion(ViewId("fs", "/ghost"))

    def test_snapshot_reconstructs_state(self):
        store = VersionStore()
        a, b = _view("a"), _view("b")
        store.record(a)
        store.commit()           # v1: {a}
        store.record(b)
        store.record_deletion(a.view_id)
        store.commit()           # v2: {b}
        assert set(store.snapshot(1)) == {a.view_id}
        assert set(store.snapshot(2)) == {b.view_id}

    def test_history_lists_changes(self):
        store = VersionStore()
        vid = ViewId("fs", "/a")
        store.record(ResourceView("a", content="1", view_id=vid))
        store.commit()
        store.record(ResourceView("a", content="2", view_id=vid))
        store.commit()
        versions = [v for v, _ in store.history(vid)]
        assert versions == [1, 2]

    def test_changed_between(self):
        store = VersionStore()
        a, b = _view("a"), _view("b")
        store.record(a)
        store.commit()  # 1
        store.record(b)
        store.commit()  # 2
        assert store.changed_between(1, 2) == {b.view_id}
        assert store.changed_between(0, 2) == {a.view_id, b.view_id}


class TestViewRecord:
    def test_capture_includes_related_ids(self):
        child = _view("child")
        parent = ResourceView("p", group=[child],
                              view_id=ViewId("fs", "/p"))
        record = ViewRecord.capture(parent)
        assert record.related_ids == (child.view_id,)

    def test_capture_is_value_equal(self):
        v = _view("a", "same")
        assert ViewRecord.capture(v) == ViewRecord.capture(v)
