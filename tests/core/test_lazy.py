"""Tests for lazy values and counting providers (Section 4.1)."""

import pytest

from repro.core.errors import ProviderFailed
from repro.core.lazy import CountingProvider, LazyValue


class TestLazyValue:
    def test_deferred_until_get(self):
        calls = []
        lazy = LazyValue(lambda: calls.append(1) or "v")
        assert calls == []
        assert lazy.get() == "v"
        assert calls == [1]

    def test_memoized(self):
        counter = CountingProvider(lambda: object())
        lazy = LazyValue(counter)
        assert lazy.get() is lazy.get()
        assert counter.calls == 1

    def test_of_is_forced(self):
        lazy = LazyValue.of(42)
        assert lazy.is_forced
        assert lazy.get() == 42

    def test_is_forced_transitions(self):
        lazy = LazyValue(lambda: 1)
        assert not lazy.is_forced
        lazy.get()
        assert lazy.is_forced

    def test_none_value_is_cached(self):
        counter = CountingProvider(lambda: None)
        lazy = LazyValue(counter)
        assert lazy.get() is None
        assert lazy.get() is None
        assert counter.calls == 1

    def test_repr(self):
        assert "unforced" in repr(LazyValue(lambda: 1))
        assert "42" in repr(LazyValue.of(42))


class TestFailedForcing:
    """A raising provider must not poison the lazy (satellite of the
    resilience PR): failures are recorded, re-forcing is bounded."""

    def test_exception_propagates_and_marks_failed(self):
        lazy = LazyValue(self._fail_times(1))
        with pytest.raises(RuntimeError):
            lazy.get()
        assert lazy.is_failed
        assert not lazy.is_forced
        assert lazy.failures == 1
        assert isinstance(lazy.last_error, RuntimeError)
        assert "failed 1x" in repr(lazy)

    def test_next_get_reforces_and_recovers(self):
        lazy = LazyValue(self._fail_times(2))
        for _ in range(2):
            with pytest.raises(RuntimeError):
                lazy.get()
        assert lazy.get() == "recovered"
        assert lazy.is_forced
        assert not lazy.is_failed
        assert lazy.last_error is None  # a success clears the record

    def test_reforce_budget_is_bounded(self):
        counter = CountingProvider(self._fail_times(99))
        lazy = LazyValue(counter, max_attempts=2)
        for _ in range(2):
            with pytest.raises(RuntimeError):
                lazy.get()
        # budget spent: ProviderFailed without touching the provider
        with pytest.raises(ProviderFailed) as exc:
            lazy.get()
        assert counter.calls == 2
        assert isinstance(exc.value.__cause__, RuntimeError)

    def test_memoized_success_never_fails_again(self):
        lazy = LazyValue(lambda: "v")
        assert lazy.get() == "v"
        assert not lazy.is_failed
        assert lazy.get() == "v"

    @staticmethod
    def _fail_times(n):
        remaining = [n]

        def provider():
            if remaining[0] > 0:
                remaining[0] -= 1
                raise RuntimeError("provider down")
            return "recovered"

        return provider


class TestCountingProvider:
    def test_counts_invocations(self):
        provider = CountingProvider(lambda: "x")
        assert provider.calls == 0
        provider()
        provider()
        assert provider.calls == 2
