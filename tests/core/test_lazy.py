"""Tests for lazy values and counting providers (Section 4.1)."""

from repro.core.lazy import CountingProvider, LazyValue


class TestLazyValue:
    def test_deferred_until_get(self):
        calls = []
        lazy = LazyValue(lambda: calls.append(1) or "v")
        assert calls == []
        assert lazy.get() == "v"
        assert calls == [1]

    def test_memoized(self):
        counter = CountingProvider(lambda: object())
        lazy = LazyValue(counter)
        assert lazy.get() is lazy.get()
        assert counter.calls == 1

    def test_of_is_forced(self):
        lazy = LazyValue.of(42)
        assert lazy.is_forced
        assert lazy.get() == 42

    def test_is_forced_transitions(self):
        lazy = LazyValue(lambda: 1)
        assert not lazy.is_forced
        lazy.get()
        assert lazy.is_forced

    def test_none_value_is_cached(self):
        counter = CountingProvider(lambda: None)
        lazy = LazyValue(counter)
        assert lazy.get() is None
        assert lazy.get() is None
        assert counter.calls == 1

    def test_repr(self):
        assert "unforced" in repr(LazyValue(lambda: 1))
        assert "42" in repr(LazyValue.of(42))


class TestCountingProvider:
    def test_counts_invocations(self):
        provider = CountingProvider(lambda: "x")
        assert provider.calls == 0
        provider()
        provider()
        assert provider.calls == 2
