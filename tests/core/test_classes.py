"""Tests for resource view classes (Definition 2) and Table 1 builtins."""

from datetime import datetime

import pytest

from repro.core.classes import (
    BUILTIN_REGISTRY,
    ClassRegistry,
    Emptiness,
    Finiteness,
    ResourceViewClass,
    build_builtin_registry,
)
from repro.core.components import GroupComponent, Schema, TupleComponent
from repro.core.errors import ClassConformanceError, UnknownClassError
from repro.core.resource_view import ResourceView


def _file_view(name="a.txt", content="abc"):
    return ResourceView(
        name,
        tuple_component={"size": len(content),
                         "created": datetime(2005, 1, 1),
                         "modified": datetime(2005, 1, 2)},
        content=content,
        class_name="file",
    )


class TestRegistry:
    def test_builtin_has_table1_classes(self):
        for name in ("file", "folder", "tuple", "relation", "reldb",
                     "xmltext", "xmlelem", "xmldoc", "xmlfile",
                     "datstream", "tupstream", "rssatom"):
            assert name in BUILTIN_REGISTRY

    def test_duplicate_registration_rejected(self):
        registry = ClassRegistry()
        registry.register(ResourceViewClass("x"))
        with pytest.raises(ClassConformanceError):
            registry.register(ResourceViewClass("x"))

    def test_unknown_parent_rejected(self):
        registry = ClassRegistry()
        with pytest.raises(UnknownClassError):
            registry.register(ResourceViewClass("kid", parent="ghost"))

    def test_unknown_lookup_raises(self):
        with pytest.raises(UnknownClassError):
            BUILTIN_REGISTRY.get("no-such-class")

    def test_ancestors_chain(self):
        registry = ClassRegistry()
        registry.register(ResourceViewClass("a"))
        registry.register(ResourceViewClass("b", parent="a"))
        registry.register(ResourceViewClass("c", parent="b"))
        assert registry.ancestors("c") == ["b", "a"]

    def test_is_subclass_reflexive_and_transitive(self):
        assert BUILTIN_REGISTRY.is_subclass("xmlfile", "xmlfile")
        assert BUILTIN_REGISTRY.is_subclass("xmlfile", "file")
        assert not BUILTIN_REGISTRY.is_subclass("file", "xmlfile")

    def test_figure_specializes_environment(self):
        assert BUILTIN_REGISTRY.is_subclass("figure", "environment")

    def test_classes_of_includes_generalizations(self):
        v = ResourceView("f", class_name="xmlfile")
        assert BUILTIN_REGISTRY.classes_of(v) == ["xmlfile", "file"]

    def test_classes_of_unclassed_view_empty(self):
        assert BUILTIN_REGISTRY.classes_of(ResourceView("x")) == []

    def test_builtin_registry_builder_is_fresh(self):
        assert build_builtin_registry() is not BUILTIN_REGISTRY


class TestConformance:
    def test_conforming_file(self):
        assert BUILTIN_REGISTRY.conforms(_file_view())

    def test_file_missing_attributes_fails(self):
        v = ResourceView("a.txt", content="x", class_name="file")
        violations = BUILTIN_REGISTRY.violations(v)
        assert any("required" in p for p in violations)

    def test_file_empty_name_fails(self):
        v = ResourceView(
            tuple_component={"size": 1, "created": datetime(2005, 1, 1),
                             "modified": datetime(2005, 1, 1)},
            content="x", class_name="file",
        )
        assert not BUILTIN_REGISTRY.conforms(v)

    def test_unclassed_view_reports_no_class(self):
        assert BUILTIN_REGISTRY.violations(ResourceView("x")) == \
            ["view has no resource view class"]

    def test_explicit_class_name_overrides(self):
        v = _file_view()
        # checking a file view against the tuple class must fail (tuple
        # views have empty name and content)
        assert not BUILTIN_REGISTRY.conforms(v, "tuple")

    def test_validate_raises_with_details(self):
        v = ResourceView("x", class_name="tuple")
        with pytest.raises(ClassConformanceError):
            BUILTIN_REGISTRY.validate(v)

    def test_folder_related_class_restriction(self):
        bad_child = ResourceView("t", class_name="tuple",
                                 tuple_component={"a": 1})
        folder = ResourceView(
            "dir",
            tuple_component={"size": 4096, "created": datetime(2005, 1, 1),
                             "modified": datetime(2005, 1, 1)},
            group=[bad_child],
            class_name="folder",
        )
        violations = BUILTIN_REGISTRY.violations(folder)
        assert any("expected one of" in p for p in violations)

    def test_folder_accepts_file_and_folder_children(self):
        child = _file_view()
        folder = ResourceView(
            "dir",
            tuple_component={"size": 4096, "created": datetime(2005, 1, 1),
                             "modified": datetime(2005, 1, 1)},
            group=[child],
            class_name="folder",
        )
        assert BUILTIN_REGISTRY.conforms(folder)

    def test_related_subclass_accepted(self):
        """xmlfile children satisfy a folder's {file, folder} restriction
        because xmlfile specializes file."""
        child = _file_view()
        child.class_name = "xmlfile"
        # xmlfile also needs a non-empty group of one xmldoc; relax by
        # checking only the folder here (check_related applies classes
        # of children, not their own conformance)
        folder = ResourceView(
            "dir",
            tuple_component={"size": 4096, "created": datetime(2005, 1, 1),
                             "modified": datetime(2005, 1, 1)},
            group=[child],
            class_name="folder",
        )
        assert BUILTIN_REGISTRY.conforms(folder)

    def test_subclass_inherits_parent_restrictions(self):
        # xmlfile without the file attributes violates the parent class
        v = ResourceView("a.xml", content="<a/>", class_name="xmlfile")
        violations = BUILTIN_REGISTRY.violations(v, check_related=False)
        assert any("[file]" in p for p in violations)

    def test_datstream_requires_infinite_sequence(self):
        finite = ResourceView(group=GroupComponent.of_sequence(
            [ResourceView("x")]
        ), class_name="datstream")
        assert not BUILTIN_REGISTRY.conforms(finite)

    def test_datstream_accepts_infinite(self):
        def forever():
            while True:
                yield ResourceView(tuple_component={"v": 1},
                                   class_name="tuple")

        stream = ResourceView(
            group=GroupComponent.of_stream(forever),
            class_name="datstream",
        )
        assert BUILTIN_REGISTRY.conforms(stream)

    def test_tuple_class(self):
        t = ResourceView(tuple_component={"a": 1}, class_name="tuple")
        assert BUILTIN_REGISTRY.conforms(t)

    def test_tuple_class_rejects_name(self):
        t = ResourceView("named", tuple_component={"a": 1},
                         class_name="tuple")
        assert not BUILTIN_REGISTRY.conforms(t)

    def test_relation_holds_tuples(self):
        tuples = [ResourceView(tuple_component={"a": i}, class_name="tuple")
                  for i in range(3)]
        relation = ResourceView("R", group=tuples, class_name="relation")
        assert BUILTIN_REGISTRY.conforms(relation)

    def test_exact_schema_restriction(self):
        registry = ClassRegistry()
        registry.register(ResourceViewClass(
            "pair", exact_schema=Schema(["x", "y"]),
        ))
        good = ResourceView(tuple_component=TupleComponent.from_dict(
            {"x": 1, "y": 2}
        ), class_name="pair")
        bad = ResourceView(tuple_component=TupleComponent.from_dict(
            {"x": 1}
        ), class_name="pair")
        assert registry.conforms(good)
        assert not registry.conforms(bad)

    def test_exact_and_required_schema_mutually_exclusive(self):
        with pytest.raises(ClassConformanceError):
            ResourceViewClass("broken",
                              exact_schema=Schema(["a"]),
                              required_attributes=Schema(["a"]))

    def test_emptiness_any_allows_both(self):
        cls = ResourceViewClass("loose")
        registry = ClassRegistry()
        registry.register(cls)
        assert registry.conforms(ResourceView(), "loose")
        assert registry.conforms(ResourceView("x", content="y"), "loose")
