"""Tests for ResourceView construction, laziness and the paper interface."""

import pytest

from repro.core.components import ContentComponent, GroupComponent, TupleComponent
from repro.core.errors import ComponentError
from repro.core.identity import ViewId
from repro.core.lazy import CountingProvider
from repro.core.resource_view import ResourceView, view


class TestConstruction:
    def test_all_components_default_empty(self):
        v = ResourceView()
        assert v.name == ""
        assert v.tuple_component.is_empty
        assert v.content.is_empty
        assert v.group.is_empty

    def test_name_from_string(self):
        assert ResourceView("PIM").name == "PIM"

    def test_tuple_from_dict(self):
        v = ResourceView(tuple_component={"size": 4096})
        assert v.tuple_component["size"] == 4096

    def test_content_from_string(self):
        assert ResourceView(content="abc").content.text() == "abc"

    def test_group_from_iterable(self):
        child = ResourceView("child")
        v = ResourceView(group=[child])
        assert [c.name for c in v.group] == ["child"]

    def test_group_rejects_non_views(self):
        with pytest.raises(ComponentError):
            ResourceView(group=["not a view"]).group

    def test_name_must_be_string(self):
        with pytest.raises(ComponentError):
            ResourceView(name=lambda: 42).name

    def test_explicit_view_id(self):
        vid = ViewId("fs", "/a/b")
        assert ResourceView("b", view_id=vid).view_id is vid

    def test_fresh_ids_differ(self):
        assert ResourceView().view_id != ResourceView().view_id

    def test_view_shorthand(self):
        v = view("PIM", tuple_component={"size": 1})
        assert v.name == "PIM"
        assert v.attribute("size") == 1


class TestPaperInterface:
    """Section 4.1: the four get*Component methods."""

    def test_get_name_component(self):
        assert ResourceView("x").get_name_component() == "x"

    def test_get_tuple_component(self):
        assert isinstance(ResourceView().get_tuple_component(), TupleComponent)

    def test_get_content_component(self):
        assert isinstance(ResourceView().get_content_component(),
                          ContentComponent)

    def test_get_group_component(self):
        assert isinstance(ResourceView().get_group_component(), GroupComponent)


class TestLaziness:
    """Components given as callables are computed once, on demand."""

    def test_lazy_content_not_forced_at_construction(self):
        provider = CountingProvider(lambda: "expensive")
        v = ResourceView(content=provider)
        assert provider.calls == 0
        assert not v.forced_components()["content"]

    def test_lazy_content_forced_once(self):
        provider = CountingProvider(lambda: "expensive")
        v = ResourceView(content=provider)
        assert v.content.text() == "expensive"
        assert v.content.text() == "expensive"
        assert provider.calls == 1

    def test_lazy_group_memoized(self):
        provider = CountingProvider(lambda: [ResourceView("kid")])
        v = ResourceView(group=provider)
        list(v.group)
        list(v.group)
        assert provider.calls == 1

    def test_accessing_one_component_leaves_others_unforced(self):
        v = ResourceView(
            name=lambda: "n", content=lambda: "c",
            group=lambda: [], tuple_component=lambda: {"a": 1},
        )
        _ = v.name
        forced = v.forced_components()
        assert forced == {"name": True, "tuple": False,
                          "content": False, "group": False}

    def test_lazy_normalization_applies(self):
        v = ResourceView(tuple_component=lambda: {"size": 3})
        assert v.tuple_component["size"] == 3


class TestGraphHelpers:
    def test_directly_related(self):
        child = ResourceView("c")
        parent = ResourceView("p", group=[child])
        assert parent.is_directly_related(child)

    def test_not_directly_related(self):
        assert not ResourceView("a").is_directly_related(ResourceView("b"))

    def test_directly_related_iterates(self):
        kids = [ResourceView(str(i)) for i in range(3)]
        parent = ResourceView("p", group=kids)
        assert {v.name for v in parent.directly_related()} == {"0", "1", "2"}

    def test_attribute_shortcut(self):
        v = ResourceView(tuple_component={"size": 9})
        assert v.attribute("size") == 9
        assert v.attribute("other", -1) == -1

    def test_text_shortcut(self):
        assert ResourceView(content="hi").text() == "hi"

    def test_repr_shows_unforced_name(self):
        v = ResourceView(name=lambda: "lazy")
        assert "<lazy>" in repr(v)
        _ = v.name
        assert "lazy" in repr(v)
