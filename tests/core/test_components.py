"""Tests for the four resource view component types (Definition 1)."""

import pytest
from datetime import date

from repro.core.components import (
    ANY,
    Attribute,
    ContentComponent,
    DATE,
    Domain,
    GroupComponent,
    INTEGER,
    STRING,
    Schema,
    TupleComponent,
    ViewSequence,
    domain_by_name,
)
from repro.core.errors import (
    ComponentError,
    InfiniteComponentError,
    SchemaError,
)
from repro.core.resource_view import ResourceView


class TestDomains:
    def test_string_domain_accepts_strings(self):
        assert STRING.contains("hello")

    def test_string_domain_rejects_ints(self):
        assert not STRING.contains(7)

    def test_integer_domain_rejects_bool(self):
        # bool is an int subclass in Python; the domains stay disjoint
        assert not INTEGER.contains(True)

    def test_date_domain_accepts_date(self):
        assert DATE.contains(date(2005, 3, 19))

    def test_nullable_by_default(self):
        assert STRING.contains(None)

    def test_non_nullable(self):
        strict = Domain("strict", (str,), nullable=False)
        assert not strict.contains(None)

    def test_lookup_by_name(self):
        assert domain_by_name("integer") is INTEGER

    def test_lookup_unknown_raises(self):
        with pytest.raises(ComponentError):
            domain_by_name("quaternion")


class TestSchema:
    def test_attribute_order_preserved(self):
        schema = Schema([("b", STRING), ("a", INTEGER)])
        assert schema.names == ("b", "a")

    def test_position(self):
        schema = Schema(["x", "y", "z"])
        assert schema.position("y") == 1

    def test_position_unknown_raises(self):
        with pytest.raises(SchemaError):
            Schema(["x"]).position("y")

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema(["a", "a"])

    def test_validate_accepts_conforming(self):
        schema = Schema([("size", INTEGER), ("name", STRING)])
        schema.validate((42, "x"))  # must not raise

    def test_validate_rejects_wrong_arity(self):
        with pytest.raises(SchemaError):
            Schema(["a"]).validate((1, 2))

    def test_validate_rejects_wrong_domain(self):
        schema = Schema([("size", INTEGER)])
        with pytest.raises(SchemaError):
            schema.validate(("big",))

    def test_equality_is_structural(self):
        assert Schema([("a", STRING)]) == Schema([("a", STRING)])
        assert Schema([("a", STRING)]) != Schema([("a", INTEGER)])

    def test_hashable(self):
        assert {Schema(["a"]): 1}[Schema(["a"])] == 1

    def test_contains(self):
        assert "a" in Schema(["a", "b"])
        assert "c" not in Schema(["a", "b"])


class TestTupleComponent:
    def test_empty(self):
        tau = TupleComponent.empty()
        assert tau.is_empty
        assert tau.as_dict() == {}

    def test_empty_has_no_schema(self):
        with pytest.raises(ComponentError):
            TupleComponent.empty().schema

    def test_mismatched_schema_values(self):
        with pytest.raises(ComponentError):
            TupleComponent(Schema(["a"]), None)

    def test_paper_example_pim_folder(self):
        # the V_PIM tuple component from Section 2.3
        schema = Schema([
            ("creation time", DATE), ("size", INTEGER),
            ("last modified time", DATE),
        ])
        tau = TupleComponent(
            schema, (date(2005, 3, 19), 4096, date(2005, 9, 22))
        )
        assert tau["size"] == 4096
        assert tau.get("creation time") == date(2005, 3, 19)

    def test_get_with_default(self):
        tau = TupleComponent.from_dict({"a": 1})
        assert tau.get("missing", "dflt") == "dflt"

    def test_from_dict_roundtrip(self):
        values = {"size": 10, "name": "x"}
        assert TupleComponent.from_dict(values).as_dict() == values

    def test_from_dict_with_domains_enforces(self):
        with pytest.raises(SchemaError):
            TupleComponent.from_dict({"size": "big"}, domains={"size": INTEGER})

    def test_contains(self):
        tau = TupleComponent.from_dict({"a": 1})
        assert "a" in tau and "b" not in tau

    def test_equality(self):
        assert (TupleComponent.from_dict({"a": 1})
                == TupleComponent.from_dict({"a": 1}))


class TestContentComponent:
    def test_finite_text(self):
        chi = ContentComponent.of("hello")
        assert chi.is_finite
        assert chi.text() == "hello"
        assert len(chi) == 5

    def test_empty(self):
        assert ContentComponent.empty().is_empty

    def test_iteration_yields_symbols(self):
        assert list(ContentComponent.of("ab")) == ["a", "b"]

    def test_requires_exactly_one_source(self):
        with pytest.raises(ComponentError):
            ContentComponent("x", factory=lambda: iter("y"))
        with pytest.raises(ComponentError):
            ContentComponent()

    def test_infinite_take(self):
        def naturals():
            i = 0
            while True:
                yield str(i % 10)
                i += 1

        chi = ContentComponent.infinite(naturals)
        assert chi.take(5) == "01234"
        assert not chi.is_finite

    def test_infinite_text_raises(self):
        chi = ContentComponent.infinite(lambda: iter("abc"))
        with pytest.raises(InfiniteComponentError):
            chi.text()

    def test_infinite_len_raises(self):
        chi = ContentComponent.infinite(lambda: iter("abc"))
        with pytest.raises(InfiniteComponentError):
            len(chi)

    def test_reusable_stream_rereads(self):
        chi = ContentComponent.infinite(lambda: iter("xyz"))
        assert chi.take(2) == "xy"
        assert chi.take(2) == "xy"

    def test_single_shot_stream_consumed_once(self):
        chi = ContentComponent.infinite(lambda: iter("xyz"), reusable=False)
        assert chi.take(3) == "xyz"
        with pytest.raises(InfiniteComponentError):
            chi.take(1)

    def test_finite_equality(self):
        assert ContentComponent.of("a") == ContentComponent.of("a")
        assert ContentComponent.of("a") != ContentComponent.of("b")


class TestViewSequence:
    def test_finite_items(self):
        views = (ResourceView("a"), ResourceView("b"))
        seq = ViewSequence(views)
        assert seq.items() == views
        assert len(seq) == 2

    def test_infinite_take(self):
        def forever():
            while True:
                yield ResourceView("x")

        seq = ViewSequence.infinite(forever)
        assert len(seq.take(7)) == 7
        assert not seq.is_finite

    def test_infinite_items_raises(self):
        seq = ViewSequence.infinite(lambda: iter(()))
        with pytest.raises(InfiniteComponentError):
            seq.items()

    def test_both_sources_rejected(self):
        with pytest.raises(ComponentError):
            ViewSequence((), factory=lambda: iter(()))

    def test_single_shot(self):
        pool = [ResourceView("a")]
        seq = ViewSequence.infinite(lambda: iter(pool), reusable=False)
        assert len(seq.take(1)) == 1
        with pytest.raises(InfiniteComponentError):
            seq.take(1)


class TestGroupComponent:
    def test_empty(self):
        assert GroupComponent.empty().is_empty

    def test_set_and_sequence_disjointness_enforced(self):
        shared = ResourceView("shared")
        with pytest.raises(ComponentError):
            GroupComponent(
                set_part=ViewSequence((shared,)),
                seq_part=ViewSequence((shared,)),
            )

    def test_iteration_order_set_then_sequence(self):
        a, b, c = ResourceView("a"), ResourceView("b"), ResourceView("c")
        gamma = GroupComponent(set_part=ViewSequence((a,)),
                               seq_part=ViewSequence((b, c)))
        assert [v.name for v in gamma] == ["a", "b", "c"]

    def test_related_requires_finite(self):
        gamma = GroupComponent.of_stream(lambda: iter(()))
        with pytest.raises(InfiniteComponentError):
            gamma.related()

    def test_take_spans_set_and_sequence(self):
        a, b = ResourceView("a"), ResourceView("b")
        gamma = GroupComponent(set_part=ViewSequence((a,)),
                               seq_part=ViewSequence((b,)))
        assert [v.name for v in gamma.take(2)] == ["a", "b"]

    def test_of_stream_is_infinite(self):
        gamma = GroupComponent.of_stream(lambda: iter(()))
        assert not gamma.is_finite

    def test_len_counts_both_parts(self):
        gamma = GroupComponent(
            set_part=ViewSequence((ResourceView("a"),)),
            seq_part=ViewSequence((ResourceView("b"), ResourceView("c"))),
        )
        assert len(gamma) == 3
