"""Tests for intensional components and the simulated service world."""

import pytest

from repro.core.intensional import (
    IntensionalContent,
    IntensionalGroup,
    ServiceError,
    ServiceRegistry,
    intensional_view,
)
from repro.core.resource_view import ResourceView


class TestIntensionalContent:
    def test_computed_on_access(self):
        provider = IntensionalContent(lambda: "result")
        assert provider.computations == 0
        assert provider().text() == "result"
        assert provider.computations == 1

    def test_materialized_serves_cache(self):
        provider = IntensionalContent(lambda: "r")
        provider()
        provider()
        assert provider.computations == 1
        assert provider.is_materialized

    def test_unmaterialized_recomputes(self):
        provider = IntensionalContent(lambda: "r", materialize=False)
        provider()
        provider()
        assert provider.computations == 2

    def test_invalidate_forces_recompute(self):
        provider = IntensionalContent(lambda: "r")
        provider()
        provider.invalidate()
        provider()
        assert provider.computations == 2


class TestIntensionalGroup:
    def test_results_become_group_members(self):
        members = [ResourceView("m1"), ResourceView("m2")]
        provider = IntensionalGroup(lambda: members)
        assert {v.name for v in provider()} == {"m1", "m2"}

    def test_ordered_results(self):
        members = [ResourceView("a"), ResourceView("b")]
        provider = IntensionalGroup(lambda: members, ordered=True)
        gamma = provider()
        assert [v.name for v in gamma.seq_part.items()] == ["a", "b"]

    def test_materialization_counts(self):
        provider = IntensionalGroup(lambda: [ResourceView("m")])
        provider()
        provider()
        assert provider.computations == 1

    def test_intensional_view_is_lazy(self):
        calls = []

        def query():
            calls.append(1)
            return [ResourceView("hit")]

        v = intensional_view("saved-search", query)
        assert calls == []
        assert [c.name for c in v.group] == ["hit"]
        assert calls == [1]


class TestServiceRegistry:
    def test_call_returns_handler_result(self):
        registry = ServiceRegistry()
        registry.register("svc/Get", lambda: "<r/>")
        assert registry.call("svc/Get") == "<r/>"

    def test_unknown_endpoint_raises(self):
        with pytest.raises(ServiceError):
            ServiceRegistry().call("nowhere")

    def test_call_log_records(self):
        registry = ServiceRegistry()
        registry.register("svc/Echo", lambda x: x)
        registry.call("svc/Echo", 42)
        assert registry.call_log == [("svc/Echo", (42,))]
        assert registry.calls_to("svc/Echo") == 1

    def test_endpoints_sorted(self):
        registry = ServiceRegistry()
        registry.register("b", lambda: 1)
        registry.register("a", lambda: 2)
        assert registry.endpoints() == ["a", "b"]
