"""Tests for view identities."""

import pytest

from repro.core.identity import IdGenerator, ViewId


class TestViewId:
    def test_uri_roundtrip(self):
        vid = ViewId("imap", "INBOX/42")
        assert ViewId.parse(vid.uri) == vid

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError):
            ViewId.parse("no-scheme-here")

    def test_child_uses_fragment_first(self):
        vid = ViewId("fs", "/a/b.tex")
        assert vid.child("s0").path == "/a/b.tex#s0"

    def test_nested_children_use_slash(self):
        vid = ViewId("fs", "/a/b.tex").child("s0").child("p1")
        assert vid.path == "/a/b.tex#s0/p1"

    def test_hashable_and_equal(self):
        assert ViewId("a", "x") == ViewId("a", "x")
        assert len({ViewId("a", "x"), ViewId("a", "x")}) == 1

    def test_str_is_uri(self):
        assert str(ViewId("fs", "/p")) == "fs:///p"


class TestIdGenerator:
    def test_sequential(self):
        gen = IdGenerator("mem")
        assert gen.next_id().path == "v0"
        assert gen.next_id().path == "v1"

    def test_deterministic_per_instance(self):
        a = [IdGenerator("m").next_id() for _ in range(3)]
        b = [IdGenerator("m").next_id() for _ in range(3)]
        assert a == b

    def test_prefix(self):
        assert IdGenerator().next_id("t").path == "t0"
