"""Tests for lineage tracking (Section 8, issue 2)."""

import pytest

from repro.core.errors import LineageError
from repro.core.identity import ViewId
from repro.core.lineage import LineageTracker
from repro.core.resource_view import ResourceView


def _v(name: str) -> ResourceView:
    return ResourceView(name, view_id=ViewId("mem", name))


class TestRecording:
    def test_simple_derivation(self):
        tracker = LineageTracker()
        source, copy = _v("src"), _v("copy")
        derivation = tracker.record("copy", [source], [copy])
        assert derivation.operation == "copy"
        assert tracker.producers_of(copy) == [derivation]

    def test_outputs_required(self):
        with pytest.raises(LineageError):
            LineageTracker().record("noop", [_v("a")], [])

    def test_inputs_outputs_disjoint(self):
        tracker = LineageTracker()
        v = _v("x")
        with pytest.raises(LineageError):
            tracker.record("id", [v], [v])

    def test_cycle_rejected(self):
        tracker = LineageTracker()
        a, b = _v("a"), _v("b")
        tracker.record("t", [a], [b])
        with pytest.raises(LineageError):
            tracker.record("t", [b], [a])

    def test_base_views(self):
        tracker = LineageTracker()
        a, b = _v("a"), _v("b")
        tracker.record("t", [a], [b])
        assert tracker.is_base(a)
        assert not tracker.is_base(b)


class TestQueries:
    def _chain(self):
        """file -> latex2idm -> section; section + email -> merge -> note"""
        tracker = LineageTracker()
        file_v, section, email, note = _v("f"), _v("s"), _v("e"), _v("n")
        tracker.record("latex2idm", [file_v], [section])
        tracker.record("merge", [section, email], [note])
        return tracker, file_v, section, email, note

    def test_ancestors_transitive(self):
        tracker, file_v, section, email, note = self._chain()
        assert tracker.ancestors(note) == {
            file_v.view_id, section.view_id, email.view_id
        }

    def test_descendants_transitive(self):
        tracker, file_v, section, email, note = self._chain()
        assert tracker.descendants(file_v) == {
            section.view_id, note.view_id
        }

    def test_chain_lists_all_relevant_derivations(self):
        tracker, file_v, section, email, note = self._chain()
        operations = [d.operation for d in tracker.chain(note)]
        assert operations == ["latex2idm", "merge"]

    def test_chain_of_base_view_empty(self):
        tracker, file_v, *_ = self._chain()
        assert tracker.chain(file_v) == []

    def test_multi_output_derivation(self):
        tracker = LineageTracker()
        source = _v("doc")
        outs = [_v("sec1"), _v("sec2")]
        tracker.record("split", [source], outs)
        for out in outs:
            assert tracker.ancestors(out) == {source.view_id}

    def test_cross_source_lineage(self):
        """The paper's selling point: lineage across data sources."""
        tracker = LineageTracker()
        fs_file = ResourceView("draft.tex", view_id=ViewId("fs", "/draft.tex"))
        attachment = ResourceView("draft.tex",
                                  view_id=ViewId("imap", "INBOX/1#a0"))
        tracker.record("attach", [fs_file], [attachment])
        assert fs_file.view_id in tracker.ancestors(attachment)

    def test_accepts_raw_view_ids(self):
        tracker = LineageTracker()
        tracker.record("t", [ViewId("x", "1")], [ViewId("x", "2")])
        assert tracker.ancestors(ViewId("x", "2")) == {ViewId("x", "1")}
