"""Tests for resource view graph traversal (trees, DAGs, cycles)."""

import pytest

from repro.core.components import GroupComponent
from repro.core.errors import GraphError
from repro.core.graph import (
    children,
    collect_index,
    count_views,
    descendants,
    find,
    find_by_name,
    has_cycle,
    is_indirectly_related,
    paths_between,
    to_dot,
    traverse,
)
from repro.core.resource_view import ResourceView


def _tree():
    """root -> (a -> (a1, a2), b)"""
    a1, a2 = ResourceView("a1"), ResourceView("a2")
    a = ResourceView("a", group=[a1, a2])
    b = ResourceView("b")
    root = ResourceView("root", group=[a, b])
    return root, a, b, a1, a2


def _figure1_cycle():
    """The paper's Projects -> PIM -> All Projects -> Projects cycle."""
    holder = {}
    projects = ResourceView("Projects",
                            group=lambda: [holder["pim"]])
    all_projects = ResourceView("All Projects",
                                group=lambda: [projects])
    holder["pim"] = ResourceView("PIM", group=[all_projects])
    return projects, holder["pim"], all_projects


def _shared_diamond():
    """document -> (problem -> prelim, prelim): a DAG with sharing."""
    prelim = ResourceView("Preliminaries")
    ref = ResourceView("ref", group=[prelim])
    problem = ResourceView("The Problem", group=[ref])
    document = ResourceView("document", group=[problem, prelim])
    return document, problem, ref, prelim


class TestTraverse:
    def test_bfs_visits_all(self):
        root, *_ = _tree()
        assert count_views(root) == 5

    def test_bfs_depths(self):
        root, *_ = _tree()
        depths = {v.name: d for v, d in traverse(root)}
        assert depths == {"root": 0, "a": 1, "b": 1, "a1": 2, "a2": 2}

    def test_dfs_visits_all(self):
        root, *_ = _tree()
        assert sum(1 for _ in traverse(root, order="dfs")) == 5

    def test_bad_order_raises(self):
        with pytest.raises(GraphError):
            list(traverse(ResourceView(), order="sideways"))

    def test_max_depth(self):
        root, *_ = _tree()
        names = {v.name for v, _ in traverse(root, max_depth=1)}
        assert names == {"root", "a", "b"}

    def test_max_views(self):
        root, *_ = _tree()
        assert sum(1 for _ in traverse(root, max_views=2)) == 2

    def test_cycle_terminates(self):
        projects, pim, all_projects = _figure1_cycle()
        assert count_views(projects) == 3

    def test_multiple_roots(self):
        a, b = ResourceView("a"), ResourceView("b")
        assert count_views([a, b]) == 2

    def test_shared_node_visited_once(self):
        document, *_ = _shared_diamond()
        assert count_views(document) == 4

    def test_infinite_group_bounded(self):
        def forever():
            while True:
                yield ResourceView("item")

        stream = ResourceView(group=GroupComponent.of_stream(forever))
        total = count_views(stream, infinite_sample=10)
        assert total == 11  # the stream view + 10 sampled items


class TestRelations:
    def test_is_indirectly_related_transitive(self):
        root, a, b, a1, a2 = _tree()
        assert is_indirectly_related(root, a1)

    def test_not_related_to_sibling(self):
        root, a, b, a1, a2 = _tree()
        assert not is_indirectly_related(a1, a2)

    def test_cycle_self_reachable(self):
        projects, pim, all_projects = _figure1_cycle()
        # following the cycle, Projects is indirectly related to itself
        assert is_indirectly_related(projects, projects)

    def test_descendants_exclude_root(self):
        root, *_ = _tree()
        assert {v.name for v in descendants(root)} == {"a", "b", "a1", "a2"}

    def test_children_helper(self):
        root, a, b, a1, a2 = _tree()
        assert {v.name for v in children(root)} == {"a", "b"}


class TestSearch:
    def test_find_by_name(self):
        root, *_ = _tree()
        assert len(find_by_name(root, "a1")) == 1

    def test_find_by_name_missing(self):
        root, *_ = _tree()
        assert find_by_name(root, "zzz") == []

    def test_find_with_predicate(self):
        root, *_ = _tree()
        deep = find(root, lambda v: v.name.startswith("a"))
        assert {v.name for v in deep} == {"a", "a1", "a2"}

    def test_collect_index_keys_by_id(self):
        root, a, *_ = _tree()
        index = collect_index(root)
        assert index[a.view_id] is a


class TestCycleDetection:
    def test_tree_has_no_cycle(self):
        root, *_ = _tree()
        assert not has_cycle(root)

    def test_figure1_cycle_detected(self):
        projects, *_ = _figure1_cycle()
        assert has_cycle(projects)

    def test_dag_sharing_is_not_a_cycle(self):
        document, *_ = _shared_diamond()
        assert not has_cycle(document)

    def test_self_loop(self):
        holder = {}
        selfish = ResourceView("s", group=lambda: [holder["s"]])
        holder["s"] = selfish
        assert has_cycle(selfish)


class TestPaths:
    def test_two_paths_to_shared_view(self):
        document, problem, ref, prelim = _shared_diamond()
        paths = paths_between(document, prelim)
        assert len(paths) == 2
        lengths = sorted(len(p) for p in paths)
        assert lengths == [2, 4]  # direct and via problem -> ref

    def test_no_path(self):
        a, b = ResourceView("a"), ResourceView("b")
        assert paths_between(a, b) == []

    def test_max_paths_bound(self):
        document, problem, ref, prelim = _shared_diamond()
        assert len(paths_between(document, prelim, max_paths=1)) == 1


class TestDot:
    def test_dot_contains_nodes_and_edges(self):
        root, *_ = _tree()
        dot = to_dot(root)
        assert dot.startswith("digraph idm {")
        assert dot.count("->") == 4
        assert "a1" in dot

    def test_dot_escapes_quotes(self):
        v = ResourceView('say "hi"')
        assert '\\"hi\\"' in to_dot(v)

    def test_dot_sequence_edges_dashed(self):
        child = ResourceView("c")
        parent = ResourceView(
            "p", group=GroupComponent.of_sequence([child])
        )
        assert "style=dashed" in to_dot(parent)


class TestGraphml:
    def test_graphml_well_formed_xml(self):
        from repro.core.graph import to_graphml
        from repro.xmlp import parse
        root, *_ = _tree()
        document = parse(to_graphml(root))
        assert document.root.name == "graphml"

    def test_graphml_nodes_and_edges(self):
        from repro.core.graph import to_graphml
        from repro.xmlp import parse
        root, *_ = _tree()
        document = parse(to_graphml(root))
        graph = document.root.find("graph")
        assert len(graph.find_all("node")) == 5
        assert len(graph.find_all("edge")) == 4

    def test_graphml_sequence_edges_carry_position(self):
        from repro.core.graph import to_graphml
        child = ResourceView("c")
        parent = ResourceView(
            "p", group=GroupComponent.of_sequence([child])
        )
        text = to_graphml(parent)
        assert '<data key="part">seq</data>' in text
        assert '<data key="position">0</data>' in text

    def test_graphml_escapes_names(self):
        from repro.core.graph import to_graphml
        view = ResourceView('a<b>&"c"')
        text = to_graphml(view)
        assert "&lt;b&gt;" in text and "&amp;" in text
