"""Tests for the command-line interface."""

import pytest

from repro.cli import EXIT_PARSE_ERROR, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_query_defaults(self):
        args = build_parser().parse_args(["query", '"x"'])
        assert args.iql == '"x"'
        assert args.scale == 0.02
        assert args.limit == 20

    def test_scale_option(self):
        args = build_parser().parse_args(["stats", "--scale", "0.01"])
        assert args.scale == 0.01


@pytest.fixture(scope="module")
def tiny_args():
    # the smallest dataspace the profiles allow, to keep CLI tests quick
    return ["--scale", "0.001", "--seed", "3"]


class TestCommands:
    def test_stats(self, capsys, tiny_args):
        assert main(["stats", *tiny_args]) == 0
        out = capsys.readouterr().out
        assert "base" in out and "index sizes" in out
        assert "content" in out

    def test_query_prints_hits(self, capsys, tiny_args):
        assert main(["query", '"database"', *tiny_args]) == 0
        out = capsys.readouterr().out
        assert "result(s)" in out
        assert "fs://" in out or "imap://" in out

    def test_query_limit(self, capsys, tiny_args):
        assert main(["query", '"database"', "--limit", "1", *tiny_args]) == 0
        out = capsys.readouterr().out
        assert "-- 1 result(s)" in out
        lines = [l for l in out.splitlines() if not l.startswith("--")]
        assert len(lines) == 1  # the limit streamed exactly one row

    def test_query_explain(self, capsys, tiny_args):
        assert main(["query", '//papers//*.tex', "--explain",
                     *tiny_args]) == 0
        out = capsys.readouterr().out
        assert "ExpandStep" in out

    def test_query_join(self, capsys, tiny_args):
        assert main([
            "query",
            'join( //*[class = "emailmessage"]//*.tex as A, '
            "//papers//*.tex as B, A.name = B.name )",
            *tiny_args,
        ]) == 0
        out = capsys.readouterr().out
        assert "<->" in out

    def test_search(self, capsys, tiny_args):
        assert main(["search", "database tuning", "--limit", "3",
                     *tiny_args]) == 0
        out = capsys.readouterr().out
        assert "fs://" in out or "imap://" in out or "no matches" in out

    def test_tables(self, capsys, tiny_args):
        assert main(["tables", *tiny_args]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "Figure 5" in out
        assert "Table 4" in out

    def test_serve(self, capsys, tiny_args):
        assert main(["serve", "--clients", "1,2", "--requests", "3",
                     "--workers", "2", *tiny_args]) == 0
        out = capsys.readouterr().out
        assert "closed-loop service workload" in out
        assert "p99 [ms]" in out
        assert "queries.served" in out

    def test_serve_rejects_bad_client_list(self, capsys, tiny_args):
        assert main(["serve", "--clients", "one,two", *tiny_args]) == 2
        err = capsys.readouterr().err
        assert "invalid --clients" in err


class TestParseErrors:
    def test_parse_error_exit_code(self, capsys, tiny_args):
        assert main(["query", "//[[broken", *tiny_args]) == EXIT_PARSE_ERROR
        captured = capsys.readouterr()
        assert "iql parse error:" in captured.err
        assert len(captured.err.strip().splitlines()) == 1  # one clean line
        assert "Traceback" not in captured.err

    def test_parse_error_in_explain(self, capsys, tiny_args):
        assert main(["query", "//[[broken", "--explain",
                     *tiny_args]) == EXIT_PARSE_ERROR
        assert "iql parse error:" in capsys.readouterr().err


class TestDurabilityCommands:
    def test_checkpoint_then_recover_verify(self, capsys, tmp_path,
                                            tiny_args):
        space = str(tmp_path / "space")
        assert main(["checkpoint", space, *tiny_args]) == 0
        out = capsys.readouterr().out
        assert "synced" in out and "checkpoint at lsn" in out
        assert main(["recover", space, "--verify",
                     "--verify-count", "8"]) == 0
        out = capsys.readouterr().out
        assert "recovered" in out
        assert "engine ≡ reference oracle" in out

    def test_checkpoint_reopens_existing_directory(self, capsys, tmp_path,
                                                   tiny_args):
        space = str(tmp_path / "space")
        assert main(["checkpoint", space, *tiny_args]) == 0
        capsys.readouterr()
        # second run recovers instead of regenerating
        assert main(["checkpoint", space, *tiny_args]) == 0
        out = capsys.readouterr().out
        assert "recovered" in out

    def test_snapshot_save_load(self, capsys, tmp_path, tiny_args):
        snap = str(tmp_path / "snap")
        assert main(["snapshot", "save", snap, *tiny_args]) == 0
        assert "saved" in capsys.readouterr().out
        assert main(["snapshot", "load", snap]) == 0
        assert "loaded" in capsys.readouterr().out


class TestFsck:
    def test_fsck_clean_directory_exits_zero(self, capsys, tmp_path,
                                             tiny_args):
        space = str(tmp_path / "space")
        assert main(["checkpoint", space, *tiny_args]) == 0
        capsys.readouterr()
        assert main(["fsck", space, "--verify-count", "8"]) == 0
        out = capsys.readouterr().out
        assert "recovered" in out
        assert "engine ≡ reference oracle" in out

    def test_fsck_rejects_non_durability_directory(self, capsys, tmp_path):
        assert main(["fsck", str(tmp_path)]) == 2
        assert "not a durability directory" in capsys.readouterr().err

    def test_fsck_leaves_the_directory_untouched(self, capsys, tmp_path,
                                                 tiny_args):
        space = tmp_path / "space"
        assert main(["checkpoint", str(space), *tiny_args]) == 0
        before = sorted(p.name for p in space.rglob("*"))
        assert main(["fsck", str(space)]) == 0
        assert sorted(p.name for p in space.rglob("*")) == before


class TestServeSharded:
    def test_serve_sharded_survives_a_sigkill(self, capsys, tmp_path,
                                              tiny_args):
        assert main(["serve", "--shards", "2", "--requests", "2",
                     "--directory", str(tmp_path / "shards"),
                     "--kill-shard", "0", *tiny_args]) == 0
        out = capsys.readouterr().out
        assert "supervisor up: 2 shard worker(s)" in out
        assert "SIGKILL shard 0" in out
        assert "shard 0 recovered" in out
        assert "supervised shards" in out


class TestFleetObservability:
    def test_stats_fleet_watch_renders_bounded_frames(self, capsys,
                                                      tiny_args):
        assert main(["stats", "--shards", "2", "--watch", "--frames", "2",
                     "--interval", "0.05", *tiny_args]) == 0
        out = capsys.readouterr().out
        assert out.count("fleet (2 shards)") == 2  # --frames bounded it
        # the per-shard supervision columns
        for column in ("state", "epoch", "restarts", "inflight",
                       "p99 [ms]", "export"):
            assert column in out
        # the merged registry carries federated {shard=N} series
        assert 'query.executions{shard="0"}' in out
        assert 'query.executions{shard="1"}' in out

    def test_stats_fleet_prometheus_is_scrapable(self, capsys, tiny_args):
        from repro.obs.promcheck import parse_samples

        assert main(["stats", "--shards", "1", "--format", "prometheus",
                     *tiny_args]) == 0
        out = capsys.readouterr().out
        samples = parse_samples(out)  # raises on any malformed line
        assert any(labels.get("shard") == "0" for _, labels, _ in samples)

    def test_query_sharded_analyze_prints_stitched_tree(self, capsys,
                                                        tiny_args):
        assert main(["query", '"database"', "--analyze", "--shards", "1",
                     "--tenant", "acme", *tiny_args]) == 0
        out = capsys.readouterr().out
        assert "ShardedQuery" in out
        assert "RingLookup" in out
        assert "Dispatch(epoch=" in out
        assert "result(s) from shard" in out

    def test_query_sharded_routes_and_prints(self, capsys, tiny_args):
        assert main(["query", '"database"', "--shards", "1",
                     *tiny_args]) == 0
        out = capsys.readouterr().out
        assert "result(s) from shard 0 (epoch 1)" in out
