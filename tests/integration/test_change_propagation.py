"""Integration: live changes propagate through sync into query results."""

from datetime import datetime

from repro.facade import Dataspace
from repro.imapsim import Attachment, EmailMessage
from repro.rss import FeedEntry


class TestFilesystemPropagation:
    def test_new_file_becomes_queryable(self, generated_tiny):
        ds = Dataspace(vfs=generated_tiny.vfs, imap=generated_tiny.imap)
        ds.sync()
        ds.watch()
        generated_tiny.vfs.write_file(
            "/Projects/PIM/breaking.txt", "zanzibar discovery notes"
        )
        ds.refresh()
        assert len(ds.query('"zanzibar"')) == 1

    def test_new_tex_file_grows_subgraph(self, generated_tiny):
        ds = Dataspace(vfs=generated_tiny.vfs, imap=generated_tiny.imap)
        ds.sync()
        ds.watch()
        generated_tiny.vfs.write_file(
            "/Projects/PIM/fresh.tex",
            r"\begin{document}\section{Novelty}xylophone text\end{document}",
        )
        ds.refresh()
        hits = ds.query('//Novelty[class="latex_section"]')
        assert len(hits) == 1

    def test_deletion_removes_results(self, generated_tiny):
        ds = Dataspace(vfs=generated_tiny.vfs, imap=generated_tiny.imap)
        ds.sync()
        ds.watch()
        generated_tiny.vfs.write_file("/Projects/tmp.txt", "quokka facts")
        ds.refresh()
        assert len(ds.query('"quokka"')) == 1
        generated_tiny.vfs.delete("/Projects/tmp.txt")
        ds.refresh()
        assert len(ds.query('"quokka"')) == 0

    def test_modification_replaces_index_entries(self, generated_tiny):
        ds = Dataspace(vfs=generated_tiny.vfs, imap=generated_tiny.imap)
        ds.sync()
        ds.watch()
        generated_tiny.vfs.write_file("/Projects/v.txt", "veritas one")
        ds.refresh()
        generated_tiny.vfs.write_file("/Projects/v.txt", "mutatis two")
        ds.refresh()
        assert len(ds.query('"veritas"')) == 0
        assert len(ds.query('"mutatis"')) == 1


class TestEmailPropagation:
    def test_delivered_message_queryable(self, generated_tiny):
        ds = Dataspace(vfs=generated_tiny.vfs, imap=generated_tiny.imap)
        ds.sync()
        ds.watch()
        generated_tiny.imap.deliver("INBOX", EmailMessage(
            subject="urgent flamingo", sender="x@y", to=("z@w",),
            date=datetime(2005, 9, 1), body="flamingo sighting report",
        ))
        ds.refresh()
        assert len(ds.query('"flamingo"')) >= 1

    def test_attachment_subgraph_queryable(self, generated_tiny):
        ds = Dataspace(vfs=generated_tiny.vfs, imap=generated_tiny.imap)
        ds.sync()
        ds.watch()
        generated_tiny.imap.deliver("INBOX", EmailMessage(
            subject="doc", sender="x@y", to=("z@w",),
            date=datetime(2005, 9, 1), body="see attachment",
            attachments=(Attachment(
                "late.tex",
                r"\begin{document}\section{Aardwolf}rare text\end{document}",
            ),),
        ))
        ds.refresh()
        assert len(ds.query('//Aardwolf[class="latex_section"]')) == 1


class TestFeedPropagation:
    def test_new_entry_found_by_polling(self, generated_tiny):
        ds = Dataspace(vfs=generated_tiny.vfs, imap=generated_tiny.imap,
                       feeds=generated_tiny.feeds)
        ds.sync()
        ds.refresh()  # baseline poll
        url = generated_tiny.feeds.urls()[0]
        generated_tiny.feeds.add_entry(url, FeedEntry(
            "brandnew", "Okapi special", "okapi description",
            datetime(2006, 5, 5),
        ))
        ds.refresh()
        assert len(ds.query('"okapi"')) >= 1
