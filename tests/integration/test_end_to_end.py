"""End-to-end integration: generate → sync → query, and the facade."""

from repro.bench.harness import PAPER_QUERIES


class TestFacadeLifecycle:
    def test_sync_reports_all_sources(self, tiny_dataspace):
        report = tiny_dataspace.last_sync_report
        assert set(report.sources) == {"fs", "imap", "rss"}
        assert report.views_total == tiny_dataspace.view_count

    def test_view_count_substantial(self, tiny_dataspace):
        # derived views multiply base items
        assert tiny_dataspace.view_count > 200

    def test_index_sizes_consistent(self, tiny_dataspace):
        sizes = tiny_dataspace.index_sizes()
        assert sizes["total"] == (sizes["name"] + sizes["tuple"]
                                  + sizes["content"] + sizes["group"]
                                  + sizes["catalog"])
        assert sizes["content"] > 0
        assert sizes["net_input"] > 0

    def test_explain_without_execution(self, tiny_dataspace):
        assert "ContentSearch" in tiny_dataspace.explain('"database"')


class TestPaperQueriesEndToEnd:
    """Every Table 4 query must run and return its planted ground truth."""

    def test_q1_database_many_hits(self, tiny_dataspace):
        result = tiny_dataspace.query(PAPER_QUERIES["Q1"])
        assert len(result) > 20

    def test_q2_phrase_fewer_than_q1(self, tiny_dataspace):
        q1 = tiny_dataspace.query(PAPER_QUERIES["Q1"])
        q2 = tiny_dataspace.query(PAPER_QUERIES["Q2"])
        assert 0 < len(q2) < len(q1)

    def test_q3_matches_planted_large_files(self, tiny_dataspace):
        result = tiny_dataspace.query(PAPER_QUERIES["Q3"])
        assert len(result) == \
            tiny_dataspace.generated.planted["q3_large_files"]

    def test_q4_vision_sections(self, tiny_dataspace):
        result = tiny_dataspace.query(PAPER_QUERIES["Q4"])
        assert len(result) == \
            tiny_dataspace.generated.planted["q4_vision_sections"]

    def test_q5_conclusion_sections(self, tiny_dataspace):
        result = tiny_dataspace.query(PAPER_QUERIES["Q5"])
        assert len(result) == \
            tiny_dataspace.generated.planted["q5_conclusion_sections"]

    def test_q6_union_nonempty(self, tiny_dataspace):
        result = tiny_dataspace.query(PAPER_QUERIES["Q6"])
        assert len(result) >= 2

    def test_q7_figure_join(self, tiny_dataspace):
        result = tiny_dataspace.query(PAPER_QUERIES["Q7"])
        assert len(result) == \
            tiny_dataspace.generated.planted["q7_figure_refs"]
        for pair in result.pairs:
            assert pair.left.class_name == "texref"
            assert pair.right.class_name == "figure"

    def test_q8_cross_subsystem_join(self, tiny_dataspace):
        result = tiny_dataspace.query(PAPER_QUERIES["Q8"])
        assert len(result) == \
            tiny_dataspace.generated.planted["q8_shared_tex"]
        for pair in result.pairs:
            assert pair.left.uri.startswith("imap://")
            assert pair.right.uri.startswith("fs://")

    def test_all_queries_under_a_second(self, tiny_dataspace):
        for iql in PAPER_QUERIES.values():
            result = tiny_dataspace.query(iql)
            assert result.elapsed_seconds < 1.0  # the paper's HCI bound


class TestIntroExamples:
    """The two motivating queries from the paper's introduction."""

    def test_example1_inside_outside(self, tiny_dataspace):
        result = tiny_dataspace.query(
            '//PIM//Introduction[class="latex_section" and "Mike Franklin"]'
        )
        assert len(result) == 1
        assert result.hits[0].uri.startswith("fs:///Projects/PIM/")

    def test_example2_files_vs_attachments(self, tiny_dataspace):
        result = tiny_dataspace.query(
            '//OLAP//[class="figure" and "Indexing Time"]'
        )
        assert len(result) >= 1
        assert any(h.uri.startswith("imap://") for h in result.hits)
