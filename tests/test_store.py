"""Tests for the embedded relational store (the Derby substitute)."""

import pytest

from repro.core.errors import TableError
from repro.store import (
    BOOL,
    BPlusTree,
    Column,
    Database,
    HashIndex,
    INT,
    TEXT,
    TableSchema,
)
from repro.store.types import DATE, type_by_name


class TestTypes:
    def test_int_accepts(self):
        INT.validate(5, nullable=True)

    def test_int_rejects_string(self):
        with pytest.raises(TableError):
            INT.validate("5", nullable=True)

    def test_int_rejects_bool(self):
        with pytest.raises(TableError):
            INT.validate(True, nullable=True)

    def test_null_respected(self):
        TEXT.validate(None, nullable=True)
        with pytest.raises(TableError):
            TEXT.validate(None, nullable=False)

    def test_size_of_text_varies(self):
        assert TEXT.size_of("abcd") > TEXT.size_of("a")

    def test_type_by_name(self):
        assert type_by_name("int") is INT
        with pytest.raises(TableError):
            type_by_name("void")


class TestSchema:
    def test_primary_key_implies_not_null(self):
        schema = TableSchema([Column("id", TEXT)], primary_key="id")
        assert not schema.columns[0].nullable

    def test_unknown_pk_column_rejected(self):
        with pytest.raises(TableError):
            TableSchema([Column("a", INT)], primary_key="b")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(TableError):
            TableSchema([Column("a", INT), Column("a", TEXT)])

    def test_row_from_dict_fills_nulls(self):
        schema = TableSchema([Column("a", INT), Column("b", TEXT)])
        assert schema.row_from_dict({"a": 1}) == (1, None)

    def test_row_from_dict_rejects_unknown(self):
        schema = TableSchema([Column("a", INT)])
        with pytest.raises(TableError):
            schema.row_from_dict({"zz": 1})


class TestBPlusTree:
    def test_insert_get(self):
        tree = BPlusTree()
        tree.insert(5, "a")
        assert tree.get(5) == ["a"]

    def test_duplicates_accumulate(self):
        tree = BPlusTree()
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert sorted(tree.get(1)) == ["a", "b"]

    def test_missing_key_empty(self):
        assert BPlusTree().get(9) == []

    def test_keys_sorted_after_random_inserts(self):
        import random
        rng = random.Random(3)
        tree = BPlusTree(order=6)
        keys = [rng.randrange(1000) for _ in range(500)]
        for key in keys:
            tree.insert(key, key)
        assert list(tree.keys()) == sorted(set(keys))

    def test_range_inclusive(self):
        tree = BPlusTree(order=4)
        for i in range(100):
            tree.insert(i, i)
        assert [k for k, _ in tree.range(10, 20)] == list(range(10, 21))

    def test_range_exclusive_bounds(self):
        tree = BPlusTree(order=4)
        for i in range(10):
            tree.insert(i, i)
        got = [k for k, _ in tree.range(2, 5, include_low=False,
                                        include_high=False)]
        assert got == [3, 4]

    def test_open_ranges(self):
        tree = BPlusTree(order=4)
        for i in range(10):
            tree.insert(i, i)
        assert [k for k, _ in tree.range(high=3)] == [0, 1, 2, 3]
        assert [k for k, _ in tree.range(low=7)] == [7, 8, 9]

    def test_remove_value(self):
        tree = BPlusTree()
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert tree.remove(1, "a")
        assert tree.get(1) == ["b"]

    def test_remove_whole_key(self):
        tree = BPlusTree()
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert tree.remove(1)
        assert 1 not in tree

    def test_remove_missing_false(self):
        assert not BPlusTree().remove(1)

    def test_mass_delete_keeps_invariants(self):
        import random
        rng = random.Random(9)
        tree = BPlusTree(order=5)
        pairs = [(rng.randrange(200), i) for i in range(1000)]
        for key, value in pairs:
            tree.insert(key, value)
        for key, value in pairs[:700]:
            assert tree.remove(key, value)
        expected: dict[int, list[int]] = {}
        for key, value in pairs[700:]:
            expected.setdefault(key, []).append(value)
        assert list(tree.keys()) == sorted(expected)
        for key, values in expected.items():
            assert sorted(tree.get(key)) == sorted(values)

    def test_len_counts_pairs(self):
        tree = BPlusTree()
        tree.insert(1, "a")
        tree.insert(1, "b")
        tree.insert(2, "c")
        assert len(tree) == 3

    def test_height_grows(self):
        tree = BPlusTree(order=4)
        for i in range(200):
            tree.insert(i, i)
        assert tree.height() >= 3

    def test_string_keys(self):
        tree = BPlusTree()
        tree.insert("banana", 1)
        tree.insert("apple", 2)
        assert list(tree.keys()) == ["apple", "banana"]

    def test_order_minimum(self):
        with pytest.raises(ValueError):
            BPlusTree(order=2)


class TestHashIndex:
    def test_insert_get(self):
        index = HashIndex()
        index.insert("k", 1)
        index.insert("k", 2)
        assert index.get("k") == [1, 2]

    def test_remove_value(self):
        index = HashIndex()
        index.insert("k", 1)
        index.insert("k", 2)
        assert index.remove("k", 1)
        assert index.get("k") == [2]

    def test_remove_key(self):
        index = HashIndex()
        index.insert("k", 1)
        assert index.remove("k")
        assert "k" not in index

    def test_len(self):
        index = HashIndex()
        index.insert("a", 1)
        index.insert("b", 2)
        assert len(index) == 2


class TestTable:
    @pytest.fixture()
    def table(self):
        db = Database()
        table = db.create_table(
            "views",
            [Column("uri", TEXT), Column("size", INT),
             Column("flag", BOOL)],
            primary_key="uri",
        )
        table.create_index("by_size", "size")
        return table

    def test_insert_and_get(self, table):
        table.insert({"uri": "a", "size": 1, "flag": True})
        assert table.get("a")["size"] == 1

    def test_duplicate_pk_rejected(self, table):
        table.insert({"uri": "a", "size": 1})
        with pytest.raises(TableError):
            table.insert({"uri": "a", "size": 2})

    def test_update(self, table):
        table.insert({"uri": "a", "size": 1})
        assert table.update("a", {"size": 99})
        assert table.get("a")["size"] == 99
        assert table.lookup("by_size", 99)[0]["uri"] == "a"
        assert table.lookup("by_size", 1) == []

    def test_update_missing_false(self, table):
        assert not table.update("ghost", {"size": 1})

    def test_delete(self, table):
        table.insert({"uri": "a", "size": 1})
        assert table.delete("a")
        assert table.get("a") is None
        assert len(table) == 0

    def test_delete_where(self, table):
        for i in range(10):
            table.insert({"uri": f"u{i}", "size": i})
        removed = table.delete_where(lambda r: r["size"] % 2 == 0)
        assert removed == 5
        assert len(table) == 5

    def test_scan_with_predicate(self, table):
        for i in range(5):
            table.insert({"uri": f"u{i}", "size": i})
        big = list(table.scan(lambda r: r["size"] >= 3))
        assert len(big) == 2

    def test_secondary_range(self, table):
        for i in range(10):
            table.insert({"uri": f"u{i}", "size": i * 10})
        rows = list(table.range("by_size", 20, 40))
        assert [r["size"] for r in rows] == [20, 30, 40]

    def test_index_backfill(self, table):
        table.insert({"uri": "a", "size": 7})
        table.create_index("by_flag", "flag", kind="hash")
        assert table.lookup("by_flag", None) != [] or True  # no crash
        table.insert({"uri": "b", "size": 8, "flag": True})
        assert table.lookup("by_flag", True)[0]["uri"] == "b"

    def test_unknown_index_raises(self, table):
        with pytest.raises(TableError):
            table.lookup("nope", 1)

    def test_hash_index_rejects_range(self, table):
        table.create_index("h", "size", kind="hash")
        with pytest.raises(TableError):
            list(table.range("h", 1, 2))

    def test_wrong_type_rejected(self, table):
        with pytest.raises(TableError):
            table.insert({"uri": "a", "size": "big"})


class TestDatabase:
    def test_create_and_lookup(self):
        db = Database()
        db.create_table("t", [Column("a", INT)])
        assert "t" in db
        assert db.table("t").name == "t"

    def test_duplicate_table_rejected(self):
        db = Database()
        db.create_table("t", [Column("a", INT)])
        with pytest.raises(TableError):
            db.create_table("t", [Column("a", INT)])

    def test_drop(self):
        db = Database()
        db.create_table("t", [Column("a", INT)])
        db.drop_table("t")
        assert "t" not in db

    def test_size_bytes_sums_tables(self):
        db = Database()
        t = db.create_table("t", [Column("a", TEXT)], primary_key="a")
        empty = db.size_bytes()
        for i in range(50):
            t.insert({"a": f"value-{i}"})
        assert db.size_bytes() > empty
