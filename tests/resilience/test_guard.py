"""The source guard: retries, budgets, breaker integration, sinks."""

import pytest

from repro.core.errors import (
    DataSourceError,
    SourceUnavailable,
    TransientSourceError,
)
from repro.resilience import (
    BreakerState,
    FaultPlan,
    ResilienceHub,
    SourceGuard,
    install_resilience_sink,
    uninstall_resilience_sink,
)

from .conftest import FakeClock, fast_config


class _Flaky:
    """A callable that fails the first N calls, then succeeds."""

    def __init__(self, failures: int,
                 error: type = TransientSourceError) -> None:
        self.remaining = failures
        self.error = error
        self.calls = 0

    def __call__(self) -> str:
        self.calls += 1
        if self.remaining > 0:
            self.remaining -= 1
            raise self.error("boom")
        return "ok"


class TestSourceGuard:
    def test_retries_absorb_transient_faults(self):
        guard = SourceGuard("imap", fast_config(max_attempts=3))
        flaky = _Flaky(2)
        assert guard.call("op", flaky) == "ok"
        assert flaky.calls == 3
        assert guard.stats.retries == 2
        assert guard.stats.successes == 1
        assert guard.breaker.state is BreakerState.CLOSED

    def test_budget_exhaustion_raises_source_unavailable(self):
        guard = SourceGuard("imap", fast_config(max_attempts=3,
                                                breaker_threshold=10))
        flaky = _Flaky(99)
        with pytest.raises(SourceUnavailable) as exc:
            guard.call("op", flaky)
        assert exc.value.authority == "imap"
        assert isinstance(exc.value.__cause__, TransientSourceError)
        assert flaky.calls == 3  # the budget, not one more
        assert guard.stats.retries == 2

    def test_non_retryable_errors_propagate_immediately(self):
        guard = SourceGuard("imap", fast_config(max_attempts=3))
        flaky = _Flaky(99, error=DataSourceError)
        with pytest.raises(DataSourceError):
            guard.call("op", flaky)
        assert flaky.calls == 1
        assert guard.stats.failures == 1

    def test_breaker_opens_within_threshold_and_short_circuits(self):
        clock = FakeClock()
        guard = SourceGuard("imap", fast_config(
            max_attempts=1, breaker_threshold=3, cooldown=30.0,
            clock=clock,
        ))
        for _ in range(3):
            with pytest.raises(SourceUnavailable):
                guard.call("op", _Flaky(99))
        assert guard.breaker.state is BreakerState.OPEN
        # the 4th call never reaches the source
        probe = _Flaky(0)
        with pytest.raises(SourceUnavailable) as exc:
            guard.call("op", probe)
        assert probe.calls == 0
        assert guard.stats.short_circuits == 1
        assert exc.value.retry_after == pytest.approx(30.0)

    def test_breaker_half_opens_after_cooldown_and_recovers(self):
        clock = FakeClock()
        guard = SourceGuard("imap", fast_config(
            max_attempts=1, breaker_threshold=2, cooldown=10.0,
            clock=clock,
        ))
        for _ in range(2):
            with pytest.raises(SourceUnavailable):
                guard.call("op", _Flaky(99))
        assert guard.breaker.state is BreakerState.OPEN
        clock.advance(10.5)
        healthy = _Flaky(0)
        assert guard.call("op", healthy) == "ok"  # the half-open probe
        assert guard.breaker.state is BreakerState.CLOSED

    def test_breaker_opening_mid_budget_stops_retrying(self):
        guard = SourceGuard("imap", fast_config(
            max_attempts=5, breaker_threshold=2,
        ))
        flaky = _Flaky(99)
        with pytest.raises(SourceUnavailable):
            guard.call("op", flaky)
        # threshold 2 < budget 5: the breaker tripped after 2 failures
        # and the guard stopped instead of hammering a dead source
        assert flaky.calls == 2

    def test_deadline_overrun_counts_against_breaker(self):
        clock = FakeClock()
        from dataclasses import replace
        from repro.resilience import RetryPolicy
        config = replace(
            fast_config(clock=clock),
            retry=RetryPolicy(max_attempts=1, call_deadline=0.5),
        )
        guard = SourceGuard("imap", config)

        def slow() -> str:
            clock.advance(1.0)
            return "late"

        assert guard.call("op", slow) == "late"  # data returned...
        assert guard.stats.deadline_overruns == 1
        assert guard.breaker.consecutive_failures == 1  # ...but counted

    def test_retry_events_reach_the_installed_sink(self):
        events: list[str] = []

        class Sink:
            def count(self, name: str, amount: int = 1) -> None:
                events.append(name)

        guard = SourceGuard("rss", fast_config(max_attempts=2))
        token = install_resilience_sink(Sink())
        try:
            guard.call("op", _Flaky(1))
        finally:
            uninstall_resilience_sink(token)
        assert "resilience.rss.failure" in events
        assert "resilience.rss.retry" in events


class TestResilienceHub:
    def test_one_guard_per_authority(self):
        hub = ResilienceHub(fast_config())
        assert hub.guard_for("imap") is hub.guard_for("imap")
        assert hub.guard_for("imap") is not hub.guard_for("fs")

    def test_wrap_is_idempotent(self):
        hub = ResilienceHub(fast_config())

        class P:
            authority = "fs"

            def subscribe_changes(self, cb):
                return False

        wrapped = hub.wrap(P())
        assert hub.wrap(wrapped) is wrapped
        assert wrapped.guard is hub.guard_for("fs")

    def test_health_snapshot_and_open_sources(self):
        hub = ResilienceHub(fast_config(max_attempts=1,
                                        breaker_threshold=1))
        guard = hub.guard_for("imap")
        with pytest.raises(SourceUnavailable):
            guard.call("op", _Flaky(9))
        snapshot = hub.health_snapshot()
        assert snapshot["imap"]["state"] == "open"
        assert snapshot["imap"]["failures"] == 1
        assert hub.open_sources() == ["imap"]

    def test_guarded_plugin_round_trip_with_faults(self):
        """A faulty plugin behind a guard: transient faults are invisible
        to the caller; the plan's schedule is still honoured."""
        from repro.resilience import FaultyPluginWrapper
        from repro.core.identity import ViewId
        from repro.core.resource_view import ResourceView

        class P:
            authority = "stub"

            def root_views(self):
                return [ResourceView(name="r",
                                     view_id=ViewId("stub", "/"))]

            def resolve(self, view_id):
                return None

            def subscribe_changes(self, cb):
                return True

            def poll_changes(self):
                return []

            def data_source_seconds(self):
                return 0.0

        plan = FaultPlan(seed=0).fail_calls(1, 2)
        hub = ResilienceHub(fast_config(max_attempts=3))
        guarded = hub.wrap(FaultyPluginWrapper(P(), plan))
        views = guarded.root_views()  # 2 faults absorbed by 2 retries
        assert len(views) == 1
        assert hub.guard_for("stub").stats.retries == 2
