"""The query service over a degraded dataspace.

Degraded responses are marked, never cached (a recovered source must
not be shadowed by a stale partial answer), and the service's stats
expose per-source breaker health.
"""

import pytest

from repro.resilience import FaultPlan

from .conftest import CHAOS_SEED, fast_config, three_source_dataspace

ROOTS = "/*"  # reaches back to the live sources on every execution


@pytest.fixture()
def dataspace():
    ds = three_source_dataspace(resilience=fast_config(max_attempts=1))
    ds.sync()
    return ds


class TestDegradedService:
    def test_degraded_responses_marked_and_not_cached(self, dataspace):
        dataspace.inject_faults(
            "imap",
            FaultPlan(seed=CHAOS_SEED).fail_calls(1, 2),
        )
        with dataspace.serve(workers=1) as service:
            first = service.execute(ROOTS)
            assert first.is_degraded
            stats = service.stats()
            assert stats["queries.degraded"] == 1
            assert stats["cache.result.size"] == 0  # nothing cached
            # call 2 also faults: had the partial answer been cached,
            # this would have replayed it as a (clean) hit instead
            second = service.execute(ROOTS)
            assert second.is_degraded
            assert service.stats()["queries.degraded"] == 2
            assert service.stats().get("cache.result.hits", 0) == 0

    def test_recovered_source_serves_full_answer_not_stale_partial(
            self, dataspace):
        dataspace.inject_faults(
            "imap", FaultPlan(seed=CHAOS_SEED).fail_calls(1)
        )
        with dataspace.serve(workers=1) as service:
            degraded = service.execute(ROOTS)
            assert degraded.is_degraded
            # the source recovered (only call 1 was scripted): the next
            # execution runs live, answers fully, and only now caches
            recovered = service.execute(ROOTS)
            assert not recovered.is_degraded
            assert set(degraded.uris()) < set(recovered.uris())
            assert service.stats()["cache.result.size"] == 1
            cached = service.execute(ROOTS)
            assert not cached.is_degraded
            assert service.stats()["cache.result.hits"] == 1

    def test_stats_expose_source_health(self, dataspace):
        dataspace.inject_faults("imap", FaultPlan(seed=CHAOS_SEED).outage())
        with dataspace.serve(workers=1) as service:
            for _ in range(5):  # breaker threshold in fast_config
                service.execute(ROOTS)
            stats = service.stats()
            assert stats["resilience.sources_down"] == "imap"
            assert stats["resilience.imap.state"] == "open"
            assert stats["resilience.imap.failures"] >= 5
            assert stats["resilience.fs.state"] == "closed"
            assert stats["queries.degraded"] == 5

    def test_healthy_service_reports_no_sources_down(self, dataspace):
        with dataspace.serve(workers=1) as service:
            result = service.execute(ROOTS)
            assert not result.is_degraded
            stats = service.stats()
            assert stats["resilience.sources_down"] == "-"
            assert "queries.degraded" not in stats
