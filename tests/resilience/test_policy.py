"""Retry backoff schedules and circuit-breaker state transitions."""

import random

import pytest

from repro.core.errors import (
    DataSourceError,
    SourceTimeout,
    TransientSourceError,
)
from repro.resilience import BreakerState, CircuitBreaker, RetryPolicy

from .conftest import FakeClock


class TestRetryPolicy:
    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_multiplier=2.0,
                             backoff_max=0.5, jitter=0.0)
        rng = random.Random(0)
        delays = [policy.delay(n, rng) for n in (1, 2, 3, 4, 5)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_is_bounded_and_seeded(self):
        policy = RetryPolicy(backoff_base=0.1, jitter=0.5)
        delays_a = [policy.delay(1, random.Random(42)) for _ in range(3)]
        delays_b = [policy.delay(1, random.Random(42)) for _ in range(3)]
        assert delays_a == delays_b  # same rng seed, same jitter
        for delay in delays_a:
            assert 0.1 <= delay <= 0.1 * 1.5

    def test_retryable_classification(self):
        policy = RetryPolicy()
        assert policy.is_retryable(TransientSourceError("x"))
        assert policy.is_retryable(SourceTimeout("x"))
        assert not policy.is_retryable(DataSourceError("x"))
        assert not policy.is_retryable(ValueError("x"))

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)
        with pytest.raises(ValueError):
            RetryPolicy().delay(0, random.Random(0))


class TestCircuitBreaker:
    def make(self, clock, *, threshold=3, cooldown=10.0, probes=1):
        return CircuitBreaker(failure_threshold=threshold,
                              cooldown_seconds=cooldown,
                              half_open_probes=probes, clock=clock)

    def test_opens_after_consecutive_failures(self, fake_clock):
        breaker = self.make(fake_clock, threshold=3)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()
        assert breaker.times_opened == 1

    def test_success_resets_the_streak(self, fake_clock):
        breaker = self.make(fake_clock, threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_half_opens_after_cooldown(self, fake_clock):
        breaker = self.make(fake_clock, threshold=1, cooldown=10.0)
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        fake_clock.advance(9.99)
        assert not breaker.allow()
        assert breaker.retry_after == pytest.approx(0.01)
        fake_clock.advance(0.02)
        assert breaker.allow()  # the probe is admitted
        assert breaker.state is BreakerState.HALF_OPEN

    def test_half_open_probe_budget(self, fake_clock):
        breaker = self.make(fake_clock, threshold=1, cooldown=1.0, probes=2)
        breaker.record_failure()
        fake_clock.advance(1.5)
        assert breaker.allow()
        assert breaker.allow()
        assert not breaker.allow()  # budget of 2 spent, result pending

    def test_probe_success_closes(self, fake_clock):
        breaker = self.make(fake_clock, threshold=1, cooldown=1.0)
        breaker.record_failure()
        fake_clock.advance(2.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_and_restarts_cooldown(self, fake_clock):
        breaker = self.make(fake_clock, threshold=1, cooldown=10.0)
        breaker.record_failure()
        fake_clock.advance(11.0)
        assert breaker.allow()
        breaker.record_failure()  # the probe failed
        assert breaker.state is BreakerState.OPEN
        assert breaker.times_opened == 2
        fake_clock.advance(5.0)
        assert not breaker.allow()  # fresh cool-down, not the stale one
        fake_clock.advance(6.0)
        assert breaker.allow()


class TestHalfOpenConcurrency:
    """The half-open probe slot under a thundering herd.

    Without the breaker's internal lock, eight threads racing
    :meth:`allow` at the end of the cool-down all read
    ``_probes_in_flight == 0`` and all pass — eight probes hammer a
    source that has earned exactly one. The shard supervisor leans on
    this: its monitor loop and every submitting thread share one
    breaker per shard.
    """

    def race(self, breaker, threads=8):
        import threading

        barrier = threading.Barrier(threads)
        admitted = []

        def probe():
            barrier.wait()
            if breaker.allow():
                admitted.append(threading.get_ident())

        pool = [threading.Thread(target=probe) for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        return admitted

    def test_exactly_one_probe_admitted(self, fake_clock):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_seconds=5.0,
                                 half_open_probes=1, clock=fake_clock)
        breaker.record_failure()
        fake_clock.advance(6.0)
        admitted = self.race(breaker)
        assert len(admitted) == 1
        # every loser saw the same transition: half-open, slot taken
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker._probes_in_flight == 1
        # and a second herd wins nothing while the probe is pending
        assert len(self.race(breaker)) == 0

    def test_probe_budget_holds_under_concurrency(self, fake_clock):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_seconds=5.0,
                                 half_open_probes=3, clock=fake_clock)
        breaker.record_failure()
        fake_clock.advance(6.0)
        assert len(self.race(breaker, threads=8)) == 3

    def test_admitted_probe_outcome_settles_the_state(self, fake_clock):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_seconds=5.0,
                                 clock=fake_clock)
        breaker.record_failure()
        fake_clock.advance(6.0)
        assert len(self.race(breaker)) == 1
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        # closed again: the herd flows freely
        assert len(self.race(breaker)) == 8
