"""The acceptance scenario: degraded-but-answering queries.

With a 30% transient-fault schedule injected on one of three registered
sources, a representative iQL workload completes every query with
partial results and an accurate :class:`DegradationReport`; with a
permanent outage, the circuit breaker opens within its configured
threshold and half-opens after its cool-down. Everything is seeded and
deterministic.
"""

import pytest

from repro.resilience import BreakerState, FaultPlan

from .conftest import (
    CHAOS_SEED,
    FakeClock,
    fast_config,
    three_source_dataspace,
)

#: A representative workload: the two leading-child-axis shapes reach
#: back to the live sources (RootViews) on every execution; the others
#: answer from indexes built at sync time.
WORKLOAD = [
    "/*",
    '/INBOX//*["database"]',
    '"database"',
    "//papers//*",
]


def _imap_free(uris):
    return {uri for uri in uris if not uri.startswith("imap://")}


class TestTransientSchedule:
    def test_every_query_answers_under_thirty_percent_faults(self):
        dataspace = three_source_dataspace(
            resilience=fast_config(max_attempts=2, breaker_threshold=10_000)
        )
        dataspace.sync()
        baseline = {iql: set(dataspace.query(iql).uris())
                    for iql in WORKLOAD}

        plan = FaultPlan(seed=CHAOS_SEED + 17, transient_rate=0.3)
        dataspace.inject_faults("imap", plan)

        saw_degraded = False
        for _ in range(40):
            for iql in WORKLOAD:
                result = dataspace.query(iql)  # must never raise
                uris = set(result.uris())
                if result.is_degraded:
                    saw_degraded = True
                    # accurate report: only the faulty source appears
                    assert result.degradation.sources_skipped == ["imap"]
                    assert all(incident.authority == "imap"
                               for incident in
                               result.degradation.incidents)
                    # partial result: a subset of the clean answer that
                    # still covers everything the healthy sources hold
                    assert uris <= baseline[iql]
                    assert _imap_free(baseline[iql]) <= uris
                else:
                    assert uris == baseline[iql]
            if saw_degraded:
                break
        # the schedule is seeded: 30% faults against a 2-attempt budget
        # must exhaust at least one retry budget within 40 rounds
        assert saw_degraded
        health = dataspace.health()["imap"]
        assert health["retries"] >= 1  # most faults were absorbed
        assert health["state"] == "closed"  # threshold was out of reach

    def test_degradation_summary_names_the_source(self):
        dataspace = three_source_dataspace(
            resilience=fast_config(max_attempts=1)
        )
        dataspace.sync()
        dataspace.inject_faults(
            "imap", FaultPlan(seed=CHAOS_SEED).fail_calls(1)
        )
        result = dataspace.query("/*")
        assert result.is_degraded
        assert "imap" in result.degradation.summary()
        incident = result.degradation.incidents[0]
        assert incident.operation == "root_views"

    def test_clean_run_reports_no_degradation(self):
        dataspace = three_source_dataspace(resilience=fast_config())
        dataspace.sync()
        for iql in WORKLOAD:
            result = dataspace.query(iql)
            assert not result.is_degraded
            assert result.degradation.incidents == []


class TestPermanentOutage:
    def make_broken_dataspace(self, *, threshold=3, cooldown=60.0):
        clock = FakeClock()
        dataspace = three_source_dataspace(
            resilience=fast_config(max_attempts=1,
                                   breaker_threshold=threshold,
                                   cooldown=cooldown, clock=clock)
        )
        dataspace.sync()
        plan = FaultPlan(seed=CHAOS_SEED).outage()
        dataspace.inject_faults("imap", plan)
        return dataspace, plan, clock

    def test_breaker_opens_within_threshold(self):
        dataspace, plan, _clock = self.make_broken_dataspace(threshold=3)
        for number in range(1, 4):
            result = dataspace.query("/*")
            assert result.is_degraded
            assert plan.calls == number  # each query reached the source
        assert dataspace.health()["imap"]["state"] == "open"
        assert dataspace.rvm.resilience.open_sources() == ["imap"]

    def test_open_breaker_short_circuits_but_still_answers(self):
        dataspace, plan, _clock = self.make_broken_dataspace(threshold=3)
        for _ in range(3):
            dataspace.query("/*")
        calls_when_opened = plan.calls
        for _ in range(5):
            result = dataspace.query("/*")
            assert result.is_degraded
            assert _imap_free(set(result.uris()))  # fs + rss still answer
        # the dead source was not hammered: not one more source call
        assert plan.calls == calls_when_opened
        assert dataspace.health()["imap"]["short_circuits"] == 5

    def test_half_open_probe_after_cooldown_then_recovery(self):
        dataspace, plan, clock = self.make_broken_dataspace(
            threshold=2, cooldown=30.0
        )
        for _ in range(2):
            dataspace.query("/*")
        assert dataspace.health()["imap"]["state"] == "open"

        # cool-down passes: exactly one probe goes through, fails, and
        # the breaker re-opens with a fresh cool-down
        clock.advance(30.5)
        calls_before_probe = plan.calls
        result = dataspace.query("/*")
        assert result.is_degraded
        assert plan.calls == calls_before_probe + 1
        assert dataspace.health()["imap"]["state"] == "open"
        assert dataspace.health()["imap"]["times_opened"] == 2

        # the source comes back: the next probe closes the breaker and
        # the full answer returns
        plan.outage(after=0, until=plan.calls + 1)
        clock.advance(30.5)
        result = dataspace.query("/*")
        assert not result.is_degraded
        assert dataspace.health()["imap"]["state"] == "closed"
        assert any(uri.startswith("imap://") for uri in result.uris())

    def test_explain_analyze_renders_degradation(self):
        dataspace, _plan, _clock = self.make_broken_dataspace()
        report = dataspace.explain_analyze("/*")
        text = report.render()
        assert "degradation:" in text
        assert "imap" in text
