"""Partially failed synchronization is reportable, not fatal."""

from repro.resilience import FaultPlan

from .conftest import CHAOS_SEED, fast_config, three_source_dataspace


class TestDegradedSyncAll:
    def test_clean_sync_reports_no_degradation(self):
        dataspace = three_source_dataspace()
        report = dataspace.sync()
        assert not report.is_degraded
        assert report.sources_skipped == []
        assert report.errors == {}
        for source in report.sources.values():
            assert not source.skipped and source.errors == []

    def test_dead_source_is_skipped_not_fatal(self):
        dataspace = three_source_dataspace(
            resilience=fast_config(max_attempts=2)
        )
        dataspace.inject_faults("imap", FaultPlan(seed=CHAOS_SEED).outage())
        report = dataspace.sync()
        assert report.is_degraded
        assert report.sources_skipped == ["imap"]
        assert report["imap"].skipped
        assert report["imap"].views_total == 0
        assert len(report["imap"].errors) == 1
        # the reachable sources were indexed normally
        assert report["fs"].views_total > 0
        assert report["rss"].views_total > 0
        assert dataspace.view_count == (report["fs"].views_total
                                        + report["rss"].views_total)

    def test_transient_faults_absorbed_by_retries(self):
        dataspace = three_source_dataspace(
            resilience=fast_config(max_attempts=4)
        )
        dataspace.inject_faults(
            "imap", FaultPlan(seed=CHAOS_SEED).fail_calls(1, 3)
        )
        report = dataspace.sync()
        assert not report.is_degraded
        assert report["imap"].views_total > 0
        health = dataspace.health()
        assert health["imap"]["retries"] >= 1
        assert health["imap"]["state"] == "closed"

    def test_unguarded_dead_source_still_skipped(self):
        """Degraded sync does not require the resilience hub: a raw
        plugin exception is reported the same way."""
        dataspace = three_source_dataspace()  # no hub
        dataspace.inject_faults("rss", FaultPlan(seed=CHAOS_SEED).outage())
        report = dataspace.sync()
        assert report.sources_skipped == ["rss"]
        assert report["fs"].views_total > 0

    def test_resync_after_recovery_restores_the_source(self):
        dataspace = three_source_dataspace(
            resilience=fast_config(max_attempts=1, breaker_threshold=50)
        )
        plan = FaultPlan(seed=CHAOS_SEED).outage(after=0, until=2)
        dataspace.inject_faults("imap", plan)
        first = dataspace.sync()
        assert first.sources_skipped == ["imap"]
        second = dataspace.sync()  # the outage window has passed
        assert second.sources_skipped == []
        assert second["imap"].views_total > 0

    def test_health_snapshot_after_degraded_sync(self):
        dataspace = three_source_dataspace(
            resilience=fast_config(max_attempts=2, breaker_threshold=2)
        )
        dataspace.inject_faults("imap", FaultPlan(seed=CHAOS_SEED).outage())
        dataspace.sync()
        health = dataspace.health()
        assert set(health) == {"fs", "imap", "rss"}
        assert health["imap"]["failures"] >= 1
        assert health["fs"]["state"] == "closed"


class TestPendingChanges:
    def test_failed_change_is_deferred_not_lost(self):
        dataspace = three_source_dataspace(
            resilience=fast_config(max_attempts=1)
        )
        dataspace.sync()
        # take imap down, then queue a change against it
        plan = FaultPlan(seed=CHAOS_SEED).outage()
        dataspace.inject_faults("imap", plan)
        sync = dataspace.rvm.sync
        victim_uri = next(uri for uri in sync.live_views
                          if uri.startswith("imap://") and "#" not in uri)
        victim = sync.live_views[victim_uri].view_id
        sync._pending.append(victim)
        processed = sync.process_pending()
        assert processed == 0
        assert sync.pending_count == 1  # deferred for the next round
        # source recovers: the deferred change now applies
        plan.outage(after=0, until=plan.calls + 1)
        assert sync.process_pending() == 1
        assert sync.pending_count == 0
