"""Property-based chaos: arbitrary seeded storms, invariant behaviour.

Two layers, both on the ``ci`` hypothesis profile (derandomized, so a
CI failure replays locally):

* **guard invariants** — for any fault schedule, the source guard never
  exceeds its retry budget, never lets a retryable error escape raw,
  and keeps its statistics consistent (cheap: no dataspace involved);
* **end-to-end storms** — for any (seed, rates, victim source) over a
  micro dataspace with all three plugin kinds (vfs, imapsim, rss):
  sync and queries never raise, answers stay within the clean baseline,
  and the healthy sources are always fully answered.
"""

from __future__ import annotations

import dataclasses

from hypothesis import given, settings, strategies as st

from repro.core.errors import (
    DataSourceError,
    SourceUnavailable,
    TransientSourceError,
)
from repro.dataset import TINY_PROFILE, PersonalDataspaceGenerator
from repro.facade import Dataspace
from repro.imapsim.latency import no_latency
from repro.resilience import FaultPlan, FaultyProvider, SourceGuard

from .conftest import CHAOS_SEED, fast_config

#: A micro profile: big enough to give every source a few views, small
#: enough that hypothesis can afford a sync per example.
MICRO_PROFILE = dataclasses.replace(
    TINY_PROFILE, name="micro", fs_entries=10, fs_latex_docs=1,
    fs_xml_docs=1, emails=4, email_latex_docs=1, email_xml_docs=0,
    large_files=0, feeds=1,
)

WORKLOAD = ["/*", '"database"']


def micro_dataspace(*, resilience) -> Dataspace:
    generated = PersonalDataspaceGenerator(
        MICRO_PROFILE, seed=3, imap_latency=no_latency()
    ).generate()
    return Dataspace(vfs=generated.vfs, imap=generated.imap,
                     feeds=generated.feeds, resilience=resilience)


class TestGuardInvariants:
    @given(
        seed=st.integers(0, 2**16),
        transient_rate=st.floats(0.0, 1.0),
        timeout_rate=st.floats(0.0, 0.5),
        max_attempts=st.integers(1, 5),
        calls=st.integers(1, 30),
    )
    def test_budget_respected_and_stats_consistent(
            self, seed, transient_rate, timeout_rate, max_attempts, calls):
        if transient_rate + timeout_rate > 1.0:
            timeout_rate = 1.0 - transient_rate
        plan = FaultPlan(seed=CHAOS_SEED + seed,
                         transient_rate=transient_rate,
                         timeout_rate=timeout_rate)
        guard = SourceGuard("chaos", fast_config(
            seed=seed, max_attempts=max_attempts,
            breaker_threshold=10_000,  # isolate the retry loop
        ))
        provider = FaultyProvider(plan, lambda: "ok", source="chaos")
        answered = 0
        for _ in range(calls):
            before = provider.calls
            try:
                assert guard.call("op", provider) == "ok"
                answered += 1
            except SourceUnavailable as error:
                # a retryable storm surfaces only after the full budget
                assert isinstance(error.__cause__, TransientSourceError)
                assert provider.calls - before == max_attempts
            assert provider.calls - before <= max_attempts
        stats = guard.stats
        assert stats.successes == answered
        assert stats.calls == calls
        # every attempt lands in exactly one bucket, and a retry only
        # ever follows a failed attempt
        assert provider.calls == stats.successes + stats.failures
        assert stats.retries <= stats.failures
        assert stats.short_circuits == 0

    @given(seed=st.integers(0, 2**16), calls=st.integers(1, 40))
    def test_plans_are_replayable(self, seed, calls):
        plan_a = FaultPlan(seed=seed, transient_rate=0.3, timeout_rate=0.2,
                           latency_rate=0.1)
        plan_b = FaultPlan(seed=seed, transient_rate=0.3, timeout_rate=0.2,
                           latency_rate=0.1)
        for _ in range(calls):
            assert plan_a.next_fault() == plan_b.next_fault()


class TestEndToEndStorms:
    @given(
        seed=st.integers(0, 2**10),
        transient_rate=st.floats(0.0, 0.5),
        timeout_rate=st.floats(0.0, 0.3),
        victim=st.sampled_from(["fs", "imap", "rss"]),
    )
    @settings(max_examples=8, deadline=None)
    def test_storms_never_crash_and_answers_stay_sound(
            self, seed, transient_rate, timeout_rate, victim):
        dataspace = micro_dataspace(
            resilience=fast_config(seed=seed, max_attempts=2)
        )
        dataspace.sync()
        baseline = {iql: set(dataspace.query(iql).uris())
                    for iql in WORKLOAD}
        plan = FaultPlan(seed=CHAOS_SEED + seed,
                         transient_rate=transient_rate,
                         timeout_rate=timeout_rate)
        dataspace.inject_faults(victim, plan)
        for _ in range(3):
            for iql in WORKLOAD:
                result = dataspace.query(iql)  # the property: no raise
                uris = set(result.uris())
                assert uris <= baseline[iql]
                healthy = {uri for uri in baseline[iql]
                           if not uri.startswith(f"{victim}:")}
                assert healthy <= uris
                if not result.is_degraded:
                    assert uris == baseline[iql]
                else:
                    assert {incident.authority for incident in
                            result.degradation.incidents} == {victim}

    @given(seed=st.integers(0, 2**10))
    @settings(max_examples=5, deadline=None)
    def test_outage_mid_sync_skips_only_the_victim(self, seed):
        dataspace = micro_dataspace(
            resilience=fast_config(seed=seed, max_attempts=1)
        )
        plan = FaultPlan(seed=CHAOS_SEED + seed).outage()
        dataspace.inject_faults("imap", plan)
        report = dataspace.sync()  # the property: no raise
        assert report.sources_skipped == ["imap"]
        assert report["fs"].views_total > 0
        assert report["rss"].views_total > 0
        with_errors = {a for a, r in report.sources.items() if r.errors}
        assert with_errors == {"imap"}
