"""Fixtures for the resilience/chaos suite.

``REPRO_CHAOS_SEED`` (the CI chaos matrix) offsets every seeded fault
schedule, so each matrix job replays a different — but individually
deterministic — storm. Backoff never sleeps in tests, and breaker
clocks are fake, so the whole suite runs in seconds.
"""

from __future__ import annotations

import os

import pytest

from repro.dataset import TINY_PROFILE, PersonalDataspaceGenerator
from repro.facade import Dataspace
from repro.imapsim.latency import no_latency
from repro.resilience import ResilienceConfig, RetryPolicy

#: The CI chaos matrix seed: every plan/config seed in this suite adds
#: it, so "the same tests" explore different schedules per matrix job.
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))


class FakeClock:
    """A manually advanced monotonic clock for breaker cool-downs."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def fake_clock() -> FakeClock:
    return FakeClock()


def fast_config(*, seed: int = 0, max_attempts: int = 3,
                breaker_threshold: int = 5,
                cooldown: float = 30.0,
                clock=None) -> ResilienceConfig:
    """A test config: seeded, never sleeps, optional fake clock."""
    config = ResilienceConfig(
        retry=RetryPolicy(max_attempts=max_attempts),
        breaker_failure_threshold=breaker_threshold,
        breaker_cooldown_seconds=cooldown,
        seed=CHAOS_SEED + seed,
    ).with_fast_backoff()
    if clock is not None:
        from dataclasses import replace
        config = replace(config, clock=clock)
    return config


def three_source_dataspace(*, resilience=None, policy=None,
                           seed: int = 7) -> Dataspace:
    """A tiny dataspace over all three source kinds (vfs, imap, rss)."""
    generated = PersonalDataspaceGenerator(
        TINY_PROFILE, seed=seed, imap_latency=no_latency()
    ).generate()
    return Dataspace(vfs=generated.vfs, imap=generated.imap,
                     feeds=generated.feeds, resilience=resilience,
                     policy=policy)
