"""The fault-injection layer itself: deterministic, scripted, honest."""

import pytest

from repro.core.errors import (
    SourceTimeout,
    SourceUnavailable,
    TransientSourceError,
)
from repro.core.identity import ViewId
from repro.core.lazy import LazyValue
from repro.core.resource_view import ResourceView
from repro.resilience import (
    FaultKind,
    FaultPlan,
    FaultyPluginWrapper,
    FaultyProvider,
)

from .conftest import CHAOS_SEED


class _StubPlugin:
    authority = "stub"

    def __init__(self) -> None:
        self.calls = 0

    def root_views(self):
        self.calls += 1
        return [ResourceView(name="root", view_id=ViewId("stub", "/"))]

    def resolve(self, view_id):
        self.calls += 1
        return None

    def subscribe_changes(self, callback):
        return False

    def poll_changes(self):
        self.calls += 1
        return []

    def data_source_seconds(self):
        return 0.0


class TestFaultPlan:
    def test_same_seed_same_schedule(self):
        plan_a = FaultPlan(seed=CHAOS_SEED + 3, transient_rate=0.4)
        plan_b = FaultPlan(seed=CHAOS_SEED + 3, transient_rate=0.4)
        decisions_a = [plan_a.next_fault() is not None for _ in range(200)]
        decisions_b = [plan_b.next_fault() is not None for _ in range(200)]
        assert decisions_a == decisions_b
        assert any(decisions_a) and not all(decisions_a)

    def test_different_seeds_differ(self):
        plans = [FaultPlan(seed=CHAOS_SEED + s, transient_rate=0.5)
                 for s in (1, 2)]
        schedules = [[p.next_fault() is not None for _ in range(100)]
                     for p in plans]
        assert schedules[0] != schedules[1]

    def test_scripted_calls_fire_exactly(self):
        plan = FaultPlan(seed=CHAOS_SEED).fail_calls(2, 4)
        fates = [plan.next_fault() for _ in range(5)]
        assert [f.call_number for f in plan.injected] == [2, 4]
        assert fates[0] is None and fates[2] is None and fates[4] is None
        assert fates[1].kind is FaultKind.TRANSIENT

    def test_scripting_does_not_shift_probabilistic_draws(self):
        base = FaultPlan(seed=CHAOS_SEED + 9, transient_rate=0.3)
        scripted = FaultPlan(seed=CHAOS_SEED + 9,
                             transient_rate=0.3).fail_calls(
            1, kind=FaultKind.TIMEOUT)
        base_fates = [base.next_fault() for _ in range(50)]
        scripted_fates = [scripted.next_fault() for _ in range(50)]
        # call 1 differs (scripted); every later call is identical
        assert ([f.kind if f else None for f in base_fates[1:]]
                == [f.kind if f else None for f in scripted_fates[1:]])

    def test_outage_and_recovery(self):
        plan = FaultPlan(seed=CHAOS_SEED).outage(after=2, until=5)
        fates = [plan.next_fault() for _ in range(6)]
        assert fates[0] is None and fates[1] is None
        assert fates[2].kind is FaultKind.OUTAGE
        assert fates[3].kind is FaultKind.OUTAGE
        assert fates[4] is None  # call 5: recovered
        assert fates[5] is None

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(transient_rate=1.5)

    def test_raise_or_charge_maps_kinds(self):
        plan = FaultPlan(seed=CHAOS_SEED)
        plan.fail_calls(1, kind=FaultKind.TRANSIENT)
        plan.fail_calls(2, kind=FaultKind.TIMEOUT)
        plan.fail_calls(3, kind=FaultKind.OUTAGE)
        plan.fail_calls(4, kind=FaultKind.LATENCY)
        with pytest.raises(TransientSourceError):
            plan.raise_or_charge("s")
        with pytest.raises(SourceTimeout):
            plan.raise_or_charge("s")
        with pytest.raises(SourceUnavailable) as exc:
            plan.raise_or_charge("s")
        assert exc.value.authority == "s"
        assert plan.raise_or_charge("s") == plan.latency_seconds
        assert plan.raise_or_charge("s") == 0.0


class TestFaultyPluginWrapper:
    def test_transparent_when_clean(self):
        inner = _StubPlugin()
        wrapper = FaultyPluginWrapper(inner, FaultPlan(seed=CHAOS_SEED))
        assert wrapper.authority == "stub"
        assert len(wrapper.root_views()) == 1
        assert wrapper.poll_changes() == []
        assert wrapper.data_source_seconds() == 0.0
        assert inner.calls == 2

    def test_faults_block_inner_call(self):
        inner = _StubPlugin()
        plan = FaultPlan(seed=CHAOS_SEED).fail_calls(1)
        wrapper = FaultyPluginWrapper(inner, plan)
        with pytest.raises(TransientSourceError):
            wrapper.root_views()
        assert inner.calls == 0  # the fault fired before the source
        wrapper.root_views()     # call 2 goes through
        assert inner.calls == 1

    def test_latency_charged_to_simulated_seconds(self):
        plan = FaultPlan(seed=CHAOS_SEED, latency_seconds=0.25)
        plan.fail_calls(1, kind=FaultKind.LATENCY)
        wrapper = FaultyPluginWrapper(_StubPlugin(), plan)
        wrapper.root_views()
        assert wrapper.data_source_seconds() == pytest.approx(0.25)

    def test_subscription_never_faulted(self):
        plan = FaultPlan(seed=CHAOS_SEED).outage()
        wrapper = FaultyPluginWrapper(_StubPlugin(), plan)
        assert wrapper.subscribe_changes(lambda _vid: None) is False
        assert plan.calls == 0


class TestFaultyProvider:
    def test_wraps_lazy_component_forcing(self):
        plan = FaultPlan(seed=CHAOS_SEED).fail_calls(1)
        provider = FaultyProvider(plan, lambda: "the text",
                                  source="chaos")
        lazy = LazyValue(provider)
        with pytest.raises(TransientSourceError):
            lazy.get()
        assert lazy.is_failed and not lazy.is_forced
        assert lazy.get() == "the text"  # re-force succeeds
        assert lazy.is_forced and not lazy.is_failed
        assert provider.calls == 2
