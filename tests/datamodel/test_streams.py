"""Tests for the data stream instantiations (Section 3.4)."""

from datetime import datetime

import itertools

from repro.core.classes import BUILTIN_REGISTRY
from repro.core.components import Schema
from repro.core.resource_view import ResourceView
from repro.datamodel.streams import (
    rss_stream_view,
    stream_view,
    tuple_stream_view,
)
from repro.rss import FeedEntry, FeedPoller, FeedServer


class TestGenericStream:
    def test_infinite_group(self):
        def items():
            for i in itertools.count():
                yield ResourceView(f"item{i}")

        stream = stream_view(items)
        assert not stream.group.is_finite
        assert stream.class_name == "datstream"

    def test_take_bounded(self):
        def items():
            for i in itertools.count():
                yield ResourceView(f"item{i}")

        stream = stream_view(items)
        names = [v.name for v in stream.group.take(3)]
        assert names == ["item0", "item1", "item2"]

    def test_conforms_to_datstream(self):
        def items():
            while True:
                yield ResourceView(tuple_component={"x": 1},
                                   class_name="tuple")

        assert BUILTIN_REGISTRY.conforms(stream_view(items))


class TestTupleStream:
    SCHEMA = Schema(["symbol", "price"])

    def _rows(self):
        def rows():
            for i in itertools.count():
                yield ("ABC", float(i))
        return rows

    def test_items_are_tuple_views(self):
        stream = tuple_stream_view(self.SCHEMA, self._rows())
        items = stream.group.take(4)
        assert all(v.class_name == "tuple" for v in items)
        assert items[2].tuple_component["price"] == 2.0

    def test_class_is_tupstream(self):
        stream = tuple_stream_view(self.SCHEMA, self._rows())
        assert stream.class_name == "tupstream"
        assert BUILTIN_REGISTRY.conforms(stream)

    def test_reusable_stream_restarts(self):
        stream = tuple_stream_view(self.SCHEMA, self._rows())
        first = [v.tuple_component["price"] for v in stream.group.take(2)]
        second = [v.tuple_component["price"] for v in stream.group.take(2)]
        assert first == second == [0.0, 1.0]


class TestRssStream:
    def _poller(self):
        server = FeedServer()
        server.publish("u", "Chan", [
            FeedEntry("g1", "One", "d1", datetime(2006, 1, 1)),
            FeedEntry("g2", "Two", "d2", datetime(2006, 1, 2)),
        ])
        return FeedPoller(server, "u")

    def test_items_are_xmldocs(self):
        stream = rss_stream_view(self._poller())
        items = stream.group.take(10)
        assert len(items) == 2
        assert all(v.class_name == "xmldoc" for v in items)

    def test_stream_is_single_shot(self):
        import pytest
        from repro.core.errors import InfiniteComponentError
        stream = rss_stream_view(self._poller())
        stream.group.take(10)
        with pytest.raises(InfiniteComponentError):
            stream.group.take(1)

    def test_item_content_preserved(self):
        stream = rss_stream_view(self._poller())
        first = stream.group.take(1)[0]
        from repro.core.graph import traverse
        texts = [v.text() for v, _ in traverse(first)
                 if v.class_name == "xmltext"]
        assert "One" in texts

    def test_class_is_rssatom(self):
        assert rss_stream_view(self._poller()).class_name == "rssatom"
