"""Tests for the relational instantiation (Table 1)."""

from repro.core.classes import BUILTIN_REGISTRY
from repro.core.components import Schema
from repro.datamodel.relational import (
    database_to_view,
    relation_to_view,
    table_to_view,
    tuple_to_view,
)
from repro.store import Column, Database, INT, TEXT

SCHEMA = Schema(["name", "dept"])
ROWS = [("alice", "db"), ("bob", "os"), ("carol", "db")]


class TestTupleView:
    def test_components(self):
        view = tuple_to_view(SCHEMA, ("alice", "db"))
        assert view.name == ""
        assert view.tuple_component["name"] == "alice"
        assert view.content.is_empty
        assert view.group.is_empty

    def test_conforms(self):
        view = tuple_to_view(SCHEMA, ("alice", "db"))
        assert BUILTIN_REGISTRY.conforms(view)


class TestRelationView:
    def test_members_are_tuple_views(self):
        relation = relation_to_view("emp", SCHEMA, ROWS)
        members = list(relation.group)
        assert len(members) == 3
        assert all(m.class_name == "tuple" for m in members)

    def test_shared_schema(self):
        relation = relation_to_view("emp", SCHEMA, ROWS)
        schemas = {m.tuple_component.schema for m in relation.group}
        assert schemas == {SCHEMA}

    def test_conforms(self):
        relation = relation_to_view("emp", SCHEMA, ROWS)
        assert BUILTIN_REGISTRY.conforms(relation)

    def test_member_ids_derived(self):
        relation = relation_to_view("emp", SCHEMA, ROWS)
        for member in relation.group:
            assert member.view_id.path.startswith("emp#")


class TestDatabaseView:
    def test_holds_relations(self):
        emp = relation_to_view("emp", SCHEMA, ROWS)
        db = database_to_view("company", [emp])
        assert [r.name for r in db.group] == ["emp"]
        assert db.class_name == "reldb"

    def test_conforms(self):
        emp = relation_to_view("emp", SCHEMA, ROWS)
        db = database_to_view("company", [emp])
        assert BUILTIN_REGISTRY.conforms(db)


class TestTableBridge:
    def test_reflects_live_table(self):
        db = Database()
        table = db.create_table(
            "emp", [Column("name", TEXT), Column("age", INT)],
            primary_key="name",
        )
        table.insert({"name": "alice", "age": 30})
        view = table_to_view(table)
        assert len(list(view.group)) == 1
        # lazy: the group is computed at access, but memoized afterwards;
        # a fresh bridge view sees new rows
        table.insert({"name": "bob", "age": 40})
        fresh = table_to_view(table)
        assert len(list(fresh.group)) == 2

    def test_tuple_values_match_rows(self):
        db = Database()
        table = db.create_table("t", [Column("x", INT)], primary_key="x")
        table.insert({"x": 7})
        view = table_to_view(table)
        member = next(iter(view.group))
        assert member.tuple_component["x"] == 7
