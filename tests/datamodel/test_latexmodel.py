"""Tests for the LaTeX instantiation (the Figure 1 content subgraphs)."""

import pytest

from repro.core.graph import descendants, find_by_name, traverse
from repro.core.identity import ViewId
from repro.datamodel.latexmodel import latex_to_views, latexfile_group_provider

BASE = ViewId("fs", "/paper.tex")

SOURCE = r"""
\documentclass{article}
\title{A Unified Model}
\begin{document}
\begin{abstract}Short abstract.\end{abstract}
\section{Introduction}\label{sec:intro}
Opening text with Mike Franklin.
\subsection{The Problem}
Problem text, see Section~\ref{sec:prelim}.
\section{Preliminaries}\label{sec:prelim}
Definitions.
\begin{center}
\begin{figure}
\caption{Indexing time growth}
\label{fig:growth}
\end{figure}
\end{center}
As shown in \ref{fig:growth}.
\end{document}
"""


@pytest.fixture()
def views():
    return latex_to_views(SOURCE, BASE)


def _all(views):
    return [v for v, _ in traverse(views)]


class TestTopLevel:
    def test_metadata_views_first(self, views):
        names = [v.name for v in views]
        assert names == ["documentclass", "title", "abstract", "document"]

    def test_documentclass_content(self, views):
        assert views[0].text() == "article"

    def test_title_content(self, views):
        assert views[1].text() == "A Unified Model"

    def test_abstract_content(self, views):
        assert views[2].text() == "Short abstract."

    def test_document_view_class(self, views):
        assert views[3].class_name == "latex_document"


class TestSections:
    def test_sections_under_document(self, views):
        document = views[3]
        titles = [v.name for v in document.group.seq_part.items()]
        assert titles == ["Introduction", "Preliminaries"]

    def test_section_class_and_label(self, views):
        intro = find_by_name(views, "Introduction")[0]
        assert intro.class_name == "latex_section"
        assert intro.tuple_component["label"] == "sec:intro"
        assert intro.tuple_component["level"] == 1

    def test_section_content_is_own_text(self, views):
        intro = find_by_name(views, "Introduction")[0]
        assert "Mike Franklin" in intro.text()
        assert "Problem text" not in intro.text()

    def test_subsection_nested(self, views):
        intro = find_by_name(views, "Introduction")[0]
        sub = [v for v in intro.group if v.name == "The Problem"]
        assert len(sub) == 1
        assert sub[0].tuple_component["level"] == 2

    def test_paragraphs_become_child_views(self, views):
        intro = find_by_name(views, "Introduction")[0]
        texts = [v for v in intro.group if v.class_name == "latex_text"]
        assert len(texts) == 1
        assert "Mike Franklin" in texts[0].text()


class TestEnvironments:
    def test_figure_view(self, views):
        figure = find_by_name(views, "figure1")[0]
        assert figure.class_name == "figure"
        assert figure.tuple_component["label"] == "fig:growth"
        assert figure.text() == "Indexing time growth"

    def test_center_wraps_figure(self, views):
        center = find_by_name(views, "center1")[0]
        assert center.class_name == "environment"
        children = [v.name for v in center.group]
        assert children == ["figure1"]

    def test_environment_ordinals_unique(self):
        double = latex_to_views(
            r"\begin{document}\begin{figure}\end{figure}"
            r"\begin{figure}\end{figure}\end{document}", BASE,
        )
        names = {v.name for v in _all(double) if v.class_name == "figure"}
        assert names == {"figure1", "figure2"}


class TestReferences:
    def test_texref_named_by_label(self, views):
        refs = [v for v in _all(views) if v.class_name == "texref"]
        assert {r.name for r in refs} == {"sec:prelim", "fig:growth"}

    def test_ref_links_to_target_view(self, views):
        ref = [v for v in _all(views) if v.name == "sec:prelim"][0]
        targets = list(ref.group)
        assert len(targets) == 1
        assert targets[0].name == "Preliminaries"

    def test_ref_creates_dag_sharing(self, views):
        """Preliminaries is reachable both from the document and from
        the ref inside The Problem — the paper's Figure 1 shape."""
        prelim = find_by_name(views, "Preliminaries")[0]
        parents = [
            v for v in _all(views)
            if any(c.view_id == prelim.view_id for c in v.group)
        ]
        assert len(parents) == 2

    def test_unresolved_ref_has_empty_group(self):
        views = latex_to_views(
            r"\begin{document}\section{A}\ref{ghost}\end{document}", BASE
        )
        ref = [v for v in _all(views) if v.class_name == "texref"][0]
        assert ref.group.is_empty

    def test_figure_ref_target(self, views):
        ref = [v for v in _all(views) if v.name == "fig:growth"][0]
        assert [t.name for t in ref.group] == ["figure1"]


class TestIds:
    def test_all_ids_rooted_at_base(self, views):
        for view in _all(views):
            assert view.view_id.path.startswith("/paper.tex#")

    def test_ids_unique(self, views):
        ids = [v.view_id for v in _all(views)]
        assert len(ids) == len(set(ids))


class TestConverter:
    def test_applies_to_tex(self):
        result = latexfile_group_provider("p.tex", SOURCE, BASE)
        assert result is not None
        assert result[-1].class_name == "latex_document"

    def test_skips_other_extensions(self):
        assert latexfile_group_provider("p.txt", SOURCE, BASE) is None

    def test_total_view_count(self, views):
        # 4 top + 2 sections + 1 subsection + 2 envs + refs + paragraphs
        assert len(_all(views)) >= 12
