"""Tests for the ActiveXML use-case (Section 4.3.1)."""

import pytest

from repro.core.graph import descendants
from repro.core.intensional import ServiceError, ServiceRegistry
from repro.datamodel.activexml import axml_document

DEPARTMENTS_XML = (
    "<deplist><entry><name>Accounting</name></entry>"
    "<entry><name>Research</name></entry></deplist>"
)


@pytest.fixture()
def registry():
    registry = ServiceRegistry()
    registry.register("web.server.com/GetDepartments",
                      lambda: DEPARTMENTS_XML)
    return registry


class TestBeforeCall:
    def test_group_contains_only_sc(self, registry):
        element = axml_document("dep", "web.server.com/GetDepartments",
                                registry)
        assert [v.name for v in element.view.group] == ["sc"]

    def test_sc_view_carries_url(self, registry):
        element = axml_document("dep", "web.server.com/GetDepartments",
                                registry)
        sc = next(iter(element.view.group))
        assert sc.text() == "web.server.com/GetDepartments"
        assert sc.class_name == "sc"

    def test_service_not_called_lazily(self, registry):
        element = axml_document("dep", "web.server.com/GetDepartments",
                                registry)
        list(element.view.group)  # group access alone must not call out
        assert registry.calls_to("web.server.com/GetDepartments") == 0
        assert not element.is_materialized


class TestAfterCall:
    def test_result_inserted_into_group(self, registry):
        element = axml_document("dep", "web.server.com/GetDepartments",
                                registry)
        element.call_service()
        assert [v.name for v in element.view.group] == ["sc", "scresult"]

    def test_result_subtree_parsed(self, registry):
        element = axml_document("dep", "web.server.com/GetDepartments",
                                registry)
        element.call_service()
        names = {v.name for v in descendants(element.view)}
        assert {"deplist", "entry", "name"} <= names

    def test_idempotent(self, registry):
        element = axml_document("dep", "web.server.com/GetDepartments",
                                registry)
        element.call_service()
        element.call_service()
        assert registry.calls_to("web.server.com/GetDepartments") == 1

    def test_pubsub_callback(self, registry):
        received = []
        element = axml_document(
            "dep", "web.server.com/GetDepartments", registry,
            on_result=received.append,
        )
        element.call_service()
        assert len(received) == 1
        assert received[0].name == "scresult"

    def test_unknown_service_raises(self):
        element = axml_document("dep", "nowhere/NoService",
                                ServiceRegistry())
        with pytest.raises(ServiceError):
            element.call_service()

    def test_class_is_axml(self, registry):
        element = axml_document("dep", "web.server.com/GetDepartments",
                                registry)
        assert element.view.class_name == "axml"
