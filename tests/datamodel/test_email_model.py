"""Tests for the email use-case (Section 4.4.1, Options 1 and 2)."""

from datetime import datetime

import pytest

from repro.core.classes import BUILTIN_REGISTRY
from repro.core.errors import InfiniteComponentError
from repro.core.graph import find_by_name
from repro.core.identity import ViewId
from repro.datamodel.email_model import (
    attachment_to_view,
    inbox_state_view,
    inbox_stream_view,
    message_to_view,
)
from repro.datamodel.latexmodel import latexfile_group_provider
from repro.imapsim import Attachment, EmailMessage, ImapServer
from repro.imapsim.latency import no_latency

TEX = r"\begin{document}\section{Report}Results.\end{document}"


def _message(subject="Status", attachments=()):
    return EmailMessage(
        subject=subject, sender="alice@x.org", to=("bob@y.org",),
        date=datetime(2005, 4, 2, 10, 0), body="body with database",
        attachments=tuple(attachments),
    )


def _server(*messages):
    server = ImapServer(latency=no_latency())
    for message in messages:
        server.deliver("INBOX", message)
    server.connect()
    return server


class TestMessageView:
    def test_components(self):
        view = message_to_view(_message(), ViewId("imap", "INBOX/1"))
        assert view.name == "Status"
        assert view.class_name == "emailmessage"
        assert view.tuple_component["from"] == "alice@x.org"
        assert view.tuple_component["date"] == datetime(2005, 4, 2, 10, 0)
        assert "database" in view.text()

    def test_conforms(self):
        view = message_to_view(_message(), ViewId("imap", "INBOX/1"))
        assert BUILTIN_REGISTRY.conforms(view)

    def test_attachments_in_group(self):
        message = _message(attachments=[Attachment("r.tex", TEX)])
        view = message_to_view(message, ViewId("imap", "INBOX/1"))
        attachments = list(view.group)
        assert [a.name for a in attachments] == ["r.tex"]
        assert attachments[0].class_name == "attachment"


class TestAttachmentView:
    def test_components(self):
        view = attachment_to_view(
            Attachment("r.tex", TEX, "text/x-tex"),
            ViewId("imap", "INBOX/1#a0"),
        )
        assert view.name == "r.tex"
        assert view.attribute("mime_type") == "text/x-tex"
        assert view.text() == TEX

    def test_content_conversion_builds_subgraph(self):
        view = attachment_to_view(
            Attachment("r.tex", TEX), ViewId("imap", "INBOX/1#a0"),
            content_converter=latexfile_group_provider,
        )
        assert find_by_name(view, "Report")

    def test_no_converter_leaves_group_empty(self):
        view = attachment_to_view(
            Attachment("r.tex", TEX), ViewId("imap", "INBOX/1#a0"),
        )
        assert view.group.is_empty


class TestOption1State:
    def test_messages_in_window_order(self):
        server = _server(_message("m1"), _message("m2"))
        inbox = inbox_state_view(server, "INBOX")
        assert [m.name for m in inbox.group] == ["m1", "m2"]

    def test_state_retrievable_multiple_times(self):
        server = _server(_message("m1"))
        inbox = inbox_state_view(server, "INBOX")
        assert len(list(inbox.group)) == 1
        # re-resolve the state (a second client reading the same mailbox)
        inbox2 = inbox_state_view(server, "INBOX")
        assert len(list(inbox2.group)) == 1
        assert server.select("INBOX") == 1  # nothing was consumed

    def test_class_is_emailfolder(self):
        server = _server()
        assert inbox_state_view(server, "INBOX").class_name == "emailfolder"

    def test_lazy_no_fetch_until_group_access(self):
        server = _server(_message())
        before = server.latency.operations
        inbox = inbox_state_view(server, "INBOX")
        assert server.latency.operations == before
        list(inbox.group)
        assert server.latency.operations > before


class TestOption2Stream:
    def test_stream_consumes_server_window(self):
        server = _server(_message("m1"), _message("m2"))
        stream = inbox_stream_view(server, "INBOX")
        names = [m.name for m in stream.group.take(10)]
        assert names == ["m1", "m2"]
        assert server.select("INBOX") == 0

    def test_second_read_raises(self):
        server = _server(_message("m1"))
        stream = inbox_stream_view(server, "INBOX")
        stream.group.take(10)
        with pytest.raises(InfiniteComponentError):
            stream.group.take(1)

    def test_group_is_infinite(self):
        server = _server()
        stream = inbox_stream_view(server, "INBOX")
        assert not stream.group.is_finite
