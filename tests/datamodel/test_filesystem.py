"""Tests for the files&folders instantiation (Section 3.2)."""

import pytest

from repro.core.classes import BUILTIN_REGISTRY
from repro.core.graph import count_views, find_by_name, has_cycle
from repro.core.identity import ViewId
from repro.datamodel.filesystem import FilesystemMapper
from repro.datamodel.latexmodel import latexfile_group_provider
from repro.vfs import VirtualFileSystem


@pytest.fixture()
def fs():
    fs = VirtualFileSystem()
    fs.mkdir("/Projects/PIM", parents=True)
    fs.write_file("/Projects/PIM/vldb2006.tex",
                  r"\begin{document}\section{Intro}text\end{document}")
    fs.write_file("/Projects/PIM/Grant.txt", "grant proposal text")
    fs.make_link("/Projects/PIM/All Projects", "/Projects")
    return fs


class TestMapping:
    def test_folder_view_class(self, fs):
        mapper = FilesystemMapper(fs)
        view = mapper.view_for("/Projects/PIM")
        assert view.class_name == "folder"
        assert view.name == "PIM"

    def test_folder_conforms_to_class(self, fs):
        mapper = FilesystemMapper(fs)
        view = mapper.view_for("/Projects/PIM")
        assert BUILTIN_REGISTRY.conforms(view, check_related=False)

    def test_file_view_components(self, fs):
        mapper = FilesystemMapper(fs)
        view = mapper.view_for("/Projects/PIM/Grant.txt")
        assert view.class_name == "file"
        assert view.text() == "grant proposal text"
        assert view.attribute("size") == len("grant proposal text")
        assert view.attribute("path") == "/Projects/PIM/Grant.txt"

    def test_file_conforms_to_class(self, fs):
        mapper = FilesystemMapper(fs)
        view = mapper.view_for("/Projects/PIM/Grant.txt")
        assert BUILTIN_REGISTRY.conforms(view)

    def test_extension_classes(self, fs):
        fs.write_file("/Projects/PIM/d.xml", "<a/>")
        mapper = FilesystemMapper(fs)
        assert mapper.view_for("/Projects/PIM/vldb2006.tex").class_name == \
            "latexfile"
        assert mapper.view_for("/Projects/PIM/d.xml").class_name == "xmlfile"

    def test_folder_children(self, fs):
        mapper = FilesystemMapper(fs)
        pim = mapper.view_for("/Projects/PIM")
        names = {v.name for v in pim.group}
        # the link resolves to the Projects folder view
        assert names == {"vldb2006.tex", "Grant.txt", "Projects"}

    def test_view_ids_stable(self, fs):
        mapper = FilesystemMapper(fs)
        view = mapper.view_for("/Projects/PIM/Grant.txt")
        assert view.view_id == ViewId("fs", "/Projects/PIM/Grant.txt")


class TestGraphShape:
    def test_link_creates_cycle(self, fs):
        mapper = FilesystemMapper(fs)
        assert has_cycle(mapper.root_view())

    def test_link_shares_view_object(self, fs):
        mapper = FilesystemMapper(fs)
        direct = mapper.view_for("/Projects")
        via_link = mapper.view_for("/Projects/PIM/All Projects")
        assert direct is via_link

    def test_traversal_terminates_despite_cycle(self, fs):
        mapper = FilesystemMapper(fs)
        assert count_views(mapper.root_view()) == 5  # /, Projects, PIM, 2 files


class TestLaziness:
    def test_group_not_forced_until_accessed(self, fs):
        mapper = FilesystemMapper(fs)
        view = mapper.view_for("/Projects/PIM")
        assert not view.forced_components()["group"]
        list(view.group)
        assert view.forced_components()["group"]

    def test_content_read_lazily(self, fs):
        reads = []
        original = fs.read

        def counting_read(path):
            reads.append(path)
            return original(path)

        fs.read = counting_read  # type: ignore[method-assign]
        mapper = FilesystemMapper(fs)
        view = mapper.view_for("/Projects/PIM/Grant.txt")
        assert reads == []
        view.text()
        assert reads == ["/Projects/PIM/Grant.txt"]


class TestContentConversion:
    def test_converter_builds_subgraph(self, fs):
        mapper = FilesystemMapper(fs,
                                  content_converter=latexfile_group_provider)
        tex = mapper.view_for("/Projects/PIM/vldb2006.tex")
        sections = find_by_name(tex, "Intro")
        assert len(sections) == 1
        assert sections[0].class_name == "latex_section"

    def test_converter_skips_other_files(self, fs):
        mapper = FilesystemMapper(fs,
                                  content_converter=latexfile_group_provider)
        txt = mapper.view_for("/Projects/PIM/Grant.txt")
        assert txt.group.is_empty

    def test_no_converter_leaves_group_empty(self, fs):
        mapper = FilesystemMapper(fs)
        tex = mapper.view_for("/Projects/PIM/vldb2006.tex")
        assert tex.group.is_empty

    def test_derived_ids_extend_file_id(self, fs):
        mapper = FilesystemMapper(fs,
                                  content_converter=latexfile_group_provider)
        tex = mapper.view_for("/Projects/PIM/vldb2006.tex")
        for child in tex.group:
            assert child.view_id.path.startswith(
                "/Projects/PIM/vldb2006.tex#"
            )


class TestInvalidation:
    def test_invalidate_refreshes_view(self, fs):
        mapper = FilesystemMapper(fs)
        old = mapper.view_for("/Projects/PIM/Grant.txt")
        fs.write_file("/Projects/PIM/Grant.txt", "new content")
        mapper.invalidate("/Projects/PIM/Grant.txt")
        fresh = mapper.view_for("/Projects/PIM/Grant.txt")
        assert fresh is not old
        assert fresh.text() == "new content"

    def test_cached_paths(self, fs):
        mapper = FilesystemMapper(fs)
        mapper.view_for("/Projects")
        assert "/Projects" in mapper.cached_paths()
