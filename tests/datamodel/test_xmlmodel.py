"""Tests for the XML instantiation (Section 3.3, Figure 2)."""

from repro.core.classes import BUILTIN_REGISTRY
from repro.core.graph import traverse
from repro.core.identity import ViewId
from repro.datamodel.xmlmodel import xml_to_views, xmlfile_group_provider

BASE = ViewId("fs", "/doc.xml")

FRAGMENT = (
    '<article id="a7"><title>iDM</title>'
    "<body>Personal <em>dataspace</em> management</body></article>"
)


class TestXmlToViews:
    def test_document_view_class(self):
        doc = xml_to_views(FRAGMENT, BASE)
        assert doc.class_name == "xmldoc"
        assert doc.name == ""

    def test_document_has_single_root_in_sequence(self):
        doc = xml_to_views(FRAGMENT, BASE)
        roots = doc.group.seq_part.items()
        assert len(roots) == 1
        assert roots[0].name == "article"

    def test_element_attributes_in_tuple(self):
        doc = xml_to_views(FRAGMENT, BASE)
        root = doc.group.seq_part.items()[0]
        assert root.tuple_component["id"] == "a7"

    def test_children_ordered(self):
        doc = xml_to_views(FRAGMENT, BASE)
        root = doc.group.seq_part.items()[0]
        assert [c.name for c in root.group.seq_part.items()] == \
            ["title", "body"]

    def test_text_nodes_are_xmltext(self):
        doc = xml_to_views(FRAGMENT, BASE)
        classes = {v.class_name for v, _ in traverse(doc)}
        assert "xmltext" in classes

    def test_mixed_content_order_preserved(self):
        doc = xml_to_views(FRAGMENT, BASE)
        body = [v for v, _ in traverse(doc) if v.name == "body"][0]
        kinds = [c.class_name for c in body.group.seq_part.items()]
        assert kinds == ["xmltext", "xmlelem", "xmltext"]

    def test_whitespace_only_text_dropped(self):
        doc = xml_to_views("<a>\n  <b/>\n</a>", BASE)
        root = doc.group.seq_part.items()[0]
        assert [c.name for c in root.group.seq_part.items()] == ["b"]

    def test_conformance_to_table1_classes(self):
        doc = xml_to_views(FRAGMENT, BASE)
        for view, _ in traverse(doc):
            assert BUILTIN_REGISTRY.conforms(view), view

    def test_derived_ids_rooted_at_base(self):
        doc = xml_to_views(FRAGMENT, BASE)
        for view, _ in traverse(doc):
            assert view.view_id.path.startswith("/doc.xml#")

    def test_accepts_parsed_document(self):
        from repro.xmlp import parse
        doc = xml_to_views(parse(FRAGMENT), BASE)
        assert doc.class_name == "xmldoc"


class TestConverter:
    def test_applies_to_xml_files(self):
        result = xmlfile_group_provider("data.xml", "<a/>", BASE)
        assert result is not None
        assert result[0].class_name == "xmldoc"

    def test_skips_other_extensions(self):
        assert xmlfile_group_provider("data.txt", "<a/>", BASE) is None

    def test_malformed_xml_returns_none(self):
        assert xmlfile_group_provider("data.xml", "<a><b></a>", BASE) is None

    def test_case_insensitive_extension(self):
        assert xmlfile_group_provider("DATA.XML", "<a/>", BASE) is not None
