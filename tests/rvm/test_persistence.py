"""Tests for saving/loading the RVM state."""

from datetime import datetime

import pytest

from repro.core.errors import StoreError
from repro.imapsim import Attachment, EmailMessage, ImapServer
from repro.imapsim.latency import no_latency
from repro.query import QueryProcessor
from repro.rvm import ResourceViewManager, default_content_converter
from repro.rvm.persistence import load_state, save_state
from repro.rvm.plugins import FilesystemPlugin, ImapPlugin
from repro.vfs import VirtualFileSystem

TEX = r"""
\begin{document}
\section{Introduction}\label{s1}
Durable dataspace indexing with database tuning.
\begin{center}\begin{figure}\caption{Indexing time}\label{f1}
\end{figure}\end{center}
\section{Conclusions}
persistent systems, see \ref{f1}.
\end{document}
"""


@pytest.fixture()
def populated_rvm():
    fs = VirtualFileSystem()
    fs.mkdir("/papers/VLDB2006", parents=True)
    fs.write_file("/papers/VLDB2006/p.tex", TEX)
    fs.write_file("/papers/notes.txt", "database tuning notes")
    imap = ImapServer(latency=no_latency())
    imap.deliver("INBOX", EmailMessage(
        subject="draft", sender="a@b", to=("c@d",),
        date=datetime(2005, 5, 1), body="database text",
        attachments=(Attachment("p.tex", TEX),),
    ))
    rvm = ResourceViewManager()
    converter = default_content_converter()
    rvm.register_plugin(FilesystemPlugin(fs, content_converter=converter))
    rvm.register_plugin(ImapPlugin(imap, content_converter=converter))
    rvm.sync_all()
    return rvm


QUERIES = [
    '"database tuning"',
    '//Introduction[class="latex_section"]',
    '[size > 100]',
    '//papers//?onclusion*',
    'join( //papers//*[class="texref"] as A, '
    '//papers//*[class="environment"]//figure* as B, '
    "A.name = B.tuple.label )",
]


class TestRoundTrip:
    def test_manifest_written(self, populated_rvm, tmp_path):
        manifest = save_state(populated_rvm, tmp_path)
        assert manifest["format_version"] == 1
        assert manifest["counts"]["catalog"] == len(populated_rvm.catalog)
        assert (tmp_path / "manifest.json").exists()

    def test_catalog_restored(self, populated_rvm, tmp_path):
        save_state(populated_rvm, tmp_path)
        restored = ResourceViewManager()
        load_state(restored, tmp_path)
        assert len(restored.catalog) == len(populated_rvm.catalog)
        original = populated_rvm.catalog.get("fs:///papers/notes.txt")
        loaded = restored.catalog.get("fs:///papers/notes.txt")
        assert loaded == original

    def test_queries_equivalent_after_restore(self, populated_rvm, tmp_path):
        save_state(populated_rvm, tmp_path)
        restored = ResourceViewManager()
        load_state(restored, tmp_path)
        before = QueryProcessor(populated_rvm)
        after = QueryProcessor(restored)
        for query in QUERIES:
            original = before.execute(query)
            loaded = after.execute(query)
            if original.pairs:
                assert [(p.left.uri, p.right.uri) for p in original.pairs] \
                    == [(p.left.uri, p.right.uri) for p in loaded.pairs]
            else:
                assert original.uris() == loaded.uris(), query

    def test_index_sizes_comparable(self, populated_rvm, tmp_path):
        save_state(populated_rvm, tmp_path)
        restored = ResourceViewManager()
        load_state(restored, tmp_path)
        original = populated_rvm.index_size_report()
        loaded = restored.index_size_report()
        assert loaded["net_input"] == original["net_input"]
        assert loaded["group"] == original["group"]

    def test_tuple_values_preserve_types(self, populated_rvm, tmp_path):
        save_state(populated_rvm, tmp_path)
        restored = ResourceViewManager()
        load_state(restored, tmp_path)
        component = restored.indexes.tuple_index.tuple_of(
            "fs:///papers/notes.txt"
        )
        assert isinstance(component.get("modified"), datetime)
        assert isinstance(component.get("size"), int)

    def test_ranking_survives(self, populated_rvm, tmp_path):
        from repro.query.ranking import ranked_search
        save_state(populated_rvm, tmp_path)
        restored = ResourceViewManager()
        load_state(restored, tmp_path)
        original = [h.uri for h in ranked_search(populated_rvm, "database",
                                                 limit=5)]
        loaded = [h.uri for h in ranked_search(restored, "database",
                                               limit=5)]
        assert original == loaded


class TestErrors:
    def test_load_missing_directory(self, tmp_path):
        with pytest.raises(StoreError):
            load_state(ResourceViewManager(), tmp_path / "nope")

    def test_load_wrong_version(self, populated_rvm, tmp_path):
        save_state(populated_rvm, tmp_path)
        (tmp_path / "manifest.json").write_text('{"format_version": 99}')
        with pytest.raises(StoreError):
            load_state(ResourceViewManager(), tmp_path)

    def test_load_into_non_empty_rvm_refused(self, populated_rvm, tmp_path):
        save_state(populated_rvm, tmp_path)
        with pytest.raises(StoreError, match="non-empty"):
            load_state(populated_rvm, tmp_path)

    def test_load_into_non_empty_rvm_with_merge(self, populated_rvm,
                                                tmp_path):
        save_state(populated_rvm, tmp_path)
        before = len(populated_rvm.catalog)
        load_state(populated_rvm, tmp_path, merge=True)
        # re-adds replace: merging a snapshot of yourself is idempotent
        assert len(populated_rvm.catalog) == before


class TestCrashSafety:
    def test_save_replaces_previous_snapshot_atomically(self, populated_rvm,
                                                        tmp_path):
        target = tmp_path / "snap"
        save_state(populated_rvm, target)
        first = (target / "manifest.json").read_text()
        save_state(populated_rvm, target)
        assert (target / "manifest.json").read_text() == first
        # no staging or old directories left behind
        assert sorted(p.name for p in tmp_path.iterdir()) == ["snap"]

    def test_failed_save_leaves_target_untouched(self, populated_rvm,
                                                 tmp_path, monkeypatch):
        target = tmp_path / "snap"
        save_state(populated_rvm, target)
        manifest = (target / "manifest.json").read_text()

        from repro.rvm import persistence

        def explode(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(persistence, "_write_snapshot", explode)
        with pytest.raises(OSError):
            save_state(populated_rvm, target)
        # the old snapshot is intact and still loads
        assert (target / "manifest.json").read_text() == manifest
        restored = ResourceViewManager()
        load_state(restored, target)
        assert len(restored.catalog) == len(populated_rvm.catalog)
