"""Tests for the Resource View Catalog."""

from repro.core.identity import ViewId
from repro.core.resource_view import ResourceView
from repro.rvm.catalog import ResourceViewCatalog


def _view(name, path=None, class_name=None, authority="fs"):
    return ResourceView(name, class_name=class_name,
                        view_id=ViewId(authority, path or f"/{name}"))


class TestRegistration:
    def test_register_and_get(self):
        catalog = ResourceViewCatalog()
        view = _view("a", class_name="file")
        catalog.register(view, kind="base", size=10, child_count=0)
        record = catalog.get(view.view_id)
        assert record.name == "a"
        assert record.class_name == "file"
        assert record.size == 10

    def test_reregister_updates(self):
        catalog = ResourceViewCatalog()
        view = _view("a")
        catalog.register(view, kind="base", size=1)
        catalog.register(view, kind="base", size=99)
        assert catalog.get(view.view_id).size == 99
        assert len(catalog) == 1

    def test_unregister(self):
        catalog = ResourceViewCatalog()
        view = _view("a")
        catalog.register(view, kind="base")
        assert catalog.unregister(view.view_id)
        assert view.view_id not in catalog
        assert not catalog.unregister(view.view_id)

    def test_contains_accepts_uri_strings(self):
        catalog = ResourceViewCatalog()
        view = _view("a")
        catalog.register(view, kind="base")
        assert view.view_id.uri in catalog


class TestLookups:
    def _catalog(self):
        catalog = ResourceViewCatalog()
        catalog.register(_view("intro", "/a#s1", "latex_section"),
                         kind="derived")
        catalog.register(_view("intro", "/b#s1", "latex_section"),
                         kind="derived")
        catalog.register(_view("fig", "/a#e1", "figure"), kind="derived")
        catalog.register(_view("mail", "INBOX/1", "emailmessage",
                               authority="imap"), kind="base")
        return catalog

    def test_by_name(self):
        catalog = self._catalog()
        assert len(catalog.by_name("intro")) == 2
        assert catalog.by_name("zzz") == []

    def test_by_class(self):
        catalog = self._catalog()
        assert len(catalog.by_class("latex_section")) == 2
        assert len(catalog.by_class("figure")) == 1

    def test_by_authority(self):
        catalog = self._catalog()
        assert len(catalog.by_authority("imap")) == 1
        assert len(catalog.by_authority("fs")) == 3

    def test_all_uris(self):
        catalog = self._catalog()
        assert len(catalog.all_uris()) == 4

    def test_counts_by_authority(self):
        catalog = self._catalog()
        assert catalog.counts_by_authority() == {"fs": 3, "imap": 1}

    def test_counts_by_kind(self):
        catalog = self._catalog()
        assert catalog.counts_by_kind() == {"derived": 3, "base": 1}

    def test_missing_get_is_none(self):
        assert ResourceViewCatalog().get(ViewId("fs", "/x")) is None


class TestSizeAccounting:
    def test_size_grows_with_registrations(self):
        catalog = ResourceViewCatalog()
        empty = catalog.size_bytes()
        for index in range(100):
            catalog.register(_view(f"v{index}"), kind="base")
        assert catalog.size_bytes() > empty
