"""The URI dictionary: interning, sort keys, overlays, concurrency.

The dictionary is the engine's identity layer (DESIGN.md §4h): dense
stable ids assigned at intern time, and per-execution sort-key views
whose integer order must equal URI lexicographic order — including for
URIs that surface *after* a view was captured (overlay keys). These
tests pin that contract directly, without a dataspace.
"""

from __future__ import annotations

import threading
from array import array

import pytest

from repro.core.errors import StaleDictionaryError
from repro.rvm.uridict import (
    KEY_GAP,
    DictionaryView,
    UriDictionary,
    global_uri_dictionary,
)


class TestInterning:
    def test_ids_are_dense_and_stable(self):
        d = UriDictionary()
        first = d.intern("vfs://b")
        second = d.intern("vfs://a")
        assert (first, second) == (0, 1)  # first-seen order, not sorted
        assert d.intern("vfs://b") == first  # re-intern is a no-op
        assert len(d) == 2
        assert d.uri_of(first) == "vfs://b"
        assert d.id_of("vfs://a") == second
        assert "vfs://a" in d and "vfs://zzz" not in d

    def test_concurrent_intern_no_lost_or_duplicate_ids(self):
        """8 threads intern overlapping URI sets; every URI must get
        exactly one id, ids stay dense, and the id↔URI maps agree."""
        d = UriDictionary()
        uris = [f"vfs://stress/{i:04d}" for i in range(400)]
        barrier = threading.Barrier(8)

        def worker(offset: int):
            barrier.wait()
            # each thread walks the list from a different start so the
            # same URIs race from different threads
            for i in range(len(uris)):
                d.intern(uris[(i + offset * 50) % len(uris)])

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert len(d) == len(uris)  # no lost, no duplicate entries
        ids = sorted(d.id_of(uri) for uri in uris)
        assert ids == list(range(len(uris)))  # dense, collision-free
        for uri in uris:
            assert d.uri_of(d.id_of(uri)) == uri  # round-trip


class TestSortKeys:
    def test_key_order_equals_uri_order(self):
        d = UriDictionary()
        uris = ["imap://inbox/9", "vfs://z", "imap://inbox/10", "rss://a"]
        d.intern_many(uris)
        view = d.view()
        keys = [view.key_for(u) for u in sorted(uris)]
        assert keys == sorted(keys)
        assert all(k % KEY_GAP == 0 for k in keys)  # base, gap-aligned

    def test_round_trip_and_batch_conversions(self):
        d = UriDictionary()
        uris = [f"vfs://f/{c}" for c in "dacb"]
        d.intern_many(uris)
        view = d.view()
        keys = view.keys_for_set(uris)
        assert isinstance(keys, array) and keys.typecode == "q"
        assert list(keys) == sorted(keys)
        assert view.uris_for(keys) == tuple(sorted(uris))
        in_order = view.keys_in_order(uris)
        assert view.uris_for(in_order) == tuple(uris)
        for uri in uris:
            assert view.uri_for(view.key_for(uri)) == uri

    def test_monotonicity_survives_remaps(self):
        """Growing the dictionary and remapping yields a *new* view
        whose keys are again URI-ordered — and the old view's keys are
        untouched (copy-on-rebuild)."""
        d = UriDictionary()
        d.intern_many(["vfs://m", "vfs://d"])
        old = d.view()
        old_keys = {u: old.key_for(u) for u in ("vfs://d", "vfs://m")}

        d.intern_many(["vfs://a", "vfs://z", "vfs://k"])
        assert old.is_stale
        fresh = d.view()
        assert fresh is not old
        assert fresh.version > old.version
        everything = sorted(["vfs://m", "vfs://d", "vfs://a", "vfs://z",
                             "vfs://k"])
        fresh_keys = [fresh.key_for(u) for u in everything]
        assert fresh_keys == sorted(fresh_keys)
        # the old snapshot still answers exactly as before
        assert {u: old.key_for(u) for u in old_keys} == old_keys

    def test_view_is_cached_until_growth(self):
        d = UriDictionary()
        d.intern("vfs://a")
        first = d.view()
        assert d.view() is first  # no growth: same snapshot
        d.intern("vfs://b")
        assert d.view() is not first


class TestOverlay:
    def _view(self, *uris) -> tuple[UriDictionary, DictionaryView]:
        d = UriDictionary()
        d.intern_many(uris)
        return d, d.view()

    def test_late_arrival_lands_between_neighbours(self):
        d, view = self._view("vfs://a", "vfs://c")
        key = view.key_for("vfs://b")  # unknown to this view
        assert view.key_for("vfs://a") < key < view.key_for("vfs://c")
        assert view.uri_for(key) == "vfs://b"
        # self-healed: the dictionary interned it for the next view
        assert "vfs://b" in d
        assert d.view().key_for("vfs://b") % KEY_GAP == 0

    def test_late_arrival_before_first_and_after_last(self):
        _, view = self._view("vfs://m")
        low = view.key_for("vfs://a")
        high = view.key_for("vfs://z")
        assert low < view.key_for("vfs://m") < high

    def test_multiple_overlay_keys_stay_ordered(self):
        _, view = self._view("vfs://a", "vfs://z")
        arrivals = ["vfs://d", "vfs://b", "vfs://y", "vfs://c"]
        for uri in arrivals:
            view.key_for(uri)
        everything = sorted(["vfs://a", "vfs://z", *arrivals])
        keys = [view.key_for(u) for u in everything]
        assert keys == sorted(keys)

    def test_concurrent_overlay_assignment_is_consistent(self):
        _, view = self._view("vfs://a", "vfs://c")
        results = []
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            results.append(view.key_for("vfs://b"))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(results)) == 1  # one key, however many racers

    def test_gap_exhaustion_raises_stale_dictionary_error(self):
        """Adversarially nested arrivals halve one gap until it is
        spent; the view must fail loudly, not hand out a colliding or
        misordered key."""
        _, view = self._view("a", "c")
        with pytest.raises(StaleDictionaryError):
            for i in range(2 * KEY_GAP.bit_length()):
                view.key_for("a" * (i + 1) + "b")


class TestGlobalDictionary:
    def test_catalog_registration_interns(self):
        """Every view registered in a catalog is queryable by key —
        sync, snapshot load and WAL recovery all pass through
        ``ResourceViewCatalog.register``."""
        from repro.core.identity import ViewId
        from repro.core.resource_view import ResourceView
        from repro.rvm.catalog import ResourceViewCatalog

        view = ResourceView(
            "uridict-probe.txt",
            view_id=ViewId("fs", "/uridict-probe.txt"),
        )
        catalog = ResourceViewCatalog()
        catalog.register(view, kind="base")
        assert view.view_id.uri in global_uri_dictionary()
