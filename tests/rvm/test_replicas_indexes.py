"""Tests for the group replica and the Replica&Indexes module."""

from repro.core.components import ContentComponent, GroupComponent
from repro.core.identity import ViewId
from repro.core.resource_view import ResourceView
from repro.rvm.indexes import IndexSet, _looks_like_text
from repro.rvm.replicas import GroupReplica


def _view(path, name="", children=(), content=None, tuple_component=None):
    return ResourceView(
        name, tuple_component=tuple_component, content=content,
        group=list(children), view_id=ViewId("fs", path),
    )


class TestGroupReplica:
    def test_children_recorded(self):
        child = _view("/a/b", "b")
        parent = _view("/a", "a", children=[child])
        replica = GroupReplica()
        replica.add(parent)
        assert replica.children(parent.view_id) == (child.view_id.uri,)

    def test_parents_reverse_edges(self):
        child = _view("/a/b", "b")
        parent = _view("/a", "a", children=[child])
        replica = GroupReplica()
        replica.add(parent)
        assert replica.parents(child.view_id) == {parent.view_id.uri}

    def test_sequence_order_preserved(self):
        kids = [_view(f"/k{i}", f"k{i}") for i in range(3)]
        parent = ResourceView(
            "p", group=GroupComponent.of_sequence(kids),
            view_id=ViewId("fs", "/p"),
        )
        replica = GroupReplica()
        replica.add(parent)
        assert replica.sequence_children("fs:///p") == tuple(
            k.view_id.uri for k in kids
        )

    def test_readd_replaces(self):
        replica = GroupReplica()
        old_child = _view("/old", "old")
        parent = _view("/p", "p", children=[old_child])
        replica.add(parent)
        new_parent = _view("/p", "p", children=[_view("/new", "new")])
        replica.add(new_parent)
        assert replica.children("fs:///p") == ("fs:///new",)
        assert replica.parents("fs:///old") == set()

    def test_remove(self):
        child = _view("/c", "c")
        parent = _view("/p", "p", children=[child])
        replica = GroupReplica()
        replica.add(parent)
        assert replica.remove(parent.view_id)
        assert replica.children("fs:///p") == ()
        assert not replica.remove(parent.view_id)

    def test_descendants_forward_expansion(self):
        leaf = _view("/a/b/c", "c")
        mid = _view("/a/b", "b", children=[leaf])
        root = _view("/a", "a", children=[mid])
        replica = GroupReplica()
        for view in (root, mid, leaf):
            replica.add(view)
        assert replica.descendants("fs:///a") == {
            "fs:///a/b", "fs:///a/b/c"
        }

    def test_descendants_cycle_safe(self):
        replica = GroupReplica()
        a = _view("/a", "a")
        b = _view("/b", "b", children=[a])
        a2 = _view("/a", "a", children=[b])
        replica.add(a2)
        replica.add(b)
        assert replica.descendants("fs:///a") == {"fs:///b", "fs:///a"}

    def test_ancestors_backward_expansion(self):
        leaf = _view("/a/b/c", "c")
        mid = _view("/a/b", "b", children=[leaf])
        root = _view("/a", "a", children=[mid])
        replica = GroupReplica()
        for view in (root, mid, leaf):
            replica.add(view)
        assert replica.ancestors("fs:///a/b/c") == {"fs:///a/b", "fs:///a"}

    def test_infinite_group_windowed(self):
        def forever():
            index = 0
            while True:
                yield _view(f"/s/{index}", str(index))
                index += 1

        stream = ResourceView(
            group=GroupComponent.of_stream(forever),
            view_id=ViewId("stream", "s"),
        )
        replica = GroupReplica(infinite_window=5)
        replica.add(stream)
        assert len(replica.children("stream://s")) == 5

    def test_edge_count_and_size(self):
        replica = GroupReplica()
        replica.add(_view("/p", "p", children=[_view("/c", "c")]))
        assert replica.edge_count() == 1
        assert replica.size_bytes() > 0


class TestTextSniffer:
    def test_plain_text_accepted(self):
        assert _looks_like_text("ordinary text with words\n")

    def test_binary_rejected(self):
        assert not _looks_like_text("\x00\x01\x02" * 100)

    def test_mostly_binary_rejected(self):
        blob = ("\x00" * 80) + ("a" * 20)
        assert not _looks_like_text(blob)


class TestIndexSet:
    def _file(self, path="/f.txt", name="f.txt", text="database notes",
              size=10):
        return _view(path, name, content=text,
                     tuple_component={"size": size})

    def test_add_view_feeds_all_structures(self):
        indexes = IndexSet()
        view = self._file()
        indexes.add_view(view)
        uri = view.view_id.uri
        assert uri in indexes.name_index
        assert uri in indexes.content_index
        assert indexes.tuple_index.tuple_of(uri) is not None
        assert uri in indexes.group_replica

    def test_unnamed_view_skips_name_index(self):
        indexes = IndexSet()
        view = _view("/anon", "", content="text")
        indexes.add_view(view)
        assert view.view_id.uri not in indexes.name_index

    def test_name_replica_serves_names(self):
        indexes = IndexSet()
        view = self._file(name="Grant Proposal.doc")
        indexes.add_view(view)
        assert indexes.name_of(view.view_id) == "Grant Proposal.doc"
        assert indexes.name_of("fs:///ghost") == ""

    def test_content_index_is_not_a_replica(self):
        import pytest
        from repro.core.errors import FullTextError
        indexes = IndexSet()
        view = self._file()
        indexes.add_view(view)
        with pytest.raises(FullTextError):
            indexes.content_index.stored_text(view.view_id.uri)

    def test_binary_content_not_indexed(self):
        indexes = IndexSet()
        view = _view("/img.jpg", "img.jpg", content="\x00\x01" * 500)
        indexes.add_view(view)
        assert view.view_id.uri not in indexes.content_index
        assert indexes.net_input_bytes == 0

    def test_net_input_counts_text_only(self):
        indexes = IndexSet()
        indexes.add_view(self._file(text="abcd"))
        assert indexes.net_input_bytes == 4

    def test_remove_view_cleans_everything(self):
        indexes = IndexSet()
        view = self._file()
        indexes.add_view(view)
        indexes.remove_view(view.view_id)
        uri = view.view_id.uri
        assert uri not in indexes.name_index
        assert uri not in indexes.content_index
        assert indexes.tuple_index.tuple_of(uri) is None
        assert uri not in indexes.group_replica

    def test_infinite_content_windowed(self):
        def forever():
            while True:
                yield "a"

        view = ResourceView(
            "stream", content=ContentComponent.infinite(forever),
            view_id=ViewId("s", "x"),
        )
        indexes = IndexSet(infinite_content_window=100)
        indexes.add_view(view)
        assert indexes.net_input_bytes == 100

    def test_size_report_keys(self):
        indexes = IndexSet()
        assert set(indexes.size_report()) == {
            "name", "tuple", "content", "group"
        }

    def test_total_size(self):
        indexes = IndexSet()
        indexes.add_view(self._file())
        report = indexes.size_report()
        assert indexes.total_size_bytes() == sum(report.values())


class TestMediaIndexing:
    def _binary(self, palette="\x01\x02\x03", size=600):
        return "".join(palette[i % len(palette)] for i in range(size))

    def test_media_off_by_default(self):
        indexes = IndexSet()
        indexes.add_view(_view("/img.jpg", "img.jpg",
                               content=self._binary()))
        assert len(indexes.media_index) == 0
        assert "media" not in indexes.size_report()

    def test_media_policy_indexes_binary_only(self):
        from repro.rvm.indexes import IndexingPolicy
        indexes = IndexSet(policy=IndexingPolicy.with_media())
        indexes.add_view(_view("/img.jpg", "img.jpg",
                               content=self._binary()))
        indexes.add_view(_view("/doc.txt", "doc.txt",
                               content="plain readable text here"))
        assert "fs:///img.jpg" in indexes.media_index
        assert "fs:///doc.txt" not in indexes.media_index
        assert "fs:///doc.txt" in indexes.content_index
        assert "media" in indexes.size_report()

    def test_similarity_search_over_indexed_media(self):
        from repro.rvm.indexes import IndexingPolicy
        indexes = IndexSet(policy=IndexingPolicy.with_media())
        indexes.add_view(_view("/a.jpg", "a.jpg",
                               content=self._binary("\x01\x02")))
        indexes.add_view(_view("/b.jpg", "b.jpg",
                               content=self._binary("\x01\x02\x02")))
        indexes.add_view(_view("/c.jpg", "c.jpg",
                               content=self._binary("\x07\x08")))
        nearest = indexes.media_index.similar_to_key("fs:///a.jpg", k=1)
        assert nearest[0][0] == "fs:///b.jpg"

    def test_remove_clears_media(self):
        from repro.rvm.indexes import IndexingPolicy
        indexes = IndexSet(policy=IndexingPolicy.with_media())
        view = _view("/img.jpg", "img.jpg", content=self._binary())
        indexes.add_view(view)
        indexes.remove_view(view.view_id)
        assert "fs:///img.jpg" not in indexes.media_index
