"""Property and concurrency tests for the compressed keyset.

:class:`repro.rvm.keyset.KeySet` is the id-set representation every
index and replica stores (DESIGN.md §4j). These tests pin it against
the obvious oracle — a plain ``set[int]`` — under random operation
sequences, exercise the sparse↔dense container promotion boundaries
explicitly, and check the one-writer/many-readers contract with real
threads.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.rvm.keyset import (
    CHUNK_MASK,
    KeySet,
    SPARSE_MAX,
    _BITMAP_BYTES,
)

#: ids spanning several chunks, with collisions likely (small range)
#: and chunk-boundary values always reachable
IDS = st.integers(min_value=0, max_value=3 * (CHUNK_MASK + 1))

OPS = st.lists(
    st.one_of(
        st.tuples(st.just("add"), IDS),
        st.tuples(st.just("discard"), IDS),
    ),
    max_size=200,
)

SETS = st.sets(IDS, max_size=300)


def check_equal(keyset: KeySet, oracle: set[int]) -> None:
    assert len(keyset) == len(oracle)
    assert keyset.cardinality() == len(oracle)
    assert sorted(oracle) == list(keyset.iter_sorted())
    assert sorted(oracle) == keyset.to_list()
    assert bool(keyset) == bool(oracle)


class TestKeySetVsSetOracle:
    @given(OPS)
    @settings(max_examples=150, deadline=None)
    def test_add_discard_sequences(self, ops):
        keyset, oracle = KeySet(), set()
        for op, value in ops:
            if op == "add":
                assert keyset.add(value) == (value not in oracle)
                oracle.add(value)
            else:
                assert keyset.discard(value) == (value in oracle)
                oracle.discard(value)
            assert (value in keyset) == (value in oracle)
        check_equal(keyset, oracle)

    @given(SETS, SETS)
    @settings(max_examples=150, deadline=None)
    def test_binary_algebra(self, a, b):
        ka, kb = KeySet.from_iterable(a), KeySet.from_iterable(b)
        check_equal(ka.and_(kb), a & b)
        check_equal(ka.or_(kb), a | b)
        check_equal(ka.andnot(kb), a - b)
        check_equal(ka & kb, a & b)
        check_equal(ka | kb, a | b)
        check_equal(ka - kb, a - b)
        assert ka.isdisjoint(kb) == a.isdisjoint(b)
        # inputs are not mutated by the operators
        check_equal(ka, a)
        check_equal(kb, b)

    @given(SETS, SETS)
    @settings(max_examples=100, deadline=None)
    def test_structural_equality_is_canonical(self, a, b):
        """Two keysets are ``==`` iff their member sets are — however
        they were built (bulk constructor vs incremental adds)."""
        bulk = KeySet.from_iterable(a)
        incremental = KeySet()
        for value in a:
            incremental.add(value)
        assert bulk == incremental
        assert (bulk == KeySet.from_iterable(b)) == (a == b)

    @given(SETS)
    @settings(max_examples=100, deadline=None)
    def test_from_sorted_and_copy(self, a):
        keyset = KeySet.from_sorted(sorted(a))
        check_equal(keyset, a)
        clone = keyset.copy()
        clone.add(3 * (CHUNK_MASK + 1) + 17)
        check_equal(keyset, a)  # copy-on-write: the original is intact

    @given(SETS, IDS)
    @settings(max_examples=100, deadline=None)
    def test_rank_matches_sorted_position(self, a, probe):
        """``rank(x)`` == bisect_left position of x in the sorted
        member list, for members and non-members alike."""
        from bisect import bisect_left
        keyset = KeySet.from_iterable(a)
        ordered = sorted(a)
        assert keyset.rank(probe) == bisect_left(ordered, probe)


class TestPromotionBoundaries:
    """The sparse array ↔ dense bitmap promotion at SPARSE_MAX."""

    @pytest.mark.parametrize("count", [SPARSE_MAX - 1, SPARSE_MAX,
                                       SPARSE_MAX + 1, SPARSE_MAX + 2])
    def test_layout_flips_exactly_past_sparse_max(self, count):
        keyset = KeySet.from_iterable(range(count))
        layout = keyset.chunk_layout()
        assert layout["chunks"] == 1
        if count > SPARSE_MAX:
            assert layout == {"chunks": 1, "dense": 1, "sparse": 0}
        else:
            assert layout == {"chunks": 1, "dense": 0, "sparse": 1}
        assert keyset.to_list() == list(range(count))

    def test_incremental_promotion_and_demotion_round_trip(self):
        keyset = KeySet()
        for i in range(SPARSE_MAX + 1):
            keyset.add(2 * i)  # sparse within one chunk... until it isn't
        assert keyset.chunk_layout()["dense"] == 1
        oracle = {2 * i for i in range(SPARSE_MAX + 1)}
        check_equal(keyset, oracle)
        # discarding back to SPARSE_MAX demotes to the array container
        assert keyset.discard(0)
        oracle.discard(0)
        assert keyset.chunk_layout() == {"chunks": 1, "dense": 0,
                                         "sparse": 1}
        check_equal(keyset, oracle)

    def test_chunk_border_values(self):
        """65535 and 65536 land in different chunks and stay ordered."""
        values = {CHUNK_MASK - 1, CHUNK_MASK, CHUNK_MASK + 1,
                  2 * (CHUNK_MASK + 1), 2 * (CHUNK_MASK + 1) + CHUNK_MASK}
        keyset = KeySet.from_iterable(values)
        assert keyset.chunk_layout()["chunks"] == 3
        check_equal(keyset, values)
        assert keyset.rank(CHUNK_MASK + 1) == 2

    def test_empty_chunk_is_dropped(self):
        keyset = KeySet.from_iterable([5, CHUNK_MASK + 7])
        keyset.discard(CHUNK_MASK + 7)
        assert keyset.chunk_layout()["chunks"] == 1
        keyset.discard(5)
        assert keyset.chunk_layout()["chunks"] == 0
        assert not keyset

    def test_dense_or_dense_stays_dense(self):
        a = KeySet.from_iterable(range(0, 2 * SPARSE_MAX, 2))
        b = KeySet.from_iterable(range(1, 2 * SPARSE_MAX, 2))
        union = a.or_(b)
        assert union.chunk_layout()["dense"] == 1
        assert len(union) == 2 * SPARSE_MAX

    def test_dense_and_dense_can_demote(self):
        a = KeySet.from_iterable(range(SPARSE_MAX + 1))
        b = KeySet.from_iterable(range(SPARSE_MAX, 2 * SPARSE_MAX + 1))
        meet = a.and_(b)
        assert meet.to_list() == [SPARSE_MAX]
        assert meet.chunk_layout() == {"chunks": 1, "dense": 0, "sparse": 1}

    def test_size_bytes_tracks_layout(self):
        sparse = KeySet.from_iterable(range(100))
        dense = KeySet.from_iterable(range(SPARSE_MAX + 100))
        assert sparse.size_bytes() < dense.size_bytes()
        # a dense chunk costs the bitmap, not 8 bytes per member
        assert dense.size_bytes() < 8 * len(dense)
        assert dense.size_bytes() >= _BITMAP_BYTES


class TestReadUnderMutation:
    """One writer, many readers, no locks: readers iterating a snapshot
    of the chunk dict must never crash or observe a torn container."""

    def test_eight_reader_threads_during_writes(self):
        keyset = KeySet.from_iterable(range(0, 20_000, 4))
        stop = threading.Event()
        errors: list[BaseException] = []

        def reader():
            try:
                while not stop.is_set():
                    last = -1
                    total = 0
                    for value in keyset.iter_sorted():
                        assert value > last  # sorted, never torn
                        last = value
                        total += 1
                    assert total > 0
                    keyset.rank(10_000)
                    assert 0 in keyset or True
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(8)]
        for thread in threads:
            thread.start()
        try:
            # writer: grow through the promotion boundary and shrink back
            for value in range(1, 30_000, 3):
                keyset.add(value)
            for value in range(1, 30_000, 6):
                keyset.discard(value)
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert not errors
        # final state is exactly what the single writer produced
        oracle = set(range(0, 20_000, 4))
        oracle.update(range(1, 30_000, 3))
        oracle.difference_update(range(1, 30_000, 6))
        check_equal(keyset, oracle)
