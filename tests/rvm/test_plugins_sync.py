"""Tests for data source plugins and the Synchronization Manager."""

from datetime import datetime

import pytest

from repro.core.identity import ViewId
from repro.imapsim import Attachment, EmailMessage, ImapServer
from repro.imapsim.latency import no_latency
from repro.rss import FeedEntry, FeedServer
from repro.rvm import ResourceViewManager, default_content_converter
from repro.rvm.plugins import FilesystemPlugin, ImapPlugin, RssPlugin
from repro.vfs import VirtualFileSystem

TEX = r"\begin{document}\section{Intro}Mike Franklin here.\end{document}"


@pytest.fixture()
def world():
    fs = VirtualFileSystem()
    fs.mkdir("/docs", parents=True)
    fs.write_file("/docs/paper.tex", TEX)
    fs.write_file("/docs/note.txt", "plain database note")

    imap = ImapServer(latency=no_latency())
    imap.deliver("INBOX", EmailMessage(
        subject="hello", sender="a@b", to=("c@d",),
        date=datetime(2005, 2, 1), body="database body",
        attachments=(Attachment("paper.tex", TEX),),
    ))

    feeds = FeedServer()
    feeds.publish("f/u", "Chan",
                  [FeedEntry("g1", "News", "desc", datetime(2006, 1, 1))])

    rvm = ResourceViewManager()
    converter = default_content_converter()
    rvm.register_plugin(FilesystemPlugin(fs, content_converter=converter))
    rvm.register_plugin(ImapPlugin(imap, content_converter=converter))
    rvm.register_plugin(RssPlugin(feeds))
    return fs, imap, feeds, rvm


class TestInitialScan:
    def test_all_sources_scanned(self, world):
        fs, imap, feeds, rvm = world
        report = rvm.sync_all()
        assert set(report.sources) == {"fs", "imap", "rss"}
        assert report.views_total == len(rvm.catalog)

    def test_base_vs_derived_classification(self, world):
        fs, imap, feeds, rvm = world
        report = rvm.sync_all()
        fs_report = report["fs"]
        # /, /docs, paper.tex, note.txt are base; latex subgraph derived
        assert fs_report.views_base == 4
        assert fs_report.views_derived_latex > 0
        # the email message and its attachment count as base items
        assert report["imap"].views_base == 3  # INBOX + message + attachment

    def test_phase_timings_populated(self, world):
        fs, imap, feeds, rvm = world
        report = rvm.sync_all()
        for source in report.sources.values():
            assert source.catalog_seconds >= 0
            assert source.indexing_seconds >= 0
            assert source.total_seconds > 0

    def test_simulated_latency_reported(self):
        fs = VirtualFileSystem()
        imap = ImapServer()  # default latency model: nonzero costs
        imap.deliver("INBOX", EmailMessage(
            subject="x", sender="a@b", to=("c@d",),
            date=datetime(2005, 2, 1), body="hello",
        ))
        rvm = ResourceViewManager()
        rvm.register_plugin(ImapPlugin(imap))
        report = rvm.sync_all()
        assert report["imap"].access_simulated_seconds > 0

    def test_rescan_is_idempotent(self, world):
        fs, imap, feeds, rvm = world
        rvm.sync_all()
        count = len(rvm.catalog)
        rvm.sync_all()
        assert len(rvm.catalog) == count


class TestFilesystemChanges:
    def test_new_file_indexed_after_notification(self, world):
        fs, imap, feeds, rvm = world
        rvm.sync_all()
        rvm.subscribe_all()
        fs.write_file("/docs/fresh.txt", "totally fresh words")
        processed = rvm.process_notifications()
        assert processed > 0
        assert ViewId("fs", "/docs/fresh.txt") in rvm.catalog
        from repro.fulltext.query import search
        assert search(rvm.indexes.content_index, "totally") == {
            "fs:///docs/fresh.txt"
        }

    def test_modified_file_reindexed(self, world):
        fs, imap, feeds, rvm = world
        rvm.sync_all()
        rvm.subscribe_all()
        fs.write_file("/docs/note.txt", "replacement wording")
        rvm.process_notifications()
        from repro.fulltext.query import search
        assert search(rvm.indexes.content_index, "replacement") == {
            "fs:///docs/note.txt"
        }
        assert search(rvm.indexes.content_index, "plain") == set()

    def test_deleted_file_unregistered(self, world):
        fs, imap, feeds, rvm = world
        rvm.sync_all()
        rvm.subscribe_all()
        fs.delete("/docs/note.txt")
        rvm.process_notifications()
        assert ViewId("fs", "/docs/note.txt") not in rvm.catalog

    def test_deleted_tex_removes_derived_views(self, world):
        fs, imap, feeds, rvm = world
        rvm.sync_all()
        rvm.subscribe_all()
        derived_before = [
            uri for uri in rvm.catalog.all_uris()
            if uri.startswith("fs:///docs/paper.tex#")
        ]
        assert derived_before
        fs.delete("/docs/paper.tex")
        rvm.process_notifications()
        derived_after = [
            uri for uri in rvm.catalog.all_uris()
            if uri.startswith("fs:///docs/paper.tex#")
        ]
        assert derived_after == []

    def test_polling_without_subscription(self, world):
        fs, imap, feeds, rvm = world
        rvm.sync_all()
        fs.write_file("/docs/polled.txt", "poll me")
        processed = rvm.poll_and_process()
        assert processed > 0
        assert ViewId("fs", "/docs/polled.txt") in rvm.catalog


class TestImapChanges:
    def test_new_message_indexed(self, world):
        fs, imap, feeds, rvm = world
        rvm.sync_all()
        rvm.subscribe_all()
        imap.deliver("INBOX", EmailMessage(
            subject="brand new", sender="x@y", to=("z@w",),
            date=datetime(2005, 3, 1), body="unique newmail words",
        ))
        rvm.process_notifications()
        from repro.fulltext.query import search
        assert search(rvm.indexes.content_index, "newmail")


class TestRssChanges:
    def test_rss_has_no_notifications(self, world):
        fs, imap, feeds, rvm = world
        rvm.sync_all()
        supported = rvm.subscribe_all()
        assert supported["rss"] is False
        assert supported["fs"] is True

    def test_poll_detects_new_entries(self, world):
        fs, imap, feeds, rvm = world
        rvm.sync_all()
        rvm.poll_and_process()  # baseline poll marks existing entries seen
        feeds.add_entry("f/u", FeedEntry("g2", "Scoop", "breaking",
                                         datetime(2006, 2, 2)))
        processed = rvm.poll_and_process()
        assert processed > 0
        from repro.fulltext.query import search
        assert search(rvm.indexes.content_index, "scoop")


class TestManagerAccessors:
    def test_view_returns_live_object(self, world):
        fs, imap, feeds, rvm = world
        rvm.sync_all()
        view = rvm.view("fs:///docs/note.txt")
        assert view is not None
        assert view.text() == "plain database note"

    def test_views_batch(self, world):
        fs, imap, feeds, rvm = world
        rvm.sync_all()
        views = rvm.views(["fs:///docs/note.txt", "fs:///ghost"])
        assert len(views) == 1

    def test_index_size_report(self, world):
        fs, imap, feeds, rvm = world
        rvm.sync_all()
        report = rvm.index_size_report()
        assert set(report) >= {"name", "tuple", "content", "group",
                               "catalog", "total", "net_input"}
        assert report["total"] >= report["content"]


class TestMovesAndSubtrees:
    def test_moved_file_reindexed_under_new_path(self, world):
        fs, imap, feeds, rvm = world
        rvm.sync_all()
        rvm.subscribe_all()
        fs.move("/docs/note.txt", "/docs/renamed.txt")
        rvm.process_notifications()
        assert ViewId("fs", "/docs/renamed.txt") in rvm.catalog
        assert ViewId("fs", "/docs/note.txt") not in rvm.catalog
        from repro.fulltext.query import search
        assert search(rvm.indexes.content_index, "plain") == {
            "fs:///docs/renamed.txt"
        }

    def test_deleted_folder_unregisters_subtree(self, world):
        fs, imap, feeds, rvm = world
        rvm.sync_all()
        rvm.subscribe_all()
        fs.mkdir("/docs/sub")
        fs.write_file("/docs/sub/inner.txt", "inner words")
        rvm.process_notifications()
        assert ViewId("fs", "/docs/sub/inner.txt") in rvm.catalog
        fs.delete("/docs/sub", recursive=True)
        rvm.process_notifications()
        assert ViewId("fs", "/docs/sub") not in rvm.catalog
        assert ViewId("fs", "/docs/sub/inner.txt") not in rvm.catalog

    def test_duplicate_authority_rejected(self, world):
        fs, imap, feeds, rvm = world
        from repro.core.errors import DataSourceError
        from repro.rvm.plugins import FilesystemPlugin
        with pytest.raises(DataSourceError):
            rvm.register_plugin(FilesystemPlugin(fs))

    def test_proxy_resolve_routes_by_authority(self, world):
        fs, imap, feeds, rvm = world
        rvm.sync_all()
        view = rvm.proxy.resolve(ViewId("fs", "/docs/note.txt"))
        assert view is not None and view.name == "note.txt"
        assert rvm.proxy.resolve(ViewId("nowhere", "/x")) is None
