"""Tests for RSS feeds and the polling facility."""

from datetime import datetime

import pytest

from repro.core.errors import FeedError
from repro.rss import (
    FeedEntry,
    FeedPoller,
    FeedServer,
    build_feed_xml,
    parse_feed_xml,
)


def _entry(guid: str, title: str = "t") -> FeedEntry:
    return FeedEntry(guid=guid, title=title, description="d",
                     published=datetime(2006, 1, 1))


class TestFeedXml:
    def test_roundtrip(self):
        entries = [_entry("g1", "First"), _entry("g2", "Second")]
        xml = build_feed_xml("My Channel", entries)
        title, parsed = parse_feed_xml(xml)
        assert title == "My Channel"
        assert [e.guid for e in parsed] == ["g1", "g2"]
        assert parsed[0].title == "First"
        assert parsed[0].published == datetime(2006, 1, 1)

    def test_is_valid_rss2(self):
        from repro.xmlp import parse
        doc = parse(build_feed_xml("C", [_entry("g")]))
        assert doc.root.name == "rss"
        assert doc.root.attributes["version"] == "2.0"

    def test_non_rss_rejected(self):
        with pytest.raises(FeedError):
            parse_feed_xml("<html/>")

    def test_missing_channel_rejected(self):
        with pytest.raises(FeedError):
            parse_feed_xml("<rss version='2.0'/>")

    def test_escaping_in_titles(self):
        xml = build_feed_xml("A & B", [_entry("g", "1 < 2")])
        title, entries = parse_feed_xml(xml)
        assert title == "A & B"
        assert entries[0].title == "1 < 2"


class TestFeedServer:
    def test_publish_and_get(self):
        server = FeedServer()
        server.publish("u", "Chan", [_entry("g")])
        title, entries = parse_feed_xml(server.get("u"))
        assert title == "Chan"
        assert len(entries) == 1

    def test_get_unknown_raises(self):
        with pytest.raises(FeedError):
            FeedServer().get("nowhere")

    def test_add_entry_to_unknown_raises(self):
        with pytest.raises(FeedError):
            FeedServer().add_entry("nowhere", _entry("g"))

    def test_fetch_count(self):
        server = FeedServer()
        server.publish("u", "C")
        server.get("u")
        server.get("u")
        assert server.fetch_count == 2


class TestPoller:
    def test_first_poll_returns_all(self):
        server = FeedServer()
        server.publish("u", "C", [_entry("g1"), _entry("g2")])
        poller = FeedPoller(server, "u")
        assert [e.guid for e in poller.poll()] == ["g1", "g2"]

    def test_repeat_poll_returns_nothing_new(self):
        server = FeedServer()
        server.publish("u", "C", [_entry("g1")])
        poller = FeedPoller(server, "u")
        poller.poll()
        assert poller.poll() == []

    def test_new_entries_detected(self):
        server = FeedServer()
        server.publish("u", "C", [_entry("g1")])
        poller = FeedPoller(server, "u")
        poller.poll()
        server.add_entry("u", _entry("g2"))
        assert [e.guid for e in poller.poll()] == ["g2"]

    def test_subscribers_pushed(self):
        server = FeedServer()
        server.publish("u", "C", [_entry("g1")])
        poller = FeedPoller(server, "u")
        pushed = []
        poller.subscribe(lambda entry: pushed.append(entry.guid))
        poller.poll()
        assert pushed == ["g1"]

    def test_stream_bounded_polls(self):
        server = FeedServer()
        server.publish("u", "C", [_entry("g1")])
        poller = FeedPoller(server, "u")
        guids = [e.guid for e in poller.stream(max_polls=3)]
        assert guids == ["g1"]
        assert server.fetch_count == 3

    def test_seen_count(self):
        server = FeedServer()
        server.publish("u", "C", [_entry("g1"), _entry("g2")])
        poller = FeedPoller(server, "u")
        poller.poll()
        assert poller.seen_count == 2
