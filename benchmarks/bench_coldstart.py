"""Cold-start: snapshot + WAL recovery vs full re-sync.

The point of ``repro.durability``: a process that inherits a durability
directory should reach its first query answer much faster than one that
re-scans and re-indexes every data source. This script measures
*time-to-first-query* three ways over the same generated dataspace —

* **full re-sync** — fresh RVM, scan every source, then query;
* **recover (checkpoint)** — ``Dataspace.open`` on a checkpointed
  directory (snapshot load, empty WAL tail), then query;
* **recover (WAL only)** — ``Dataspace.open`` on an uncheckpointed
  directory (pure WAL replay), then query —

and **asserts recovery from a checkpoint beats the full re-sync**, the
acceptance bound for the durability layer. It also reports the sync
overhead the WAL adds (durability off vs ``fsync="off"``/``"interval"``
/``"always"``), which is bounded separately in CI.

Run as a script (CI smokes ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_coldstart.py --quick
"""

from __future__ import annotations

import argparse
import shutil
import statistics
import tempfile
import time
from pathlib import Path

from repro.bench import format_table
from repro.dataset import TINY_PROFILE
from repro.durability import DurabilityConfig
from repro.facade import Dataspace
from repro.imapsim.latency import no_latency

#: The first query a waking process answers (content search touches the
#: fulltext index, the catalog and the ranking path).
FIRST_QUERY = '"database"'


def _generate(args, **kwargs) -> Dataspace:
    if args.quick:
        return Dataspace.generate(profile=TINY_PROFILE, seed=args.seed,
                                  imap_latency=no_latency(), **kwargs)
    return Dataspace.generate(scale=args.scale, seed=args.seed,
                              imap_latency=no_latency(), **kwargs)


def time_full_resync(args) -> tuple[float, int]:
    """Fresh process, no durable state: scan everything, then query."""
    dataspace = _generate(args)
    start = time.perf_counter()
    dataspace.sync()
    rows = len(dataspace.query(FIRST_QUERY))
    return time.perf_counter() - start, rows


def time_recovery(directory: Path) -> tuple[float, int]:
    """Fresh process, durable directory: recover, then query."""
    start = time.perf_counter()
    dataspace = Dataspace.open(directory, durable=False)
    rows = len(dataspace.query(FIRST_QUERY))
    return time.perf_counter() - start, rows


def prepare_directories(args, base: Path) -> tuple[Path, Path]:
    """One checkpointed and one WAL-only durability directory."""
    checkpointed = base / "checkpointed"
    wal_only = base / "wal-only"
    for directory, with_checkpoint in ((checkpointed, True),
                                       (wal_only, False)):
        dataspace = _generate(args, durability=DurabilityConfig(
            directory=directory, fsync="off"))
        dataspace.sync()
        if with_checkpoint:
            dataspace.checkpoint()
        dataspace.close()
    return checkpointed, wal_only


def time_sync_overhead(args) -> list[tuple[str, float]]:
    """One sync per durability mode (off plus each fsync policy)."""
    rows = []
    for label, make_config in (
        ("durability off", lambda d: None),
        ('fsync="off"', lambda d: DurabilityConfig(directory=d,
                                                   fsync="off")),
        ('fsync="interval"', lambda d: DurabilityConfig(
            directory=d, fsync="interval")),
        ('fsync="always"', lambda d: DurabilityConfig(directory=d,
                                                      fsync="always")),
    ):
        with tempfile.TemporaryDirectory() as scratch:
            config = make_config(Path(scratch) / "space")
            dataspace = _generate(args, durability=config)
            start = time.perf_counter()
            dataspace.sync()
            rows.append((label, time.perf_counter() - start))
            dataspace.close()
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="tiny profile, fewer rounds (CI smoke)")
    parser.add_argument("--rounds", type=int, default=None,
                        help="measurement rounds (default 5 quick, 3 full)")
    parser.add_argument("--scale", type=float, default=0.02,
                        help="dataset scale for the full run")
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args(argv)
    rounds = args.rounds if args.rounds else (5 if args.quick else 3)

    base = Path(tempfile.mkdtemp(prefix="coldstart-"))
    try:
        checkpointed, wal_only = prepare_directories(args, base)

        resync_times, checkpoint_times, wal_times = [], [], []
        rows_seen = set()
        for _ in range(rounds):
            seconds, rows = time_full_resync(args)
            resync_times.append(seconds)
            rows_seen.add(rows)
            seconds, rows = time_recovery(checkpointed)
            checkpoint_times.append(seconds)
            rows_seen.add(rows)
            seconds, rows = time_recovery(wal_only)
            wal_times.append(seconds)
            rows_seen.add(rows)
        # all three paths must answer the first query identically
        assert len(rows_seen) == 1, f"result drift: {rows_seen}"

        resync = statistics.median(resync_times)
        from_checkpoint = statistics.median(checkpoint_times)
        from_wal = statistics.median(wal_times)
        print(format_table(
            ["cold-start path", f"median of {rounds} [ms]", "vs re-sync"],
            [["full re-sync", resync * 1000, "1.0x"],
             ["recover (checkpoint)", from_checkpoint * 1000,
              f"{resync / from_checkpoint:.1f}x faster"],
             ["recover (WAL only)", from_wal * 1000,
              f"{resync / from_wal:.1f}x faster"]],
            title=(f"time to first query "
                   f"({'tiny profile' if args.quick else f'scale {args.scale}'}"
                   f", {rows_seen.pop()} rows)"),
        ))
        print()

        overhead_rows = time_sync_overhead(args)
        baseline = overhead_rows[0][1]
        print(format_table(
            ["sync mode", "seconds", "vs off"],
            [[label, seconds,
              "--" if label == "durability off"
              else f"{(seconds - baseline) / baseline:+.1%}"]
             for label, seconds in overhead_rows],
            title="sync-time durability overhead (one round, indicative)",
        ))

        if from_checkpoint >= resync:
            print(f"FAIL: checkpoint recovery ({from_checkpoint * 1000:.1f} "
                  f"ms) is not faster than a full re-sync "
                  f"({resync * 1000:.1f} ms)")
            return 1
        print(f"ok: checkpoint recovery is "
              f"{resync / from_checkpoint:.1f}x faster than re-sync")
        return 0
    finally:
        shutil.rmtree(base, ignore_errors=True)


if __name__ == "__main__":
    import sys
    sys.exit(main())
