"""Table 3 — index sizes for the personal dataset.

The paper reports, against a 255.4 MB net input: Name 12.9 MB, Tuple
13.3 MB, Content 118.0 MB, Group 3.5 MB, RV Catalog 24.8 MB — total
172.5 MB, i.e. 67.5% of the net input, with the content full-text index
the largest single structure. We regenerate the table and assert:

* the content index is the largest of the four component structures;
* the group replica is the smallest (paper: 3.5 MB of 172.5);
* the total lands within a sane multiple of the net input size.
"""

from repro.bench import PAPER_TABLE3, format_table


def test_table3_shape(harness):
    sizes = harness.table3()

    component_structures = {k: sizes[k]
                            for k in ("name", "tuple", "content", "group")}
    assert max(component_structures, key=component_structures.get) == \
        "content"
    assert min(component_structures, key=component_structures.get) == \
        "group"
    assert sizes["catalog"] > 0

    ratio = sizes["total"] / max(1.0, sizes["net_input"])
    # paper: 0.675; our Python-object estimates are coarser, so accept a
    # generous band around it — the point is "indexes cost the same
    # order of magnitude as the text they index"
    assert 0.2 < ratio < 5.0

    mb = 1024 * 1024
    rows = [
        ["net input", PAPER_TABLE3["net_input_mb"],
         sizes["net_input"] / mb],
        ["name", PAPER_TABLE3["name_mb"], sizes["name"] / mb],
        ["tuple", PAPER_TABLE3["tuple_mb"], sizes["tuple"] / mb],
        ["content", PAPER_TABLE3["content_mb"], sizes["content"] / mb],
        ["group", PAPER_TABLE3["group_mb"], sizes["group"] / mb],
        ["catalog", PAPER_TABLE3["catalog_mb"], sizes["catalog"] / mb],
        ["total", PAPER_TABLE3["total_mb"], sizes["total"] / mb],
    ]
    print()
    print(format_table(
        ["structure", "paper [MB]", "measured [MB]"],
        rows, title=f"Table 3 (scale={harness.scale})",
    ))
    print(f"total/net-input ratio: paper=0.675 measured={ratio:.3f}")


def test_table3_size_accounting_cost(harness, benchmark):
    """Size accounting itself must be cheap enough to run per sync."""
    result = benchmark(harness.dataspace.index_sizes)
    assert result["total"] > 0
