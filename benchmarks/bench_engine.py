"""Batched-engine benchmarks: LIMIT, parallel scan, dictionary keys,
compressed keysets.

Run as a script (CI smokes ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_engine.py --quick

Four experiments:

**LIMIT flatness.** A name-pattern scan is the engine's streaming worst
case — every catalog name is regex-tested. Without a limit its cost
grows with the corpus; with ``limit=10`` planned in, ``LimitOp`` closes
the scan after the first satisfied batch, so latency must stay flat
(< 2x) while the corpus grows several-fold. The script *asserts* this.

**Parallel scan honesty.** ``partitioned_filter`` fans a predicate over
contiguous row partitions on a thread pool. Under the GIL a pure-Python
(CPU-bound) predicate gains ~nothing — threads serialize on the
interpreter — while a latency-bound predicate (one that waits on I/O,
here simulated with a GIL-releasing sleep) gains ~Nx. Both regimes are
measured and reported; only the latency regime's speedup is asserted,
because that is the only speedup the engine honestly claims.

**Dictionary keys.** The operators are representation-generic, so the
*same* merge pipeline (intersect + union + diff) is driven twice over
identical data: once with URI-string key columns (the pre-dictionary
representation) and once with the dictionary's ``int64`` sort keys
(DESIGN.md §4h). View URIs share long prefixes, so every string compare
re-walks them while an int compare is one machine word — the int path
must win, and the script *asserts* the speedup.

**Compressed keysets.** The index layer stores catalog-id sets as
roaring-style :class:`~repro.rvm.keyset.KeySet` s (DESIGN.md §4j):
dense chunks are word-parallel bitmaps, so AND/OR/ANDNOT on the
dense-majority sets an index bucket typically holds must beat
``set[int]`` — asserted at >= 1.2x on 100k+ ids. The same experiment
pins the scan edge: handing a keyset to a dictionary view via
``keys_for_ids`` is pure integer gathering and leaves the dictionary's
string-lookup counter *flat*, where the ``set[str]`` path pays one
string conversion per URI; the counter assertion is exact.
"""

from __future__ import annotations

import argparse
import re
import sys
import time

from repro.bench import format_table
from repro.facade import Dataspace
from repro.imapsim.latency import no_latency
from repro.query.engine import partitioned_filter

#: The streaming scan under test: regex-matches every catalog name.
SCAN_QUERY = "//*e*"

#: Corpus growth ladder (generator scale factors). The generator's
#: structural floor is ~1.8k views; 0.25 yields ~12k.
FULL_SCALES = (0.001, 0.1, 0.25)
QUICK_SCALES = (0.001, 0.1)

REPEAT = 5
LIMIT = 10


def _best(fn, repeat: int = REPEAT) -> float:
    fn()  # warm
    return min(_timed(fn) for _ in range(repeat))


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


# -- experiment 1: LIMIT early termination ----------------------------------

def bench_limit_flatness(scales) -> bool:
    rows = []
    views, full_ms, limit_ms = [], [], []
    for scale in scales:
        dataspace = Dataspace.generate(scale=scale, seed=42,
                                       imap_latency=no_latency())
        dataspace.sync()
        full = _best(lambda: dataspace.query(SCAN_QUERY))
        limited = _best(lambda: dataspace.query(SCAN_QUERY, limit=LIMIT))
        views.append(dataspace.view_count)
        full_ms.append(full * 1000)
        limit_ms.append(limited * 1000)
        rows.append([dataspace.view_count, full * 1000, limited * 1000])
    print(format_table(
        ["views", "full scan [ms]", f"limit {LIMIT} [ms]"],
        rows,
        title=f"LIMIT early termination on {SCAN_QUERY!r}",
    ))
    growth = views[-1] / views[0]
    full_growth = full_ms[-1] / full_ms[0]
    limit_growth = limit_ms[-1] / limit_ms[0]
    print(f"corpus x{growth:.1f}: full scan x{full_growth:.1f}, "
          f"limit {LIMIT} x{limit_growth:.1f}")
    ok = True
    if limit_growth >= 2.0 and (limit_ms[-1] - limit_ms[0]) > 1.0:
        print(f"FAIL: limit-{LIMIT} latency grew x{limit_growth:.1f} "
              f"(>= 2x) over a x{growth:.1f} corpus")
        ok = False
    if full_growth <= limit_growth:
        print("WARN: full scan did not outgrow the limited query; "
              "the corpus ladder is too shallow to show termination")
    return ok


# -- experiment 2: parallel partitioned scan ---------------------------------

def bench_parallel(rows_cpu: int, rows_latency: int,
                   threads: int = 4) -> bool:
    names = [f"msg-{i:06d}{'.tex' if i % 7 == 0 else '.txt'}"
             for i in range(rows_cpu)]
    regex = re.compile(r"msg-\d+\.tex$")

    def cpu_bound(name: str) -> bool:
        return regex.match(name) is not None

    def latency_bound(name: str) -> bool:
        time.sleep(0.0002)  # a live-source probe; the GIL is released
        return name.endswith(".tex")

    table = []
    speedups = {}
    for label, predicate, rows in (
        ("cpu-bound (regex)", cpu_bound, names),
        ("latency-bound (0.2ms probe)", latency_bound,
         names[:rows_latency]),
    ):
        serial = _best(
            lambda: partitioned_filter(rows, predicate, threads=1),
            repeat=3)
        pooled = _best(
            lambda: partitioned_filter(rows, predicate, threads=threads),
            repeat=3)
        speedups[label] = serial / pooled
        table.append([label, len(rows), serial * 1000, pooled * 1000,
                      serial / pooled])
    print(format_table(
        ["predicate regime", "rows", "1 thread [ms]",
         f"{threads} threads [ms]", "speedup"],
        table,
        title="partitioned parallel scan (GIL honesty)",
    ))
    latency_speedup = speedups["latency-bound (0.2ms probe)"]
    if latency_speedup < 1.5:
        print(f"FAIL: latency-bound speedup {latency_speedup:.1f}x < 1.5x "
              f"on {threads} threads")
        return False
    return True


# -- experiment 3: dictionary-encoded key columns ----------------------------

class _BenchCtx:
    """The slice of ExecutionContext the merge operators touch."""

    def __init__(self, batch_size: int, view=None):
        from repro.query.engine import EngineConfig
        self.engine = EngineConfig(batch_size=batch_size)
        self.dict_view = view

    def checkpoint(self) -> None:
        pass

    def count(self, name: str, amount: int = 1) -> None:
        pass


class _Source:
    """Pre-built ordered batches (no substrate, pure operator cost)."""

    ordered = True

    def __init__(self, batches):
        self._batches = batches
        self._index = 0

    def open(self, ctx) -> None:
        self._index = 0

    def next_batch(self):
        if self._index >= len(self._batches):
            return None
        batch = self._batches[self._index]
        self._index += 1
        return batch

    def close(self) -> None:
        pass


def _merge_pipeline(make_source, ctx):
    """intersect(a, b) ∪ c, minus d — every sorted-merge operator once,
    comparing keys all the way down."""
    from repro.query.engine.operators import (
        MergeDiff, MergeIntersect, MergeUnion, drain,
    )
    op = MergeDiff(
        universe=MergeUnion([
            MergeIntersect([make_source(0), make_source(1)]),
            make_source(2),
        ]),
        child=make_source(3),
    )
    op.open(ctx)
    total = 0
    for _ in drain(op):
        total += 1
    return total


def bench_dictionary(rows: int, threshold: float = 1.05) -> bool:
    from array import array

    from repro.query.engine import chunked
    from repro.rvm.uridict import UriDictionary

    # realistic view URIs: long shared prefixes, numeric tails
    uris = sorted(
        f"imap://user@example.org/INBOX/Archive/2024/folder-{i % 7}"
        f"/message-{i:07d}/part-{i % 3}"
        for i in range(rows)
    )
    # four overlapping sorted slices exercise match and skip paths
    slices = [uris[::2], uris[1::2], uris[::3], uris[::5]]

    dictionary = UriDictionary()
    dictionary.intern_many(uris)
    view = dictionary.view()

    def string_source(index: int) -> _Source:
        return _Source(list(chunked(tuple(slices[index]), 256,
                                    ordered=True)))

    key_columns = [array("q", (view.key_for(u) for u in part))
                   for part in slices]

    def int_source(index: int) -> _Source:
        return _Source(list(chunked(key_columns[index], 256,
                                    ordered=True, view=view)))

    string_ctx = _BenchCtx(256)
    int_ctx = _BenchCtx(256, view=view)
    assert (_merge_pipeline(string_source, string_ctx)
            == _merge_pipeline(int_source, int_ctx))  # same answer

    string_s = _best(lambda: _merge_pipeline(string_source, string_ctx))
    int_s = _best(lambda: _merge_pipeline(int_source, int_ctx))
    speedup = string_s / int_s
    print(format_table(
        ["key column", "rows", "pipeline [ms]", "speedup"],
        [["URI strings", rows, string_s * 1000, 1.0],
         ["dictionary int64", rows, int_s * 1000, speedup]],
        title="merge pipeline: string keys vs dictionary keys",
    ))
    if speedup < threshold:
        print(f"FAIL: dictionary path speedup {speedup:.2f}x < "
              f"{threshold:.2f}x")
        return False
    return True


# -- experiment 4: compressed keysets (set algebra + scan edge) --------------

def bench_keysets(n: int, threshold: float = 1.2) -> bool:
    """Keyset algebra vs ``set[int]``, and the stringless scan edge."""
    from array import array

    from repro.rvm.keyset import KeySet
    from repro.rvm.uridict import UriDictionary

    # dense-majority operands: an index bucket covering most of a chunk
    # (86% / 67% fill — both well past the sparse->dense promotion)
    a_ids = [i for i in range(n) if i % 7]
    b_ids = [i for i in range(n // 4, n) if i % 3]
    keyset_a = KeySet.from_sorted(a_ids)
    keyset_b = KeySet.from_sorted(b_ids)
    set_a, set_b = set(a_ids), set(b_ids)

    # identical answers before timing anything
    assert keyset_a.and_(keyset_b).to_list() == sorted(set_a & set_b)
    assert keyset_a.or_(keyset_b).to_list() == sorted(set_a | set_b)
    assert keyset_a.andnot(keyset_b).to_list() == sorted(set_a - set_b)

    def keyset_algebra():
        keyset_a.and_(keyset_b)
        keyset_a.or_(keyset_b)
        keyset_a.andnot(keyset_b)

    def set_algebra():
        set_a & set_b
        set_a | set_b
        set_a - set_b

    keyset_s = _best(keyset_algebra)
    set_s = _best(set_algebra)
    algebra_speedup = set_s / keyset_s

    # the scan edge: a half-universe index result entering the engine.
    # intern_many over sorted URIs assigns id i to uris[i], so the id
    # keyset and the string set name the same views.
    uris = sorted(
        f"imap://user@example.org/INBOX/Archive/2024/folder-{i % 7}"
        f"/message-{i:07d}/part-{i % 3}"
        for i in range(n)
    )
    dictionary = UriDictionary()
    dictionary.intern_many(uris)
    view = dictionary.view()
    ids = KeySet.from_sorted(range(0, n, 2))
    uri_set = {uris[i] for i in range(0, n, 2)}

    lookups = dictionary.lookups
    handoffs = dictionary.handoffs
    keys_from_ids = view.keys_for_ids(ids)
    assert dictionary.lookups == lookups  # conversion eliminated
    assert dictionary.handoffs == handoffs + len(keys_from_ids)
    keys_from_strings = view.keys_for_set(uri_set)
    assert dictionary.lookups == lookups + len(keys_from_strings)
    assert isinstance(keys_from_ids, array)
    assert keys_from_ids == keys_from_strings  # same key column

    ids_s = _best(lambda: view.keys_for_ids(ids))
    strings_s = _best(lambda: view.keys_for_set(uri_set))
    edge_speedup = strings_s / ids_s

    print(format_table(
        ["operation", "ids", "time [ms]", "speedup"],
        [["set[int] AND/OR/ANDNOT", n, set_s * 1000, 1.0],
         ["KeySet and_/or_/andnot", n, keyset_s * 1000, algebra_speedup],
         ["keys_for_set (strings)", n // 2, strings_s * 1000, 1.0],
         ["keys_for_ids (keyset)", n // 2, ids_s * 1000, edge_speedup]],
        title="compressed keysets: set algebra and the scan edge",
    ))
    ok = True
    if algebra_speedup < threshold:
        print(f"FAIL: keyset algebra speedup {algebra_speedup:.2f}x < "
              f"{threshold:.2f}x on {n} ids")
        ok = False
    if edge_speedup < 1.0:
        print(f"WARN: keys_for_ids did not beat keys_for_set "
              f"({edge_speedup:.2f}x); the lookup-counter assertions "
              f"above still pin the eliminated conversions")
    return ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small corpora / fewer rows (CI smoke)")
    parser.add_argument("--threads", type=int, default=4)
    args = parser.parse_args(argv)

    scales = QUICK_SCALES if args.quick else FULL_SCALES
    rows_cpu = 20_000 if args.quick else 100_000
    rows_latency = 500 if args.quick else 2_000

    ok = bench_limit_flatness(scales)
    print()
    ok = bench_parallel(rows_cpu, rows_latency,
                        threads=args.threads) and ok
    print()
    # below ~60k rows the margin drowns in per-row interpreter
    # overhead; at 60k the string columns also fall out of cache
    ok = bench_dictionary(60_000 if args.quick else 120_000) and ok
    print()
    # the keyset claim is "1.2x at 100k+ ids" — quick mode keeps the
    # asserted operating point, full mode scales it up
    ok = bench_keysets(100_000 if args.quick else 250_000) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
