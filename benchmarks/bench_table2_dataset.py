"""Table 2 — characteristics of the personal dataset.

The paper reports, per data source, the number of resource views broken
into base items (files&folders; emails) and views derived from XML and
LaTeX content. We regenerate the table over the synthetic dataspace and
assert its *shape*:

* on the filesystem, derived views greatly outnumber base items;
* on the email source, derived views are comparatively few (documents
  are rarely exchanged as attachments);
* overall, derived views greatly surpass base items.
"""

from repro.bench import PAPER_TABLE2, format_table
from .conftest import fresh_harness


def test_table2_shape(harness):
    table = harness.table2()

    fs = table["fs"]
    imap = table["imap"]
    total = table["total"]

    # filesystem: most views come from content conversion (paper: 128,826
    # derived vs 14,297 base — a 9x ratio; we assert a clear majority)
    assert fs["xml"] + fs["latex"] > fs["base"] * 0.5
    # email: the derived share is far smaller than the filesystem's
    fs_ratio = (fs["xml"] + fs["latex"]) / max(1, fs["base"])
    imap_ratio = (imap["xml"] + imap["latex"]) / max(1, imap["base"])
    assert imap_ratio < fs_ratio
    # both converters contributed
    assert total["latex"] > 0 and total["xml"] > 0
    # totals are consistent
    assert total["total"] == (total["base"] + total["xml"]
                              + total["latex"] + total["other"])

    rows = []
    for source in ("fs", "imap", "total"):
        measured = table.get(source, {})
        paper = PAPER_TABLE2.get(source, {})
        rows.append([
            source,
            paper.get("base", "-"), measured.get("base", 0),
            paper.get("xml", "-"), measured.get("xml", 0),
            paper.get("latex", "-"), measured.get("latex", 0),
            paper.get("total", "-"), measured.get("total", 0),
        ])
    print()
    print(format_table(
        ["source", "base(paper)", "base", "xml(paper)", "xml",
         "latex(paper)", "latex", "total(paper)", "total"],
        rows, title=f"Table 2 (scale={harness.scale})",
    ))


def test_table2_generation_and_scan(benchmark):
    """Times dataset generation + full scan (the experiment's setup cost)."""

    def build():
        h = fresh_harness()
        h.ensure_synced()
        return h.dataspace.view_count

    views = benchmark.pedantic(build, rounds=1, iterations=1)
    assert views > 0
