"""Benchmarks for the post-paper extensions.

1. **Expansion strategies** — forward (the 2006 prototype) vs backward
   vs auto/bidirectional [30] on Q8-like navigation: the paper
   explicitly plans "backward or bidirectional expansion" to cut Q8's
   intermediate results; these benches quantify the win.
2. **Rule vs cost-based optimization** — the paper's future-work
   optimizer against the shipped rule-based one.
3. **Replication policy** — full indexing vs the minimal (query
   shipping) policy: same answers, different index footprint and query
   latency (the data-vs-query-shipping trade-off of Section 5.2).
"""

import pytest

from repro.bench import PAPER_QUERIES
from repro.facade import Dataspace
from repro.imapsim.latency import no_latency
from repro.query import QueryProcessor
from repro.rvm import IndexingPolicy
from .conftest import BENCH_SCALE, BENCH_SEED

#: A navigation-heavy query (Q8's B side) where strategy matters.
NAV_QUERY = '//papers//*[class="texref"]'


@pytest.fixture(scope="module")
def shared_rvm(harness):
    return harness.dataspace.rvm


class TestExpansionStrategies:
    def test_strategies_equivalent(self, shared_rvm):
        results = {
            strategy: set(
                QueryProcessor(shared_rvm, expansion=strategy)
                .execute(NAV_QUERY).uris()
            )
            for strategy in ("forward", "backward", "auto")
        }
        assert results["forward"] == results["backward"] == results["auto"]

    def test_backward_cuts_intermediate_results(self, shared_rvm):
        forward = QueryProcessor(shared_rvm,
                                 expansion="forward").execute(NAV_QUERY)
        backward = QueryProcessor(shared_rvm,
                                  expansion="backward").execute(NAV_QUERY)
        print(f"\nintermediate views: forward={forward.expanded_views} "
              f"backward={backward.expanded_views}")
        assert backward.expanded_views < forward.expanded_views

    @pytest.mark.parametrize("strategy", ["forward", "backward", "auto"])
    def test_expansion_speed(self, shared_rvm, benchmark, strategy):
        processor = QueryProcessor(shared_rvm, expansion=strategy)
        result = benchmark(processor.execute, NAV_QUERY)
        assert len(result) > 0

    @pytest.mark.parametrize("strategy", ["forward", "auto"])
    def test_q8_speed_by_strategy(self, shared_rvm, benchmark, strategy):
        processor = QueryProcessor(shared_rvm, expansion=strategy)
        result = benchmark(processor.execute, PAPER_QUERIES["Q8"])
        assert len(result) > 0


class TestOptimizerModes:
    ADVERSARIAL = '[class="latex_text" and "database tuning"]'

    def test_modes_equivalent(self, shared_rvm):
        rule = QueryProcessor(shared_rvm, optimizer="rule")
        cost = QueryProcessor(shared_rvm, optimizer="cost")
        assert set(rule.execute(self.ADVERSARIAL).uris()) == \
            set(cost.execute(self.ADVERSARIAL).uris())

    @pytest.mark.parametrize("mode", ["rule", "cost"])
    def test_optimizer_speed(self, shared_rvm, benchmark, mode):
        processor = QueryProcessor(shared_rvm, optimizer=mode)
        benchmark(processor.execute, self.ADVERSARIAL)


class TestReplicationPolicy:
    @pytest.fixture(scope="class")
    def minimal_dataspace(self):
        dataspace = Dataspace.generate(
            scale=BENCH_SCALE, seed=BENCH_SEED,
            imap_latency=no_latency(),
            policy=IndexingPolicy.minimal(),
        )
        dataspace.sync()
        return dataspace

    def test_footprint_shrinks(self, harness, minimal_dataspace):
        full = harness.dataspace.index_sizes()["total"]
        minimal = minimal_dataspace.index_sizes()["total"]
        print(f"\nindex bytes: full={full} minimal={minimal} "
              f"({minimal / full:.1%})")
        assert minimal < full * 0.6

    def test_answers_unchanged(self, harness, minimal_dataspace):
        for qid in ("Q1", "Q2", "Q4", "Q5"):
            full_result = harness.dataspace.query(PAPER_QUERIES[qid])
            minimal_result = minimal_dataspace.query(PAPER_QUERIES[qid])
            assert len(full_result) == len(minimal_result), qid

    def test_query_shipping_speed(self, minimal_dataspace, benchmark):
        result = benchmark.pedantic(
            minimal_dataspace.query, args=(PAPER_QUERIES["Q2"],),
            rounds=3, iterations=1,
        )
        assert len(result) > 0

    def test_data_shipping_speed(self, harness, benchmark):
        result = benchmark(harness.dataspace.query, PAPER_QUERIES["Q2"])
        assert len(result) > 0
