"""Telemetry overhead on the hot query path.

The instrumentation contract of ``repro.obs``: recording is a handful
of counter bumps and one histogram observation per executed query, and
the disabled mode short-circuits before touching any registry. This
script times the Table 4 query mix with telemetry enabled and disabled
(interleaved rounds, medians) and **asserts the spread stays under
5 %** — the acceptance bound for the observability layer.

Run as a script (CI smokes ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --quick
"""

from __future__ import annotations

import argparse
import statistics
import time

from repro import obs
from repro.bench import PAPER_QUERIES, format_table
from repro.dataset import TINY_PROFILE
from repro.facade import Dataspace
from repro.imapsim.latency import no_latency

#: Allowed enabled-over-disabled spread on the query mix.
MAX_OVERHEAD = 0.05
#: Absolute slack (seconds) so sub-millisecond mixes cannot flake the
#: relative bound on scheduler noise alone.
ABSOLUTE_SLACK = 0.005


def _time_mix(processor, prepared) -> float:
    start = time.perf_counter()
    for query in prepared:
        processor.execute_prepared(query)
    return time.perf_counter() - start


def measure(*, quick: bool, rounds: int, scale: float,
            seed: int = 42) -> tuple[float, float]:
    """Median mix time with telemetry (enabled, disabled)."""
    if quick:
        dataspace = Dataspace.generate(profile=TINY_PROFILE, seed=seed,
                                       imap_latency=no_latency())
    else:
        dataspace = Dataspace.generate(scale=scale, seed=seed,
                                       imap_latency=no_latency())
    dataspace.sync()
    processor = dataspace.processor
    prepared = [processor.prepare(text) for text in PAPER_QUERIES.values()]

    was_enabled = obs.enabled()
    enabled_times: list[float] = []
    disabled_times: list[float] = []
    try:
        obs.configure(enabled=True)
        _time_mix(processor, prepared)  # warm caches under either mode
        for _ in range(rounds):  # interleave so drift hits both alike
            obs.configure(enabled=True)
            enabled_times.append(_time_mix(processor, prepared))
            obs.configure(enabled=False)
            disabled_times.append(_time_mix(processor, prepared))
    finally:
        obs.configure(enabled=was_enabled)
    return (statistics.median(enabled_times),
            statistics.median(disabled_times))


def _time_fleet_mix(supervisor, queries) -> float:
    start = time.perf_counter()
    for n, iql in enumerate(queries):
        supervisor.query(iql, key=f"client-{n}", timeout=120.0)
    return time.perf_counter() - start


def measure_sharded(*, quick: bool, rounds: int, scale: float,
                    seed: int = 42, shards: int = 2) -> tuple[float, float]:
    """Median routed-mix time with federation (on, off).

    The "on" fleet runs with a near-zero export interval, so *every*
    reply piggybacks a metrics delta — the worst case for the wire and
    the merge path. The "off" fleet disables federation entirely.
    Both fleets stay up for the whole run and rounds alternate between
    them, so clock drift and cache warmth hit both alike.
    """
    import shutil
    import tempfile

    from repro.supervise import ShardSupervisor

    queries = list(PAPER_QUERIES.values())
    effective_scale = None if quick else scale  # None -> tiny profile
    base = tempfile.mkdtemp(prefix="repro-obs-bench-")
    federated_times: list[float] = []
    plain_times: list[float] = []
    try:
        with ShardSupervisor(
                f"{base}/federated", shards=shards, seed=seed,
                scale=effective_scale, metrics_interval=1e-9) as federated, \
             ShardSupervisor(
                f"{base}/plain", shards=shards, seed=seed,
                scale=effective_scale, federate_metrics=False) as plain:
            _time_fleet_mix(federated, queries)  # warm both fleets
            _time_fleet_mix(plain, queries)
            for _ in range(rounds):
                federated_times.append(_time_fleet_mix(federated, queries))
                plain_times.append(_time_fleet_mix(plain, queries))
    finally:
        shutil.rmtree(base, ignore_errors=True)
    return (statistics.median(federated_times),
            statistics.median(plain_times))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="tiny profile, fewer rounds (CI smoke)")
    parser.add_argument("--rounds", type=int, default=None,
                        help="measurement rounds (default 15 quick, 9 full)")
    parser.add_argument("--scale", type=float, default=0.02,
                        help="dataset scale for the full run")
    parser.add_argument("--sharded", action="store_true",
                        help="measure metrics federation overhead on the "
                             "supervised multi-process path instead")
    parser.add_argument("--shards", type=int, default=2,
                        help="fleet size for --sharded (default 2)")
    args = parser.parse_args(argv)
    # the quick mix is sub-10ms, so it needs more rounds for a stable
    # median than the full-scale run does
    rounds = args.rounds if args.rounds else (15 if args.quick else 9)

    if args.sharded:
        on, off = measure_sharded(quick=args.quick, rounds=rounds,
                                  scale=args.scale, shards=args.shards)
        modes = ("federation off", "federation on (every reply)")
        title = (f"metrics federation overhead on the routed Table 4 mix "
                 f"({args.shards} shards)")
    else:
        on, off = measure(quick=args.quick, rounds=rounds, scale=args.scale)
        modes = ("telemetry disabled", "telemetry enabled")
        title = "telemetry overhead on the Table 4 mix"
    overhead = (on - off) / off if off > 0 else 0.0
    print(format_table(
        ["mode", f"median of {rounds} [ms]", "vs baseline"],
        [[modes[0], off * 1000, "--"],
         [modes[1], on * 1000, f"{overhead:+.1%}"]],
        title=title,
    ))
    if on > off * (1 + MAX_OVERHEAD) + ABSOLUTE_SLACK:
        print(f"FAIL: {modes[1]} costs {overhead:+.1%} "
              f"(bound {MAX_OVERHEAD:.0%} + {ABSOLUTE_SLACK * 1000:.0f} ms)")
        return 1
    print(f"ok: {modes[1]} overhead {overhead:+.1%} within the "
          f"{MAX_OVERHEAD:.0%} + {ABSOLUTE_SLACK * 1000:.0f} ms bound")
    return 0


if __name__ == "__main__":
    import sys
    sys.exit(main())
