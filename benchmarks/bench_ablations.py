"""Ablation benchmarks for the design choices DESIGN.md calls out.

These go beyond the paper's evaluation: they quantify why the prototype
is built the way it is.

1. **Index-backed predicates vs full scans** — every iQL predicate leaf
   resolves through an index; the ablation answers the same keyword
   query by scanning live content components.
2. **Candidate pushdown in path steps** — ExpandStep intersects the
   expansion with an index-computed candidate set; the ablation expands
   first and filters per view afterwards.
3. **Group replica vs data-source traversal** — forward expansion runs
   on the in-memory replica; the ablation traverses the live resource
   view graph (forcing group components from the sources).
4. **Conjunct reordering** — the rule-based optimizer orders an
   intersection cheapest-first; the ablation runs the same plan in the
   adversarial (most-expensive-first) order.
"""

import time

from repro.core.graph import traverse
from repro.fulltext.query import Phrase
from repro.query.executor import ExecutionContext
from repro.query.functions import FunctionTable
from repro.query.plan import (
    ClassLookup,
    ContentSearch,
    Intersect,
    NamePattern,
)


def _context(harness):
    return ExecutionContext(harness.dataspace.rvm, FunctionTable())


class TestIndexVsScan:
    def test_index_matches_scan(self, harness):
        rvm = harness.dataspace.rvm
        ctx = _context(harness)
        indexed = ctx.content_search("database", is_phrase=True,
                                     wildcard=False)
        scanned = set()
        phrase = Phrase.of("database")
        for uri, view in rvm.sync.live_views.items():
            content = view.content
            text = content.text() if content.is_finite else content.take(4096)
            probe_terms = rvm.indexes.content_index.analyzer.terms(text)
            if "database" in probe_terms:
                scanned.add(uri)
        assert indexed == scanned

    def test_index_lookup_speed(self, harness, benchmark):
        ctx = _context(harness)
        benchmark(ctx.content_search, "database", is_phrase=True,
                  wildcard=False)

    def test_full_scan_speed(self, harness, benchmark):
        rvm = harness.dataspace.rvm
        analyzer = rvm.indexes.content_index.analyzer

        def scan():
            hits = set()
            for uri, view in rvm.sync.live_views.items():
                content = view.content
                text = (content.text() if content.is_finite
                        else content.take(4096))
                if "database" in analyzer.terms(text):
                    hits.add(uri)
            return hits

        hits = benchmark.pedantic(scan, rounds=3, iterations=1)
        assert hits  # the ablation still finds the answers, just slowly


class TestCandidatePushdown:
    QUERY_INPUT = '//papers'

    def test_pushdown_equivalent_to_post_filter(self, harness):
        ctx = _context(harness)
        from repro.query.ast import Axis
        from repro.query.plan import ExpandStep, NameEquals
        pushed = ExpandStep(
            input=NameEquals(name="papers"), axis=Axis.DESCENDANT,
            candidates=NamePattern(pattern="*.tex"),
        ).execute(ctx)
        unfiltered = ExpandStep(
            input=NameEquals(name="papers"), axis=Axis.DESCENDANT,
            candidates=None,
        ).execute(_context(harness))
        post = {uri for uri in unfiltered
                if harness.dataspace.rvm.indexes.name_of(uri).endswith(".tex")}
        assert pushed == post

    def test_pushdown_speed(self, harness, benchmark):
        from repro.query.ast import Axis
        from repro.query.plan import ExpandStep, NameEquals

        def run():
            ctx = _context(harness)
            return ExpandStep(
                input=NameEquals(name="papers"), axis=Axis.DESCENDANT,
                candidates=NamePattern(pattern="*.tex"),
            ).execute(ctx)

        assert benchmark(run)


class TestReplicaVsLiveTraversal:
    def test_replica_expansion_matches_live_graph(self, harness):
        rvm = harness.dataspace.rvm
        root_uri = "fs:///papers"
        replica_set = rvm.indexes.group_replica.descendants(root_uri)
        root_view = rvm.view(root_uri)
        live_set = {v.view_id.uri for v, d in traverse(root_view) if d > 0}
        assert replica_set == live_set

    def test_replica_expansion_speed(self, harness, benchmark):
        replica = harness.dataspace.rvm.indexes.group_replica
        result = benchmark(replica.descendants, "fs:///papers")
        assert result

    def test_live_traversal_speed(self, harness, benchmark):
        rvm = harness.dataspace.rvm
        root_view = rvm.view("fs:///papers")

        def walk():
            return sum(1 for _ in traverse(root_view))

        assert benchmark(walk) > 0


class TestConjunctReordering:
    def _parts(self):
        return (
            NamePattern(pattern="*"),            # expensive scan
            ContentSearch(text="database"),      # mid-cost
            ClassLookup(class_name="latex_section"),  # cheap + selective
        )

    def test_orders_agree_on_results(self, harness):
        worst = Intersect(self._parts())
        best = Intersect(tuple(sorted(self._parts(), key=lambda p: p.COST)))
        assert worst.execute(_context(harness)) == \
            best.execute(_context(harness))

    def test_optimized_order_speed(self, harness, benchmark):
        plan = Intersect(tuple(sorted(self._parts(), key=lambda p: p.COST)))

        def run():
            return plan.execute(_context(harness))

        benchmark(run)

    def test_adversarial_order_speed(self, harness, benchmark):
        plan = Intersect(tuple(sorted(self._parts(), key=lambda p: -p.COST)))

        def run():
            return plan.execute(_context(harness))

        benchmark(run)
