"""Benchmarks for the concurrent query service: warm-cache speedup,
throughput and tail latency at 1/4/16 clients, and overload behaviour.

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_service.py -s``
to see the tables.
"""

from __future__ import annotations

import time

import pytest

from repro.bench import PAPER_QUERIES, format_table
from repro.service import run_closed_loop

#: The unary paper queries (joins excluded: a join over the 2% dataset
#: dominates the mix's runtime and drowns the latency distribution).
QUERY_MIX = [iql for qid, iql in PAPER_QUERIES.items()
             if qid not in ("Q7", "Q8")]


def _fresh_service(harness, **kwargs):
    kwargs.setdefault("workers", 4)
    kwargs.setdefault("max_queue_depth", 32)
    return harness.dataspace.serve(**kwargs)


class TestWarmCacheSpeedup:
    def test_repeated_query_speedup(self, harness):
        """A warm result cache must serve repeats >= 5x faster than cold
        execution (the acceptance bar; in practice it is orders of
        magnitude)."""
        with _fresh_service(harness) as service:
            cold = 0.0
            for iql in QUERY_MIX:
                t0 = time.perf_counter()
                service.execute(iql)
                cold += time.perf_counter() - t0
            rounds = 5
            warm = 0.0
            for _ in range(rounds):
                for iql in QUERY_MIX:
                    t0 = time.perf_counter()
                    service.execute(iql)
                    warm += time.perf_counter() - t0
            warm /= rounds
            stats = service.stats()
        speedup = cold / warm if warm > 0 else float("inf")
        print(f"\ncold={cold * 1000:.2f}ms warm={warm * 1000:.2f}ms "
              f"speedup={speedup:.1f}x "
              f"(result hits={stats['cache.result.hits']})")
        assert stats["cache.result.hits"] >= rounds * len(QUERY_MIX)
        assert speedup >= 5.0


class TestConcurrencyLevels:
    @pytest.mark.parametrize("use_cache", [True, False],
                             ids=["cache-on", "cache-off"])
    def test_throughput_and_tail_latency(self, harness, use_cache):
        """Throughput and p50/p95/p99 at 1, 4 and 16 closed-loop
        clients, result cache on and off."""
        rows = []
        for clients in (1, 4, 16):
            with _fresh_service(harness,
                                cache_results=use_cache) as service:
                report = run_closed_loop(
                    service, QUERY_MIX, clients=clients,
                    requests_per_client=25, use_cache=use_cache,
                )
            latency = report.latency_snapshot()
            rows.append([
                clients, report.succeeded, report.rejected, report.failed,
                report.throughput, latency.p50 * 1000,
                latency.p95 * 1000, latency.p99 * 1000,
            ])
            assert report.succeeded + report.rejected + report.failed \
                == report.requests
            assert report.succeeded > 0
            assert report.failed == 0
        print("\n" + format_table(
            ["clients", "ok", "rejected", "failed", "q/s",
             "p50 [ms]", "p95 [ms]", "p99 [ms]"],
            rows,
            title=f"service closed loop (cache {'on' if use_cache else 'off'})",
        ))


class TestOverload:
    def test_saturation_reports_rejections(self, harness):
        """A tiny service saturated by 16 clients sheds load via typed
        Overloaded rejections, and the metrics registry counts them."""
        with _fresh_service(harness, workers=1, max_queue_depth=1,
                            cache_results=False) as service:
            report = run_closed_loop(
                service, QUERY_MIX, clients=16, requests_per_client=20,
                use_cache=False,
            )
            rejected_metric = service.metrics.counter(
                "admission.rejected"
            ).value
        print(f"\nsaturation: ok={report.succeeded} "
              f"rejected={report.rejected} "
              f"(metric admission.rejected={rejected_metric})")
        assert report.rejected > 0
        assert rejected_metric == report.rejected
        assert report.succeeded > 0
