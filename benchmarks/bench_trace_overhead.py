"""Overhead of the tracing layer on the Table 4 query mix.

The batched engine makes disabled tracing *structurally* free: the
compiler only wraps operators in :class:`TracedOperator` when the
execution context carries a collector, so a ``trace=None`` run executes
the bare operator tree — there is no wrapper left to strip and no
per-pull branch to pay. This file pins the claim both ways:

* structurally — an untraced compile contains no ``TracedOperator``
  anywhere in the operator tree, while a traced compile wraps the root;
* temporally — the enabled-trace cost over the untraced baseline is
  measured and reported (not asserted tightly: enabled tracing does
  real work — span bookkeeping, per-operator estimates — so only a
  generous pathological-regression bound applies).
"""

from __future__ import annotations

import time

from repro.bench import PAPER_QUERIES, format_table
from repro.query.engine import Operator, compile_plan
from repro.query.engine.traced import TracedOperator
from repro.query.executor import ExecutionContext
from repro.trace import TraceCollector

#: Interleaved measurement rounds; the minimum is reported (standard
#: practice for shaving scheduler noise off a CPU-bound microbench).
ROUNDS = 5


def _operators(op: Operator):
    """Walk the compiled operator tree (children live under varying
    attribute names, so walk every Operator-typed attribute)."""
    yield op
    for value in vars(op).values():
        if isinstance(value, Operator):
            yield from _operators(value)
        elif isinstance(value, (tuple, list)):
            for item in value:
                if isinstance(item, Operator):
                    yield from _operators(item)


def _compile(processor, text: str, trace) -> Operator:
    ctx = ExecutionContext(processor.rvm, processor.functions, trace=trace)
    plan = processor._prepared_plan(processor.prepare(text), ctx)
    return compile_plan(plan, ctx)


def test_untraced_compile_has_no_wrappers(harness):
    """trace=None compiles to bare operators: zero disabled overhead by
    construction, not by measurement."""
    processor = harness.dataspace.processor
    for text in PAPER_QUERIES.values():
        if processor.prepare(text).is_join:
            continue  # joins do not lower to the batch engine
        root = _compile(processor, text, trace=None)
        assert not any(isinstance(op, TracedOperator)
                       for op in _operators(root)), text


def test_traced_compile_wraps_the_tree(harness):
    processor = harness.dataspace.processor
    root = _compile(processor, '"database"', trace=TraceCollector())
    assert isinstance(root, TracedOperator)


def _time_mix(processor, prepared, *, traced: bool) -> float:
    start = time.perf_counter()
    for query in prepared:
        trace = TraceCollector() if traced else None
        processor.execute_prepared(query, trace=trace)
    return time.perf_counter() - start


def test_enabled_tracing_overhead_report(harness):
    processor = harness.dataspace.processor
    prepared = [processor.prepare(text) for text in PAPER_QUERIES.values()]

    untraced, enabled = [], []
    _time_mix(processor, prepared, traced=False)  # warm caches
    for _ in range(ROUNDS):  # interleave so drift hits both modes alike
        untraced.append(_time_mix(processor, prepared, traced=False))
        enabled.append(_time_mix(processor, prepared, traced=True))

    off, on = min(untraced), min(enabled)
    print()
    print(format_table(
        ["mode", f"best of {ROUNDS} [ms]", "vs untraced"],
        [["tracing disabled (bare operators)", off * 1000, "--"],
         ["tracing enabled", on * 1000, f"{(on - off) / off:+.1%}"]],
        title="trace overhead on the Table 4 mix",
    ))
    # Enabled tracing pays for spans and estimates; only a pathological
    # blow-up (an accidental O(n) per pull, say) should trip this.
    assert on < off * 10 + 0.5, (
        f"enabled tracing costs {on * 1000:.1f} ms vs "
        f"{off * 1000:.1f} ms untraced — pathological overhead")
