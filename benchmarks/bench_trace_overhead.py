"""Overhead of the tracing layer on the Table 4 query mix.

The traced-wrapper design claims that *disabled* tracing costs one
``ctx.trace is None`` check per plan node. This benchmark checks the
claim empirically against a stripped baseline in which the wrapper is
monkeypatched away entirely (``cls.execute = cls._run``), so the only
difference between the two timed modes is the wrapper itself.

Asserted budget: < 5% wall-time overhead for disabled tracing on the
paper's query mix (with a small absolute-delta escape hatch, since a
few-millisecond jitter on a fast mix can exceed 5% without meaning
anything). Enabled-trace overhead is reported but not asserted — it
does real work (span bookkeeping, per-node estimates).
"""

from __future__ import annotations

import time
from contextlib import contextmanager

from repro.bench import PAPER_QUERIES, format_table
from repro.query.plan import JoinPlan, PlanNode
from repro.trace import TraceCollector

#: Interleaved measurement rounds; the minimum is reported (standard
#: practice for shaving scheduler noise off a CPU-bound microbench).
ROUNDS = 5

#: Absolute escape hatch: if disabled-vs-stripped differ by less than
#: this much per round, the relative bound is vacuous timing noise.
ABS_SLACK_SECONDS = 0.020


def _concrete_nodes() -> list[type]:
    return list(PlanNode.__subclasses__())


@contextmanager
def _tracing_stripped():
    """Replace every traced ``execute`` wrapper with the raw ``_run``."""
    patched = _concrete_nodes()
    wrapped_pairs = JoinPlan.execute_pairs  # defined on JoinPlan itself
    for cls in patched:
        cls.execute = cls._run
    JoinPlan.execute_pairs = JoinPlan._run_pairs
    try:
        yield
    finally:
        for cls in patched:
            del cls.execute  # re-inherit the traced base wrapper
        JoinPlan.execute_pairs = wrapped_pairs


def _time_mix(processor, prepared, *, traced: bool) -> float:
    start = time.perf_counter()
    for query in prepared:
        trace = TraceCollector() if traced else None
        processor.execute_prepared(query, trace=trace)
    return time.perf_counter() - start


def test_disabled_tracing_overhead_under_five_percent(harness):
    processor = harness.dataspace.processor
    prepared = [processor.prepare(text) for text in PAPER_QUERIES.values()]

    stripped, disabled, enabled = [], [], []
    _time_mix(processor, prepared, traced=False)  # warm caches
    for _ in range(ROUNDS):  # interleave so drift hits all modes alike
        with _tracing_stripped():
            stripped.append(_time_mix(processor, prepared, traced=False))
        disabled.append(_time_mix(processor, prepared, traced=False))
        enabled.append(_time_mix(processor, prepared, traced=True))

    base, off, on = min(stripped), min(disabled), min(enabled)
    overhead = (off - base) / base
    print()
    print(format_table(
        ["mode", "best of 5 [ms]", "vs stripped"],
        [["stripped (no wrapper)", base * 1000, "--"],
         ["tracing disabled", off * 1000, f"{overhead:+.1%}"],
         ["tracing enabled", on * 1000, f"{(on - base) / base:+.1%}"]],
        title="trace overhead on the Table 4 mix",
    ))
    assert overhead < 0.05 or (off - base) < ABS_SLACK_SECONDS, (
        f"disabled tracing costs {overhead:.1%} over the stripped "
        f"baseline ({base * 1000:.1f} ms -> {off * 1000:.1f} ms)")


def test_stripped_baseline_actually_strips(harness):
    """Guard the monkeypatch: inside the context the wrapper is gone
    (no spans appear even with a collector), outside it is back."""
    processor = harness.dataspace.processor
    prepared = processor.prepare('"database"')

    with _tracing_stripped():
        trace = TraceCollector()
        processor.execute_prepared(prepared, trace=trace)
        assert trace.span_count == 0

    trace = TraceCollector()
    processor.execute_prepared(prepared, trace=trace)
    assert trace.span_count >= 1
