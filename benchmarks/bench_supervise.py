"""Supervised failover: what a shard crash costs the healthy shards.

The acceptance bound for ``repro.supervise``: while one shard worker is
SIGKILLed and recovering, the *other* shards' tail latency must not
collapse — containment means a crash costs the victims nothing but the
failed-over keys. This script drives a keyed workload over N shard
worker processes three ways —

* **baseline** — all shards healthy, per-shard latency distribution;
* **failover** — SIGKILL shard 0 mid-workload, keep driving the same
  mix, measuring healthy-shard latency until shard 0 is UP again;
* **recovered** — the same workload after recovery, on the restarted
  incarnation —

and **asserts the healthy-shard p99 during failover stays within 2× of
baseline** (with a small jitter floor: tiny-profile queries run in a
couple of milliseconds, where scheduler noise dominates), that the
killed shard recovers within a bounded window, and that its recovered
answers equal its pre-crash ones.

Run as a script (CI smokes ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_supervise.py --quick
"""

from __future__ import annotations

import argparse
import shutil
import statistics
import sys
import tempfile
import time

from repro.bench import format_table
from repro.core.errors import ShardUnavailable
from repro.supervise import ShardSupervisor

#: The served query mix (all shard datasets answer these).
QUERIES = ['"database"', '[size > 1000]', '"database" and "tuning"',
           '//papers//*.tex']

#: Below this baseline p99 the 2× bound is scheduler noise, not signal:
#: the assertion becomes p99 <= max(2 * baseline, JITTER_FLOOR).
JITTER_FLOOR_SECONDS = 0.050


def percentile(samples: list[float], fraction: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


def drive(supervisor, requests: int, *, shards: int,
          exclude: set[int] = frozenset()) -> tuple[list[float], int]:
    """Run the keyed mix; returns healthy-shard latencies + fail-fasts."""
    latencies: list[float] = []
    unavailable = 0
    for n in range(requests):
        key = f"client-{n % (shards * 8)}"
        shard = supervisor.shard_for(key)
        started = time.perf_counter()
        try:
            supervisor.query(QUERIES[n % len(QUERIES)], key=key,
                             timeout=120.0)
        except ShardUnavailable:
            unavailable += 1
            continue
        if shard not in exclude:
            latencies.append(time.perf_counter() - started)
    return latencies, unavailable


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: 2 shards, short workload")
    parser.add_argument("--shards", type=int, default=None,
                        help="shard worker processes (default 3, quick 2)")
    parser.add_argument("--requests", type=int, default=None,
                        help="requests per phase (default 240, quick 60)")
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args(argv)
    shards = args.shards or (2 if args.quick else 3)
    requests = args.requests or (60 if args.quick else 240)

    directory = tempfile.mkdtemp(prefix="repro-bench-supervise-")
    try:
        supervisor = ShardSupervisor(directory, shards=shards,
                                     seed=args.seed)
        spawn_started = time.perf_counter()
        with supervisor:
            spawn_seconds = time.perf_counter() - spawn_started

            # -- baseline: everyone healthy ------------------------------
            baseline, _ = drive(supervisor, requests, shards=shards)
            baseline_p99 = percentile(baseline, 0.99)

            # the answers shard 0 has acknowledged before the crash
            key0 = next(f"client-{n}" for n in range(256)
                        if supervisor.shard_for(f"client-{n}") == 0)
            acked = {iql: supervisor.query(iql, key=key0).uris
                     for iql in QUERIES}

            # -- failover: SIGKILL shard 0, keep driving -----------------
            supervisor.kill_shard(0)
            died_at = time.perf_counter()
            # detection is EOF-driven and takes milliseconds; the
            # failover window opens when the supervisor notices
            while supervisor.shard_states()[0] == "up":
                if time.perf_counter() - died_at > 10.0:
                    print("FAILED: worker death was never detected",
                          file=sys.stderr)
                    return 1
                time.sleep(0.001)
            during: list[float] = []
            unavailable = 0
            while supervisor.shard_states()[0] != "up":
                lat, failed = drive(supervisor, max(4, requests // 10),
                                    shards=shards, exclude={0})
                during.extend(lat)
                unavailable += failed
                if time.perf_counter() - died_at > 120.0:
                    print("FAILED: shard 0 did not recover within 120s",
                          file=sys.stderr)
                    return 1
            failover_seconds = time.perf_counter() - died_at
            during_p99 = percentile(during, 0.99)

            # -- recovered: the restarted incarnation answers again ------
            recovered, _ = drive(supervisor, requests, shards=shards)
            recovered_p99 = percentile(recovered, 0.99)
            losses = [iql for iql, uris in acked.items()
                      if supervisor.query(iql, key=key0).uris != uris]
            stats = supervisor.stats()

        def row(phase, samples, p99):
            return [phase, len(samples),
                    statistics.median(samples) * 1000 if samples else 0.0,
                    p99 * 1000]

        print(format_table(
            ["phase", "samples", "p50 [ms]", "p99 [ms]"],
            [row("baseline (all shards)", baseline, baseline_p99),
             row("failover (healthy shards)", during, during_p99),
             row("recovered (all shards)", recovered, recovered_p99)],
            title=(f"supervised failover ({shards} shard workers, "
                   f"{requests} requests/phase, seed {args.seed})"),
        ))
        print(f"\nworker spawn (all shards, first sync): "
              f"{spawn_seconds:.2f} s")
        print(f"shard 0 failover (SIGKILL -> serving): "
              f"{failover_seconds:.2f} s, "
              f"{unavailable} request(s) failed fast, "
              f"epoch {stats['shard.0.epoch']}")

        bound = max(2.0 * baseline_p99, JITTER_FLOOR_SECONDS)
        failures = []
        if during and during_p99 > bound:
            failures.append(
                f"healthy-shard p99 during failover {during_p99 * 1000:.1f} "
                f"ms exceeds the bound {bound * 1000:.1f} ms "
                f"(2x baseline {baseline_p99 * 1000:.1f} ms)")
        if losses:
            failures.append(
                f"acknowledged results changed after recovery: {losses}")
        if stats["shard.0.restarts"] < 1:
            failures.append("shard 0 was never supervised back up")
        for failure in failures:
            print(f"FAILED: {failure}", file=sys.stderr)
        if not failures:
            print("OK: healthy-shard p99 held within 2x baseline through "
                  "the failover; no acknowledged result changed")
        return 1 if failures else 0
    finally:
        shutil.rmtree(directory, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
