"""Figure 6 — query response times for Q1–Q8 (warm cache).

The paper's observations:

* Q1–Q7 execute in under 0.2 s;
* Q8 — the join bridging email and filesystem — is the slowest (~0.5 s)
  because forward expansion processes many intermediate results;
* everything stays under the 1-second interactive bound [39].

We assert the same ordering: all queries are interactive, the join
queries (Q7, Q8) do the most expansion work, and Q8 processes more
intermediate views than any other query.
"""

import pytest

from repro.bench import PAPER_FIGURE6, PAPER_QUERIES, format_table


def test_figure6_shape(harness):
    measurements = harness.run_queries(warm_runs=3)

    # interactive response times at bench scale (paper bound: 1 s)
    for qid, measurement in measurements.items():
        assert measurement.warm_seconds < 1.0, qid

    # Q8 expands the most intermediate views — the paper's explanation
    # for why the cross-subsystem join is the slowest query
    expansions = {qid: m.expanded_views for qid, m in measurements.items()}
    assert expansions["Q8"] == max(expansions.values())
    # index-only queries expand nothing at all
    assert expansions["Q1"] == expansions["Q2"] == expansions["Q3"] == 0

    rows = [[qid, PAPER_FIGURE6[qid], m.warm_seconds, m.cold_seconds,
             m.expanded_views, m.results]
            for qid, m in measurements.items()]
    print()
    print(format_table(
        ["query", "paper [s]", "warm [s]", "cold [s]",
         "expanded views", "results"],
        rows, title=f"Figure 6 (scale={harness.scale})",
    ))


@pytest.mark.parametrize("query_id", list(PAPER_QUERIES))
def test_query_response_time(harness, benchmark, query_id):
    """One pytest-benchmark series per query — the figure's bars."""
    iql = PAPER_QUERIES[query_id]
    harness.dataspace.query(iql)  # warm the cache like the paper does
    result = benchmark(harness.dataspace.query, iql)
    assert result.elapsed_seconds < 1.0
