"""Scaling behaviour of indexing and querying.

Not a paper table — the paper evaluates a single dataset — but the
natural follow-up question for a PDSMS: how do view counts, index build
time and query latency grow with the dataspace? The generator's scale
knob makes this a controlled sweep; we assert the shapes a healthy
system must show:

* derived-view counts grow roughly linearly with the profile scale;
* index build throughput (views/second) does not collapse at the larger
  scale (no superlinear blowup);
* warm keyword-query latency grows sublinearly relative to the view
  count (index-backed lookups, not scans).
"""

import time

import pytest

from repro.bench import PAPER_QUERIES
from repro.facade import Dataspace
from repro.imapsim.latency import no_latency

#: Scales above the profile floors (tiny profiles are floor-dominated,
#: which would mask the linear growth this sweep asserts).
SCALES = (0.02, 0.06, 0.12)


@pytest.fixture(scope="module")
def sweep():
    points = []
    for scale in SCALES:
        dataspace = Dataspace.generate(scale=scale, seed=42,
                                       imap_latency=no_latency())
        started = time.perf_counter()
        dataspace.sync()
        build_seconds = time.perf_counter() - started
        dataspace.query(PAPER_QUERIES["Q1"])  # warm
        started = time.perf_counter()
        result = dataspace.query(PAPER_QUERIES["Q1"])
        query_seconds = time.perf_counter() - started
        points.append({
            "scale": scale,
            "views": dataspace.view_count,
            "build_seconds": build_seconds,
            "q1_seconds": query_seconds,
            "q1_results": len(result),
        })
    return points


class TestScalingShape:
    def test_views_grow_with_scale(self, sweep):
        views = [p["views"] for p in sweep]
        assert views == sorted(views)
        # roughly linear: 6x the scale gives at least 2.5x the views
        # (the fixed planted entities damp the ratio a little)
        assert views[-1] > views[0] * 2.5

    def test_build_throughput_stable(self, sweep):
        throughputs = [p["views"] / p["build_seconds"] for p in sweep]
        print("\nscale sweep:")
        for point, throughput in zip(sweep, throughputs):
            print(f"  scale={point['scale']:.2f} views={point['views']:6d} "
                  f"build={point['build_seconds']:.2f}s "
                  f"({throughput:,.0f} views/s) "
                  f"q1={point['q1_seconds'] * 1000:.2f}ms "
                  f"({point['q1_results']} hits)")
        # throughput at the largest scale stays within 4x of the smallest
        assert throughputs[-1] > throughputs[0] / 4

    def test_query_latency_tracks_results_not_views(self, sweep):
        """Index-backed retrieval: latency is driven by the result set
        (hits must be materialized), not by dataspace size. At sub-ms
        latencies timing is noisy, so the bound is generous."""
        small, large = sweep[0], sweep[-1]
        result_growth = large["q1_results"] / max(1, small["q1_results"])
        latency_growth = large["q1_seconds"] / max(small["q1_seconds"],
                                                   1e-6)
        assert latency_growth < max(result_growth, 1.0) * 3

    def test_q1_results_grow(self, sweep):
        results = [p["q1_results"] for p in sweep]
        assert results == sorted(results)


def test_sync_at_double_scale(benchmark):
    """One timed point at 2x the default bench scale."""

    def build():
        dataspace = Dataspace.generate(scale=0.04, seed=42,
                                       imap_latency=no_latency())
        dataspace.sync()
        return dataspace.view_count

    views = benchmark.pedantic(build, rounds=1, iterations=1)
    assert views > 0
