"""Figure 5 — indexing times per data source.

The paper breaks total indexing time into Catalog Insert, Component
Indexing and Data Source Access, per source:

* filesystem ≈ 22 min, roughly half spent on component indexing, the
  rest split between catalog maintenance and scanning;
* email ≈ 68 min, *dominated by data source access* (remote IMAP).

Our IMAP server charges a deterministic latency model, so the email
breakdown reproduces the remote-access-dominated shape; the filesystem
breakdown is dominated by local (measured) work.
"""

from repro.bench import PAPER_FIGURE5, format_table
from .conftest import fresh_harness


def test_figure5_breakdown(harness):
    breakdown = harness.figure5()

    fs = breakdown["fs"]
    imap = breakdown["imap"]

    # email indexing is dominated by data-source access (the paper's
    # headline observation for Figure 5)
    assert imap["access"] > imap["catalog"] + imap["indexing"]
    # the simulated remote latency is the bulk of that access time
    assert imap["access_simulated"] > 0.5 * imap["access"]
    # the filesystem source has no remote component at all
    assert fs["access_simulated"] == 0.0
    # local work (indexing + catalog) is a real share of filesystem time
    assert fs["indexing"] + fs["catalog"] > 0

    # per-message access cost lands in a plausible IMAP range: the paper
    # spent ~68 min on 6,335 messages ≈ 0.64 s/message end to end
    messages = harness.dataspace.generated.counts["emails"]
    per_message = imap["access"] / max(1, messages)
    assert 0.01 < per_message < 5.0

    rows = []
    for source in ("fs", "imap"):
        data = breakdown[source]
        paper_total = PAPER_FIGURE5[source]["total_min"] * 60
        rows.append([
            source, paper_total, data["total"],
            data["catalog"], data["indexing"], data["access"],
            data["access_simulated"],
        ])
    print()
    print(format_table(
        ["source", "paper total [s]", "total [s]", "catalog [s]",
         "indexing [s]", "access [s]", "(simulated) [s]"],
        rows, title=f"Figure 5 (scale={harness.scale})",
    ))


def test_figure5_fs_scan_time(benchmark):
    """Wall-clock of the filesystem scan alone (the local source)."""
    h = fresh_harness()

    def scan():
        return h.sync_report or h.dataspace.rvm.sync_source("fs")

    report = benchmark.pedantic(scan, rounds=1, iterations=1)
    assert report.views_total > 0


def test_figure5_email_scan_time(benchmark):
    """Wall-clock of the email scan alone (simulated remote source)."""
    h = fresh_harness()

    def scan():
        return h.dataspace.rvm.sync_source("imap")

    report = benchmark.pedantic(scan, rounds=1, iterations=1)
    assert report.views_total > 0
    assert report.access_simulated_seconds > 0
