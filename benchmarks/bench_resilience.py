"""Overhead of the resilience layer when nothing is failing.

The source guard (retry + breaker) and the fault-injection wrapper sit
on every data-source call, so their *no-fault* cost must be noise: a
healthy dataspace should not pay for the machinery that protects a
flaky one. This benchmark times the two source-touching phases —
a full synchronization pass, and a query mix that includes the
RootViews shapes which reach back to live sources on every execution —
on a bare dataspace versus one wrapped in both a no-op
:class:`FaultPlan` and a :class:`ResilienceHub`.

Asserted budget: < 5% wall time for the fully wrapped stack (with the
same absolute-delta escape hatch as the trace-overhead benchmark).
"""

from __future__ import annotations

import time

from repro.bench import PAPER_QUERIES, format_table
from repro.dataset import TINY_PROFILE, PersonalDataspaceGenerator
from repro.facade import Dataspace
from repro.imapsim.latency import no_latency
from repro.resilience import FaultPlan, ResilienceConfig

#: Interleaved measurement rounds; the minimum is reported.
ROUNDS = 5

#: Absolute escape hatch for vacuously-tight relative bounds.
ABS_SLACK_SECONDS = 0.020

#: Query-mix passes per timed round (amortizes per-pass noise).
QUERY_PASSES = 3

#: The paper mix plus the leading-child-axis shapes, which call the
#: (guarded) plugins' ``root_views`` on every single execution.
QUERY_MIX = list(PAPER_QUERIES.values()) + ["/*", '/INBOX//*["database"]']

_GENERATED = PersonalDataspaceGenerator(
    TINY_PROFILE, seed=42, imap_latency=no_latency()
).generate()


def _build(*, wrapped: bool) -> Dataspace:
    dataspace = Dataspace(
        vfs=_GENERATED.vfs, imap=_GENERATED.imap, feeds=_GENERATED.feeds,
        resilience=ResilienceConfig() if wrapped else None,
    )
    if wrapped:
        # a plan that never fires: the per-call decision still runs
        for authority in dataspace.rvm.proxy.authorities():
            dataspace.inject_faults(authority, FaultPlan(seed=0))
    return dataspace


def _time_sync_and_queries(*, wrapped: bool) -> tuple[float, float]:
    dataspace = _build(wrapped=wrapped)
    start = time.perf_counter()
    report = dataspace.sync()
    sync_seconds = time.perf_counter() - start
    assert not report.is_degraded  # the no-op plan really is a no-op

    prepared = [dataspace.processor.prepare(text) for text in QUERY_MIX]
    start = time.perf_counter()
    for _ in range(QUERY_PASSES):
        for query in prepared:
            result = dataspace.processor.execute_prepared(query)
            assert not result.is_degraded
    return sync_seconds, time.perf_counter() - start


def test_unfaulted_resilience_overhead_under_five_percent():
    _time_sync_and_queries(wrapped=False)  # warm everything
    bare_sync, bare_query, wrapped_sync, wrapped_query = [], [], [], []
    for _ in range(ROUNDS):  # interleave so drift hits both modes alike
        sync_seconds, query_seconds = _time_sync_and_queries(wrapped=False)
        bare_sync.append(sync_seconds)
        bare_query.append(query_seconds)
        sync_seconds, query_seconds = _time_sync_and_queries(wrapped=True)
        wrapped_sync.append(sync_seconds)
        wrapped_query.append(query_seconds)

    rows = []
    failures = []
    for phase, bare, wrapped in (
            ("sync", min(bare_sync), min(wrapped_sync)),
            ("query mix", min(bare_query), min(wrapped_query))):
        overhead = (wrapped - bare) / bare
        rows.append([phase, bare * 1000, wrapped * 1000, f"{overhead:+.1%}"])
        if overhead >= 0.05 and (wrapped - bare) >= ABS_SLACK_SECONDS:
            failures.append(
                f"{phase}: {overhead:.1%} "
                f"({bare * 1000:.1f} ms -> {wrapped * 1000:.1f} ms)")
    print()
    print(format_table(
        ["phase", "bare [ms]", "guard+plan [ms]", "overhead"],
        rows, title="no-fault resilience overhead (best of 5)",
    ))
    assert not failures, (
        "no-fault resilience overhead above budget: " + "; ".join(failures))


def test_wrapped_stack_actually_wraps():
    """Guard the measurement: the wrapped mode really routes every
    plugin through the guard and the fault plan."""
    from repro.resilience.engine import GuardedPlugin
    from repro.resilience import FaultyPluginWrapper

    dataspace = _build(wrapped=True)
    dataspace.sync()
    for authority in dataspace.rvm.proxy.authorities():
        plugin = dataspace.rvm.proxy.plugin_for(authority)
        assert isinstance(plugin, GuardedPlugin)
        assert isinstance(plugin.inner, FaultyPluginWrapper)
        assert plugin.inner.plan.calls > 0  # the plan saw the sync
    health = dataspace.health()
    assert all(row["state"] == "closed" for row in health.values())
