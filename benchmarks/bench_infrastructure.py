"""Benchmarks for the infrastructure extensions: persistence snapshots,
standing-query throughput, and ranked search."""

import pytest

from repro.query.standing import StandingQueries
from repro.query.ranking import ranked_search
from repro.rvm import ResourceViewManager
from repro.rvm.persistence import load_state, save_state


class TestPersistence:
    def test_save_speed(self, harness, benchmark, tmp_path_factory):
        rvm = harness.dataspace.rvm

        def save():
            return save_state(rvm, tmp_path_factory.mktemp("snap"))

        manifest = benchmark.pedantic(save, rounds=3, iterations=1)
        assert manifest["counts"]["catalog"] > 0

    def test_load_speed(self, harness, benchmark, tmp_path_factory):
        base = tmp_path_factory.mktemp("snapshot")
        save_state(harness.dataspace.rvm, base)

        def load():
            restored = ResourceViewManager()
            load_state(restored, base)
            return restored

        restored = benchmark.pedantic(load, rounds=3, iterations=1)
        assert len(restored.catalog) == len(harness.dataspace.rvm.catalog)

    def test_snapshot_smaller_than_live(self, harness, tmp_path):
        """The snapshot's on-disk size should be the same order as the
        in-memory accounting (sanity of both estimates)."""
        manifest = save_state(harness.dataspace.rvm, tmp_path)
        on_disk = sum(f.stat().st_size for f in tmp_path.iterdir())
        accounted = harness.dataspace.index_sizes()["total"]
        print(f"\nsnapshot bytes={on_disk} accounted bytes={accounted}")
        assert on_disk > 0
        assert 0.05 < on_disk / accounted < 20


class TestStandingQueryThroughput:
    def test_event_matching_rate(self, harness, benchmark):
        """Events per second through 20 registered standing queries."""
        rvm = harness.dataspace.rvm
        standing = StandingQueries(rvm.bus)
        for index in range(20):
            standing.register(f'"term{index}" and "database"',
                              lambda n: None)
        views = list(rvm.sync.live_views.values())[:200]
        from repro.pushops import ChangeEvent, ChangeKind, ComponentKind

        def pump():
            for view in views:
                rvm.bus.publish(ChangeEvent(
                    view.view_id, ComponentKind.CONTENT,
                    ChangeKind.ADDED, payload=view,
                ))
            return len(views)

        assert benchmark.pedantic(pump, rounds=3, iterations=1) == 200


class TestRankedSearch:
    def test_search_speed(self, harness, benchmark):
        hits = benchmark(ranked_search, harness.dataspace.rvm,
                         "database indexing time", limit=10)
        assert hits

    def test_filtered_search_speed(self, harness, benchmark):
        within = set(harness.dataspace.query("//papers//*.tex").uris())

        def run():
            return ranked_search(harness.dataspace.rvm, "database",
                                 limit=10, within=within)

        benchmark(run)
