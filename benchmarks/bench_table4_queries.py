"""Table 4 — the evaluation queries Q1–Q8 and their result counts.

The paper's counts (941, 39, 88, 2, 2, 31, 21, 16) depend on the real
dataset; the generator plants the same entities, so we assert the
*relationships* the paper's numbers exhibit:

* Q1 ("database") is by far the largest result set;
* Q2 ("database tuning", a phrase) is a small subset of Q1;
* Q3 equals the number of planted oversized files (paper: 88);
* Q4 and Q5 are tiny, precisely-planted counts (paper: 2 and 2);
* Q6's union is non-trivial; Q7 and Q8 joins return the planted pairs.
"""

from repro.bench import PAPER_QUERIES, PAPER_TABLE4, format_table


def test_table4_counts(harness):
    measurements = harness.run_queries(warm_runs=1)
    counts = {qid: m.results for qid, m in measurements.items()}
    planted = harness.dataspace.generated.planted

    assert counts["Q1"] == max(counts.values())
    assert 0 < counts["Q2"] < counts["Q1"]
    assert counts["Q3"] == planted["q3_large_files"]
    assert counts["Q4"] == planted["q4_vision_sections"] == 2
    assert counts["Q5"] == planted["q5_conclusion_sections"] == 2
    assert counts["Q6"] >= 2
    assert counts["Q7"] == planted["q7_figure_refs"]
    assert counts["Q8"] == planted["q8_shared_tex"]

    rows = [[qid, PAPER_TABLE4[qid], counts[qid],
             PAPER_QUERIES[qid][:58]]
            for qid in PAPER_QUERIES]
    print()
    print(format_table(
        ["query", "paper #", "measured #", "iQL"],
        rows, title=f"Table 4 (scale={harness.scale})",
    ))


def test_q1_keyword_throughput(harness, benchmark):
    result = benchmark(harness.dataspace.query, PAPER_QUERIES["Q1"])
    assert len(result) > 0


def test_q2_phrase_throughput(harness, benchmark):
    result = benchmark(harness.dataspace.query, PAPER_QUERIES["Q2"])
    assert len(result) > 0


def test_q3_tuple_predicate_throughput(harness, benchmark):
    result = benchmark(harness.dataspace.query, PAPER_QUERIES["Q3"])
    assert len(result) > 0
