"""Shared fixtures for the evaluation benchmarks.

Scale defaults to 2% of the paper's dataset so the whole harness runs in
minutes on a laptop; set ``REPRO_BENCH_SCALE`` (e.g. ``0.1``) to grow it.
The synthetic dataset preserves the paper's *structure statistics*, so
shape assertions hold at any scale.
"""

from __future__ import annotations

import os

import pytest

from repro.bench import EvaluationHarness

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.02"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "42"))


@pytest.fixture(scope="session")
def harness() -> EvaluationHarness:
    """One shared harness with a synced dataspace (for read-only
    experiments: Tables 2-4, Figure 6)."""
    harness = EvaluationHarness(scale=BENCH_SCALE, seed=BENCH_SEED)
    harness.ensure_synced()
    return harness


def fresh_harness() -> EvaluationHarness:
    """An unsynced harness (for experiments that time the sync itself)."""
    return EvaluationHarness(scale=BENCH_SCALE, seed=BENCH_SEED)
