"""The top-level facade: one object for the whole PDSMS.

:class:`Dataspace` wires the subsystems together the way the iMeMex
architecture diagram (Figure 4) does: data sources behind plugins, the
Resource View Manager with its catalog/replicas/indexes, and the iQL
query processor on top.
"""

from __future__ import annotations

from datetime import datetime

from .dataset import (
    DatasetProfile,
    GeneratedDataspace,
    PersonalDataspaceGenerator,
    TINY_PROFILE,
    scaled_profile,
)
from .imapsim import ImapServer, LatencyModel
from .query import QueryProcessor, QueryResult
from .rss import FeedServer
from .rvm import ResourceViewManager, default_content_converter
from .rvm.manager import SyncReport
from .rvm.plugins import FilesystemPlugin, ImapPlugin, RssPlugin
from .vfs import VirtualFileSystem


class Dataspace:
    """A personal dataspace: sources + RVM + query processor.

    Create one from existing subsystems, or use :meth:`demo` /
    :meth:`generate` for a synthetic personal dataspace. Call
    :meth:`sync` once to index everything, then :meth:`query`.
    """

    def __init__(self, *, vfs: VirtualFileSystem | None = None,
                 imap: ImapServer | None = None,
                 feeds: FeedServer | None = None,
                 reference_datetime: datetime | None = None,
                 policy=None, optimizer: str = "rule",
                 expansion: str = "forward",
                 resilience=None, durability=None):
        self.vfs = vfs
        self.imap = imap
        self.feeds = feeds
        # resilience: True → default config; a ResilienceConfig → a hub
        # with it; a ready ResilienceHub passes through; None → off.
        from .resilience import ResilienceConfig, ResilienceHub
        if resilience is True:
            resilience = ResilienceHub(ResilienceConfig())
        elif isinstance(resilience, ResilienceConfig):
            resilience = ResilienceHub(resilience)
        self.resilience = resilience
        self.rvm = ResourceViewManager(policy=policy, resilience=resilience)
        # durability: a directory path → default config over it; a
        # DurabilityConfig → a manager with it; None → off (in-memory).
        # Attached before any sync so the WAL covers the initial scan.
        from pathlib import Path
        from .durability import DurabilityConfig, DurabilityManager
        if isinstance(durability, (str, Path)):
            durability = DurabilityConfig(directory=durability)
        self.durability = (DurabilityManager(self.rvm, durability)
                           if isinstance(durability, DurabilityConfig)
                           else durability)
        self.converter = default_content_converter()
        if vfs is not None:
            self.rvm.register_plugin(FilesystemPlugin(
                vfs, content_converter=self.converter
            ))
        if imap is not None:
            self.rvm.register_plugin(ImapPlugin(
                imap, content_converter=self.converter
            ))
        if feeds is not None:
            self.rvm.register_plugin(RssPlugin(feeds))
        self.processor = QueryProcessor(
            self.rvm, reference_datetime=reference_datetime,
            optimizer=optimizer, expansion=expansion,
        )
        self._synced = False
        self.last_sync_report: SyncReport | None = None
        self.last_recovery = None
        self.generated: GeneratedDataspace | None = None

    # -- constructors -----------------------------------------------------------

    @classmethod
    def demo(cls, *, seed: int = 42) -> "Dataspace":
        """A small synthetic dataspace (fast; for examples and tests)."""
        return cls.generate(profile=TINY_PROFILE, seed=seed)

    @classmethod
    def generate(cls, *, scale: float | None = None,
                 profile: DatasetProfile | None = None,
                 seed: int = 42,
                 imap_latency: LatencyModel | None = None,
                 **kwargs) -> "Dataspace":
        """A synthetic dataspace from a profile (or a paper-scale factor).

        Extra keyword arguments (``policy``, ``optimizer``,
        ``expansion``) pass through to the constructor.
        """
        if profile is None:
            profile = scaled_profile(scale if scale is not None else 0.02)
        generated = PersonalDataspaceGenerator(
            profile, seed=seed, imap_latency=imap_latency
        ).generate()
        dataspace = cls(vfs=generated.vfs, imap=generated.imap,
                        feeds=generated.feeds, **kwargs)
        dataspace.generated = generated
        return dataspace

    @classmethod
    def open(cls, path, *, durable: bool = True, **kwargs) -> "Dataspace":
        """Reopen a dataspace from its durability directory.

        Loads the latest checkpoint and replays the WAL tail into a
        fresh RVM — no data sources needed, no re-sync: the recovered
        structures answer queries immediately. The indexing policy the
        directory was written under is restored automatically.

        With ``durable=True`` (the default) the directory stays
        attached: further mutations append at the recovered WAL tail
        and :meth:`checkpoint` keeps working. ``durable=False`` gives a
        read-only-ish in-memory copy. The recovery statistics are left
        on ``last_recovery``.
        """
        from .durability import (
            DurabilityConfig,
            DurabilityManager,
            load_config,
            policy_from_config,
            recover_state,
        )
        policy = kwargs.pop("policy", None)
        if policy is None:
            policy = policy_from_config(load_config(path))
        dataspace = cls(policy=policy, **kwargs)
        if durable:
            manager = DurabilityManager(
                dataspace.rvm, DurabilityConfig(directory=path))
            dataspace.durability = manager
            # detach while replaying: recovery must not re-log itself
            dataspace.rvm.attach_durability(None)
            try:
                dataspace.last_recovery = manager.recover_into(dataspace.rvm)
            finally:
                dataspace.rvm.attach_durability(manager)
        else:
            dataspace.last_recovery = recover_state(path, dataspace.rvm)
        dataspace._synced = True
        return dataspace

    # -- lifecycle ------------------------------------------------------------------

    def sync(self) -> SyncReport:
        """Scan and index all data sources (idempotent re-sync)."""
        report = self.rvm.sync_all()
        self.last_sync_report = report
        self._synced = True
        if self.durability is not None:
            # a finished scan is durable regardless of the fsync policy
            self.durability.sync()
        return report

    def watch(self) -> dict[str, bool]:
        """Subscribe to change notifications where sources support them."""
        return self.rvm.subscribe_all()

    def refresh(self) -> int:
        """Process queued notifications and poll the rest."""
        processed = self.rvm.process_notifications()
        processed += self.rvm.poll_and_process()
        return processed

    # -- persistence --------------------------------------------------------------------

    def save(self, path) -> dict:
        """Snapshot the indexed state to a directory (crash-safe).

        Writes the catalog and all index/replica structures with
        :func:`repro.rvm.persistence.save_state`; the snapshot appears
        atomically (staged beside the target, then renamed over it).
        Returns the snapshot manifest.
        """
        from .rvm.persistence import save_state
        if not self._synced:
            self.sync()
        return save_state(self.rvm, path)

    def load(self, path, *, merge: bool = False) -> dict:
        """Restore a :meth:`save` snapshot into this dataspace.

        Refuses to load into a non-empty RVM unless ``merge=True``
        (raises :class:`~repro.core.errors.StoreError`). Queries work
        immediately on the restored structures; no re-sync happens.
        """
        from .rvm.persistence import load_state
        manifest = load_state(self.rvm, path, merge=merge)
        self._synced = True
        return manifest

    def checkpoint(self):
        """Checkpoint the durable dataspace: snapshot + truncate the WAL.

        Requires the dataspace to have been built with ``durability=``
        (or reopened via :meth:`open`).
        """
        from .core.errors import DurabilityError
        if self.durability is None:
            raise DurabilityError(
                "this dataspace has no durability manager; build it with "
                "Dataspace(durability=...) or Dataspace.open(path)"
            )
        if not self._synced:
            self.sync()
        return self.durability.checkpoint()

    def close(self) -> None:
        """Release durable resources (flushes and closes the WAL)."""
        if self.durability is not None:
            self.durability.close()

    def __enter__(self) -> "Dataspace":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- queries ------------------------------------------------------------------------

    def query(self, iql: str, *, limit: int | None = None) -> QueryResult:
        """Execute one iQL query (auto-syncs on first use).

        ``limit`` caps the result *with early termination*: the limit is
        planned into the query (pushed through unions) and the engine
        stops pulling from its scans once satisfied, so a small limit
        costs a small amount of work regardless of corpus size.
        """
        if not self._synced:
            self.sync()
        return self.processor.execute(iql, limit=limit)

    def query_iter(self, iql: str, *, limit: int | None = None):
        """Execute one iQL query as a lazy batch stream.

        Returns a :class:`~repro.query.executor.StreamingResult`:
        iterate it for URIs (or call ``.batches()`` for the raw
        :class:`~repro.query.engine.Batch` stream) — rows arrive as the
        engine pulls them, and abandoning the iteration (``close()``, or
        leaving the ``with`` block) stops the execution early. Joins
        have no streaming plan shape; use :meth:`query` for those.
        """
        if not self._synced:
            self.sync()
        return self.processor.execute_iter(iql, limit=limit)

    def explain(self, iql: str) -> str:
        return self.processor.explain(iql)

    def explain_analyze(self, iql: str):
        """Execute ``iql`` under a trace and return the
        :class:`~repro.trace.ExplainAnalyzeReport`: the annotated plan
        tree (estimate vs. actual rows, per-operator wall time), the
        optimizer's rewrite log and the substrate counters."""
        if not self._synced:
            self.sync()
        return self.processor.explain_analyze(iql)

    def search(self, text: str, *, limit: int = 10, iql: str | None = None):
        """Ranked free-text search over name and content components.

        With ``iql`` given, the query filters (structure) and the text
        ranks (relevance) — the paper's planned search/ranking blend.
        """
        from .query.ranking import ranked_search
        if not self._synced:
            self.sync()
        within = None
        if iql is not None:
            within = set(self.processor.execute(iql).uris())
        return ranked_search(self.rvm, text, limit=limit, within=within)

    # -- serving ----------------------------------------------------------------------

    def serve(self, *, workers: int = 4, max_queue_depth: int = 32,
              **kwargs):
        """A concurrent query service over this dataspace.

        Returns a started :class:`repro.service.DataspaceService`
        (worker pool, admission control, plan/result caches, metrics);
        extra keyword arguments pass through to its constructor. Use it
        as a context manager for a drained shutdown.
        """
        from .service import DataspaceService
        return DataspaceService(self, workers=workers,
                                max_queue_depth=max_queue_depth, **kwargs)

    # -- resilience -------------------------------------------------------------------

    def inject_faults(self, authority: str, plan) -> None:
        """Wrap a registered source with a fault plan (chaos testing).

        The :class:`~repro.resilience.FaultyPluginWrapper` sits *inside*
        the source guard (when resilience is on), so injected faults
        exercise the real retry/breaker path.
        """
        from .resilience import FaultyPluginWrapper
        from .resilience.engine import GuardedPlugin
        plugin = self.rvm.proxy.plugin_for(authority)
        if isinstance(plugin, GuardedPlugin):
            plugin.inner = FaultyPluginWrapper(plugin.inner, plan)
        else:
            self.rvm.proxy.swap(
                authority, FaultyPluginWrapper(plugin, plan)
            )

    def health(self) -> dict[str, dict[str, object]]:
        """Per-source availability: breaker state, retries, failures.

        Empty when the dataspace was built without ``resilience``.
        """
        return self.rvm.health_snapshot()

    # -- introspection ----------------------------------------------------------------------

    @property
    def view_count(self) -> int:
        return self.rvm.registered_count

    def index_sizes(self) -> dict[str, int]:
        return self.rvm.index_size_report()

    def telemetry(self) -> dict[str, object]:
        """Flat snapshot of the process-global telemetry registry
        (:mod:`repro.obs`): every ``query.*``/``sync.*``/``index.*``/
        ``resilience.*``/``service.*`` series this process recorded."""
        from . import obs
        return obs.global_metrics().snapshot()

    def slow_queries(self):
        """Captured :class:`~repro.obs.SlowQuery` entries (newest last)
        from the process-global slow-query log."""
        from . import obs
        return obs.global_slowlog().entries()

    def events(self, *, subsystem: str | None = None,
               min_severity: int | None = None,
               limit: int | None = None):
        """Recent structured :class:`~repro.obs.Event` records."""
        from . import obs
        return obs.global_events().snapshot(
            subsystem=subsystem, min_severity=min_severity, limit=limit,
        )
