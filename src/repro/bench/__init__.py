"""The evaluation harness: regenerates every table and figure of §7."""

from .harness import (
    PAPER_FIGURE5,
    PAPER_FIGURE6,
    PAPER_QUERIES,
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4,
    EvaluationHarness,
)
from .reporting import format_comparison, format_table

__all__ = [
    "EvaluationHarness", "PAPER_QUERIES",
    "PAPER_TABLE2", "PAPER_TABLE3", "PAPER_TABLE4",
    "PAPER_FIGURE5", "PAPER_FIGURE6",
    "format_comparison", "format_table",
]
