"""The evaluation harness.

One :class:`EvaluationHarness` owns a generated dataspace and reproduces
each experiment of the paper's Section 7:

* :meth:`table2` — dataset characteristics (resource view counts);
* :meth:`figure5` — indexing time breakdown per data source;
* :meth:`table3` — index sizes;
* :meth:`table4` — Q1–Q8 result counts;
* :meth:`figure6` — Q1–Q8 warm-cache response times.

The paper's reported numbers ship as module constants so every bench can
print a paper-vs-measured comparison. Absolute values differ (synthetic
dataset, different hardware, CPython instead of a 2004 JVM); the *shape*
assertions live in ``benchmarks/``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..facade import Dataspace
from ..imapsim import LatencyModel
from ..rvm.manager import SyncReport

#: The eight evaluation queries, verbatim from Table 4 of the paper.
PAPER_QUERIES: dict[str, str] = {
    "Q1": '"database"',
    "Q2": '"database tuning"',
    "Q3": '[size > 420000 and lastmodified < @12.06.2005]',
    "Q4": '//papers//*Vision/*["Franklin"]',
    "Q5": '//VLDB200?//?onclusion*/*["systems"]',
    "Q6": 'union( //VLDB2005//*["documents"], //VLDB2006//*["documents"])',
    "Q7": ('join( //VLDB2006//*[class="texref"] as A, '
           '//VLDB2006//*[class="environment"]//figure* as B, '
           'A.name=B.tuple.label)'),
    "Q8": ('join ( //*[class = "emailmessage"]//*.tex as A, '
           '//papers//*.tex as B, A.name = B.name )'),
}

#: Table 2 of the paper: resource view counts of the real dataset.
PAPER_TABLE2 = {
    "fs": {"base": 14_297, "xml": 117_298, "latex": 11_528, "total": 143_123},
    "imap": {"base": 6_335, "xml": 672, "latex": 350, "total": 7_357},
    "total": {"base": 20_632, "xml": 117_970, "latex": 11_878,
              "total": 150_480},
}

#: Table 3 of the paper: index sizes in MB.
PAPER_TABLE3 = {
    "net_input_mb": 255.4,
    "name_mb": 12.9,
    "tuple_mb": 13.3,
    "content_mb": 118.0,
    "group_mb": 3.5,
    "catalog_mb": 24.8,
    "total_mb": 172.5,
}

#: Figure 5 of the paper: indexing time breakdown in minutes.
PAPER_FIGURE5 = {
    "fs": {"total_min": 22.0, "dominant": "indexing"},
    "imap": {"total_min": 68.0, "dominant": "access"},
}

#: Table 4 of the paper: result counts.
PAPER_TABLE4 = {"Q1": 941, "Q2": 39, "Q3": 88, "Q4": 2, "Q5": 2,
                "Q6": 31, "Q7": 21, "Q8": 16}

#: Figure 6 of the paper: response times in seconds (approximate read
#: off the plot: Q1-Q7 below 0.2 s, Q8 about 0.5 s).
PAPER_FIGURE6 = {"Q1": 0.13, "Q2": 0.02, "Q3": 0.09, "Q4": 0.05,
                 "Q5": 0.05, "Q6": 0.11, "Q7": 0.17, "Q8": 0.50}


@dataclass
class QueryMeasurement:
    query_id: str
    iql: str
    results: int
    warm_seconds: float
    cold_seconds: float
    expanded_views: int


@dataclass
class EvaluationHarness:
    """Owns one dataspace and runs the five experiments."""

    scale: float = 0.02
    seed: int = 42
    latency: LatencyModel | None = None
    dataspace: Dataspace = field(init=False)
    sync_report: SyncReport | None = field(init=False, default=None)

    def __post_init__(self) -> None:
        self.dataspace = Dataspace.generate(
            scale=self.scale, seed=self.seed, imap_latency=self.latency,
        )

    # -- shared state -------------------------------------------------------------

    def ensure_synced(self) -> SyncReport:
        if self.sync_report is None:
            self.sync_report = self.dataspace.sync()
        return self.sync_report

    # -- Table 2 ---------------------------------------------------------------------

    def table2(self) -> dict[str, dict[str, int]]:
        """Dataset characteristics: views per source, base vs derived."""
        report = self.ensure_synced()
        out: dict[str, dict[str, int]] = {}
        total = {"base": 0, "xml": 0, "latex": 0, "other": 0, "total": 0}
        for authority, source in report.sources.items():
            row = {
                "base": source.views_base,
                "xml": source.views_derived_xml,
                "latex": source.views_derived_latex,
                "other": source.views_derived_other,
                "total": source.views_total,
            }
            out[authority] = row
            for key in total:
                total[key] += row[key]
        out["total"] = total
        return out

    # -- Figure 5 ---------------------------------------------------------------------

    def figure5(self) -> dict[str, dict[str, float]]:
        """Indexing time breakdown per source, in seconds.

        ``access`` combines measured component-forcing time with the
        IMAP latency model's simulated remote time — the quantity the
        paper's "Data Source Access" bars measure.
        """
        report = self.ensure_synced()
        out: dict[str, dict[str, float]] = {}
        for authority, source in report.sources.items():
            out[authority] = {
                "catalog": source.catalog_seconds,
                "indexing": source.indexing_seconds,
                "access": (source.access_seconds
                           + source.access_simulated_seconds),
                "access_simulated": source.access_simulated_seconds,
                "total": source.total_seconds,
            }
        return out

    # -- Table 3 ---------------------------------------------------------------------

    def table3(self) -> dict[str, float]:
        """Index sizes in bytes plus the net input size."""
        self.ensure_synced()
        return {k: float(v)
                for k, v in self.dataspace.index_sizes().items()}

    # -- Table 4 / Figure 6 ----------------------------------------------------------------

    def run_queries(self, *, warm_runs: int = 3) -> dict[str, QueryMeasurement]:
        """Execute Q1–Q8; cold run first, then warm-cache repetitions
        (the paper reports warm-cache times)."""
        self.ensure_synced()
        out: dict[str, QueryMeasurement] = {}
        for query_id, iql in PAPER_QUERIES.items():
            t0 = time.perf_counter()
            result = self.dataspace.query(iql)
            cold = time.perf_counter() - t0
            warm_times = []
            for _ in range(warm_runs):
                t0 = time.perf_counter()
                result = self.dataspace.query(iql)
                warm_times.append(time.perf_counter() - t0)
            out[query_id] = QueryMeasurement(
                query_id=query_id,
                iql=iql,
                results=len(result),
                warm_seconds=min(warm_times),
                cold_seconds=cold,
                expanded_views=result.expanded_views,
            )
        return out

    def table4(self) -> dict[str, int]:
        return {qid: m.results for qid, m in self.run_queries(warm_runs=1).items()}
