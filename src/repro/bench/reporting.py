"""Plain-text table rendering for the evaluation harness."""

from __future__ import annotations

from typing import Any, Sequence


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[Any]],
                 *, title: str | None = None) -> str:
    """Render an ASCII table with right-aligned numeric columns."""
    text_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str], numeric: Sequence[bool]) -> str:
        out = []
        for cell, width, right in zip(cells, widths, numeric):
            out.append(cell.rjust(width) if right else cell.ljust(width))
        return "  ".join(out).rstrip()

    numeric_columns = [
        all(_is_numeric(row[index]) for row in rows) if rows else False
        for index in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers), [False] * len(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append(render_row(row, numeric_columns))
    return "\n".join(lines)


def format_comparison(label: str, paper_value: Any, measured_value: Any,
                      *, unit: str = "") -> str:
    """One 'paper vs measured' line."""
    suffix = f" {unit}" if unit else ""
    return (f"{label}: paper={_cell(paper_value)}{suffix}  "
            f"measured={_cell(measured_value)}{suffix}")


def _cell(value: Any) -> str:
    if isinstance(value, float):
        if value >= 100:
            return f"{value:,.0f}"
        if value >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def _is_numeric(value: Any) -> bool:
    return isinstance(value, (int, float))
