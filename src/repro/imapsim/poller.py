"""The generic polling facility, applied to email.

Footnote 5 of the paper: "several popular email services such as POP
and IMAP servers do not support [the stream] option ... clients have to
poll the server for updates regularly." And Section 4.4.1: "if we are
not able to obtain a real data stream, we may convert a state into a
pseudo data stream using a generic polling facility."

:class:`MailboxPoller` is that facility for mailboxes: every
:meth:`poll` lists the mailbox through the (latency-charged) client API,
diffs UIDs against what it has already seen, and emits only the new
messages — a pseudo-stream over polled state, without consuming the
mailbox the way the true Option-2 stream does.
"""

from __future__ import annotations

from typing import Callable, Iterator

from .messages import EmailMessage
from .mime import parse_rfc822
from .server import ImapServer


class MailboxPoller:
    """Converts a mailbox's polled state into a pseudo message stream."""

    def __init__(self, server: ImapServer, mailbox: str):
        self.server = server
        self.mailbox = mailbox
        self._last_uid = 0
        self._listeners: list[Callable[[EmailMessage], None]] = []

    def subscribe(self, callback: Callable[[EmailMessage], None]) -> None:
        """New messages found by future polls are pushed to ``callback``."""
        self._listeners.append(callback)

    def poll(self) -> list[EmailMessage]:
        """One polling round: fetch and return (and push) new messages.

        Non-consuming: unlike the Option-2 stream, polled messages stay
        on the server and remain visible to other clients.
        """
        fresh: list[EmailMessage] = []
        for uid in self.server.uids(self.mailbox):
            if uid <= self._last_uid:
                continue
            wire = self.server.fetch_message(self.mailbox, uid)
            message = parse_rfc822(wire)
            message.uid = uid
            fresh.append(message)
            self._last_uid = uid
        for message in fresh:
            for listener in self._listeners:
                listener(message)
        return fresh

    def stream(self, *, max_polls: int) -> Iterator[EmailMessage]:
        """A bounded pseudo-stream: poll ``max_polls`` times, yielding
        each new message as it is discovered."""
        for _ in range(max_polls):
            yield from self.poll()

    @property
    def last_uid(self) -> int:
        return self._last_uid
