"""A simulated IMAP email server.

The paper's evaluation indexes "emails ... kept on a remote server ...
accessed via the IMAP protocol", and Figure 5 shows email indexing time
dominated by data-source access. Since this reproduction runs offline,
this package provides the substitute: an in-process server with
mailboxes, RFC822/MIME-style messages with attachments, a deterministic
per-operation *latency model* (connection setup, per-fetch overhead,
per-kilobyte transfer) that reproduces the remote-access cost shape, and
new-message notifications for the Synchronization Manager.
"""

from .latency import LatencyModel
from .messages import Attachment, EmailMessage
from .mime import parse_rfc822, serialize_rfc822
from .poller import MailboxPoller
from .server import ImapServer, Mailbox

__all__ = [
    "Attachment", "EmailMessage", "ImapServer", "LatencyModel", "Mailbox",
    "MailboxPoller", "parse_rfc822", "serialize_rfc822",
]
