"""The remote-access latency model.

The paper's email source lives on a remote IMAP server, and Figure 5
shows email indexing dominated by data-source access (~68 min for 6,335
messages — about 0.6 s per message end to end). We model that cost per
operation:

* ``connect`` — session setup (paid once per connection);
* ``per_operation`` — fixed round-trip cost of each command;
* ``per_kilobyte`` — transfer cost of fetched bytes.

Costs accumulate in simulated seconds. By default no real time is
spent — the benchmark harness *reports* simulated data-source-access
time next to measured CPU time, preserving the figure's breakdown
without hour-long benchmark runs. Setting ``realtime_factor > 0`` makes
the server actually sleep ``cost * realtime_factor`` seconds for
end-to-end realism.

Defaults approximate a 2006 departmental IMAP server over a home DSL
line: 300 ms connect, 45 ms per command round trip, 25 ms per KB.
"""

from __future__ import annotations

import time
from dataclasses import dataclass


@dataclass
class LatencyModel:
    """Deterministic per-operation latency accounting."""

    connect: float = 0.300
    per_operation: float = 0.045
    per_kilobyte: float = 0.025
    realtime_factor: float = 0.0

    def __post_init__(self) -> None:
        self.simulated_seconds = 0.0
        self.operations = 0

    def charge_connect(self) -> float:
        return self._charge(self.connect)

    def charge(self, *, bytes_transferred: int = 0) -> float:
        """Charge one command round trip plus transfer cost."""
        cost = self.per_operation + self.per_kilobyte * (bytes_transferred / 1024)
        return self._charge(cost)

    def _charge(self, cost: float) -> float:
        self.simulated_seconds += cost
        self.operations += 1
        if self.realtime_factor > 0:
            time.sleep(cost * self.realtime_factor)
        return cost

    def reset(self) -> None:
        self.simulated_seconds = 0.0
        self.operations = 0


#: A zero-cost model for tests that do not care about latency.
def no_latency() -> LatencyModel:
    return LatencyModel(connect=0.0, per_operation=0.0, per_kilobyte=0.0)
