"""The simulated IMAP server.

Exposes the slice of IMAP the prototype's email plugin needs: mailbox
listing, UID-based header and full-message fetches, append/delete with
notifications, and an Option-2 message *stream* (Section 4.4.1 of the
paper) that bypasses the mailbox state window.

Every client-visible operation is charged to the server's
:class:`~repro.imapsim.latency.LatencyModel`; fetches transfer the
serialized RFC822 text, so transfer cost scales with message size like a
real IMAP FETCH.
"""

from __future__ import annotations

from typing import Callable, Iterator

from ..core.errors import ImapError
from ..vfs.clock import LogicalClock
from .latency import LatencyModel
from .messages import EmailMessage
from .mime import serialize_rfc822


class Mailbox:
    """One IMAP mailbox: a UID-ordered window of messages."""

    def __init__(self, name: str):
        self.name = name
        self._messages: dict[int, EmailMessage] = {}
        self._next_uid = 1

    def append(self, message: EmailMessage) -> int:
        uid = self._next_uid
        self._next_uid += 1
        message.uid = uid
        self._messages[uid] = message
        return uid

    def delete(self, uid: int) -> bool:
        return self._messages.pop(uid, None) is not None

    def get(self, uid: int) -> EmailMessage:
        try:
            return self._messages[uid]
        except KeyError:
            raise ImapError(f"no message {uid} in {self.name!r}") from None

    def uids(self) -> list[int]:
        return sorted(self._messages)

    def __len__(self) -> int:
        return len(self._messages)

    def __iter__(self) -> Iterator[EmailMessage]:
        for uid in self.uids():
            yield self._messages[uid]


NewMessageCallback = Callable[[str, EmailMessage], None]


class ImapServer:
    """The server: named mailboxes plus a latency-charged client API."""

    def __init__(self, *, latency: LatencyModel | None = None,
                 clock: LogicalClock | None = None):
        self.latency = latency if latency is not None else LatencyModel()
        self.clock = clock if clock is not None else LogicalClock()
        self._mailboxes: dict[str, Mailbox] = {"INBOX": Mailbox("INBOX")}
        self._subscribers: list[NewMessageCallback] = []
        self._connected = False

    # -- server-side administration (no latency: not client operations) ------

    def create_mailbox(self, name: str) -> Mailbox:
        if name in self._mailboxes:
            raise ImapError(f"mailbox exists: {name!r}")
        mailbox = Mailbox(name)
        self._mailboxes[name] = mailbox
        return mailbox

    def deliver(self, mailbox_name: str, message: EmailMessage) -> int:
        """Server-side delivery of a new message (triggers notifications)."""
        mailbox = self._mailbox(mailbox_name)
        if message.date is None:  # pragma: no cover - defensive
            raise ImapError("message needs a date")
        uid = mailbox.append(message)
        for callback in list(self._subscribers):
            callback(mailbox_name, message)
        return uid

    def subscribe(self, callback: NewMessageCallback) -> Callable[[], None]:
        """Register for new-message notifications (IMAP IDLE analogue)."""
        self._subscribers.append(callback)

        def unsubscribe() -> None:
            try:
                self._subscribers.remove(callback)
            except ValueError:
                pass

        return unsubscribe

    def _mailbox(self, name: str) -> Mailbox:
        try:
            return self._mailboxes[name]
        except KeyError:
            raise ImapError(f"no mailbox {name!r}") from None

    # -- client API (latency-charged) --------------------------------------------

    def connect(self) -> None:
        self.latency.charge_connect()
        self._connected = True

    def _require_connection(self) -> None:
        if not self._connected:
            raise ImapError("not connected; call connect() first")

    def list_mailboxes(self) -> list[str]:
        self._require_connection()
        self.latency.charge()
        return sorted(self._mailboxes)

    def select(self, mailbox_name: str) -> int:
        """Select a mailbox; returns its message count."""
        self._require_connection()
        self.latency.charge()
        return len(self._mailbox(mailbox_name))

    def uids(self, mailbox_name: str) -> list[int]:
        self._require_connection()
        self.latency.charge()
        return self._mailbox(mailbox_name).uids()

    def fetch_headers(self, mailbox_name: str, uid: int) -> dict[str, str]:
        self._require_connection()
        message = self._mailbox(mailbox_name).get(uid)
        headers = message.headers()
        size = sum(len(k) + len(v) + 4 for k, v in headers.items())
        self.latency.charge(bytes_transferred=size)
        return headers

    def fetch_message(self, mailbox_name: str, uid: int) -> str:
        """Fetch the full RFC822 text of one message."""
        self._require_connection()
        message = self._mailbox(mailbox_name).get(uid)
        wire = serialize_rfc822(message)
        self.latency.charge(bytes_transferred=len(wire.encode("utf-8", "replace")))
        return wire

    def delete_message(self, mailbox_name: str, uid: int) -> bool:
        self._require_connection()
        self.latency.charge()
        return self._mailbox(mailbox_name).delete(uid)

    def message_stream(self, mailbox_name: str) -> Iterator[EmailMessage]:
        """Option 2 of Section 4.4.1: the message *stream*.

        Yields and **removes** messages from the mailbox: streamed
        messages cannot be retrieved a second time; new deliveries keep
        the stream going. The iterator ends when the window is empty
        (a real stream would block; the simulation cannot).
        """
        self._require_connection()
        mailbox = self._mailbox(mailbox_name)
        while True:
            uids = mailbox.uids()
            if not uids:
                return
            for uid in uids:
                message = mailbox.get(uid)
                wire_size = message.size
                self.latency.charge(bytes_transferred=wire_size)
                mailbox.delete(uid)
                yield message
