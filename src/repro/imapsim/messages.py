"""Email messages and attachments."""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime


@dataclass(frozen=True, slots=True)
class Attachment:
    """One MIME part attached to a message."""

    filename: str
    content: str
    mime_type: str = "application/octet-stream"

    @property
    def size(self) -> int:
        return len(self.content.encode("utf-8", "replace"))


@dataclass(slots=True)
class EmailMessage:
    """One message: headers, body text, attachments.

    ``uid`` is assigned by the mailbox on append (IMAP semantics: unique
    within a mailbox, never reused).
    """

    subject: str
    sender: str
    to: tuple[str, ...]
    date: datetime
    body: str = ""
    cc: tuple[str, ...] = ()
    attachments: tuple[Attachment, ...] = ()
    uid: int = 0
    message_id: str = ""

    @property
    def size(self) -> int:
        base = len(self.body.encode("utf-8", "replace"))
        return base + sum(a.size for a in self.attachments)

    def headers(self) -> dict[str, str]:
        out = {
            "Subject": self.subject,
            "From": self.sender,
            "To": ", ".join(self.to),
            "Date": self.date.isoformat(),
        }
        if self.cc:
            out["Cc"] = ", ".join(self.cc)
        if self.message_id:
            out["Message-ID"] = self.message_id
        return out
