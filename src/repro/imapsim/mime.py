"""A simplified RFC822/MIME wire format.

Messages travel between the simulated server and clients as text in a
simplified-but-faithful RFC822 shape: header block, blank line, body;
multipart messages use a boundary marker with one part per attachment.
:func:`serialize_rfc822` and :func:`parse_rfc822` round-trip, which the
property tests exercise.
"""

from __future__ import annotations

from datetime import datetime

from ..core.errors import ParseError
from .messages import Attachment, EmailMessage

_BOUNDARY = "=_idm_boundary_7d1"


def serialize_rfc822(message: EmailMessage) -> str:
    """Render a message (and its attachments) as RFC822-style text."""
    lines = [f"{name}: {value}" for name, value in message.headers().items()]
    if not message.attachments:
        lines.append("Content-Type: text/plain; charset=utf-8")
        lines.append("")
        lines.append(message.body)
        return "\n".join(lines)
    lines.append(f'Content-Type: multipart/mixed; boundary="{_BOUNDARY}"')
    lines.append("")
    lines.append(f"--{_BOUNDARY}")
    lines.append("Content-Type: text/plain; charset=utf-8")
    lines.append("")
    lines.append(message.body)
    for attachment in message.attachments:
        lines.append(f"--{_BOUNDARY}")
        lines.append(f"Content-Type: {attachment.mime_type}")
        lines.append(
            f'Content-Disposition: attachment; filename="{attachment.filename}"'
        )
        lines.append("")
        lines.append(attachment.content)
    lines.append(f"--{_BOUNDARY}--")
    return "\n".join(lines)


def parse_rfc822(text: str) -> EmailMessage:
    """Parse RFC822-style text back into an :class:`EmailMessage`."""
    headers, _, rest = text.partition("\n\n")
    header_map = _parse_headers(headers)
    subject = header_map.get("subject", "")
    sender = header_map.get("from", "")
    to = _parse_addresses(header_map.get("to", ""))
    cc = _parse_addresses(header_map.get("cc", ""))
    date_text = header_map.get("date")
    if not date_text:
        raise ParseError("message has no Date header")
    try:
        date = datetime.fromisoformat(date_text)
    except ValueError:
        raise ParseError(f"bad Date header: {date_text!r}") from None

    content_type = header_map.get("content-type", "text/plain")
    body = rest
    attachments: list[Attachment] = []
    if content_type.startswith("multipart/mixed"):
        boundary = _extract_boundary(content_type)
        body, attachments = _parse_multipart(rest, boundary)
    return EmailMessage(
        subject=subject, sender=sender, to=to, cc=cc, date=date,
        body=body, attachments=tuple(attachments),
        message_id=header_map.get("message-id", ""),
    )


def _parse_headers(block: str) -> dict[str, str]:
    out: dict[str, str] = {}
    for line in block.splitlines():
        if not line.strip():
            continue
        name, separator, value = line.partition(":")
        if not separator:
            raise ParseError(f"malformed header line: {line!r}")
        out[name.strip().lower()] = value.strip()
    return out


def _parse_addresses(value: str) -> tuple[str, ...]:
    return tuple(a.strip() for a in value.split(",") if a.strip())


def _extract_boundary(content_type: str) -> str:
    marker = 'boundary="'
    start = content_type.find(marker)
    if start < 0:
        raise ParseError("multipart message without boundary")
    start += len(marker)
    end = content_type.find('"', start)
    if end < 0:
        raise ParseError("unterminated boundary parameter")
    return content_type[start:end]


def _parse_multipart(body: str, boundary: str) -> tuple[str, list[Attachment]]:
    delimiter = f"--{boundary}"
    closing = f"--{boundary}--"
    segments = body.split(delimiter)
    text_body = ""
    attachments: list[Attachment] = []
    for segment in segments:
        segment = segment.strip("\n")
        if not segment or segment == "--" or segment.startswith("--\n"):
            continue
        if segment == closing or segment.rstrip() == "--":
            continue
        headers, _, content = segment.partition("\n\n")
        header_map = _parse_headers(headers)
        disposition = header_map.get("content-disposition", "")
        if disposition.startswith("attachment"):
            filename = "attachment"
            marker = 'filename="'
            start = disposition.find(marker)
            if start >= 0:
                start += len(marker)
                end = disposition.find('"', start)
                if end >= 0:
                    filename = disposition[start:end]
            attachments.append(Attachment(
                filename=filename,
                content=content,
                mime_type=header_map.get("content-type",
                                         "application/octet-stream"),
            ))
        else:
            text_body = content
    return text_body, attachments
