"""RSS/ATOM feeds.

The paper notes that RSS/ATOM "streams" are really just XML documents
republished on a web server — clients must poll. This package provides
a feed server holding RSS 2.0-shaped XML documents, a generator for feed
entries, and the generic *polling facility* (Section 4.4.1) that turns
the polled state into a pseudo data stream of new entries.
"""

from .feed import FeedEntry, FeedServer, build_feed_xml, parse_feed_xml
from .poller import FeedPoller

__all__ = [
    "FeedEntry", "FeedServer", "FeedPoller", "build_feed_xml", "parse_feed_xml",
]
