"""RSS 2.0-shaped feed documents.

Feeds are genuine XML, produced and consumed through :mod:`repro.xmlp`,
so the RSS plugin exercises the same XML substrate as file content.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime

from ..core.errors import FeedError
from ..xmlp import XmlDocument, XmlElement, XmlText, parse, serialize


@dataclass(frozen=True, slots=True)
class FeedEntry:
    """One feed item."""

    guid: str
    title: str
    description: str
    published: datetime


def build_feed_xml(title: str, entries: list[FeedEntry]) -> str:
    """Render a feed as RSS 2.0 XML text."""
    channel = XmlElement("channel")
    channel.append(_text_element("title", title))
    for entry in entries:
        item = XmlElement("item")
        item.append(_text_element("guid", entry.guid))
        item.append(_text_element("title", entry.title))
        item.append(_text_element("description", entry.description))
        item.append(_text_element("pubDate", entry.published.isoformat()))
        channel.append(item)
    rss = XmlElement("rss", attributes={"version": "2.0"})
    rss.append(channel)
    return serialize(XmlDocument(root=rss, declaration={"version": "1.0"}))


def _text_element(name: str, text: str) -> XmlElement:
    element = XmlElement(name)
    element.append(XmlText(text))
    return element


def parse_feed_xml(xml_text: str) -> tuple[str, list[FeedEntry]]:
    """Parse RSS 2.0 XML back into (channel title, entries)."""
    document = parse(xml_text)
    if document.root.name != "rss":
        raise FeedError(f"not an RSS document (root {document.root.name!r})")
    channel = document.root.find("channel")
    if channel is None:
        raise FeedError("RSS document has no channel")
    title_element = channel.find("title")
    title = title_element.text() if title_element is not None else ""
    entries = []
    for item in channel.find_all("item"):
        published_text = _child_text(item, "pubDate")
        try:
            published = datetime.fromisoformat(published_text)
        except ValueError:
            raise FeedError(f"bad pubDate: {published_text!r}") from None
        entries.append(FeedEntry(
            guid=_child_text(item, "guid"),
            title=_child_text(item, "title"),
            description=_child_text(item, "description"),
            published=published,
        ))
    return title, entries


def _child_text(element: XmlElement, name: str) -> str:
    child = element.find(name)
    return child.text() if child is not None else ""


class FeedServer:
    """An in-process "web server" republishing feed documents.

    There is no notification mechanism — exactly like real RSS — so
    consumers must poll :meth:`get` and diff (see
    :class:`~repro.rss.poller.FeedPoller`).
    """

    def __init__(self) -> None:
        self._feeds: dict[str, tuple[str, list[FeedEntry]]] = {}
        self.fetch_count = 0

    def publish(self, url: str, title: str,
                entries: list[FeedEntry] | None = None) -> None:
        self._feeds[url] = (title, list(entries or []))

    def add_entry(self, url: str, entry: FeedEntry) -> None:
        try:
            title, entries = self._feeds[url]
        except KeyError:
            raise FeedError(f"no feed at {url!r}") from None
        entries.append(entry)

    def urls(self) -> list[str]:
        return sorted(self._feeds)

    def get(self, url: str) -> str:
        """Fetch the current XML document of a feed (a poll)."""
        try:
            title, entries = self._feeds[url]
        except KeyError:
            raise FeedError(f"no feed at {url!r}") from None
        self.fetch_count += 1
        return build_feed_xml(title, entries)
