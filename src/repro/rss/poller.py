"""The generic polling facility (Section 4.4.1 of the paper).

"If we are not able to obtain a real data stream, we may convert a
state into a pseudo data stream using a generic polling facility."
:class:`FeedPoller` does that for RSS: every :meth:`poll` fetches the
feed document, diffs entry GUIDs against what it has already seen and
emits only the *new* entries — turning the republished-document state
into a stream of items.
"""

from __future__ import annotations

from typing import Callable, Iterator

from .feed import FeedEntry, FeedServer, parse_feed_xml


class FeedPoller:
    """Converts polled feed state into a pseudo stream of new entries."""

    def __init__(self, server: FeedServer, url: str):
        self.server = server
        self.url = url
        self._seen: set[str] = set()
        self._listeners: list[Callable[[FeedEntry], None]] = []

    def subscribe(self, callback: Callable[[FeedEntry], None]) -> None:
        """New entries found by future polls are pushed to ``callback``."""
        self._listeners.append(callback)

    def poll(self) -> list[FeedEntry]:
        """Fetch, diff, and return (and push) the new entries."""
        _, entries = parse_feed_xml(self.server.get(self.url))
        fresh = [e for e in entries if e.guid not in self._seen]
        for entry in fresh:
            self._seen.add(entry.guid)
            for listener in self._listeners:
                listener(entry)
        return fresh

    def stream(self, *, max_polls: int) -> Iterator[FeedEntry]:
        """A bounded pseudo-stream: poll ``max_polls`` times, yielding
        each new entry as it is discovered."""
        for _ in range(max_polls):
            yield from self.poll()

    @property
    def seen_count(self) -> int:
        return len(self._seen)
