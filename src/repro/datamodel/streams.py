"""Data streams in iDM (Section 3.4 of the paper).

A data stream is a view whose group sequence ``Q`` is infinite:

* ``datstream`` — items of any class;
* ``tupstream`` — items are ``tuple`` views;
* ``rssatom`` — items are ``xmldoc`` views.

Streams are iterator factories. A *reusable* factory models re-readable
sources; ``reusable=False`` models true streams whose items cannot be
observed twice (the email Option 2 semantics).
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Sequence

from ..core.components import GroupComponent, Schema
from ..core.identity import IdGenerator, ViewId
from ..core.resource_view import ResourceView
from ..rss.poller import FeedPoller
from ..xmlp import XmlDocument, XmlElement, XmlText
from ..xmlp.writer import serialize
from .relational import tuple_to_view
from .xmlmodel import xml_to_views


def stream_view(factory: Callable[[], Iterator[ResourceView]], *,
                class_name: str = "datstream",
                reusable: bool = True,
                view_id: ViewId | None = None) -> ResourceView:
    """A generic data stream view over an item-view iterator factory."""
    return ResourceView(
        group=GroupComponent.of_stream(factory, reusable=reusable),
        class_name=class_name,
        view_id=view_id,
    )


def tuple_stream_view(schema: Schema,
                      rows: Callable[[], Iterator[Sequence[Any]]], *,
                      authority: str = "stream",
                      reusable: bool = True,
                      view_id: ViewId | None = None) -> ResourceView:
    """A ``tupstream`` view: each delivered row becomes a ``tuple`` view."""

    def factory() -> Iterator[ResourceView]:
        ids = IdGenerator(authority)
        for row in rows():
            yield tuple_to_view(schema, tuple(row), view_id=ids.next_id("t"))

    return stream_view(factory, class_name="tupstream",
                       reusable=reusable, view_id=view_id)


def rss_stream_view(poller: FeedPoller, *, max_polls: int = 1,
                    view_id: ViewId | None = None) -> ResourceView:
    """An ``rssatom`` view over a feed poller's pseudo-stream.

    Each new entry discovered by polling becomes one ``xmldoc`` view
    (an RSS item is itself a small XML document). The stream is
    single-shot: like the paper says, streamed items are not retrievable
    a second time — re-polling only yields *new* entries.
    """
    base_id = view_id if view_id is not None else ViewId("rss", poller.url)

    def factory() -> Iterator[ResourceView]:
        ordinal = 0
        for entry in poller.stream(max_polls=max_polls):
            item = XmlElement("item")
            for tag, text in (("guid", entry.guid), ("title", entry.title),
                              ("description", entry.description),
                              ("pubDate", entry.published.isoformat())):
                child = XmlElement(tag)
                child.append(XmlText(text))
                item.append(child)
            xml_text = serialize(XmlDocument(root=item))
            yield xml_to_views(xml_text, base_id.child(f"i{ordinal}"))
            ordinal += 1

    return stream_view(factory, class_name="rssatom",
                       reusable=False, view_id=base_id)
