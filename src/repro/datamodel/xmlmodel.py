"""XML in iDM (Section 3.3 of the paper).

* a character information item → ``xmltext`` view (content only);
* an element information item → ``xmlelem`` view: name ``N_E``,
  attributes as the tuple component ``(W_E, T_E)``, children as the
  ordered group sequence ``Q``;
* a document information item → ``xmldoc`` view with ``Q = <V_root>``;
* an XML file → ``xmlfile`` view (a ``file`` specialization) whose
  ``Q = <V_doc^xmldoc>``.
"""

from __future__ import annotations

from typing import Sequence

from ..core.components import TupleComponent
from ..core.errors import XmlParseError
from ..core.identity import ViewId
from ..core.resource_view import ResourceView
from ..xmlp import XmlDocument, XmlElement, XmlText, parse
from ..xmlp.infoset import XmlNode


def xml_to_views(document: XmlDocument | str, base_id: ViewId,
                 ) -> ResourceView:
    """Instantiate an XML document as an ``xmldoc`` resource view.

    ``base_id`` roots the derived view ids (``base#root``,
    ``base#root/0``, ...), keeping extracted views addressable and
    stable across re-conversions of unchanged content.
    """
    if isinstance(document, str):
        document = parse(document)
    root_view = _element_view(document.root, base_id.child("root"))
    return ResourceView(
        group=_ordered([root_view]),
        class_name="xmldoc",
        view_id=base_id.child("doc"),
    )


def _ordered(views: Sequence[ResourceView]):
    from ..core.components import GroupComponent
    return GroupComponent.of_sequence(views)


def _element_view(element: XmlElement, view_id: ViewId) -> ResourceView:
    children: list[ResourceView] = []
    ordinal = 0
    for node in element.children:
        child = _node_view(node, view_id.child(str(ordinal)))
        if child is not None:
            children.append(child)
            ordinal += 1
    if element.attributes:
        tuple_component = TupleComponent.from_dict(dict(element.attributes))
    else:
        tuple_component = TupleComponent.empty()
    return ResourceView(
        name=element.name,
        tuple_component=tuple_component,
        group=_ordered(children),
        class_name="xmlelem",
        view_id=view_id,
    )


def _node_view(node: XmlNode, view_id: ViewId) -> ResourceView | None:
    if isinstance(node, XmlElement):
        return _element_view(node, view_id)
    if isinstance(node, XmlText):
        if not node.text.strip():
            return None  # ignorable whitespace between elements
        return ResourceView(
            content=node.text,
            class_name="xmltext",
            view_id=view_id,
        )
    return None  # comments and PIs carry no iDM structure


def xmlfile_group_provider(name: str, content: str,
                           view_id: ViewId) -> list[ResourceView] | None:
    """A :data:`~repro.datamodel.filesystem.ContentConverter` for XML.

    Returns ``[V_doc^xmldoc]`` for well-formed ``.xml`` content and
    ``None`` otherwise (the file stays a plain ``file`` view — a
    converter must never make a file unreachable just because its
    content does not parse).
    """
    if not name.lower().endswith(".xml"):
        return None
    try:
        return [xml_to_views(content, view_id)]
    except XmlParseError:
        return None
