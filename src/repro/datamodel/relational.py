"""Relational data in iDM (Table 1 of the paper).

* one tuple → a ``tuple`` view: only the tuple component is non-empty;
* a relation → a ``relation`` view: named, with one tuple view per row
  in the group set ``S``;
* a database → a ``reldb`` view: named, with one relation view per
  relation in ``S``.

The instantiations take plain schemas/rows or a
:class:`~repro.store.Table` of the embedded store.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from ..core.components import Schema, TupleComponent
from ..core.identity import ViewId
from ..core.resource_view import ResourceView
from ..store.table import Table


def tuple_to_view(schema: Schema, values: Sequence[Any], *,
                  view_id: ViewId | None = None) -> ResourceView:
    """One relational tuple as a ``tuple`` view."""
    return ResourceView(
        tuple_component=TupleComponent(schema, values),
        class_name="tuple",
        view_id=view_id,
    )


def relation_to_view(name: str, schema: Schema,
                     rows: Iterable[Sequence[Any]], *,
                     view_id: ViewId | None = None) -> ResourceView:
    """A relation as a ``relation`` view over ``tuple`` views.

    The schema ``W_R`` is shared by all tuples of the relation — iDM
    carries it per tuple component (Definition 1), and the shared
    structure is what the ``relation`` class expresses.
    """
    base_id = view_id if view_id is not None else ViewId("rel", name)
    members = [
        tuple_to_view(schema, row, view_id=base_id.child(f"t{index}"))
        for index, row in enumerate(rows)
    ]
    return ResourceView(
        name=name,
        group=members,
        class_name="relation",
        view_id=base_id,
    )


def database_to_view(name: str, relations: Iterable[ResourceView], *,
                     view_id: ViewId | None = None) -> ResourceView:
    """A relational database as a ``reldb`` view over relation views."""
    return ResourceView(
        name=name,
        group=list(relations),
        class_name="reldb",
        view_id=view_id if view_id is not None else ViewId("rel", f"db/{name}"),
    )


def table_to_view(table: Table, *,
                  view_id: ViewId | None = None) -> ResourceView:
    """Expose a table of the embedded store as a ``relation`` view.

    Lazily enumerates rows at group-component access time, so the view
    reflects the table's current contents (extensional data served
    straight from the store).
    """
    base_id = view_id if view_id is not None else ViewId("rel", table.name)
    schema = Schema(table.schema.names)

    def group_provider() -> list[ResourceView]:
        views = []
        for index, record in enumerate(table.scan()):
            views.append(tuple_to_view(
                schema, tuple(record[c] for c in table.schema.names),
                view_id=base_id.child(f"t{index}"),
            ))
        return views

    return ResourceView(
        name=table.name,
        group=group_provider,
        class_name="relation",
        view_id=base_id,
    )
