"""Files&folders in iDM (Section 3.2 of the paper).

A file ``f`` becomes ``V^file = (N_f, (W_FS, T_f), C_f)``; a folder
``F`` becomes ``V^folder = (N_F, (W_FS, T_F), gamma)`` whose group set
``S`` holds the child views. Folder *links* resolve to the view of the
target folder — the same view object, so a link inside ``/Projects/PIM``
back to ``/Projects`` closes a genuine cycle in the resource view graph
(Figure 1 of the paper).

The mapper is lazy end to end: a folder's children are only enumerated
when its group component is first requested, and a file's content is
only read when its content component is requested. A pluggable
``content_converter`` turns file content into structural subgraphs (the
Content2iDM converters of the RVM wire in here).
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..core.components import ContentComponent, GroupComponent, TupleComponent
from ..core.identity import ViewId
from ..core.resource_view import ResourceView
from ..vfs import VirtualFileSystem

#: Given (file name, content text, file view id), return the views of the
#: content subgraph (ordered, go into the file's group sequence Q), or
#: None when the converter does not apply to this file.
ContentConverter = Callable[[str, str, ViewId], Sequence[ResourceView] | None]


class FilesystemMapper:
    """Maps a :class:`~repro.vfs.VirtualFileSystem` to resource views.

    Views are cached per path, so repeated traversals and resolved links
    share nodes — which is what turns the mapped tree into a graph.
    ``authority`` prefixes the view ids (default ``"fs"``).
    """

    def __init__(self, vfs: VirtualFileSystem, *,
                 authority: str = "fs",
                 content_converter: ContentConverter | None = None):
        self.vfs = vfs
        self.authority = authority
        self.content_converter = content_converter
        self._cache: dict[str, ResourceView] = {}

    def root_view(self) -> ResourceView:
        """The view of the filesystem root folder."""
        return self.view_for("/")

    def view_for(self, path: str) -> ResourceView:
        """The (cached) view of the entry at ``path``.

        Links are resolved transparently: the view of a link *is* the
        view of its target folder/file.
        """
        if self.vfs.is_link(path):
            return self.view_for(self.vfs.resolve_link(path))
        cached = self._cache.get(path)
        if cached is not None:
            return cached
        if self.vfs.is_dir(path):
            view = self._folder_view(path)
        else:
            view = self._file_view(path)
        self._cache[path] = view
        return view

    def invalidate(self, path: str) -> None:
        """Forget the cached view of ``path`` (after a change event)."""
        self._cache.pop(path, None)

    def cached_paths(self) -> list[str]:
        return sorted(self._cache)

    # -- builders --------------------------------------------------------------

    def _metadata(self, path: str) -> TupleComponent:
        stat = self.vfs.stat(path)
        return TupleComponent.from_dict({
            "size": stat["size"],
            "created": stat["created"],
            "modified": stat["modified"],
            "path": stat["path"],
        })

    def _name_of(self, path: str) -> str:
        parts = [p for p in path.split("/") if p]
        return parts[-1] if parts else "/"

    def _folder_view(self, path: str) -> ResourceView:
        view_id = ViewId(self.authority, path)

        def group_provider() -> GroupComponent:
            children = []
            for name in self.vfs.listdir(path):
                child_path = path.rstrip("/") + "/" + name
                children.append(self.view_for(child_path))
            return GroupComponent.of_set(children)

        return ResourceView(
            name=self._name_of(path),
            tuple_component=lambda: self._metadata(path),
            group=group_provider,
            class_name="folder",
            view_id=view_id,
        )

    def _file_view(self, path: str) -> ResourceView:
        view_id = ViewId(self.authority, path)
        name = self._name_of(path)

        def content_provider() -> ContentComponent:
            return ContentComponent.of(self.vfs.read(path))

        def group_provider() -> GroupComponent:
            if self.content_converter is None:
                return GroupComponent.empty()
            subgraph = self.content_converter(name, self.vfs.read(path), view_id)
            if not subgraph:
                return GroupComponent.empty()
            return GroupComponent.of_sequence(subgraph)

        return ResourceView(
            name=name,
            tuple_component=lambda: self._metadata(path),
            content=content_provider,
            group=group_provider,
            class_name=self._class_for(name),
            view_id=view_id,
        )

    def _class_for(self, file_name: str) -> str:
        lowered = file_name.lower()
        if lowered.endswith(".xml"):
            return "xmlfile"
        if lowered.endswith(".tex"):
            return "latexfile"
        return "file"
