"""The ActiveXML use-case (Section 4.3.1 of the paper).

An ActiveXML document embeds web-service calls in XML. The paper shows
that iDM captures this with a subclass ``axml`` of ``xmlelem`` whose
group sequence is ``<V_sc [, V_scresult]>`` — the service-call view,
plus (only after the service has been called) the result view.

:class:`ActiveXmlElement` implements that: before :meth:`call_service`
the group contains the ``sc`` view only; calling the service through a
:class:`~repro.core.intensional.ServiceRegistry` parses the returned XML
into an ``scresult`` subtree and extends the group. The paper's pub/sub
flavour is covered by an optional callback invoked on materialization
(wired to the push bus by callers that want it).
"""

from __future__ import annotations

from typing import Any, Callable

from ..core.components import GroupComponent, TupleComponent
from ..core.identity import ViewId
from ..core.intensional import ServiceRegistry
from ..core.resource_view import ResourceView
from .xmlmodel import xml_to_views


class ActiveXmlElement:
    """One ActiveXML element with an embedded service call."""

    def __init__(self, name: str, service_url: str,
                 registry: ServiceRegistry, *,
                 args: tuple[Any, ...] = (),
                 view_id: ViewId | None = None,
                 on_result: Callable[[ResourceView], None] | None = None):
        self.name = name
        self.service_url = service_url
        self.registry = registry
        self.args = args
        self.on_result = on_result
        self.view_id = view_id if view_id is not None else ViewId("axml", name)
        self._result_view: ResourceView | None = None

        self._sc_view = ResourceView(
            name="sc",
            content=service_url,
            class_name="sc",
            view_id=self.view_id.child("sc"),
        )
        self.view = ResourceView(
            name=name,
            group=self._group_provider,
            class_name="axml",
            view_id=self.view_id,
        )

    def _group_provider(self) -> GroupComponent:
        members = [self._sc_view]
        if self._result_view is not None:
            members.append(self._result_view)
        return GroupComponent.of_sequence(members)

    @property
    def is_materialized(self) -> bool:
        return self._result_view is not None

    def call_service(self) -> ResourceView:
        """Invoke the embedded service and insert its result.

        The service must return XML text; the result becomes an
        ``scresult`` view whose child is the parsed ``xmldoc`` view.
        Idempotent: a second call returns the existing result view
        without re-invoking the service.
        """
        if self._result_view is not None:
            return self._result_view
        xml_text = self.registry.call(self.service_url, *self.args)
        result_doc = xml_to_views(xml_text, self.view_id.child("result"))
        self._result_view = ResourceView(
            name="scresult",
            tuple_component=TupleComponent.from_dict(
                {"service": self.service_url}
            ),
            group=GroupComponent.of_sequence([result_doc]),
            class_name="scresult",
            view_id=self.view_id.child("scresult"),
        )
        # The view's group is lazy but memoized; rebuild it so the next
        # access sees the extended sequence.
        self.view = ResourceView(
            name=self.name,
            group=self._group_provider,
            class_name="axml",
            view_id=self.view_id,
        )
        if self.on_result is not None:
            self.on_result(self._result_view)
        return self._result_view


def axml_document(name: str, service_url: str, registry: ServiceRegistry,
                  **kwargs: Any) -> ActiveXmlElement:
    """Convenience constructor mirroring the paper's ``<dep>`` example."""
    return ActiveXmlElement(name, service_url, registry, **kwargs)
