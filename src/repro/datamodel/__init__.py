"""Instantiations of specialized data models in iDM (Section 3).

Each module maps one kind of underlying data to resource view graphs
conforming to the classes of Table 1:

* :mod:`filesystem` — files&folders (plus folder links → graph cycles);
* :mod:`relational` — tuples, relations, relational databases;
* :mod:`xmlmodel` — XML documents, elements, text nodes, XML files;
* :mod:`latexmodel` — LaTeX structural subgraphs with ``\\ref`` edges;
* :mod:`streams` — generic data streams, tuple streams, RSS/ATOM;
* :mod:`email_model` — the email use-case (state and stream options);
* :mod:`activexml` — the ActiveXML use-case of Section 4.3.1.
"""

from .filesystem import FilesystemMapper
from .relational import database_to_view, relation_to_view, tuple_to_view
from .xmlmodel import xml_to_views, xmlfile_group_provider
from .latexmodel import latex_to_views, latexfile_group_provider
from .streams import rss_stream_view, stream_view, tuple_stream_view
from .email_model import (
    attachment_to_view,
    inbox_state_view,
    inbox_stream_view,
    message_to_view,
)
from .activexml import ActiveXmlElement, axml_document

__all__ = [
    "FilesystemMapper",
    "database_to_view", "relation_to_view", "tuple_to_view",
    "xml_to_views", "xmlfile_group_provider",
    "latex_to_views", "latexfile_group_provider",
    "rss_stream_view", "stream_view", "tuple_stream_view",
    "attachment_to_view", "inbox_state_view", "inbox_stream_view",
    "message_to_view",
    "ActiveXmlElement", "axml_document",
]
