"""LaTeX content in iDM — the LaTeX2iDM instantiation of Figure 1.

A LaTeX file's content graph becomes:

* top-level metadata views (``documentclass``, ``title``, ``abstract``)
  plus one ``document`` view, in the file's group sequence;
* one ``latex_section`` view per (sub)section — name is the section
  title, label in the tuple component, own text in the content
  component, body items in the group sequence;
* one ``environment`` view per environment (class ``figure`` for figure
  environments), named ``figure1``, ``table2``, ... with the label in
  the tuple component and the caption in the content component;
* one ``latex_text`` view per paragraph;
* one ``texref`` view per ``\\ref`` — named after the referenced label,
  and *directly related to the referenced view*: these are the cross
  edges that make the content a graph rather than a tree (the paper's
  ``V_Preliminaries`` reachable from both ``V_document`` and
  ``V_ref``).
"""

from __future__ import annotations

import itertools

from ..core.components import GroupComponent, TupleComponent
from ..core.errors import LatexParseError
from ..core.identity import ViewId
from ..core.resource_view import ResourceView
from ..latexp import Environment, LatexDocument, Paragraph, Reference, Section
from ..latexp import parse as parse_latex
from ..latexp.structure import StructureNode


def latex_to_views(document: LatexDocument | str,
                   base_id: ViewId) -> list[ResourceView]:
    """Instantiate a LaTeX document as the file-level view sequence.

    Returns the ordered views for the file's group component ``Q``:
    metadata views first, then the ``document`` view rooting the section
    structure.
    """
    if isinstance(document, str):
        document = parse_latex(document)
    builder = _Builder(document, base_id)
    return builder.build()


class _Builder:
    def __init__(self, document: LatexDocument, base_id: ViewId):
        self.document = document
        self.base_id = base_id
        self._views_by_node: dict[int, ResourceView] = {}
        self._env_counters: dict[str, itertools.count] = {}
        self._id_counter = itertools.count()

    def _next_id(self, tag: str) -> ViewId:
        return self.base_id.child(f"{tag}{next(self._id_counter)}")

    def build(self) -> list[ResourceView]:
        top: list[ResourceView] = []
        if self.document.document_class:
            top.append(ResourceView(
                name="documentclass",
                content=self.document.document_class,
                class_name="latex_meta",
                view_id=self._next_id("m"),
            ))
        if self.document.title:
            top.append(ResourceView(
                name="title",
                content=self.document.title,
                class_name="latex_meta",
                view_id=self._next_id("m"),
            ))
        if self.document.abstract:
            top.append(ResourceView(
                name="abstract",
                content=self.document.abstract,
                class_name="latex_meta",
                view_id=self._next_id("m"),
            ))
        body_views = self._body_views(self.document.body)
        top.append(ResourceView(
            name="document",
            group=GroupComponent.of_sequence(body_views),
            class_name="latex_document",
            view_id=self._next_id("m"),
        ))
        return top

    def _body_views(self, nodes: list[StructureNode]) -> list[ResourceView]:
        views = []
        for node in nodes:
            view = self._node_view(node)
            if view is not None:
                views.append(view)
        return views

    def _node_view(self, node: StructureNode) -> ResourceView | None:
        if isinstance(node, Section):
            return self._section_view(node)
        if isinstance(node, Environment):
            return self._environment_view(node)
        if isinstance(node, Paragraph):
            return self._paragraph_view(node)
        if isinstance(node, Reference):
            return self._reference_view(node)
        return None

    def _section_view(self, section: Section) -> ResourceView:
        cached = self._views_by_node.get(id(section))
        if cached is not None:
            return cached
        attributes: dict[str, object] = {"level": section.level}
        if section.label:
            attributes["label"] = section.label
        view = ResourceView(
            name=section.title,
            tuple_component=TupleComponent.from_dict(attributes),
            content=section.text(),
            group=GroupComponent.of_sequence(self._body_views(section.body)),
            class_name="latex_section",
            view_id=self._next_id("s"),
        )
        self._views_by_node[id(section)] = view
        return view

    def _environment_view(self, environment: Environment) -> ResourceView:
        cached = self._views_by_node.get(id(environment))
        if cached is not None:
            return cached
        counter = self._env_counters.setdefault(
            environment.name, itertools.count(1)
        )
        name = f"{environment.name}{next(counter)}"
        attributes: dict[str, object] = {"environment": environment.name}
        if environment.label:
            attributes["label"] = environment.label
        content = environment.caption or environment.text()
        view = ResourceView(
            name=name,
            tuple_component=TupleComponent.from_dict(attributes),
            content=content,
            group=GroupComponent.of_sequence(
                self._body_views(environment.body)
            ),
            class_name="figure" if environment.name == "figure" else "environment",
            view_id=self._next_id("e"),
        )
        self._views_by_node[id(environment)] = view
        return view

    def _paragraph_view(self, paragraph: Paragraph) -> ResourceView | None:
        if not paragraph.text.strip():
            return None
        return ResourceView(
            content=paragraph.text,
            class_name="latex_text",
            view_id=self._next_id("p"),
        )

    def _reference_view(self, reference: Reference) -> ResourceView:
        target = reference.target

        def group_provider() -> GroupComponent:
            # Lazy: the target section/environment view may be created
            # after this ref during the walk (forward references).
            if target is None:
                return GroupComponent.empty()
            target_view = self._views_by_node.get(id(target))
            if target_view is None:
                target_view = self._node_view(target)
            if target_view is None:
                return GroupComponent.empty()
            return GroupComponent.of_set([target_view])

        return ResourceView(
            name=reference.label,
            group=group_provider,
            class_name="texref",
            view_id=self._next_id("r"),
        )


def latexfile_group_provider(name: str, content: str,
                             view_id: ViewId) -> list[ResourceView] | None:
    """A :data:`~repro.datamodel.filesystem.ContentConverter` for LaTeX."""
    if not name.lower().endswith(".tex"):
        return None
    try:
        return latex_to_views(content, view_id)
    except LatexParseError:
        return None
