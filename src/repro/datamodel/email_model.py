"""The email use-case (Section 4.4.1 of the paper).

Two modelling options for an INBOX:

* **Option 1 (state)** — :func:`inbox_state_view`: a finite view of the
  mailbox's current message window. Retrievable many times; the right
  choice when several clients read the same mailbox.
* **Option 2 (stream)** — :func:`inbox_stream_view`: the infinite
  message stream itself, bypassing the state window. Single-shot:
  messages delivered by the stream are removed from the server and
  cannot be retrieved again.

A message becomes an ``emailmessage`` view (subject as the name, headers
in the tuple component, body text as content, attachments in the group
set); attachments become ``attachment`` views with file semantics, so an
attached ``.tex`` document grows the same structural subgraph as one on
the filesystem — queries bridge the two subsystems (Example 2 of the
paper).
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

from ..core.components import ContentComponent, GroupComponent, TupleComponent
from ..core.identity import ViewId
from ..core.resource_view import ResourceView
from ..imapsim import Attachment, EmailMessage, ImapServer, parse_rfc822

#: Same contract as the filesystem's ContentConverter: turn attachment
#: content into a structural subgraph, or None.
ContentConverter = Callable[[str, str, ViewId], Sequence[ResourceView] | None]


def attachment_to_view(attachment: Attachment, view_id: ViewId, *,
                       content_converter: ContentConverter | None = None,
                       ) -> ResourceView:
    """One attachment as an ``attachment`` (file-specialized) view."""

    def group_provider() -> GroupComponent:
        if content_converter is None:
            return GroupComponent.empty()
        subgraph = content_converter(
            attachment.filename, attachment.content, view_id
        )
        if not subgraph:
            return GroupComponent.empty()
        return GroupComponent.of_sequence(subgraph)

    return ResourceView(
        name=attachment.filename,
        tuple_component=TupleComponent.from_dict({
            "size": attachment.size,
            "mime_type": attachment.mime_type,
        }),
        content=attachment.content,
        group=group_provider,
        class_name="attachment",
        view_id=view_id,
    )


def message_to_view(message: EmailMessage, view_id: ViewId, *,
                    content_converter: ContentConverter | None = None,
                    ) -> ResourceView:
    """One message as an ``emailmessage`` view."""
    attachments = [
        attachment_to_view(
            attachment, view_id.child(f"a{index}"),
            content_converter=content_converter,
        )
        for index, attachment in enumerate(message.attachments)
    ]
    return ResourceView(
        name=message.subject,
        tuple_component=TupleComponent.from_dict({
            "from": message.sender,
            "to": ", ".join(message.to),
            "date": message.date,
            "size": message.size,
        }),
        content=message.body,
        group=GroupComponent.of_set(attachments),
        class_name="emailmessage",
        view_id=view_id,
    )


def inbox_state_view(server: ImapServer, mailbox: str, *,
                     authority: str = "imap",
                     content_converter: ContentConverter | None = None,
                     ) -> ResourceView:
    """Option 1: model the **state** of a mailbox.

    The group component enumerates the current message window through
    latency-charged client fetches, lazily — calling the method twice
    observes the window twice (and pays twice), exactly the semantics
    the paper describes for multi-client setups.
    """
    view_id = ViewId(authority, mailbox)

    def group_provider() -> GroupComponent:
        messages = []
        for uid in server.uids(mailbox):
            wire = server.fetch_message(mailbox, uid)
            message = parse_rfc822(wire)
            message.uid = uid
            messages.append(message_to_view(
                message, view_id.child(str(uid)),
                content_converter=content_converter,
            ))
        return GroupComponent.of_sequence(messages)

    return ResourceView(
        name=mailbox,
        group=group_provider,
        class_name="emailfolder",
        view_id=view_id,
    )


def inbox_stream_view(server: ImapServer, mailbox: str, *,
                      authority: str = "imap",
                      content_converter: ContentConverter | None = None,
                      ) -> ResourceView:
    """Option 2: model the message **stream** itself.

    Single-shot: iterating the group sequence consumes messages from the
    server (they are deleted as they stream); a second iteration raises,
    matching "messages delivered by the stream cannot be retrieved a
    second time".
    """
    view_id = ViewId(authority, f"{mailbox}/stream")

    def factory() -> Iterator[ResourceView]:
        for message in server.message_stream(mailbox):
            yield message_to_view(
                message, view_id.child(str(message.uid)),
                content_converter=content_converter,
            )

    return ResourceView(
        name=mailbox,
        group=GroupComponent.of_stream(factory, reusable=False),
        class_name="datstream",
        view_id=view_id,
    )
