"""Command-line interface: explore a synthetic personal dataspace.

Usage (module form)::

    python -m repro stats  --scale 0.02
    python -m repro stats  --format prometheus
    python -m repro stats  --watch --interval 2
    python -m repro stats  --shards 4 --format prometheus
    python -m repro stats  --shards 4 --watch --frames 3
    python -m repro query  '//papers//*Vision/*["Franklin"]'
    python -m repro query  '"database tuning"' --explain
    python -m repro query  '"database tuning"' --explain --analyze
    python -m repro query  '"database tuning"' --analyze --shards 2
    python -m repro search 'indexing time' --limit 5
    python -m repro tables --scale 0.05
    python -m repro serve  --clients 1,4,16 --requests 25
    python -m repro serve  --shards 3 --kill-shard 0
    python -m repro chaos  --target imap --transient-rate 0.3
    python -m repro checkpoint /tmp/space --scale 0.02
    python -m repro recover /tmp/space --verify
    python -m repro fsck /tmp/space
    python -m repro snapshot save /tmp/snap --scale 0.02
    python -m repro snapshot load /tmp/snap

Dataspaces are generated in memory, deterministically from
``--scale``/``--seed``, so every invocation is reproducible.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from .bench import (
    EvaluationHarness,
    PAPER_QUERIES,
    PAPER_TABLE4,
    format_table,
)
from .core.errors import QuerySyntaxError, StreamingUnsupportedError
from .facade import Dataspace
from .imapsim.latency import no_latency

#: Exit code for a rejected iQL query (argparse itself uses 2).
EXIT_PARSE_ERROR = 3
#: Exit code when ``recover --verify`` finds engine/oracle divergence.
EXIT_VERIFY_FAILED = 4


def _add_dataset_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=0.02,
                        help="fraction of the paper's dataset (default 0.02)")
    parser.add_argument("--seed", type=int, default=42,
                        help="generator seed (default 42)")


def _build(args: argparse.Namespace) -> Dataspace:
    dataspace = Dataspace.generate(scale=args.scale, seed=args.seed,
                                   imap_latency=no_latency())
    dataspace.sync()
    return dataspace


def _exercise_telemetry(dataspace: Dataspace) -> None:
    """Run the paper's query mix through a short serve session so the
    telemetry snapshot covers every namespace (``query.*``, ``sync.*``,
    ``index.*``, ``resilience.*``, ``service.*``), not just the sync
    that :func:`_build` already performed."""
    with dataspace.serve(workers=2) as service:
        for iql in PAPER_QUERIES.values():
            service.execute(iql, timeout=60.0)


def _render_stats_tables(dataspace: Dataspace,
                         args: argparse.Namespace) -> str:
    report = dataspace.last_sync_report
    assert report is not None
    rows = []
    for authority, source in report.sources.items():
        rows.append([authority, source.views_base,
                     source.views_derived_xml, source.views_derived_latex,
                     source.views_total])
    parts = [format_table(
        ["source", "base", "xml-derived", "latex-derived", "total"],
        rows, title=f"dataspace (scale={args.scale}, seed={args.seed})",
    )]
    sizes = dataspace.index_sizes()
    parts.append(format_table(
        ["structure", "bytes"],
        [[key, int(sizes[key])]
         for key in ("name", "tuple", "content", "group", "catalog",
                     "total", "net_input")],
        title="index sizes",
    ))
    return "\n\n".join(parts)


def _render_fleet_table(supervisor) -> str:
    """One row per shard from the supervisor's merged view: supervision
    state plus the federated ``{shard=N}`` latency series."""
    stats = supervisor.stats()
    rows = []
    for index in range(int(stats["shards"])):
        prefix = f"shard.{index}"
        p99 = stats.get(f"{prefix}.p99_seconds")
        rows.append([
            index, stats[f"{prefix}.state"], stats[f"{prefix}.epoch"],
            stats[f"{prefix}.restarts"], stats[f"{prefix}.inflight"],
            stats.get(f"{prefix}.served", 0),
            p99 * 1000 if p99 is not None else 0.0,
            "stale" if stats.get(f"{prefix}.stale") else "live",
        ])
    return format_table(
        ["shard", "state", "epoch", "restarts", "inflight", "served",
         "p99 [ms]", "export"],
        rows, title=f"fleet ({stats['shards']} shards)",
    )


def _cmd_stats_fleet(args: argparse.Namespace) -> int:
    """Fleet statistics: supervised shard workers, federated registry.

    Spins up ``--shards`` worker processes, drives the paper's query
    mix through the ring (unless ``--no-exercise``), and renders the
    *merged* telemetry — every worker's series under its ``{shard=N}``
    label — plus a per-shard supervision table. ``--watch`` re-runs the
    mix and re-renders each frame (``--frames`` bounds the loop, for
    scripts and tests)."""
    import shutil
    import tempfile

    from . import obs
    from .core.errors import ShardUnavailable
    from .supervise import ShardSupervisor

    directory = tempfile.mkdtemp(prefix="repro-stats-")
    queries = list(PAPER_QUERIES.values())
    # a short export interval so each reply piggybacks fresh deltas;
    # flush_telemetry() then makes the final render complete
    supervisor = ShardSupervisor(
        directory, shards=args.shards, seed=args.seed, scale=args.scale,
        metrics_interval=0.05,
    )

    # Rotating tenants so the rendered export demonstrates the full
    # label composition: {shard=N} from federation, {tenant=...} from
    # admission, side by side with the unlabeled totals.
    tenants = ("acme", "globex", "initech")

    def exercise() -> None:
        for n, iql in enumerate(queries):
            try:
                supervisor.query(iql, key=f"client-{n}", timeout=120.0,
                                 tenant=tenants[n % len(tenants)])
            except ShardUnavailable:
                continue

    def render_once() -> str:
        registry = obs.global_metrics()
        if args.format == "prometheus":
            return registry.render_prometheus()
        if args.format == "json":
            return registry.render_json()
        return _render_fleet_table(supervisor) + "\n\n" + registry.render()

    frames = 0
    try:
        with supervisor:
            while True:
                if not args.no_exercise:
                    exercise()
                supervisor.flush_telemetry()
                if args.watch and sys.stdout.isatty():
                    print("\x1b[2J\x1b[H", end="")  # one-screen refresh
                print(render_once())
                frames += 1
                if not args.watch:
                    break
                if args.frames is not None and frames >= args.frames:
                    break
                print(f"-- watching fleet (every {args.interval:g}s, "
                      f"Ctrl-C to stop)", flush=True)
                time.sleep(args.interval)
    except KeyboardInterrupt:
        pass
    finally:
        shutil.rmtree(directory, ignore_errors=True)
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from . import obs

    if args.shards:
        return _cmd_stats_fleet(args)
    dataspace = Dataspace.generate(scale=args.scale, seed=args.seed,
                                   imap_latency=no_latency(),
                                   resilience=True)
    dataspace.sync()
    if not args.no_exercise:
        _exercise_telemetry(dataspace)

    def render_once() -> str:
        registry = obs.global_metrics()
        if args.format == "prometheus":
            return registry.render_prometheus()
        if args.format == "json":
            return registry.render_json()
        return (_render_stats_tables(dataspace, args)
                + "\n\n" + registry.render())

    if not args.watch:
        print(render_once())
        return 0
    try:
        while True:
            # each tick applies pending source changes, so the gauges
            # and counters move between frames
            dataspace.refresh()
            print(render_once())
            print(f"-- watching (every {args.interval:g}s, Ctrl-C to stop)",
                  flush=True)
            time.sleep(args.interval)
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_query_sharded(args: argparse.Namespace) -> int:
    """Route one query through supervised shard workers.

    With ``--analyze`` the worker executes under its own collector and
    the supervisor grafts the shipped span tree under its dispatch
    spans — the printed tree covers both processes (ring lookup, pipe
    round-trip, executor-queue wait, then the worker's operators)."""
    import shutil
    import tempfile

    from .supervise import ShardSupervisor

    directory = tempfile.mkdtemp(prefix="repro-query-")
    try:
        with ShardSupervisor(directory, shards=args.shards,
                             seed=args.seed, scale=args.scale) as supervisor:
            try:
                if args.analyze:
                    report = supervisor.explain_analyze(
                        args.iql, limit=args.limit, tenant=args.tenant,
                        timeout=120.0)
                    print(report.render())
                    return 0
                result = supervisor.query(
                    args.iql, limit=args.limit, tenant=args.tenant,
                    timeout=120.0)
            except QuerySyntaxError as error:
                print(f"iql parse error: {error}", file=sys.stderr)
                return EXIT_PARSE_ERROR
            for uri in result.uris[:args.limit]:
                print(uri)
            print(f"-- {result.count} result(s) from shard {result.shard} "
                  f"(epoch {result.epoch}), "
                  f"{result.elapsed_seconds * 1000:.1f} ms")
    finally:
        shutil.rmtree(directory, ignore_errors=True)
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    if args.shards:
        return _cmd_query_sharded(args)
    dataspace = _build(args)
    try:
        if args.analyze:
            # EXPLAIN ANALYZE: execute under a trace, print the
            # annotated plan tree (per-node actual rows, wall time,
            # estimate), the rewrite log and the substrate counters
            print(dataspace.explain_analyze(args.iql).render())
            return 0
        if args.explain:
            print(dataspace.explain(args.iql))
            return 0
        try:
            # --limit plans into the query, so the engine stops pulling
            # once satisfied; rows print as their batches arrive
            stream = dataspace.query_iter(args.iql, limit=args.limit)
        except StreamingUnsupportedError:
            # joins only — any other execution failure propagates rather
            # than silently re-running the query materialized
            return _print_materialized(dataspace, args)
    except QuerySyntaxError as error:
        print(f"iql parse error: {error}", file=sys.stderr)
        return EXIT_PARSE_ERROR
    started = time.perf_counter()
    shown = 0
    with stream:
        for uri in stream:
            record = dataspace.rvm.catalog.get(uri)
            label = (f"  ({record.name})"
                     if record is not None and record.name else "")
            print(f"{uri}{label}")
            shown += 1
    elapsed = time.perf_counter() - started
    # the limit is planned into the query, so the total result count is
    # unknown here — report only what streamed out
    print(f"-- {shown} result(s), "
          f"{elapsed * 1000:.1f} ms, "
          f"{stream.expanded_views} views expanded")
    if stream.degradation.is_degraded:
        print(f"-- {stream.degradation.summary()}", file=sys.stderr)
    return 0


def _print_materialized(dataspace: Dataspace,
                        args: argparse.Namespace) -> int:
    """Joins have no streaming plan shape: materialize, then print."""
    result = dataspace.query(args.iql)
    if result.pairs:
        for pair in result.pairs[:args.limit]:
            print(f"{pair.left.uri}  <->  {pair.right.uri}")
    else:
        for hit in result.hits[:args.limit]:
            label = f"  ({hit.name})" if hit.name else ""
            print(f"{hit.uri}{label}")
    shown = min(len(result), args.limit)
    print(f"-- {len(result)} result(s) ({shown} shown), "
          f"{result.elapsed_seconds * 1000:.1f} ms, "
          f"{result.expanded_views} views expanded")
    if result.is_degraded:
        print(f"-- {result.degradation.summary()}", file=sys.stderr)
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    dataspace = _build(args)
    hits = dataspace.search(args.text, limit=args.limit)
    for hit in hits:
        label = hit.name or "(unnamed)"
        print(f"{hit.score:8.3f}  {label}  [{hit.uri}]")
    if not hits:
        print("no matches")
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    harness = EvaluationHarness(scale=args.scale, seed=args.seed)
    harness.ensure_synced()

    table2 = harness.table2()
    print(format_table(
        ["source", "base", "xml", "latex", "total"],
        [[name, row["base"], row["xml"], row["latex"], row["total"]]
         for name, row in table2.items()],
        title="Table 2 — dataset characteristics",
    ))
    print()

    breakdown = harness.figure5()
    print(format_table(
        ["source", "catalog [s]", "indexing [s]", "access [s]", "total [s]"],
        [[name, row["catalog"], row["indexing"], row["access"],
          row["total"]] for name, row in breakdown.items()],
        title="Figure 5 — indexing time breakdown",
    ))
    print()

    sizes = harness.table3()
    mb = 1024 * 1024
    print(format_table(
        ["structure", "MB"],
        [[key, sizes[key] / mb]
         for key in ("net_input", "name", "tuple", "content", "group",
                     "catalog", "total")],
        title="Table 3 — index sizes",
    ))
    print()

    measurements = harness.run_queries(warm_runs=2)
    print(format_table(
        ["query", "paper #", "measured #", "warm [ms]"],
        [[qid, PAPER_TABLE4[qid], m.results, m.warm_seconds * 1000]
         for qid, m in measurements.items()],
        title="Table 4 / Figure 6 — queries",
    ))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Closed-loop load against the concurrent query service."""
    from .service import run_closed_loop

    if args.shards:
        return _cmd_serve_sharded(args)
    dataspace = _build(args)
    queries = list(PAPER_QUERIES.values())
    deadline = args.deadline_ms / 1000.0 if args.deadline_ms else None
    try:
        levels = [int(level) for level in args.clients.split(",")]
    except ValueError:
        print(f"invalid --clients list: {args.clients!r}", file=sys.stderr)
        return 2
    rows = []
    service = None
    for clients in levels:
        # a fresh service per level: each row starts from a cold cache
        service = dataspace.serve(
            workers=args.workers, max_queue_depth=args.queue_depth,
            cache_results=not args.no_cache, trace_queries=args.trace,
        )
        with service:
            report = run_closed_loop(
                service, queries, clients=clients,
                requests_per_client=args.requests,
                use_cache=not args.no_cache, deadline=deadline,
            )
        latency = report.latency_snapshot()
        rows.append([
            clients, report.succeeded, report.rejected, report.failed,
            report.throughput, latency.p50 * 1000, latency.p95 * 1000,
            latency.p99 * 1000,
        ])
    print(format_table(
        ["clients", "ok", "rejected", "failed", "q/s",
         "p50 [ms]", "p95 [ms]", "p99 [ms]"],
        rows,
        title=(f"closed-loop service workload (workers={args.workers}, "
               f"cache={'off' if args.no_cache else 'on'})"),
    ))
    if service is not None:
        print()
        print(service.metrics.render())
    return 0


def _cmd_serve_sharded(args: argparse.Namespace) -> int:
    """Drive the supervised multi-process sharded service.

    Requests route by a synthetic client key over the consistent-hash
    ring; ``--kill-shard`` SIGKILLs one worker mid-workload so the
    supervised failover (fail-fast, recovery, re-dispatch) is visible
    from the command line.
    """
    import shutil
    import statistics
    import tempfile

    from .core.errors import ShardUnavailable
    from .supervise import ShardSupervisor

    directory = args.directory or tempfile.mkdtemp(prefix="repro-shards-")
    cleanup = args.directory is None
    queries = list(PAPER_QUERIES.values())
    supervisor = ShardSupervisor(
        directory, shards=args.shards, seed=args.seed, scale=args.scale,
    )
    total = args.requests * max(4, args.shards)
    kill_at = (args.kill_after if args.kill_after is not None
               else total // 3)
    latencies: dict[int, list] = {i: [] for i in range(args.shards)}
    served = unavailable = 0
    try:
        with supervisor:
            print(f"supervisor up: {args.shards} shard worker(s) under "
                  f"{directory}")
            for n in range(total):
                if args.kill_shard is not None and n == kill_at:
                    pid = supervisor.kill_shard(args.kill_shard)
                    print(f"-- SIGKILL shard {args.kill_shard} "
                          f"(pid {pid}) at request {n}")
                iql = queries[n % len(queries)]
                key = f"client-{n % (args.shards * 4)}"
                started = time.perf_counter()
                try:
                    result = supervisor.query(iql, key=key, timeout=120.0)
                except ShardUnavailable as error:
                    unavailable += 1
                    if args.kill_shard is None:
                        print(f"shard {error.shard} unavailable: {error}",
                              file=sys.stderr)
                    continue
                served += 1
                latencies[result.shard].append(
                    time.perf_counter() - started)
            if args.kill_shard is not None:
                recovered = supervisor.wait_until_up(args.kill_shard,
                                                     timeout=120.0)
                print(f"-- shard {args.kill_shard} "
                      f"{'recovered' if recovered else 'DID NOT recover'}")
            stats = supervisor.stats()
            rows = []
            for index in range(args.shards):
                times = latencies[index]
                rows.append([
                    index, stats[f"shard.{index}.state"],
                    stats[f"shard.{index}.epoch"],
                    stats[f"shard.{index}.restarts"],
                    stats[f"shard.{index}.views"], len(times),
                    statistics.median(times) * 1000 if times else 0.0,
                    max(times) * 1000 if times else 0.0,
                ])
            print(format_table(
                ["shard", "state", "epoch", "restarts", "views",
                 "served", "p50 [ms]", "max [ms]"],
                rows,
                title=(f"supervised shards (requests={total}, "
                       f"served={served}, fail-fast={unavailable})"),
            ))
    finally:
        if cleanup:
            shutil.rmtree(directory, ignore_errors=True)
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Run the paper's query mix against a dataspace with one flaky
    source, printing per-query degradation and the final source health."""
    from .resilience import FaultPlan, ResilienceConfig, RetryPolicy

    config = ResilienceConfig(
        retry=RetryPolicy(max_attempts=args.retries),
        breaker_failure_threshold=args.breaker_threshold,
        breaker_cooldown_seconds=args.breaker_cooldown,
        seed=args.chaos_seed,
    ).with_fast_backoff()
    dataspace = Dataspace.generate(scale=args.scale, seed=args.seed,
                                   imap_latency=no_latency(),
                                   resilience=config)
    plan = FaultPlan(seed=args.chaos_seed,
                     transient_rate=args.transient_rate,
                     timeout_rate=args.timeout_rate)
    if args.outage_after is not None:
        plan.outage(after=args.outage_after)
    dataspace.inject_faults(args.target, plan)

    report = dataspace.sync()
    if report.is_degraded:
        print(f"sync degraded: skipped={report.sources_skipped} "
              f"errors={sum(len(e) for e in report.errors.values())}")
    else:
        print(f"sync complete: {report.views_total} views")

    rows = []
    for qid, iql in PAPER_QUERIES.items():
        result = dataspace.query(iql)
        rows.append([qid, len(result),
                     "degraded" if result.is_degraded else "ok",
                     result.degradation.retries_spent,
                     ",".join(result.degradation.sources_skipped) or "-"])
    print(format_table(
        ["query", "results", "status", "retries", "skipped sources"],
        rows,
        title=(f"chaos workload (target={args.target}, "
               f"transient={args.transient_rate:.0%}, "
               f"chaos-seed={args.chaos_seed})"),
    ))
    print()
    health_rows = [
        [authority, row["state"], row["retries"], row["failures"],
         row["short_circuits"], row["times_opened"]]
        for authority, row in dataspace.health().items()
    ]
    print(format_table(
        ["source", "breaker", "retries", "failures", "short-circuits",
         "times opened"],
        health_rows, title="source health",
    ))
    return 0


def _cmd_checkpoint(args: argparse.Namespace) -> int:
    """Make (or reopen) a durable dataspace and checkpoint it."""
    from .durability import load_config

    if load_config(args.directory) is not None:
        # an existing durability directory: recover, then checkpoint it
        dataspace = Dataspace.open(args.directory)
        assert dataspace.last_recovery is not None
        print(dataspace.last_recovery.summary())
    else:
        dataspace = Dataspace.generate(scale=args.scale, seed=args.seed,
                                       imap_latency=no_latency(),
                                       durability=args.directory)
        report = dataspace.sync()
        print(f"synced {report.views_total} views into {args.directory}")
    with dataspace:
        info = dataspace.checkpoint()
    print(f"checkpoint at lsn {info.lsn}: {info.path.name}, "
          f"{info.segments_truncated} WAL segment(s) truncated, "
          f"{info.seconds * 1000:.1f} ms")
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    """Recover a durability directory and optionally verify the engine."""
    from .durability import verify_engine_matches_oracle

    with Dataspace.open(args.directory) as dataspace:
        assert dataspace.last_recovery is not None
        print(dataspace.last_recovery.summary())
        if not args.verify:
            return 0
        report = verify_engine_matches_oracle(
            dataspace, seed=args.verify_seed, count=args.verify_count)
    print(report.summary())
    if not report.ok:
        for iql, diff in report.mismatches:
            print(f"  MISMATCH {iql}: {diff}", file=sys.stderr)
        return EXIT_VERIFY_FAILED
    return 0


def _cmd_fsck(args: argparse.Namespace) -> int:
    """Consistency-check a durability directory: recover it into memory
    and prove engine ≡ oracle on the recovered state.

    This is ``recover --verify`` as a first-class check: exit 0 when
    consistent, :data:`EXIT_VERIFY_FAILED` on divergence — usable from
    cron or a post-crash runbook without mutating the directory.
    """
    from .durability import load_config, verify_engine_matches_oracle

    if load_config(args.directory) is None:
        print(f"fsck: {args.directory} is not a durability directory "
              f"(no config.json)", file=sys.stderr)
        return 2
    with Dataspace.open(args.directory, durable=False) as dataspace:
        assert dataspace.last_recovery is not None
        print(dataspace.last_recovery.summary())
        report = verify_engine_matches_oracle(
            dataspace, seed=args.verify_seed, count=args.verify_count)
    print(report.summary())
    if not report.ok:
        for iql, diff in report.mismatches:
            print(f"  MISMATCH {iql}: {diff}", file=sys.stderr)
        return EXIT_VERIFY_FAILED
    return 0


def _cmd_snapshot(args: argparse.Namespace) -> int:
    """Save or load a plain (WAL-free) snapshot of the indexed state."""
    if args.action == "save":
        dataspace = _build(args)
        manifest = dataspace.save(args.directory)
        print(f"saved {manifest['counts']['catalog']} views to "
              f"{args.directory} "
              f"(snapshot format v{manifest['format_version']})")
        return 0
    dataspace = Dataspace()
    manifest = dataspace.load(args.directory)
    sizes = dataspace.index_sizes()
    print(f"loaded {manifest['counts']['catalog']} views from "
          f"{args.directory} ({sizes['total']} index bytes)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="iDM personal dataspace reproduction (VLDB 2006)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    stats = commands.add_parser(
        "stats", help="dataset, index and telemetry statistics"
    )
    stats.add_argument("--format", choices=("table", "json", "prometheus"),
                       default="table",
                       help="output format (default table; json and "
                            "prometheus print the telemetry snapshot)")
    stats.add_argument("--watch", action="store_true",
                       help="re-render every --interval seconds until "
                            "interrupted")
    stats.add_argument("--interval", type=float, default=2.0,
                       help="refresh period for --watch (default 2s)")
    stats.add_argument("--no-exercise", action="store_true",
                       help="skip the warm-up query mix (telemetry then "
                            "covers only the sync)")
    stats.add_argument("--shards", type=int, default=0,
                       help="report on a fleet of N supervised shard "
                            "worker processes (federated {shard=N} "
                            "telemetry; default 0: single-process)")
    stats.add_argument("--frames", type=int, default=None,
                       help="stop --watch after N frames (--shards only; "
                            "default: until Ctrl-C)")
    _add_dataset_options(stats)
    stats.set_defaults(handler=_cmd_stats)

    query = commands.add_parser("query", help="run one iQL query")
    query.add_argument("iql", help="the iQL query text")
    query.add_argument("--limit", type=int, default=20,
                       help="max results (default 20; planned into the "
                            "query, so execution stops early)")
    query.add_argument("--explain", action="store_true",
                       help="print the physical plan instead of executing")
    query.add_argument("--analyze", action="store_true",
                       help="execute under a trace and print the annotated "
                            "plan (per-node rows, wall time, estimate); "
                            "implies --explain")
    query.add_argument("--shards", type=int, default=0,
                       help="route through N supervised shard worker "
                            "processes; with --analyze the printed tree "
                            "is stitched across both processes "
                            "(default 0: in-process)")
    query.add_argument("--tenant", default=None,
                       help="tenant label stamped onto the query's "
                            "telemetry (--shards only)")
    _add_dataset_options(query)
    query.set_defaults(handler=_cmd_query)

    search = commands.add_parser("search", help="ranked free-text search")
    search.add_argument("text", help="search text")
    search.add_argument("--limit", type=int, default=10)
    _add_dataset_options(search)
    search.set_defaults(handler=_cmd_search)

    tables = commands.add_parser(
        "tables", help="regenerate the paper's evaluation tables"
    )
    _add_dataset_options(tables)
    tables.set_defaults(handler=_cmd_tables)

    serve = commands.add_parser(
        "serve", help="drive the concurrent query service (closed loop)"
    )
    serve.add_argument("--clients", default="1,4",
                       help="comma-separated concurrency levels "
                            "(default 1,4)")
    serve.add_argument("--requests", type=int, default=25,
                       help="requests per client (default 25)")
    serve.add_argument("--workers", type=int, default=4,
                       help="service worker threads (default 4)")
    serve.add_argument("--queue-depth", type=int, default=32,
                       help="admission queue depth (default 32)")
    serve.add_argument("--no-cache", action="store_true",
                       help="disable the result cache")
    serve.add_argument("--deadline-ms", type=float, default=None,
                       help="per-query deadline in milliseconds")
    serve.add_argument("--trace", action="store_true",
                       help="trace every executed query and fold "
                            "per-operator aggregates into the metrics "
                            "report")
    serve.add_argument("--shards", type=int, default=0,
                       help="serve from N supervised shard worker "
                            "processes instead of one in-process pool "
                            "(default 0: single-process)")
    serve.add_argument("--directory", default=None,
                       help="parent directory for the shard durability "
                            "directories (--shards only; default: a "
                            "temp dir, removed afterwards)")
    serve.add_argument("--kill-shard", type=int, default=None,
                       help="SIGKILL this shard's worker mid-workload "
                            "to demo supervised failover (--shards "
                            "only)")
    serve.add_argument("--kill-after", type=int, default=None,
                       help="request count at which --kill-shard fires "
                            "(default: a third of the workload)")
    _add_dataset_options(serve)
    serve.set_defaults(handler=_cmd_serve)

    chaos = commands.add_parser(
        "chaos", help="inject faults into one source and run the query "
                      "mix degraded (deterministic per --chaos-seed)"
    )
    chaos.add_argument("--target", default="imap",
                       help="authority to make flaky (default imap)")
    chaos.add_argument("--transient-rate", type=float, default=0.3,
                       help="transient fault probability (default 0.3)")
    chaos.add_argument("--timeout-rate", type=float, default=0.0,
                       help="timeout fault probability (default 0)")
    chaos.add_argument("--outage-after", type=int, default=None,
                       help="permanent outage after N source calls")
    chaos.add_argument("--chaos-seed", type=int, default=0,
                       help="fault schedule seed (default 0)")
    chaos.add_argument("--retries", type=int, default=3,
                       help="retry budget per source call (default 3)")
    chaos.add_argument("--breaker-threshold", type=int, default=5,
                       help="consecutive failures to open the breaker")
    chaos.add_argument("--breaker-cooldown", type=float, default=30.0,
                       help="breaker cool-down seconds (default 30)")
    _add_dataset_options(chaos)
    chaos.set_defaults(handler=_cmd_chaos)

    checkpoint = commands.add_parser(
        "checkpoint", help="checkpoint a durable dataspace (snapshot + "
                           "truncate the applied WAL prefix)"
    )
    checkpoint.add_argument("directory",
                            help="durability directory (created and synced "
                                 "from --scale/--seed when empty)")
    _add_dataset_options(checkpoint)
    checkpoint.set_defaults(handler=_cmd_checkpoint)

    recover = commands.add_parser(
        "recover", help="recover a durability directory (latest checkpoint "
                        "+ WAL tail) and report what came back"
    )
    recover.add_argument("directory", help="durability directory")
    recover.add_argument("--verify", action="store_true",
                         help="check the batched engine against the "
                              "reference oracle on the recovered state")
    recover.add_argument("--verify-seed", type=int, default=0,
                         help="query-generator seed for --verify")
    recover.add_argument("--verify-count", type=int, default=40,
                         help="generated queries for --verify (default 40)")
    recover.set_defaults(handler=_cmd_recover)

    fsck = commands.add_parser(
        "fsck", help="consistency-check a durability directory "
                     "(recover in memory, prove engine ≡ oracle; "
                     "exits 4 on divergence)"
    )
    fsck.add_argument("directory", help="durability directory")
    fsck.add_argument("--verify-seed", type=int, default=0,
                      help="query-generator seed (default 0)")
    fsck.add_argument("--verify-count", type=int, default=40,
                      help="generated queries to check (default 40)")
    fsck.set_defaults(handler=_cmd_fsck)

    snapshot = commands.add_parser(
        "snapshot", help="save/load a plain snapshot of the indexed state "
                         "(no WAL; see `checkpoint` for durability)"
    )
    snapshot.add_argument("action", choices=("save", "load"))
    snapshot.add_argument("directory", help="snapshot directory")
    _add_dataset_options(snapshot)
    snapshot.set_defaults(handler=_cmd_snapshot)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
