"""Tokenizer for iQL.

Token kinds: path separators (``//``, ``/``), brackets, parentheses,
commas, comparison operators, quoted strings, date literals
(``@DD.MM.YYYY``), numbers, and words. Words may contain wildcards and
dots (``*Vision``, ``?onclusion*``, ``*.tex``, ``A.tuple.label``) — the
parser decides what they mean by context.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..core.errors import QuerySyntaxError

#: Characters allowed inside a word token. Dots support qualified refs
#: and extension patterns; wildcards support name tests.
_WORD_CHARS = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
    "_-*?."
)


class TokenKind(enum.Enum):
    DSLASH = "//"
    SLASH = "/"
    LBRACKET = "["
    RBRACKET = "]"
    LPAREN = "("
    RPAREN = ")"
    COMMA = ","
    STRING = "string"
    NUMBER = "number"
    DATE = "date"
    WORD = "word"
    OP = "op"          # = != < <= > >=
    END = "end"


@dataclass(frozen=True, slots=True)
class Token:
    kind: TokenKind
    value: str
    position: int


def tokenize_iql(text: str) -> list[Token]:
    tokens: list[Token] = []
    i = 0
    length = len(text)
    while i < length:
        ch = text[i]
        if ch in " \t\r\n":
            i += 1
            continue
        if text.startswith("//", i):
            tokens.append(Token(TokenKind.DSLASH, "//", i))
            i += 2
        elif ch == "/":
            tokens.append(Token(TokenKind.SLASH, "/", i))
            i += 1
        elif ch == "[":
            tokens.append(Token(TokenKind.LBRACKET, "[", i))
            i += 1
        elif ch == "]":
            tokens.append(Token(TokenKind.RBRACKET, "]", i))
            i += 1
        elif ch == "(":
            tokens.append(Token(TokenKind.LPAREN, "(", i))
            i += 1
        elif ch == ")":
            tokens.append(Token(TokenKind.RPAREN, ")", i))
            i += 1
        elif ch == ",":
            tokens.append(Token(TokenKind.COMMA, ",", i))
            i += 1
        elif ch == '"':
            end = text.find('"', i + 1)
            if end < 0:
                raise QuerySyntaxError(f"unterminated string at offset {i}")
            tokens.append(Token(TokenKind.STRING, text[i + 1:end], i))
            i = end + 1
        elif ch == "@":
            start = i + 1
            j = start
            while j < length and (text[j].isdigit() or text[j] == "."):
                j += 1
            if j == start:
                raise QuerySyntaxError(f"bad date literal at offset {i}")
            tokens.append(Token(TokenKind.DATE, text[start:j], i))
            i = j
        elif text.startswith("!=", i):
            tokens.append(Token(TokenKind.OP, "!=", i))
            i += 2
        elif text.startswith("<=", i):
            tokens.append(Token(TokenKind.OP, "<=", i))
            i += 2
        elif text.startswith(">=", i):
            tokens.append(Token(TokenKind.OP, ">=", i))
            i += 2
        elif ch in "=<>":
            tokens.append(Token(TokenKind.OP, ch, i))
            i += 1
        elif ch in _WORD_CHARS:
            j = i
            while j < length and text[j] in _WORD_CHARS:
                j += 1
            word = text[i:j]
            kind = TokenKind.NUMBER if _is_number(word) else TokenKind.WORD
            tokens.append(Token(kind, word, i))
            i = j
        else:
            raise QuerySyntaxError(f"unexpected character {ch!r} at offset {i}")
    tokens.append(Token(TokenKind.END, "", length))
    return tokens


def _is_number(word: str) -> bool:
    try:
        float(word)
        return True
    except ValueError:
        return False
