"""Recursive-descent parser for iQL.

See :mod:`repro.query` for the grammar by example. Produces the AST of
:mod:`repro.query.ast`; raises
:class:`~repro.core.errors.QuerySyntaxError` on malformed input.
"""

from __future__ import annotations

from datetime import datetime

from ..core.errors import QuerySyntaxError
from .ast import (
    Axis,
    CompareOp,
    Comparison,
    FunctionCall,
    IntersectExpr,
    JoinCondition,
    JoinExpr,
    KeywordAtom,
    Literal,
    Operand,
    PathExpr,
    PredAnd,
    Predicate,
    PredicateExpr,
    PredNot,
    PredOr,
    QualifiedRef,
    QueryExpr,
    Step,
    UnionExpr,
)
from .lexer import Token, TokenKind, tokenize_iql

_REF_KINDS = {"name", "tuple", "class", "content"}


def parse_iql(text: str) -> QueryExpr:
    """Parse one iQL query."""
    if not text.strip():
        raise QuerySyntaxError("empty query")
    parser = _Parser(tokenize_iql(text))
    query = parser.parse_query()
    parser.expect(TokenKind.END)
    return query


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- cursor helpers -----------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def next(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind is not TokenKind.END:
            self.pos += 1
        return token

    def expect(self, kind: TokenKind, value: str | None = None) -> Token:
        token = self.peek()
        if token.kind is not kind or (value is not None and token.value != value):
            wanted = value if value is not None else kind.value
            raise QuerySyntaxError(
                f"expected {wanted!r}, got {token.value!r}",
                column=token.position,
            )
        return self.next()

    def _at_word(self, *values: str) -> bool:
        token = self.peek()
        return token.kind is TokenKind.WORD and token.value.lower() in values

    # -- top level ------------------------------------------------------------

    def parse_query(self) -> QueryExpr:
        token = self.peek()
        if token.kind in (TokenKind.DSLASH, TokenKind.SLASH):
            return self.parse_path()
        if token.kind is TokenKind.LBRACKET:
            self.next()
            predicate = self.parse_predicate()
            self.expect(TokenKind.RBRACKET)
            return PredicateExpr(predicate)
        if self._at_word("union") and self.peek(1).kind is TokenKind.LPAREN:
            return self._parse_multi(UnionExpr)
        if self._at_word("intersect") and self.peek(1).kind is TokenKind.LPAREN:
            return self._parse_multi(IntersectExpr)
        if self._at_word("join") and self.peek(1).kind is TokenKind.LPAREN:
            return self.parse_join()
        # bare keyword query like: "Donald" and "Knuth"
        return PredicateExpr(self.parse_predicate())

    def _parse_multi(self, node_type):
        self.next()  # union / intersect
        self.expect(TokenKind.LPAREN)
        parts = [self.parse_query()]
        while self.peek().kind is TokenKind.COMMA:
            self.next()
            parts.append(self.parse_query())
        self.expect(TokenKind.RPAREN)
        if len(parts) < 2:
            raise QuerySyntaxError(f"{node_type.__name__} needs two operands")
        return node_type(tuple(parts))

    def parse_join(self) -> JoinExpr:
        self.next()  # join
        self.expect(TokenKind.LPAREN)
        left = self.parse_query()
        left_var = self._parse_as()
        self.expect(TokenKind.COMMA)
        right = self.parse_query()
        right_var = self._parse_as()
        self.expect(TokenKind.COMMA)
        condition = self.parse_join_condition({left_var, right_var})
        self.expect(TokenKind.RPAREN)
        return JoinExpr(left, left_var, right, right_var, condition)

    def _parse_as(self) -> str:
        if not self._at_word("as"):
            raise QuerySyntaxError("expected 'as <variable>' in join",
                                   column=self.peek().position)
        self.next()
        token = self.expect(TokenKind.WORD)
        return token.value

    def parse_join_condition(self, variables: set[str]) -> JoinCondition:
        left = self._parse_qualified_ref(variables)
        op_token = self.expect(TokenKind.OP)
        op = CompareOp(op_token.value)
        token = self.peek()
        right: Operand
        if token.kind is TokenKind.WORD and token.value.split(".")[0] in variables:
            right = self._parse_qualified_ref(variables)
        else:
            right = self._parse_literal_operand()
        return JoinCondition(left, op, right)

    def _parse_qualified_ref(self, variables: set[str]) -> QualifiedRef:
        token = self.expect(TokenKind.WORD)
        parts = token.value.split(".")
        if len(parts) < 2:
            raise QuerySyntaxError(
                f"expected a qualified reference like A.name, got {token.value!r}",
                column=token.position,
            )
        variable, kind = parts[0], parts[1]
        if variable not in variables:
            raise QuerySyntaxError(f"unknown join variable {variable!r}",
                                   column=token.position)
        if kind not in _REF_KINDS:
            raise QuerySyntaxError(
                f"unknown component {kind!r} (use name/tuple/class/content)",
                column=token.position,
            )
        attribute = None
        if kind == "tuple":
            if len(parts) != 3:
                raise QuerySyntaxError(
                    "tuple references need an attribute: A.tuple.<attr>",
                    column=token.position,
                )
            attribute = parts[2]
        elif len(parts) != 2:
            raise QuerySyntaxError(f"malformed reference {token.value!r}",
                                   column=token.position)
        return QualifiedRef(variable, kind, attribute)

    # -- paths -------------------------------------------------------------------

    def parse_path(self) -> PathExpr:
        steps: list[Step] = []
        while self.peek().kind in (TokenKind.DSLASH, TokenKind.SLASH):
            axis_token = self.next()
            axis = (Axis.DESCENDANT if axis_token.kind is TokenKind.DSLASH
                    else Axis.CHILD)
            name_test: str | None = None
            token = self.peek()
            if token.kind is TokenKind.WORD:
                name_test = self.next().value
            elif token.kind is TokenKind.STRING:
                name_test = self.next().value
            elif token.kind is TokenKind.NUMBER:
                name_test = self.next().value
            if name_test == "*":
                name_test = None  # '*' = any view, same as an empty test
            predicate = None
            if self.peek().kind is TokenKind.LBRACKET:
                self.next()
                predicate = self.parse_predicate()
                self.expect(TokenKind.RBRACKET)
            steps.append(Step(axis, name_test, predicate))
        if not steps:
            raise QuerySyntaxError("empty path expression")
        return PathExpr(tuple(steps))

    # -- predicates ----------------------------------------------------------------

    def parse_predicate(self) -> Predicate:
        return self._parse_or()

    def _parse_or(self) -> Predicate:
        parts = [self._parse_and()]
        while self._at_word("or"):
            self.next()
            parts.append(self._parse_and())
        return parts[0] if len(parts) == 1 else PredOr(tuple(parts))

    def _parse_and(self) -> Predicate:
        parts = [self._parse_unary()]
        while self._at_word("and"):
            self.next()
            parts.append(self._parse_unary())
        return parts[0] if len(parts) == 1 else PredAnd(tuple(parts))

    def _parse_unary(self) -> Predicate:
        if self._at_word("not"):
            self.next()
            return PredNot(self._parse_unary())
        return self._parse_atom()

    def _parse_atom(self) -> Predicate:
        token = self.peek()
        if token.kind is TokenKind.LPAREN:
            self.next()
            inner = self.parse_predicate()
            self.expect(TokenKind.RPAREN)
            return inner
        if token.kind is TokenKind.STRING:
            self.next()
            return KeywordAtom(token.value, is_phrase=True)
        if token.kind in (TokenKind.WORD, TokenKind.NUMBER):
            if self.peek(1).kind is TokenKind.OP:
                return self._parse_comparison()
            self.next()
            wildcard = "*" in token.value or "?" in token.value
            return KeywordAtom(token.value, is_phrase=False, wildcard=wildcard)
        raise QuerySyntaxError(
            f"unexpected token {token.value!r} in predicate",
            column=token.position,
        )

    def _parse_comparison(self) -> Comparison:
        attr_token = self.expect(TokenKind.WORD)
        op_token = self.expect(TokenKind.OP)
        op = CompareOp(op_token.value)
        operand = self._parse_literal_operand()
        return Comparison(attr_token.value, op, operand)

    def _parse_literal_operand(self) -> Operand:
        token = self.peek()
        if token.kind is TokenKind.STRING:
            self.next()
            return Literal(token.value)
        if token.kind is TokenKind.NUMBER:
            self.next()
            number = float(token.value)
            return Literal(int(number) if number.is_integer() else number)
        if token.kind is TokenKind.DATE:
            self.next()
            return Literal(_parse_date(token.value, token.position))
        if token.kind is TokenKind.WORD:
            if self.peek(1).kind is TokenKind.LPAREN:
                name = self.next().value
                self.expect(TokenKind.LPAREN)
                self.expect(TokenKind.RPAREN)
                return FunctionCall(name)
            self.next()
            return Literal(token.value)  # bare word literal, e.g. class=figure
        raise QuerySyntaxError(
            f"expected a literal, got {token.value!r}",
            column=token.position,
        )


def _parse_date(text: str, position: int) -> datetime:
    """``DD.MM.YYYY`` (the paper's Q3 uses ``@12.06.2005``)."""
    parts = text.split(".")
    if len(parts) != 3:
        raise QuerySyntaxError(f"bad date literal @{text}", column=position)
    try:
        day, month, year = (int(p) for p in parts)
        return datetime(year, month, day)
    except ValueError:
        raise QuerySyntaxError(f"bad date literal @{text}",
                               column=position) from None
