"""The iQL abstract syntax tree."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from datetime import date
from typing import Any, Union


# ---------------------------------------------------------------------------
# Predicates (the [...] language)
# ---------------------------------------------------------------------------

class CompareOp(enum.Enum):
    EQ = "="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="


@dataclass(frozen=True)
class Literal:
    """A literal operand: string, number or date."""

    value: Any


@dataclass(frozen=True)
class FunctionCall:
    """A function operand like ``yesterday()`` — resolved at execution."""

    name: str
    args: tuple[Any, ...] = ()


@dataclass(frozen=True)
class QualifiedRef:
    """A reference to a component of a join variable.

    ``A.name`` → kind "name"; ``A.tuple.label`` → kind "tuple", attr
    "label"; ``A.class`` → kind "class"; ``A.content`` → kind "content".
    """

    variable: str
    kind: str
    attribute: str | None = None


Operand = Union[Literal, FunctionCall, QualifiedRef]


@dataclass(frozen=True)
class KeywordAtom:
    """A content constraint: a phrase (quoted) or single keyword.

    ``wildcard`` marks patterns like ``index*`` (term-level wildcards).
    """

    text: str
    is_phrase: bool = True
    wildcard: bool = False


@dataclass(frozen=True)
class Comparison:
    """``lhs op rhs``. ``lhs`` is an attribute path: "class" and "name"
    address those components, anything else a tuple attribute."""

    attribute: str
    op: CompareOp
    operand: Operand


@dataclass(frozen=True)
class PredAnd:
    parts: tuple["Predicate", ...]


@dataclass(frozen=True)
class PredOr:
    parts: tuple["Predicate", ...]


@dataclass(frozen=True)
class PredNot:
    part: "Predicate"


Predicate = Union[KeywordAtom, Comparison, PredAnd, PredOr, PredNot]


# ---------------------------------------------------------------------------
# Path expressions
# ---------------------------------------------------------------------------

class Axis(enum.Enum):
    DESCENDANT = "//"
    CHILD = "/"


@dataclass(frozen=True)
class Step:
    """One path step: axis, optional name test (``*``/``?`` wildcards,
    None = any name), optional predicate."""

    axis: Axis
    name_test: str | None = None
    predicate: Predicate | None = None

    @property
    def has_wildcard(self) -> bool:
        return (self.name_test is not None
                and ("*" in self.name_test or "?" in self.name_test))


# ---------------------------------------------------------------------------
# Top-level query forms
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PathExpr:
    steps: tuple[Step, ...]


@dataclass(frozen=True)
class PredicateExpr:
    """A bare predicate over all views: ``[size > 42000]`` or keywords."""

    predicate: Predicate


@dataclass(frozen=True)
class UnionExpr:
    parts: tuple["QueryExpr", ...]


@dataclass(frozen=True)
class IntersectExpr:
    parts: tuple["QueryExpr", ...]


@dataclass(frozen=True)
class JoinCondition:
    left: QualifiedRef
    op: CompareOp
    right: Operand


@dataclass(frozen=True)
class JoinExpr:
    """``join(q1 as A, q2 as B, A.name = B.tuple.label)``."""

    left: "QueryExpr"
    left_var: str
    right: "QueryExpr"
    right_var: str
    condition: JoinCondition


QueryExpr = Union[PathExpr, PredicateExpr, UnionExpr, IntersectExpr, JoinExpr]
