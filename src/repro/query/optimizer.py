"""Rule-based plan optimization.

The 2006 prototype used rule-based optimization (cost-based was future
work); we implement the same flavour:

* **flatten** nested intersections/unions;
* **reorder** intersection inputs so cheap, selective index lookups
  (class, exact name) run before full-text search, tuple ranges, name
  scans, and complements — the first input seeds the running
  intersection, and every later input benefits from early emptiness;
* **short-circuit** degenerate shapes (single-child inner nodes).
"""

from __future__ import annotations

from .plan import (
    AllViews,
    Complement,
    ExpandStep,
    Intersect,
    PlanNode,
    Union,
)


def optimize(plan: PlanNode) -> PlanNode:
    """Apply all rewrite rules bottom-up until stable (single pass is
    sufficient for this rule set)."""
    return _rewrite(plan)


def _rewrite(node: PlanNode) -> PlanNode:
    if isinstance(node, Intersect):
        parts = _flatten_intersect([_rewrite(p) for p in node.parts])
        parts.sort(key=lambda p: p.COST)
        if len(parts) == 1:
            return parts[0]
        return Intersect(tuple(parts))
    if isinstance(node, Union):
        parts = _flatten_union([_rewrite(p) for p in node.parts])
        if len(parts) == 1:
            return parts[0]
        return Union(tuple(parts))
    if isinstance(node, Complement):
        inner = _rewrite(node.part)
        if isinstance(inner, Complement):
            return inner.part  # NOT NOT x = x
        return Complement(inner)
    if isinstance(node, ExpandStep):
        candidates = (_rewrite(node.candidates)
                      if node.candidates is not None else None)
        if isinstance(candidates, AllViews):
            candidates = None  # expansion already yields all reached views
        return ExpandStep(input=_rewrite(node.input), axis=node.axis,
                          candidates=candidates, strategy=node.strategy)
    return node


def optimize_with_statistics(plan: PlanNode, ctx) -> PlanNode:
    """Cost-based refinement (the paper's "avenue of future work").

    After the rule pass, intersection inputs are re-ordered by *actual*
    estimated cardinalities pulled from the live indexes — document
    frequencies, catalog class counts, attribute column sizes — instead
    of the static cost classes. A very common class test then correctly
    runs after a rare keyword, which the rule optimizer gets wrong.
    """
    plan = _rewrite(plan)
    return _reorder_by_estimates(plan, ctx)


def _reorder_by_estimates(node: PlanNode, ctx) -> PlanNode:
    if isinstance(node, Intersect):
        parts = [_reorder_by_estimates(p, ctx) for p in node.parts]
        parts.sort(key=lambda p: p.estimate(ctx))
        return Intersect(tuple(parts))
    if isinstance(node, Union):
        return Union(tuple(_reorder_by_estimates(p, ctx)
                           for p in node.parts))
    if isinstance(node, Complement):
        return Complement(_reorder_by_estimates(node.part, ctx))
    if isinstance(node, ExpandStep):
        candidates = (_reorder_by_estimates(node.candidates, ctx)
                      if node.candidates is not None else None)
        return ExpandStep(input=_reorder_by_estimates(node.input, ctx),
                          axis=node.axis, candidates=candidates,
                          strategy=node.strategy)
    return node


def _flatten_intersect(parts: list[PlanNode]) -> list[PlanNode]:
    out: list[PlanNode] = []
    for part in parts:
        if isinstance(part, Intersect):
            out.extend(part.parts)
        elif isinstance(part, AllViews):
            continue  # intersecting with the universe is a no-op
        else:
            out.append(part)
    return out or [AllViews()]


def _flatten_union(parts: list[PlanNode]) -> list[PlanNode]:
    out: list[PlanNode] = []
    for part in parts:
        if isinstance(part, Union):
            out.extend(part.parts)
        else:
            out.append(part)
    return out
