"""Rule-based plan optimization.

The 2006 prototype used rule-based optimization (cost-based was future
work); we implement the same flavour:

* **flatten** nested intersections/unions;
* **reorder** intersection inputs so cheap, selective index lookups
  (class, exact name) run before full-text search, tuple ranges, name
  scans, and complements — the first input seeds the running
  intersection, and every later input benefits from early emptiness;
* **short-circuit** degenerate shapes (single-child inner nodes);
* **push limits down**: nested limits collapse to the smaller count,
  and a limit over a union caps each branch (sound because every
  operator emits distinct rows, so k distinct union results need at
  most the first k of any branch) — together with the engine's
  early-terminating ``LimitOp`` this keeps LIMIT cost independent of
  corpus size.

Every rewrite may be recorded into a
:class:`~repro.trace.TraceCollector` (pass ``trace=``), which is how
``EXPLAIN ANALYZE`` shows *which* rules actually fired for a query —
the reorderings were previously invisible from the outside.
"""

from __future__ import annotations

from .plan import (
    AllViews,
    Complement,
    ExpandStep,
    Intersect,
    Limit,
    PlanNode,
    Union,
)


def optimize(plan: PlanNode, trace=None) -> PlanNode:
    """Apply all rewrite rules bottom-up until stable (single pass is
    sufficient for this rule set). ``trace`` records applied rewrites."""
    return _rewrite(plan, trace)


def _record(trace, rule: str, detail: str) -> None:
    if trace is not None:
        trace.record_rewrite(rule, detail)


def _describe_parts(parts: list[PlanNode]) -> str:
    return "[" + ", ".join(p.describe() for p in parts) + "]"


def _rewrite(node: PlanNode, trace=None) -> PlanNode:
    if isinstance(node, Intersect):
        parts = _flatten_intersect([_rewrite(p, trace) for p in node.parts],
                                   trace)
        ordered = sorted(parts, key=lambda p: p.COST)
        if ordered != parts:
            _record(trace, "reorder-intersect",
                    f"{_describe_parts(parts)} -> "
                    f"{_describe_parts(ordered)}")
        if len(ordered) == 1:
            _record(trace, "collapse-single-child",
                    f"Intersect({ordered[0].describe()}) -> "
                    f"{ordered[0].describe()}")
            return ordered[0]
        return Intersect(tuple(ordered))
    if isinstance(node, Union):
        parts = _flatten_union([_rewrite(p, trace) for p in node.parts],
                               trace)
        if len(parts) == 1:
            _record(trace, "collapse-single-child",
                    f"Union({parts[0].describe()}) -> "
                    f"{parts[0].describe()}")
            return parts[0]
        return Union(tuple(parts))
    if isinstance(node, Complement):
        inner = _rewrite(node.part, trace)
        if isinstance(inner, Complement):
            _record(trace, "eliminate-double-negation",
                    f"Complement(Complement({inner.part.describe()})) -> "
                    f"{inner.part.describe()}")
            return inner.part  # NOT NOT x = x
        return Complement(inner)
    if isinstance(node, ExpandStep):
        candidates = (_rewrite(node.candidates, trace)
                      if node.candidates is not None else None)
        if isinstance(candidates, AllViews):
            # expansion already yields all reached views
            _record(trace, "drop-universe-candidates",
                    "ExpandStep candidates AllViews -> (none)")
            candidates = None
        return ExpandStep(input=_rewrite(node.input, trace), axis=node.axis,
                          candidates=candidates, strategy=node.strategy)
    if isinstance(node, Limit):
        return _limit(_rewrite(node.part, trace), node.count, trace)
    return node


def _limit(part: PlanNode, count: int, trace=None) -> PlanNode:
    """Place a limit of ``count`` over ``part``, pushing it down."""
    if isinstance(part, Limit):
        merged = min(count, part.count)
        _record(trace, "collapse-limit",
                f"Limit({count})(Limit({part.count})) -> Limit({merged})")
        return _limit(part.part, merged, trace)
    if isinstance(part, Union) and len(part.parts) > 1:
        capped = tuple(
            p if isinstance(p, Limit) and p.count <= count
            else _limit(p, count, trace)
            for p in part.parts
        )
        if capped != part.parts:
            _record(trace, "push-limit-into-union",
                    f"Limit({count}) pushed into "
                    f"{len(part.parts)} union branches")
        return Limit(part=Union(capped), count=count)
    return Limit(part=part, count=count)


def optimize_with_statistics(plan: PlanNode, ctx, trace=None) -> PlanNode:
    """Cost-based refinement (the paper's "avenue of future work").

    After the rule pass, intersection inputs are re-ordered by *actual*
    estimated cardinalities pulled from the live indexes — document
    frequencies, catalog class counts, attribute column sizes — instead
    of the static cost classes. A very common class test then correctly
    runs after a rare keyword, which the rule optimizer gets wrong.
    """
    plan = _rewrite(plan, trace)
    return _reorder_by_estimates(plan, ctx, trace)


def _reorder_by_estimates(node: PlanNode, ctx, trace=None) -> PlanNode:
    if isinstance(node, Intersect):
        parts = [_reorder_by_estimates(p, ctx, trace) for p in node.parts]
        ordered = sorted(parts, key=lambda p: p.estimate(ctx))
        if ordered != parts:
            _record(trace, "reorder-by-estimate",
                    f"{_describe_parts(parts)} -> "
                    f"{_describe_parts(ordered)}")
        return Intersect(tuple(ordered))
    if isinstance(node, Union):
        return Union(tuple(_reorder_by_estimates(p, ctx, trace)
                           for p in node.parts))
    if isinstance(node, Complement):
        return Complement(_reorder_by_estimates(node.part, ctx, trace))
    if isinstance(node, ExpandStep):
        candidates = (_reorder_by_estimates(node.candidates, ctx, trace)
                      if node.candidates is not None else None)
        return ExpandStep(input=_reorder_by_estimates(node.input, ctx, trace),
                          axis=node.axis, candidates=candidates,
                          strategy=node.strategy)
    if isinstance(node, Limit):
        return Limit(part=_reorder_by_estimates(node.part, ctx, trace),
                     count=node.count)
    return node


def _flatten_intersect(parts: list[PlanNode], trace=None) -> list[PlanNode]:
    out: list[PlanNode] = []
    for part in parts:
        if isinstance(part, Intersect):
            _record(trace, "flatten-intersect",
                    f"inlined {_describe_parts(list(part.parts))}")
            out.extend(part.parts)
        elif isinstance(part, AllViews):
            # intersecting with the universe is a no-op
            _record(trace, "drop-universe-input",
                    "Intersect input AllViews dropped")
            continue
        else:
            out.append(part)
    return out or [AllViews()]


def _flatten_union(parts: list[PlanNode], trace=None) -> list[PlanNode]:
    out: list[PlanNode] = []
    for part in parts:
        if isinstance(part, Union):
            _record(trace, "flatten-union",
                    f"inlined {_describe_parts(list(part.parts))}")
            out.extend(part.parts)
        else:
            out.append(part)
    return out
