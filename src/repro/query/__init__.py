"""iQL — the iMeMex Query Language (Section 5.1 of the paper).

iQL extends IR keyword search with path expressions and predicates on
attributes (in the spirit of NEXI): casual users type keywords, advanced
users add structure. The examples from the paper all work::

    "Donald Knuth"
    "Donald" and "Knuth"
    [size > 42000 and lastmodified < yesterday()]
    //Introduction[class="latex_section"]
    //PIM//Introduction[class="latex_section" and "Mike Franklin"]
    //OLAP//[class="figure" and "Indexing time"]
    union( //VLDB2005//*["documents"], //VLDB2006//*["documents"] )
    join( //VLDB2006//*[class="texref"] as A,
          //VLDB2006//*[class="environment"]//figure* as B,
          A.name = B.tuple.label )

The processor is layered like iMeMex's: :mod:`lexer`/:mod:`parser`
produce an AST, the rule-based :mod:`optimizer` orders predicates by
estimated selectivity, :mod:`plan` builds a physical operator tree over
the RVM's indexes and replicas, and :mod:`executor` runs it.
"""

from .ast import (
    Comparison,
    JoinExpr,
    KeywordAtom,
    PathExpr,
    PredAnd,
    PredNot,
    PredOr,
    PredicateExpr,
    QualifiedRef,
    Step,
    UnionExpr,
)
from .executor import Hit, JoinHit, PreparedQuery, QueryProcessor, QueryResult
from .parser import parse_iql

__all__ = [
    "Comparison", "JoinExpr", "KeywordAtom", "PathExpr", "PredAnd",
    "PredNot", "PredOr", "PredicateExpr", "QualifiedRef", "Step",
    "UnionExpr", "Hit", "JoinHit", "PreparedQuery", "QueryProcessor",
    "QueryResult", "parse_iql",
]
