"""Serializing iQL ASTs back to query text.

``parse_iql(unparse(ast))`` reproduces the AST — the property the
round-trip tests assert. Useful for logging optimized/rewritten queries,
shipping queries between peers, and persisting standing queries.
"""

from __future__ import annotations

from datetime import date, datetime

from ..core.errors import QueryError
from .ast import (
    Axis,
    Comparison,
    FunctionCall,
    IntersectExpr,
    JoinExpr,
    KeywordAtom,
    Literal,
    Operand,
    PathExpr,
    PredAnd,
    Predicate,
    PredicateExpr,
    PredNot,
    PredOr,
    QualifiedRef,
    QueryExpr,
    UnionExpr,
)

#: Characters safe inside an unquoted name test / bare word.
_WORD_SAFE = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-*?."
)


def unparse(query: QueryExpr) -> str:
    """Render a query AST as iQL text."""
    if isinstance(query, PathExpr):
        return "".join(_unparse_step(step) for step in query.steps)
    if isinstance(query, PredicateExpr):
        # keyword-only predicates may stand bare; anything with
        # comparisons needs brackets
        if _is_keyword_only(query.predicate):
            return _unparse_predicate(query.predicate, top=True)
        return f"[{_unparse_predicate(query.predicate, top=True)}]"
    if isinstance(query, UnionExpr):
        return "union( " + ", ".join(unparse(p) for p in query.parts) + " )"
    if isinstance(query, IntersectExpr):
        return ("intersect( "
                + ", ".join(unparse(p) for p in query.parts) + " )")
    if isinstance(query, JoinExpr):
        condition = (f"{_unparse_operand(query.condition.left)} "
                     f"{query.condition.op.value} "
                     f"{_unparse_operand(query.condition.right)}")
        return (f"join( {unparse(query.left)} as {query.left_var}, "
                f"{unparse(query.right)} as {query.right_var}, "
                f"{condition} )")
    raise QueryError(f"cannot unparse {type(query).__name__}")


def _is_keyword_only(predicate: Predicate) -> bool:
    if isinstance(predicate, KeywordAtom):
        return True
    if isinstance(predicate, (PredAnd, PredOr)):
        return all(_is_keyword_only(p) for p in predicate.parts)
    if isinstance(predicate, PredNot):
        return _is_keyword_only(predicate.part)
    return False


def _unparse_step(step) -> str:
    out = step.axis.value
    if step.name_test is not None:
        if set(step.name_test) <= _WORD_SAFE:
            out += step.name_test
        else:
            out += f'"{step.name_test}"'
    if step.predicate is not None:
        out += f"[{_unparse_predicate(step.predicate, top=True)}]"
    return out


def _unparse_predicate(predicate: Predicate, *, top: bool = False) -> str:
    if isinstance(predicate, KeywordAtom):
        if predicate.is_phrase or not set(predicate.text) <= _WORD_SAFE:
            return f'"{predicate.text}"'
        return predicate.text
    if isinstance(predicate, Comparison):
        return (f"{predicate.attribute} {predicate.op.value} "
                f"{_unparse_operand(predicate.operand)}")
    if isinstance(predicate, PredAnd):
        inner = " and ".join(_unparse_predicate(p) for p in predicate.parts)
        return inner if top else f"({inner})"
    if isinstance(predicate, PredOr):
        inner = " or ".join(_unparse_predicate(p) for p in predicate.parts)
        return inner if top else f"({inner})"
    if isinstance(predicate, PredNot):
        return f"not {_unparse_predicate(predicate.part)}"
    raise QueryError(f"cannot unparse predicate {type(predicate).__name__}")


def _unparse_operand(operand: Operand | object) -> str:
    if isinstance(operand, Literal):
        value = operand.value
        if isinstance(value, str):
            return f'"{value}"'
        if isinstance(value, datetime):
            return f"@{value.day:02d}.{value.month:02d}.{value.year:04d}"
        if isinstance(value, date):
            return f"@{value.day:02d}.{value.month:02d}.{value.year:04d}"
        return repr(value)
    if isinstance(operand, FunctionCall):
        return f"{operand.name}()"
    if isinstance(operand, QualifiedRef):
        if operand.attribute is not None:
            return f"{operand.variable}.{operand.kind}.{operand.attribute}"
        return f"{operand.variable}.{operand.kind}"
    raise QueryError(f"cannot unparse operand {type(operand).__name__}")
