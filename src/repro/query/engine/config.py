"""Engine tuning knobs, threaded through the execution context."""

from __future__ import annotations

from dataclasses import dataclass

from .batch import DEFAULT_BATCH_SIZE


@dataclass(frozen=True)
class EngineConfig:
    """Per-execution engine configuration.

    ``batch_size`` is the vector width of every operator. ``scan_threads``
    enables the partitioned parallel catalog/name scan when > 1; the
    partition list must hold at least ``parallel_threshold`` rows before
    threads are worth their startup cost (below it the scan stays
    sequential regardless). Parallel scans materialize their matches, so
    they trade LIMIT early-termination for throughput — the planner
    never enables them implicitly.
    """

    batch_size: int = DEFAULT_BATCH_SIZE
    scan_threads: int = 1
    parallel_threshold: int = 2048


DEFAULT_ENGINE = EngineConfig()
