"""The unit of data flow in the batched engine: a vector of URIs.

A :class:`Batch` is an immutable chunk of view URIs, optionally carrying
a parallel score column (top-k ranking flows scores alongside URIs
instead of re-looking them up). ``ordered=True`` asserts the stream
property the merge operators rely on: URIs are strictly increasing
*within the batch and across consecutive batches of the same stream*.
Unordered streams still never repeat a URI — every operator's output is
a set, delivered in chunks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

#: Default rows per batch. Large enough to amortize per-batch overhead
#: (one checkpoint, one counter bump), small enough that a ``LIMIT 10``
#: pulls a sliver of the corpus.
DEFAULT_BATCH_SIZE = 256


@dataclass(frozen=True)
class Batch:
    """One chunk of an operator's output stream."""

    uris: tuple[str, ...]
    scores: tuple[float, ...] | None = None
    ordered: bool = False

    def __post_init__(self) -> None:
        if self.scores is not None and len(self.scores) != len(self.uris):
            raise ValueError("score column length must match uris")

    def __len__(self) -> int:
        return len(self.uris)

    def __iter__(self) -> Iterator[str]:
        return iter(self.uris)

    @property
    def is_empty(self) -> bool:
        return not self.uris

    def truncated(self, count: int) -> "Batch":
        """The first ``count`` rows (for LIMIT's final partial batch)."""
        if count >= len(self.uris):
            return self
        return Batch(
            uris=self.uris[:count],
            scores=self.scores[:count] if self.scores is not None else None,
            ordered=self.ordered,
        )


def chunked(uris: Iterable[str], size: int, *,
            ordered: bool = False) -> Iterator[Batch]:
    """Slice a URI sequence into :class:`Batch` es of ``size`` rows."""
    buffer: list[str] = []
    for uri in uris:
        buffer.append(uri)
        if len(buffer) >= size:
            yield Batch(uris=tuple(buffer), ordered=ordered)
            buffer = []
    if buffer:
        yield Batch(uris=tuple(buffer), ordered=ordered)
