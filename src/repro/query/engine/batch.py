"""The unit of data flow in the batched engine: a vector of sort keys.

A :class:`Batch` is an immutable chunk of an operator's output. Since
the URI dictionary (DESIGN.md §4h) the column the operators move is
``keys`` — dictionary *sort keys*, dense ``int64`` values packed in an
``array('q')``, whose integer order equals URI lexicographic order.
Merges compare ints, seen-sets hash ints, sorts sort ints; only the
result boundary materializes strings, through the lazy :attr:`uris`
property and the batch's captured
:class:`~repro.rvm.uridict.DictionaryView`.

The operators themselves are representation-generic: any ordered,
hashable key type flows through them, so a batch built without a view
(``view=None``) carries its key values — URI strings in the operator
unit tests — straight through to :attr:`uris`.

``ordered=True`` asserts the stream property the merge operators rely
on: keys are strictly increasing *within the batch and across
consecutive batches of the same stream*. Unordered streams still never
repeat a key — every operator's output is a set, delivered in chunks.

A ``scores`` column optionally rides along (top-k ranking flows scores
alongside keys instead of re-looking them up).
"""

from __future__ import annotations

from array import array
from typing import Iterable, Iterator, Sequence

#: Default rows per batch. Large enough to amortize per-batch overhead
#: (one checkpoint, one counter bump), small enough that a ``LIMIT 10``
#: pulls a sliver of the corpus.
DEFAULT_BATCH_SIZE = 256

_UNSET = object()


def make_keys(values, view) -> Sequence:
    """Pack ``values`` as a key column: ``array('q')`` under a
    dictionary view, a plain tuple in string (view-less) mode."""
    if view is not None:
        return values if isinstance(values, array) else array("q", values)
    return values if isinstance(values, tuple) else tuple(values)


class Batch:
    """One chunk of an operator's output stream."""

    __slots__ = ("keys", "scores", "ordered", "view", "_uris")

    def __init__(self, keys=None, scores=None, ordered: bool = False,
                 *, view=None, uris=None):
        if keys is None:
            keys = () if uris is None else uris
        self.keys = keys
        self.scores = scores
        self.ordered = ordered
        self.view = view
        self._uris = _UNSET
        if scores is not None and len(scores) != len(keys):
            raise ValueError("score column length must match keys")

    @property
    def uris(self) -> tuple[str, ...]:
        """The batch's rows as URI strings (materialized lazily, once).

        This is the engine's *result boundary*: everything below it
        moves integer keys; callers that need surface syntax — result
        assembly, streaming iteration, cached-batch replay — pay the
        dictionary indirection here and only here.
        """
        uris = self._uris
        if uris is _UNSET:
            if self.view is None:
                uris = tuple(self.keys)
            else:
                uris = self.view.uris_for(self.keys)
            self._uris = uris
        return uris

    def __len__(self) -> int:
        return len(self.keys)

    def __iter__(self) -> Iterator:
        return iter(self.keys)

    @property
    def is_empty(self) -> bool:
        return not len(self.keys)

    def truncated(self, count: int) -> "Batch":
        """The first ``count`` rows (for LIMIT's final partial batch)."""
        if count >= len(self.keys):
            return self
        return Batch(
            self.keys[:count],
            scores=self.scores[:count] if self.scores is not None else None,
            ordered=self.ordered,
            view=self.view,
        )


def chunked(keys: Iterable, size: int, *, ordered: bool = False,
            view=None) -> Iterator[Batch]:
    """Slice a key sequence into :class:`Batch` es of ``size`` rows.

    A sliceable sequence (an ``array('q')`` from a scan, a sorted list)
    is sliced directly — an ``array`` slice stays an ``array``; other
    iterables are buffered.
    """
    if isinstance(keys, (array, tuple, list)):
        for start in range(0, len(keys), size):
            yield Batch(keys[start:start + size], ordered=ordered,
                        view=view)
        return
    buffer: list = []
    for key in keys:
        buffer.append(key)
        if len(buffer) >= size:
            yield Batch(make_keys(buffer, view), ordered=ordered, view=view)
            buffer = []
    if buffer:
        yield Batch(make_keys(buffer, view), ordered=ordered, view=view)
