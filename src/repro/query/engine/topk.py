"""Bounded-heap top-k selection with deterministic tie-breaking.

Ranking used to sort *every* scored URI and slice the head; the heap
keeps only the k best seen so far, so selecting 10 of 100 000 costs
O(n log k) time and O(k) memory. Ties are broken by URI ascending —
of two equal-score hits the lexicographically smaller URI wins — which
is the engine-wide determinism rule (see DESIGN.md §4e).
"""

from __future__ import annotations

import heapq
from functools import total_ordering


@total_ordering
class _WorstFirst:
    """Heap key ordering entries worst-first: lower score is worse; at
    equal score the lexicographically *larger* URI is worse (so the
    smaller URI survives eviction — the tie-break rule)."""

    __slots__ = ("score", "uri")

    def __init__(self, score: float, uri: str):
        self.score = score
        self.uri = uri

    def __lt__(self, other: "_WorstFirst") -> bool:
        if self.score != other.score:
            return self.score < other.score
        return self.uri > other.uri

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, _WorstFirst)
                and self.score == other.score and self.uri == other.uri)


class TopKHeap:
    """Keep the ``k`` best (score desc, URI asc) of a pushed stream."""

    def __init__(self, k: int):
        if k < 0:
            raise ValueError("k must be >= 0")
        self.k = k
        self._heap: list[_WorstFirst] = []

    def push(self, uri: str, score: float) -> None:
        if self.k == 0:
            return
        entry = _WorstFirst(score, uri)
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, entry)
        elif self._heap[0] < entry:
            heapq.heapreplace(self._heap, entry)

    def __len__(self) -> int:
        return len(self._heap)

    def best_first(self) -> list[tuple[str, float]]:
        """The retained entries, best first (score desc, URI asc)."""
        return [(e.uri, e.score)
                for e in sorted(self._heap,
                                key=lambda e: (-e.score, e.uri))]
