"""The pre-engine materializing evaluator, kept as a differential
oracle.

This is the executor the repo shipped before the batched engine: every
node recursively materializes a complete ``set[str]``. It stays here —
deliberately independent of the operator implementations — so the
property harness can assert, for hundreds of generated queries, that
the streaming engine and the old semantics agree exactly.
"""

from __future__ import annotations

from ...core.errors import QueryExecutionError
from ..ast import Axis
from ..plan import (
    AllViews,
    ClassLookup,
    Complement,
    ContentSearch,
    ExpandStep,
    Intersect,
    Limit,
    NameEquals,
    NamePattern,
    PlanNode,
    RootViews,
    TupleCompare,
    Union,
)


def reference_execute(node: PlanNode, ctx) -> set[str]:
    """Evaluate ``node`` with the original set-at-a-time semantics."""
    if isinstance(node, AllViews):
        return set(ctx.all_uris())
    if isinstance(node, RootViews):
        return ctx.root_uris()
    if isinstance(node, ContentSearch):
        return ctx.content_search(node.text, is_phrase=node.is_phrase,
                                  wildcard=node.wildcard)
    if isinstance(node, NameEquals):
        return ctx.name_equals(node.name)
    if isinstance(node, NamePattern):
        return ctx.name_pattern(node.pattern)
    if isinstance(node, ClassLookup):
        return ctx.class_lookup(node.class_name)
    if isinstance(node, TupleCompare):
        return ctx.tuple_compare(node.attribute, node.op, node.value)
    if isinstance(node, Intersect):
        result: set[str] | None = None
        for part in node.parts:
            uris = reference_execute(part, ctx)
            result = uris if result is None else result & uris
            if not result:
                return set()
        return result if result is not None else set()
    if isinstance(node, Union):
        out: set[str] = set()
        for part in node.parts:
            out |= reference_execute(part, ctx)
        return out
    if isinstance(node, Complement):
        return set(ctx.all_uris()) - reference_execute(node.part, ctx)
    if isinstance(node, ExpandStep):
        return _reference_expand(node, ctx)
    if isinstance(node, Limit):
        # LIMIT has no set-semantics counterpart beyond the subset
        # property; the oracle returns the unlimited result and the
        # harness checks containment separately.
        return reference_execute(node.part, ctx)
    raise QueryExecutionError(
        f"reference evaluator cannot run {type(node).__name__}"
    )


def _reference_expand(node: ExpandStep, ctx) -> set[str]:
    sources = reference_execute(node.input, ctx)
    if node.strategy == "forward" or node.candidates is None:
        return _forward(node, ctx, sources)
    candidates = reference_execute(node.candidates, ctx)
    if node.strategy == "backward" or len(candidates) < len(sources):
        return _backward(node, ctx, sources, candidates)
    return _forward(node, ctx, sources, candidates)


def _forward(node: ExpandStep, ctx, sources: set[str],
             candidates: set[str] | None = None) -> set[str]:
    if node.axis is Axis.CHILD:
        reached: set[str] = set()
        for uri in sources:
            reached.update(ctx.children_of(uri))
    else:
        reached = set()
        processed: set[str] = set()
        frontier = list(sources)
        while frontier:
            uri = frontier.pop()
            if uri in processed:
                continue
            processed.add(uri)
            for child in ctx.children_of(uri):
                if child not in reached:
                    reached.add(child)
                    frontier.append(child)
    ctx.expanded_views += len(reached)
    if candidates is not None:
        return reached & candidates
    if node.candidates is None:
        return reached
    return reached & reference_execute(node.candidates, ctx)


def _backward(node: ExpandStep, ctx, sources: set[str],
              candidates: set[str]) -> set[str]:
    out: set[str] = set()
    if node.axis is Axis.CHILD:
        for uri in candidates:
            parents = ctx.parents_of(uri)
            ctx.expanded_views += len(parents)
            if parents & sources:
                out.add(uri)
        return out
    for uri in candidates:
        seen: set[str] = set()
        frontier = [uri]
        hit = False
        while frontier and not hit:
            current = frontier.pop()
            for parent in ctx.parents_of(current):
                if parent in sources:
                    hit = True
                    break
                if parent not in seen:
                    seen.add(parent)
                    frontier.append(parent)
        ctx.expanded_views += len(seen)
        if hit:
            out.add(uri)
    return out
