"""Batched physical operators: the Volcano protocol over key vectors.

Every operator implements ``open(ctx)`` / ``next_batch()`` / ``close()``
and streams :class:`~repro.query.engine.batch.Batch` es to its parent.
``next_batch()`` returning ``None`` means exhausted; ``close()`` is
idempotent and releases children (a parent may close early — that is
how ``Limit`` stops a scan mid-corpus).

The operators are *representation-generic*: they compare, hash and sort
whatever the batches' ``keys`` column holds. In production that is the
URI dictionary's ``int64`` sort keys (DESIGN.md §4h) — the scans convert
URIs to keys at the leaves via the execution context, and only the
result boundary maps keys back to strings. In the operator unit tests
the very same code runs over plain URI strings (``view=None``), because
string order and key order obey the same contract.

Two stream disciplines coexist (see DESIGN.md §4e):

* **ordered** streams emit strictly increasing keys across batches —
  the sorted-merge operators (:class:`MergeIntersect`,
  :class:`MergeUnion`, :class:`MergeDiff`) require it of their inputs
  and preserve it; key order equals URI lexicographic order, so this is
  the same URI-ascending invariant as before the dictionary;
* **unordered** streams emit distinct keys in pipeline order — cheaper
  (no sort barrier), and what :class:`Limit` wants above a scan.

The compiler (:mod:`.compile`) inserts :class:`Sort` enforcers where an
ordered input is required but not provided.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from typing import Callable, Iterator

from ...rvm.keyset import KeySet
from ..ast import Axis
from .batch import Batch, chunked, make_keys
from .parallel import partitioned_filter


class Operator:
    """Base of the pull-based operator protocol."""

    #: True when this operator's output stream is strictly increasing.
    ordered = False

    def open(self, ctx) -> None:
        """Bind the execution context. Must be cheap: no substrate work
        happens until the first ``next_batch()`` pull."""
        raise NotImplementedError

    def next_batch(self) -> Batch | None:
        """The next output chunk, or ``None`` once exhausted."""
        raise NotImplementedError

    def close(self) -> None:
        """Release resources and close children (idempotent)."""


def drain(op: Operator) -> Iterator:
    """Pull ``op`` to exhaustion, yielding keys, then close it."""
    try:
        while True:
            batch = op.next_batch()
            if batch is None:
                return
            keys = batch.keys
            # unbox int64 columns once per batch (see _Cursor._load)
            yield from (keys.tolist() if isinstance(keys, array)
                        else keys)
    finally:
        op.close()


class _Cursor:
    """A row cursor over an *ordered* operator's batch stream."""

    __slots__ = ("op", "_keys", "_pos", "exhausted", "_started")

    def __init__(self, op: Operator):
        self.op = op
        self._keys = ()
        self._pos = 0
        self.exhausted = False
        self._started = False

    @property
    def value(self):
        return self._keys[self._pos]

    def _load(self) -> bool:
        while True:
            batch = self.op.next_batch()
            if batch is None:
                self.exhausted = True
                return False
            if len(batch):
                keys = batch.keys
                # int64 columns are unboxed once per batch: indexing an
                # array boxes a fresh int object on every access, which
                # would cost more than the integer compares save
                self._keys = keys.tolist() if isinstance(keys, array) \
                    else keys
                self._pos = 0
                return True

    def ensure(self) -> bool:
        """Position on the first row (no-op afterwards)."""
        if not self._started:
            self._started = True
            return self._load()
        return not self.exhausted

    def advance(self) -> bool:
        self._pos += 1
        if self._pos >= len(self._keys):
            return self._load()
        return True

    def advance_to(self, target) -> bool:
        """Skip rows < ``target`` (binary search within each batch)."""
        while not self.exhausted:
            index = bisect_left(self._keys, target, lo=self._pos)
            if index < len(self._keys):
                self._pos = index
                return True
            if not self._load():
                return False
        return False


# ---------------------------------------------------------------------------
# Scans
# ---------------------------------------------------------------------------

class SetScan(Operator):
    """An index lookup delivered in sorted batches.

    ``fetch`` runs once, on the first pull — a ``SetScan`` that is
    opened but never pulled (an intersection short-circuited by an
    earlier empty input) does no substrate work at all, matching the
    pre-engine executor's sequential short-circuit behaviour. It may
    return a :class:`~repro.rvm.keyset.KeySet` of catalog ids (the
    id-keyed indexes; zero-copy handoff to sort keys) or a ``set[str]``
    (fallback scans); ``ctx.keys_for_set`` dispatches on the type.
    """

    ordered = True

    def __init__(self, fetch: Callable[[object], object]):
        self._fetch = fetch
        self._chunks: Iterator[Batch] | None = None
        self._ctx = None

    def open(self, ctx) -> None:
        self._ctx = ctx
        self._chunks = None

    def next_batch(self) -> Batch | None:
        if self._chunks is None:
            ctx = self._ctx
            keys = ctx.keys_for_set(self._fetch(ctx))
            self._chunks = chunked(keys, ctx.engine.batch_size,
                                   ordered=True, view=ctx.dict_view)
        return next(self._chunks, None)


class CatalogScan(Operator):
    """Stream every registered view in dictionary sort-key order.

    The catalog's id keyset is handed to the dictionary view whole —
    one integer gather, no per-URI string work — and sliced into
    ordered batches, so the scan now satisfies merge parents directly
    (no Sort enforcer). One checkpoint per pull so a deadline can fire
    between batches of a long scan; rows are counted per emitted batch,
    keeping the accounting O(k) under an early-terminating ``Limit``.
    """

    ordered = True

    def __init__(self) -> None:
        self._chunks: Iterator[Batch] | None = None
        self._ctx = None

    def open(self, ctx) -> None:
        self._ctx = ctx
        self._chunks = None

    def next_batch(self) -> Batch | None:
        ctx = self._ctx
        ctx.checkpoint()
        if self._chunks is None:
            ctx.count("ctx.catalog_scan")
            keys = ctx.keys_for_set(ctx.all_ids())
            self._chunks = chunked(keys, ctx.engine.batch_size,
                                   ordered=True, view=ctx.dict_view)
        batch = next(self._chunks, None)
        if batch is not None and len(batch):
            ctx.count("engine.rows_scanned", len(batch))
        return batch


class NameScan(Operator):
    """Wildcard name match as a streaming (or partitioned parallel)
    scan over the name replica — the catalog's metadata when no replica
    is kept.

    Sequential mode matches incrementally per pull, so a ``Limit``
    above stops the scan after a sliver of the corpus. With
    ``EngineConfig.scan_threads > 1`` and a corpus past
    ``parallel_threshold``, the row list is partitioned across worker
    threads instead (matches arrive in one burst, input order kept).
    """

    ordered = False

    def __init__(self, pattern: str):
        self.pattern = pattern
        self._ctx = None
        self._rows = None
        self._regex = None
        self._parallel_chunks: Iterator[Batch] | None = None
        self._done = False
        self._rows_are_ids = False

    def open(self, ctx) -> None:
        self._ctx = ctx
        self._rows = None
        self._parallel_chunks = None
        self._done = False
        self._rows_are_ids = False

    def _row_source(self):
        """``(row key, name)`` pairs: catalog ids straight off the name
        replica when it exists (the matched rows then bind to sort keys
        by integer indexing), URIs off the catalog otherwise."""
        rvm = self._ctx.rvm
        if rvm.indexes.policy.index_names:
            self._rows_are_ids = True
            return iter(rvm.indexes.name_index.stored_id_items())
        return ((record.uri, record.name)
                for record in rvm.catalog.all_records() if record.name)

    def _bind(self, row_keys):
        """Matched row keys to a sort-key column, in input order."""
        ctx = self._ctx
        if self._rows_are_ids:
            return ctx.keys_in_order_ids(row_keys)
        return ctx.keys_in_order(row_keys)

    def _start(self) -> None:
        from ..plan import wildcard_regex
        ctx = self._ctx
        ctx.count("ctx.name_pattern")
        self._regex = wildcard_regex(self.pattern)
        config = ctx.engine
        if config.scan_threads > 1:
            rows = list(self._row_source())
            if len(rows) >= config.parallel_threshold:
                ctx.count("ctx.name_scan_parallel")
                ctx.count("engine.rows_scanned", len(rows))
                regex = self._regex
                matched = partitioned_filter(
                    rows, lambda row: regex.match(row[1]) is not None,
                    threads=config.scan_threads,
                )
                self._parallel_chunks = chunked(
                    self._bind([key for key, _ in matched]),
                    config.batch_size, view=ctx.dict_view,
                )
                return
            self._rows = iter(rows)
            return
        self._rows = self._row_source()

    def next_batch(self) -> Batch | None:
        if self._done:
            return None
        ctx = self._ctx
        ctx.checkpoint()  # both paths: cancellation observed once per pull
        if self._rows is None and self._parallel_chunks is None:
            self._start()
        if self._parallel_chunks is not None:
            batch = next(self._parallel_chunks, None)
            if batch is None:
                self._done = True
            return batch
        size = ctx.engine.batch_size
        regex = self._regex
        matched: list = []
        scanned = 0
        for row_key, name in self._rows:
            scanned += 1
            if regex.match(name):
                matched.append(row_key)
                if len(matched) >= size:
                    break
        else:
            self._done = True
        if scanned:
            ctx.count("engine.rows_scanned", scanned)
        if not matched:
            return None
        return Batch(self._bind(matched), view=ctx.dict_view)


# ---------------------------------------------------------------------------
# Streaming set combinators (sorted-merge family)
# ---------------------------------------------------------------------------

class MergeIntersect(Operator):
    """K-way sorted-merge intersection.

    Inputs advance in plan order, so an empty first input finishes the
    operator before later inputs do any work (the classic sequential
    short-circuit), and a ``Limit`` above stops the merge after k
    matches instead of materializing every side.
    """

    ordered = True

    def __init__(self, children: list[Operator]):
        self.children = children
        self._cursors: list[_Cursor] | None = None
        self._done = False
        self._ctx = None

    def open(self, ctx) -> None:
        self._ctx = ctx
        for child in self.children:
            child.open(ctx)
        self._cursors = [_Cursor(c) for c in self.children]
        self._done = False

    def next_batch(self) -> Batch | None:
        if self._done:
            return None
        cursors = self._cursors
        for cursor in cursors:  # plan order: empty-first short-circuits
            if not cursor.ensure():
                self._finish()
                return None
        ctx = self._ctx
        size = ctx.engine.batch_size
        out: list = []
        while len(out) < size:
            high = max(cursor.value for cursor in cursors)
            if all(cursor.value == high for cursor in cursors):
                out.append(high)
                if not all(cursor.advance() for cursor in cursors):
                    self._finish()
                    break
            elif not all(cursor.advance_to(high) for cursor in cursors):
                self._finish()
                break
        if not out:
            return None
        return Batch(make_keys(out, ctx.dict_view), ordered=True,
                     view=ctx.dict_view)

    def _finish(self) -> None:
        self._done = True
        self.close()

    def close(self) -> None:
        for child in self.children:
            child.close()


class MergeUnion(Operator):
    """K-way sorted-merge union with duplicate elimination (ordered)."""

    ordered = True

    def __init__(self, children: list[Operator]):
        self.children = children
        self._heap: list | None = None
        self._cursors: list[_Cursor] | None = None
        self._last = None
        self._ctx = None

    def open(self, ctx) -> None:
        self._ctx = ctx
        for child in self.children:
            child.open(ctx)
        self._cursors = [_Cursor(c) for c in self.children]
        self._heap = None
        self._last = None

    def next_batch(self) -> Batch | None:
        import heapq
        if self._heap is None:
            self._heap = []
            for index, cursor in enumerate(self._cursors):
                if cursor.ensure():
                    heapq.heappush(self._heap, (cursor.value, index))
        heap = self._heap
        ctx = self._ctx
        size = ctx.engine.batch_size
        out: list = []
        while heap and len(out) < size:
            value, index = heapq.heappop(heap)
            if value != self._last:
                # equal keys from other inputs are popped and dropped on
                # later iterations — that is the duplicate elimination.
                # _last spans batches: a batch may fill exactly at a value
                # another child still holds on the heap, and that leftover
                # must not reopen the next batch.
                out.append(value)
                self._last = value
            cursor = self._cursors[index]
            if cursor.advance():
                heapq.heappush(heap, (cursor.value, index))
        if not out:
            return None
        return Batch(make_keys(out, ctx.dict_view), ordered=True,
                     view=ctx.dict_view)

    def close(self) -> None:
        for child in self.children:
            child.close()


class ConcatUnion(Operator):
    """Sequential union: children stream one after another, a seen-set
    drops duplicates. Unordered, but fully lazy — later children are
    not even pulled until earlier ones exhaust, which keeps span and
    substrate accounting identical to the pre-engine executor and lets
    ``Limit`` skip trailing children entirely."""

    ordered = False

    def __init__(self, children: list[Operator]):
        self.children = children
        self._index = 0
        self._seen: set = set()

    def open(self, ctx) -> None:
        for child in self.children:
            child.open(ctx)
        self._index = 0
        self._seen = set()

    def next_batch(self) -> Batch | None:
        while self._index < len(self.children):
            child = self.children[self._index]
            batch = child.next_batch()
            if batch is None:
                child.close()
                self._index += 1
                continue
            keys = batch.keys
            if isinstance(keys, array):  # unbox once (see _Cursor._load)
                keys = keys.tolist()
            fresh = [k for k in keys if k not in self._seen]
            if fresh:
                self._seen.update(fresh)
                return Batch(make_keys(fresh, batch.view), view=batch.view)
        return None

    def close(self) -> None:
        for child in self.children:
            child.close()


class MergeDiff(Operator):
    """Sorted-merge anti-join: ``universe`` rows absent from ``child``
    (the Complement). Streams both sides — no materialized difference
    set, and early termination under ``Limit`` works."""

    ordered = True

    def __init__(self, universe: Operator, child: Operator):
        self.universe = universe
        self.child = child
        self._ctx = None
        self._u: _Cursor | None = None
        self._c: _Cursor | None = None

    def open(self, ctx) -> None:
        self._ctx = ctx
        self.universe.open(ctx)
        self.child.open(ctx)
        self._u = _Cursor(self.universe)
        self._c = _Cursor(self.child)

    def next_batch(self) -> Batch | None:
        u, c = self._u, self._c
        if not u.ensure():
            return None
        c.ensure()
        ctx = self._ctx
        size = ctx.engine.batch_size
        out: list = []
        while not u.exhausted and len(out) < size:
            value = u.value
            if not c.exhausted and c.advance_to(value) and c.value == value:
                u.advance()
                continue
            out.append(value)
            u.advance()
        if not out:
            return None
        return Batch(make_keys(out, ctx.dict_view), ordered=True,
                     view=ctx.dict_view)

    def close(self) -> None:
        self.universe.close()
        self.child.close()


class Sort(Operator):
    """Order enforcer: drain the child, dedup, sort, re-chunk. The
    barrier the merge operators need below an unordered input."""

    ordered = True

    def __init__(self, child: Operator):
        self.child = child
        self._chunks: Iterator[Batch] | None = None
        self._ctx = None

    def open(self, ctx) -> None:
        self._ctx = ctx
        self.child.open(ctx)
        self._chunks = None

    def next_batch(self) -> Batch | None:
        if self._chunks is None:
            ctx = self._ctx
            keys = make_keys(sorted(set(drain(self.child))), ctx.dict_view)
            self._chunks = chunked(keys, ctx.engine.batch_size,
                                   ordered=True, view=ctx.dict_view)
        return next(self._chunks, None)

    def close(self) -> None:
        self.child.close()


# ---------------------------------------------------------------------------
# Limit / top-k
# ---------------------------------------------------------------------------

class LimitOp(Operator):
    """Genuine early termination: after ``count`` rows the child is
    closed and never pulled again — a streaming scan below stops
    mid-corpus."""

    def __init__(self, child: Operator, count: int):
        self.child = child
        self.count = count
        self._remaining = count

    @property
    def ordered(self) -> bool:  # type: ignore[override]
        return self.child.ordered

    def open(self, ctx) -> None:
        self.child.open(ctx)
        self._remaining = self.count

    def next_batch(self) -> Batch | None:
        if self._remaining <= 0:
            return None
        batch = self.child.next_batch()
        if batch is None:
            self._remaining = 0
            return None
        if len(batch) >= self._remaining:
            batch = batch.truncated(self._remaining)
            self._remaining = 0
            self.child.close()  # stop pulling: the scan below halts
            return batch
        self._remaining -= len(batch)
        return batch

    def close(self) -> None:
        self.child.close()


class TopKOperator(Operator):
    """Bounded-heap top-k over a score-carrying batch stream.

    Emits the k best rows best-first (score desc, key asc tie-break —
    key order is URI order, so ties still break URI-ascending), scores
    attached. Rows without a score column rank at 0.0.
    """

    ordered = False  # score order, not key order

    def __init__(self, child: Operator, k: int):
        self.child = child
        self.k = k
        self._chunks: Iterator[Batch] | None = None
        self._ctx = None

    def open(self, ctx) -> None:
        self._ctx = ctx
        self.child.open(ctx)
        self._chunks = None

    def next_batch(self) -> Batch | None:
        from .topk import TopKHeap
        if self._chunks is None:
            heap = TopKHeap(self.k)
            try:
                while True:
                    batch = self.child.next_batch()
                    if batch is None:
                        break
                    scores = batch.scores or (0.0,) * len(batch)
                    for key, score in zip(batch.keys, scores):
                        heap.push(key, score)
            finally:
                self.child.close()
            best = heap.best_first()
            view = self._ctx.dict_view
            size = self._ctx.engine.batch_size
            self._chunks = iter([
                Batch(make_keys([k for k, _ in best[i:i + size]], view),
                      scores=tuple(s for _, s in best[i:i + size]),
                      view=view)
                for i in range(0, len(best), size)
            ])
        return next(self._chunks, None)

    def close(self) -> None:
        self.child.close()


# ---------------------------------------------------------------------------
# Expansion (group navigation)
# ---------------------------------------------------------------------------

class ExpandOperator(Operator):
    """Path-step navigation re-seated on the batch protocol.

    Forward expansion is *pipelined*: input batches feed a multi-source
    BFS whose discoveries stream out as they are made, with the shared
    reached/processed sets doubling as the cycle guard (a group cycle
    terminates because no URI is expanded twice). Backward and
    bidirectional strategies need both frontiers materialized, so they
    keep the pre-engine algorithms and emit their result sorted.
    """

    def __init__(self, input_op: Operator, candidates_op: Operator | None,
                 axis: Axis, strategy: str):
        self.input_op = input_op
        self.candidates_op = candidates_op
        self.axis = axis
        self.strategy = strategy
        self.ordered = (strategy in ("backward", "auto")
                        and candidates_op is not None)
        self._batches: Iterator[Batch] | None = None
        self._ctx = None

    def open(self, ctx) -> None:
        self._ctx = ctx
        self.input_op.open(ctx)
        if self.candidates_op is not None:
            self.candidates_op.open(ctx)
        self._batches = None

    def next_batch(self) -> Batch | None:
        if self._batches is None:
            ctx = self._ctx
            size = ctx.engine.batch_size
            if self.ordered:
                keys = ctx.keys_for_set(self._materialized())
                self._batches = chunked(keys, size, ordered=True,
                                        view=ctx.dict_view)
            else:
                self._batches = chunked(self._forward_stream(), size,
                                        view=ctx.dict_view)
        return next(self._batches, None)

    def close(self) -> None:
        self.input_op.close()
        if self.candidates_op is not None:
            self.candidates_op.close()

    # -- pipelined forward expansion ---------------------------------------

    def _forward_stream(self) -> Iterator:
        """Yield *keys* of discovered views.

        With the group replica available the walk runs entirely in id
        space (:meth:`_forward_stream_ids`) — catalog ids in, catalog
        ids out, compressed keysets as the cycle guard. Without it (or
        in the operator unit tests' string mode) the graph is walked in
        URI space: ``children_of`` speaks URIs, so each hop converts
        key→URI at the input edge and URI→key at the output edge."""
        ctx = self._ctx
        # per-edge conversions dominate the walk; bind them once
        view = ctx.dict_view
        if view is not None and getattr(ctx, "supports_id_expansion",
                                        False):
            yield from self._forward_stream_ids(view)
            return
        if view is not None:
            uri_of, key_of = view.uri_for, view.key_for
        else:
            uri_of, key_of = ctx.uri_of_key, ctx.key_for_uri
        children_of = ctx.children_of
        candidates = (set(drain(self.candidates_op))
                      if self.candidates_op is not None else None)
        reached: set = set()  # keys
        if self.axis is Axis.CHILD:
            while True:
                batch = self.input_op.next_batch()
                if batch is None:
                    break
                for key in batch:
                    for child in children_of(uri_of(key)):
                        child_key = key_of(child)
                        if child_key not in reached:
                            reached.add(child_key)
                            ctx.expanded_views += 1
                            if candidates is None or child_key in candidates:
                                yield child_key
            return
        # descendant axis: incremental multi-source BFS. ``reached`` is
        # the cycle guard — a key discovered once is never re-expanded.
        processed: set = set()
        while True:
            batch = self.input_op.next_batch()
            if batch is None:
                return
            for source in batch:
                frontier = [source]
                while frontier:
                    key = frontier.pop()
                    if key in processed:
                        continue
                    processed.add(key)
                    for child in children_of(uri_of(key)):
                        child_key = key_of(child)
                        if child_key not in reached:
                            reached.add(child_key)
                            ctx.expanded_views += 1
                            frontier.append(child_key)
                            if candidates is None or child_key in candidates:
                                yield child_key

    def _forward_stream_ids(self, view) -> Iterator:
        """The pipelined forward walk in id space: input sort keys
        invert to catalog ids, the replica hands back child *ids*, and
        the reached/processed guards are compressed keysets. The only
        per-row conversion left is the id→sort-key array index on
        emitted discoveries."""
        ctx = self._ctx
        id_for_key, key_for_id = view.id_for_key, view.key_for_id
        children_ids_of = ctx.children_ids_of
        candidates = (set(drain(self.candidates_op))
                      if self.candidates_op is not None else None)
        reached = KeySet()  # ids; .add doubles as the membership test
        if self.axis is Axis.CHILD:
            while True:
                batch = self.input_op.next_batch()
                if batch is None:
                    return
                for key in batch:
                    for child in children_ids_of(id_for_key(key)):
                        if reached.add(child):
                            ctx.expanded_views += 1
                            child_key = key_for_id(child)
                            if candidates is None or child_key in candidates:
                                yield child_key
        # descendant axis: incremental multi-source BFS; ``reached`` is
        # the cycle guard — an id discovered once is never re-expanded.
        processed = KeySet()
        while True:
            batch = self.input_op.next_batch()
            if batch is None:
                return
            for source in batch:
                frontier = [id_for_key(source)]
                while frontier:
                    node = frontier.pop()
                    if not processed.add(node):
                        continue
                    for child in children_ids_of(node):
                        if reached.add(child):
                            ctx.expanded_views += 1
                            frontier.append(child)
                            child_key = key_for_id(child)
                            if candidates is None or child_key in candidates:
                                yield child_key

    # -- materialized strategies (backward / bidirectional) ----------------

    def _materialized(self) -> set[str]:
        """Both frontiers materialized as URI sets — these strategies
        run the pre-engine graph algorithms unchanged in string space;
        the caller converts the result back to sorted keys."""
        ctx = self._ctx
        sources = {ctx.uri_of_key(k) for k in drain(self.input_op)}
        candidates = {ctx.uri_of_key(k) for k in drain(self.candidates_op)}
        if self.strategy == "backward" or len(candidates) < len(sources):
            return self._backward(ctx, sources, candidates)
        return self._forward_into(ctx, sources, candidates)

    def _forward_into(self, ctx, sources: set[str],
                      candidates: set[str]) -> set[str]:
        reached: set[str] = set()
        if self.axis is Axis.CHILD:
            for uri in sources:
                reached.update(ctx.children_of(uri))
        else:
            processed: set[str] = set()
            frontier = list(sources)
            while frontier:
                uri = frontier.pop()
                if uri in processed:
                    continue
                processed.add(uri)
                for child in ctx.children_of(uri):
                    if child not in reached:
                        reached.add(child)
                        frontier.append(child)
        ctx.expanded_views += len(reached)
        return reached & candidates

    def _backward(self, ctx, sources: set[str],
                  candidates: set[str]) -> set[str]:
        out: set[str] = set()
        if self.axis is Axis.CHILD:
            for uri in candidates:
                parents = ctx.parents_of(uri)
                ctx.expanded_views += len(parents)
                if parents & sources:
                    out.add(uri)
            return out
        for uri in candidates:
            # BFS up the reverse edges, early-exiting on the first source
            seen: set[str] = set()
            frontier = [uri]
            hit = False
            while frontier and not hit:
                current = frontier.pop()
                for parent in ctx.parents_of(current):
                    if parent in sources:
                        hit = True
                        break
                    if parent not in seen:
                        seen.add(parent)
                        frontier.append(parent)
            ctx.expanded_views += len(seen)
            if hit:
                out.add(uri)
        return out
