"""The batched, pull-based query engine (Volcano over key vectors).

Plans still come from :mod:`repro.query.plan` / the optimizer; this
package executes them: :func:`compile_plan` lowers the node tree to
``open()/next_batch()/close()`` operators, :func:`iter_batches` drives
the root, and :func:`materialize_set` is the compatibility shim that
gives the old "a plan yields a ``set[str]``" contract to callers that
still want it (``PlanNode.execute`` delegates here).
"""

from __future__ import annotations

from typing import Iterator

from .batch import Batch, DEFAULT_BATCH_SIZE, chunked
from .compile import compile_plan
from .config import DEFAULT_ENGINE, EngineConfig
from .operators import Operator
from .parallel import partitioned_filter
from .reference import reference_execute
from .topk import TopKHeap

__all__ = [
    "Batch",
    "DEFAULT_BATCH_SIZE",
    "DEFAULT_ENGINE",
    "EngineConfig",
    "Operator",
    "TopKHeap",
    "chunked",
    "compile_plan",
    "iter_batches",
    "materialize_set",
    "partitioned_filter",
    "reference_execute",
]


def iter_batches(plan, ctx, *, require_ordered: bool = False
                 ) -> Iterator[Batch]:
    """Compile ``plan`` and stream its non-empty result batches.

    The operator tree is closed when the stream exhausts, when the
    consumer abandons the generator, or when a pull raises — so spans
    seal and scans release in every exit path. Rows and batches emitted
    at the root feed the global ``query.engine.rows`` /
    ``query.engine.batches`` counters on close — the same names whether
    the run is traced or not, so live dashboards and EXPLAIN ANALYZE
    agree (two counter bumps per execution, off the per-row path).
    """
    from ... import obs
    op = compile_plan(plan, ctx, require_ordered=require_ordered)
    op.open(ctx)
    rows = batches = 0
    try:
        while True:
            batch = op.next_batch()
            if batch is None:
                return
            if len(batch):
                rows += len(batch)
                batches += 1
                yield batch
    finally:
        op.close()
        if batches and obs.enabled():
            obs.increment("query.engine.rows", rows)
            obs.increment("query.engine.batches", batches)


def materialize_set(plan, ctx) -> set[str]:
    """The compatibility shim: run the batched engine to completion and
    collect the distinct URIs, restoring the old ``set[str]`` root
    contract."""
    out: set[str] = set()
    for batch in iter_batches(plan, ctx):
        out.update(batch.uris)
    return out
