"""Compiling a logical plan tree into a physical operator tree.

The compiler resolves each :class:`~repro.query.plan.PlanNode` to a
batched operator, threads the *ordered* physical property downward
(merge operators require sorted inputs; a plain scan does not), and
inserts :class:`~.operators.Sort` enforcers — recorded as
``enforce-ordered`` rewrite events — where an unordered stream feeds an
order-requiring parent. With a trace active, every node is wrapped in a
:class:`~.traced.TracedOperator` so EXPLAIN ANALYZE sees the pull
boundary.
"""

from __future__ import annotations

from ...core.errors import QueryExecutionError
from ..plan import (
    AllViews,
    ClassLookup,
    Complement,
    ContentSearch,
    ExpandStep,
    Intersect,
    Limit,
    NameEquals,
    NamePattern,
    PlanNode,
    RootViews,
    TupleCompare,
    Union,
)
from .operators import (
    CatalogScan,
    ConcatUnion,
    ExpandOperator,
    LimitOp,
    MergeDiff,
    MergeIntersect,
    MergeUnion,
    NameScan,
    Operator,
    SetScan,
    Sort,
)
from .traced import TracedOperator


def compile_plan(node: PlanNode, ctx, *,
                 require_ordered: bool = False) -> Operator:
    """The physical operator tree for ``node`` (not yet opened)."""
    return _compile(node, ctx, require_ordered)


def _compile(node: PlanNode, ctx, ordered: bool) -> Operator:
    op = _physical(node, ctx, ordered)
    if ctx.trace is not None:
        op = TracedOperator(op, operator=type(node).__name__,
                            detail=node.describe(), estimate=node.estimate)
    if ordered and not op.ordered:
        if ctx.trace is not None:
            ctx.trace.record_rewrite(
                "enforce-ordered",
                f"Sort inserted above {node.describe()}",
            )
            return TracedOperator(Sort(op), operator="Sort",
                                  detail=f"Sort({node.describe()})",
                                  estimate=node.estimate)
        return Sort(op)
    return op


def _physical(node: PlanNode, ctx, ordered: bool) -> Operator:
    if isinstance(node, AllViews):
        # the catalog scan streams the id keyset in sort-key order, so
        # it serves ordered and unordered parents alike
        return CatalogScan()
    if isinstance(node, RootViews):
        return SetScan(lambda c: c.root_uris())
    if isinstance(node, ContentSearch):
        return SetScan(lambda c: c.content_search_ids(
            node.text, is_phrase=node.is_phrase, wildcard=node.wildcard
        ))
    if isinstance(node, NameEquals):
        return SetScan(lambda c: c.name_equals_ids(node.name))
    if isinstance(node, NamePattern):
        if ordered:
            # the substrate lookup already materializes; sorting it
            # directly beats a Sort enforcer over the streaming scan
            return SetScan(lambda c: c.name_pattern_ids(node.pattern))
        return NameScan(node.pattern)
    if isinstance(node, ClassLookup):
        return SetScan(lambda c: c.class_lookup_ids(node.class_name))
    if isinstance(node, TupleCompare):
        return SetScan(lambda c: c.tuple_compare_ids(
            node.attribute, node.op, node.value
        ))
    if isinstance(node, Intersect):
        return MergeIntersect([_compile(p, ctx, True) for p in node.parts])
    if isinstance(node, Union):
        if ordered:
            return MergeUnion([_compile(p, ctx, True) for p in node.parts])
        return ConcatUnion([_compile(p, ctx, False) for p in node.parts])
    if isinstance(node, Complement):
        # the universe keyset hands off to sort keys with no string work
        return MergeDiff(universe=SetScan(lambda c: c.all_ids()),
                         child=_compile(node.part, ctx, True))
    if isinstance(node, ExpandStep):
        candidates = (_compile(node.candidates, ctx, False)
                      if node.candidates is not None else None)
        return ExpandOperator(_compile(node.input, ctx, False), candidates,
                              node.axis, node.strategy)
    if isinstance(node, Limit):
        return LimitOp(_compile(node.part, ctx, ordered), node.count)
    raise QueryExecutionError(
        f"cannot compile plan node {type(node).__name__}"
    )
