"""Partitioned parallel scan support.

:func:`partitioned_filter` splits a materialized row list into
contiguous partitions, filters each on a worker thread, and concatenates
the surviving rows *in partition order* — so a parallel scan returns
exactly what the sequential scan would, in the same order, and the
engine's determinism guarantee holds with any thread count.

Honesty note: under CPython's GIL a pure-Python predicate gains little
from threads; the win comes when the predicate releases the GIL —
source-access-bound scans whose per-row cost is simulated (or real)
remote latency, the dominant cost in the paper's Figure 5. The
benchmark (``benchmarks/bench_engine.py``) measures both regimes.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence, TypeVar

T = TypeVar("T")


def partition(rows: Sequence[T], parts: int) -> list[Sequence[T]]:
    """Split ``rows`` into up to ``parts`` contiguous, balanced slices."""
    parts = max(1, min(parts, len(rows)))
    size, extra = divmod(len(rows), parts)
    out: list[Sequence[T]] = []
    start = 0
    for i in range(parts):
        end = start + size + (1 if i < extra else 0)
        out.append(rows[start:end])
        start = end
    return out


def partitioned_filter(rows: Sequence[T], predicate: Callable[[T], bool],
                       *, threads: int) -> list[T]:
    """Filter ``rows`` by ``predicate`` across ``threads`` workers,
    preserving input order."""
    if threads <= 1 or len(rows) <= 1:
        return [row for row in rows if predicate(row)]

    def scan_slice(chunk: Sequence[T]) -> list[T]:
        return [row for row in chunk if predicate(row)]

    slices = partition(rows, threads)
    with ThreadPoolExecutor(max_workers=len(slices)) as pool:
        matched = list(pool.map(scan_slice, slices))
    return [row for chunk in matched for row in chunk]
