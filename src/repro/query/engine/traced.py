"""Tracing at the iterator boundary.

The pre-engine executor wrapped each node's monolithic ``_run()`` in a
span; with pipelined operators there is no single run to wrap, so the
span moves to the batch protocol: it opens lazily on the operator's
*first pull* (an operator that is opened but never pulled — an
intersection input behind an empty sibling — emits no span at all,
matching the old sequential short-circuit), accumulates wall time per
``next_batch()`` call, counts rows and batches, and seals when the
stream exhausts, the parent closes early (LIMIT), or a pull raises.

Span nesting cannot rely on the collector's LIFO stack — pipelined
pulls interleave — so the collector carries an ``active_operator``
pointer: whichever span's ``next_batch()`` is on the call stack is the
parent of any span that begins inside it.
"""

from __future__ import annotations

import time
from typing import Callable

from .batch import Batch
from .operators import Operator


class TracedOperator(Operator):
    """Wraps one physical operator with a span at the pull boundary."""

    def __init__(self, inner: Operator, *, operator: str, detail: str,
                 estimate: Callable[[object], int]):
        self.inner = inner
        self._operator = operator
        self._detail = detail
        self._estimate = estimate
        self._ctx = None
        self._trace = None
        self._span = None
        self._rows = 0
        self._batches = 0
        self._elapsed = 0.0
        self._sealed = False

    @property
    def ordered(self) -> bool:  # type: ignore[override]
        return self.inner.ordered

    def open(self, ctx) -> None:
        self._ctx = ctx
        self._trace = ctx.trace
        self.inner.open(ctx)

    def next_batch(self) -> Batch | None:
        trace = self._trace
        if self._span is None and not self._sealed:
            with trace.paused():  # estimates must not pollute counters
                estimate = self._estimate(self._ctx)
            self._span = trace.begin_operator(
                self._operator, self._detail, estimate=estimate,
                parent=trace.active_operator,
            )
        previous = trace.active_operator
        trace.active_operator = self._span
        started = time.perf_counter()
        try:
            batch = self.inner.next_batch()
        except BaseException as error:
            self._elapsed += time.perf_counter() - started
            trace.active_operator = previous
            self._seal_abort(error)
            raise
        self._elapsed += time.perf_counter() - started
        trace.active_operator = previous
        if batch is None:
            self._seal_ok()
            return None
        self._rows += len(batch)
        self._batches += 1
        return batch

    def close(self) -> None:
        self._seal_ok()
        self.inner.close()

    def _seal_ok(self) -> None:
        if self._span is not None and not self._sealed:
            self._sealed = True
            self._trace.finish_operator(
                self._span, rows=self._rows, batches=self._batches,
                elapsed=self._elapsed,
            )

    def _seal_abort(self, error: BaseException) -> None:
        if self._span is not None and not self._sealed:
            self._sealed = True
            self._trace.abort_operator(
                self._span, error, rows=self._rows, batches=self._batches,
                elapsed=self._elapsed,
            )
