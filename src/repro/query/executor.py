"""The iQL query processor.

:class:`QueryProcessor` parses a query, builds and optimizes a physical
plan over the RVM's indexes and replicas, executes it and returns a
:class:`QueryResult`. The execution strategy mirrors the prototype's:
"after fetching the data via index accesses, our query processor obtains
indirectly related resource views by forward expansion".
"""

from __future__ import annotations

import re
import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from datetime import datetime

from .. import obs
from ..core.errors import (
    ComponentError,
    DataSourceError,
    QueryExecutionError,
    StreamingUnsupportedError,
)
from ..core.resource_view import ResourceView
from ..fulltext.query import Phrase, Term, Wildcard
from ..resilience.engine import (
    install_resilience_sink,
    uninstall_resilience_sink,
)
from ..resilience.report import DegradationReport
from ..rvm.keyset import KeySet
from ..rvm.manager import ResourceViewManager
from ..rvm.uridict import global_uri_dictionary
from .ast import (
    Axis,
    CompareOp,
    Comparison,
    FunctionCall,
    IntersectExpr,
    JoinExpr,
    KeywordAtom,
    Literal,
    PathExpr,
    PredAnd,
    Predicate,
    PredicateExpr,
    PredNot,
    PredOr,
    QualifiedRef,
    QueryExpr,
    UnionExpr,
)
from .engine import (
    Batch,
    DEFAULT_ENGINE,
    EngineConfig,
    iter_batches,
)
from .functions import FunctionTable
from .optimizer import optimize
from .parser import parse_iql
from .plan import (
    AllViews,
    ClassLookup,
    Complement,
    ContentSearch,
    ExpandStep,
    Intersect,
    JoinPlan,
    Limit,
    NameEquals,
    NamePattern,
    PlanNode,
    RootViews,
    TupleCompare,
    Union,
    compare_values,
    wildcard_regex,
)

#: Attribute spellings the paper uses mapped onto the plugin schemas.
ATTRIBUTE_ALIASES = {
    "lastmodified": "modified",
    "creationtime": "created",
    "creation": "created",
}


def canonical_attribute(name: str) -> str:
    return ATTRIBUTE_ALIASES.get(name.lower(), name)


def _authority_of(uri: str) -> str:
    """The source authority of a view URI ("imap://inbox/3" → "imap")."""
    return uri.split("://", 1)[0] if "://" in uri else uri


class _ResilienceObserver:
    """Per-execution resilience sink: forwards retry/breaker counters
    into the trace (when tracing) and tallies retries spent into the
    execution's degradation report."""

    __slots__ = ("ctx",)

    def __init__(self, ctx: "ExecutionContext"):
        self.ctx = ctx

    def count(self, name: str, amount: int = 1) -> None:
        self.ctx.count(name, amount)
        if name.endswith(".retry"):
            self.ctx.degradation.retries_spent += amount


class ExecutionContext:
    """Index accessors shared by all plan nodes of one execution.

    ``cancel_token`` is any object with a ``check()`` method that raises
    when the execution should stop (deadline passed, client gone); the
    serving layer passes :class:`repro.service.CancellationToken`. Plan
    nodes call :meth:`checkpoint` from their inner loops so long-running
    queries abort cooperatively.

    ``trace`` is an optional :class:`~repro.trace.TraceCollector`: when
    present, every substrate call below records a ``ctx.*`` counter and
    the engine compiler wraps every operator in a span, turning the
    execution into an EXPLAIN ANALYZE. When absent the accounting costs
    one ``is None`` check per call site.

    ``engine`` tunes the batched engine (vector width, parallel scan
    threads); see :class:`repro.query.engine.EngineConfig`.

    ``tenant`` is the admission-time tenant label (multi-tenant serving):
    purely observational — it changes no execution behaviour, but the
    post-execution accounting additionally records the ``query.*``
    series under ``{tenant="..."}``.
    """

    def __init__(self, rvm: ResourceViewManager, functions: FunctionTable,
                 *, cancel_token=None, trace=None,
                 engine: EngineConfig | None = None,
                 tenant: str | None = None):
        self.rvm = rvm
        self.functions = functions
        self.cancel_token = cancel_token
        self.trace = trace
        self.tenant = tenant
        self.engine = engine if engine is not None else DEFAULT_ENGINE
        self.group_replica = rvm.indexes.group_replica
        self.expanded_views = 0  # intermediate-result accounting (Q8!)
        #: what this execution had to do without: every survived source
        #: failure lands here, and the result carries it to the caller
        self.degradation = DegradationReport()
        self._all_uris: set[str] | None = None
        self._all_ids: KeySet | None = None
        self._dict_view = None

    # -- the URI dictionary (DESIGN.md §4h) ----------------------------------

    @property
    def dict_view(self):
        """This execution's URI-dictionary snapshot, captured lazily at
        the first scan. One view per execution: every key flowing
        through this execution's operators is consistent with every
        other, and result batches carry the view so their URIs
        materialize correctly even after later remaps."""
        view = self._dict_view
        if view is None:
            view = self._dict_view = global_uri_dictionary().view()
        return view

    def keys_for_set(self, uris) -> "object":
        """Sorted key column for a scan leaf's result.

        A :class:`~repro.rvm.keyset.KeySet` of catalog ids (what the
        id-keyed indexes return) is handed off by integer array
        indexing — no per-URI string hashing; a ``set[str]`` (fallback
        scans, external callers) takes the string path.
        """
        if isinstance(uris, KeySet):
            return self.dict_view.keys_for_ids(uris)
        return self.dict_view.keys_for_set(uris)

    def keys_in_order(self, uris) -> "object":
        """Key column for an already-ordered URI sequence."""
        return self.dict_view.keys_in_order(uris)

    def keys_in_order_ids(self, ids) -> "object":
        """Key column for an already-ordered catalog-id sequence."""
        return self.dict_view.keys_in_order_ids(ids)

    def key_for_uri(self, uri: str) -> int:
        return self.dict_view.key_for(uri)

    def uri_of_key(self, key: int) -> str:
        return self.dict_view.uri_for(key)

    def count(self, name: str, amount: int = 1) -> None:
        """Record one substrate call into the trace, if tracing."""
        if self.trace is not None:
            self.trace.count(name, amount)

    def degrade(self, authority: str, operation: str,
                error: BaseException, *, views_unavailable: int = 0) -> None:
        """Survive one source failure: record it and count it, so the
        query completes over the remaining sources instead of dying."""
        self.degradation.record(authority, operation, error,
                                views_unavailable=views_unavailable)
        self.count("ctx.source_degraded")

    def checkpoint(self) -> None:
        """Raise if this execution was cancelled or missed its deadline."""
        if self.cancel_token is not None:
            self.cancel_token.check()

    def all_uris(self) -> set[str]:
        if self._all_uris is None:
            self.count("ctx.all_uris_materialized")
            self._all_uris = set(self.rvm.catalog.all_uris())
        return self._all_uris

    def all_ids(self) -> KeySet:
        """The registered universe as a catalog-id keyset (the engine's
        form of :meth:`all_uris` — no strings touched)."""
        if self._all_ids is None:
            self.count("ctx.all_uris_materialized")
            self._all_ids = self.rvm.catalog.all_ids()
        return self._all_ids

    def _materialize(self, ids) -> set[str]:
        """Ids back to URIs for the string-facing wrappers (uncounted:
        the ``ctx.*`` counter already fired in the ``*_ids`` method,
        and these conversions are not engine-path dictionary work)."""
        if isinstance(ids, set):
            return ids  # a fallback scan already returned strings
        uri_of = global_uri_dictionary().uri_of
        return {uri_of(i) for i in ids}

    def root_uris(self) -> set[str]:
        self.count("ctx.root_uris")
        roots = set()
        for plugin in self.rvm.proxy.plugins():
            try:
                views = plugin.root_views()
            except DataSourceError as error:
                self.degrade(plugin.authority, "root_views", error)
                continue
            for view in views:
                roots.add(view.view_id.uri)
        return roots

    def content_search(self, text: str, *, is_phrase: bool,
                       wildcard: bool) -> set[str]:
        return self._materialize(self.content_search_ids(
            text, is_phrase=is_phrase, wildcard=wildcard
        ))

    def content_search_ids(self, text: str, *, is_phrase: bool,
                           wildcard: bool):
        """Content match as a catalog-id :class:`KeySet` (a ``set[str]``
        when query shipping scans live views instead)."""
        self.checkpoint()
        self.count("ctx.content_search")
        if not self.rvm.indexes.policy.index_content:
            return self._content_scan(text, is_phrase=is_phrase,
                                      wildcard=wildcard)
        index = self.rvm.indexes.content_index
        if wildcard:
            return Wildcard(text).ids(index)
        if is_phrase:
            return Phrase.of(text, index).ids(index)
        return Term(text).ids(index)

    def _content_scan(self, text: str, *, is_phrase: bool,
                      wildcard: bool) -> set[str]:
        """Query shipping: no content index, scan live views instead."""
        from ..fulltext import InvertedIndex
        self.count("ctx.content_scan")
        probe = InvertedIndex()
        for uri, view in self.rvm.sync.live_views.items():
            self.checkpoint()
            try:
                content = view.content
                body = (content.text() if content.is_finite
                        else content.take(4096))
            except (DataSourceError, ComponentError) as error:
                self.degrade(_authority_of(uri), "content_scan", error,
                             views_unavailable=1)
                continue
            if body:
                probe.add(uri, body)
        if wildcard:
            return Wildcard(text).keys(probe)
        if is_phrase:
            return Phrase.of(text, probe).keys(probe)
        return Term(text).keys(probe)

    def content_estimate(self, text: str, *, is_phrase: bool,
                         wildcard: bool) -> int:
        """Cardinality estimate from document frequencies: a phrase (or
        conjunction) matches at most min(df) documents."""
        index = self.rvm.indexes.content_index
        if wildcard:
            return index.document_count  # pattern dfs are not kept
        terms = index.analyzer.terms(text)
        if not terms:
            return 0
        frequencies = []
        for term in terms:
            postings = index.postings(term)
            if postings is None:
                return 0
            frequencies.append(postings.document_frequency)
        return min(frequencies)

    def class_estimate(self, class_name: str) -> int:
        from ..core.classes import BUILTIN_REGISTRY
        names = [class_name]
        if class_name in BUILTIN_REGISTRY:
            names = [cls.name for cls in BUILTIN_REGISTRY
                     if BUILTIN_REGISTRY.is_subclass(cls.name, class_name)]
        return sum(len(self.rvm.catalog.by_class(name)) for name in names)

    def tuple_estimate(self, attribute: str, op: CompareOp) -> int:
        """Upper bound: views carrying the attribute at all (halved for
        range predicates, the textbook default selectivity)."""
        attribute = canonical_attribute(attribute)
        carriers = len(self.rvm.indexes.tuple_index.keys_with_attribute(
            attribute
        ))
        if op in (CompareOp.EQ, CompareOp.NE):
            return max(1, carriers // 10) if op is CompareOp.EQ else carriers
        return max(1, carriers // 2)

    def name_pattern_estimate(self, pattern: str) -> int:
        """Cardinality estimate for a wildcard name match: exact when the
        pattern is literal, otherwise the count of names carrying the
        pattern's literal prefix (every match must share it)."""
        if "*" not in pattern and "?" not in pattern:
            return len(self.name_equals(pattern))
        prefix = re.split(r"[*?]", pattern, maxsplit=1)[0]
        if self.rvm.indexes.policy.index_names:
            names = (name for _, name
                     in self.rvm.indexes.name_index.stored_items())
        else:
            names = (record.name for record in self.rvm.catalog.all_records()
                     if record.name)
        return sum(1 for name in names if name.startswith(prefix))

    def expand_estimate(self, input_estimate: int, axis: Axis) -> int:
        """Bound on the views reached by one expansion: the input times
        the replica's average fan-out over one hop, or the universe for
        the transitive descendant closure."""
        total = len(self.all_uris())
        if axis is not Axis.CHILD:
            return total
        if not self.rvm.indexes.policy.replicate_groups:
            return total
        nodes = max(1, len(self.group_replica))
        fanout = self.group_replica.edge_count() / nodes
        return min(total, int(input_estimate * fanout) + 1)

    def name_equals(self, name: str) -> set[str]:
        return self._materialize(self.name_equals_ids(name))

    def name_equals_ids(self, name: str) -> KeySet:
        self.count("ctx.name_equals")
        return self.rvm.catalog.ids_by_name(name)

    def name_pattern(self, pattern: str) -> set[str]:
        return self._materialize(self.name_pattern_ids(pattern))

    def name_pattern_ids(self, pattern: str) -> KeySet:
        self.checkpoint()
        self.count("ctx.name_pattern")
        regex = wildcard_regex(pattern)
        matched = KeySet()
        if self.rvm.indexes.policy.index_names:
            items = self.rvm.indexes.name_index.stored_id_items()
            for doc, name in items:
                if regex.match(name):
                    matched.add(doc)
            return matched
        # no name replica: fall back to the catalog's metadata (every
        # registered URI is interned, so id_of never misses here)
        id_of = global_uri_dictionary().id_of
        for record in self.rvm.catalog.all_records():
            if record.name and regex.match(record.name):
                matched.add(id_of(record.uri))
        return matched

    # -- group navigation (replica or live fallback) -------------------------

    @property
    def supports_id_expansion(self) -> bool:
        """True when expansion can walk the replica in id space (the
        engine's fast path); without the replica the walk must go
        through live views, which speak URIs."""
        return self.rvm.indexes.policy.replicate_groups

    def children_ids_of(self, view_id: int) -> tuple[int, ...]:
        """Directly related catalog ids off the group replica (only
        valid when :attr:`supports_id_expansion`)."""
        self.checkpoint()
        self.count("ctx.children_of")
        return self.group_replica.children_ids(view_id)

    def children_of(self, uri: str) -> tuple[str, ...]:
        self.checkpoint()
        self.count("ctx.children_of")
        if self.rvm.indexes.policy.replicate_groups:
            return self.group_replica.children(uri)
        try:
            view = self.rvm.view(uri)
            if view is None:
                return ()
            group = view.group
            members = (group.related() if group.is_finite
                       else tuple(group.take(256)))
        except (DataSourceError, ComponentError) as error:
            self.degrade(_authority_of(uri), "children_of", error,
                         views_unavailable=1)
            return ()
        return tuple(v.view_id.uri for v in members)

    def parents_of(self, uri: str) -> set[str]:
        self.count("ctx.parents_of")
        if not self.rvm.indexes.policy.replicate_groups:
            raise QueryExecutionError(
                "backward expansion needs the group replica's reverse "
                "edges; enable replicate_groups or use forward expansion"
            )
        return self.group_replica.parents(uri)

    def class_lookup(self, class_name: str) -> set[str]:
        return self._materialize(self.class_lookup_ids(class_name))

    def class_lookup_ids(self, class_name: str) -> KeySet:
        self.checkpoint()
        self.count("ctx.class_lookup")
        from ..core.classes import BUILTIN_REGISTRY
        names = [class_name]
        if class_name in BUILTIN_REGISTRY:
            names = [
                cls.name for cls in BUILTIN_REGISTRY
                if BUILTIN_REGISTRY.is_subclass(cls.name, class_name)
            ]
        matched = KeySet()
        for name in names:
            matched = matched.or_(self.rvm.catalog.ids_by_class(name))
        return matched

    def tuple_compare(self, attribute: str, op: CompareOp,
                      value: object) -> set[str]:
        return self._materialize(self.tuple_compare_ids(attribute, op,
                                                        value))

    def tuple_compare_ids(self, attribute: str, op: CompareOp,
                          value: object):
        """Tuple predicate as a catalog-id :class:`KeySet` (a
        ``set[str]`` when query shipping scans live views instead)."""
        self.checkpoint()
        self.count("ctx.tuple_compare")
        attribute = canonical_attribute(attribute)
        if not self.rvm.indexes.policy.index_tuples:
            return self._tuple_scan(attribute, op, value)
        index = self.rvm.indexes.tuple_index
        if op is CompareOp.EQ:
            return index.equals_ids(attribute, value)
        if op is CompareOp.NE:
            return index.ids_with_attribute(attribute).andnot(
                index.equals_ids(attribute, value)
            )
        if op is CompareOp.GT:
            return index.greater_than_ids(attribute, value)
        if op is CompareOp.GE:
            return index.greater_than_ids(attribute, value, inclusive=True)
        if op is CompareOp.LT:
            return index.less_than_ids(attribute, value)
        if op is CompareOp.LE:
            return index.less_than_ids(attribute, value, inclusive=True)
        raise QueryExecutionError(f"unsupported operator {op}")

    def _tuple_scan(self, attribute: str, op: CompareOp,
                    value: object) -> set[str]:
        """Query shipping: evaluate the predicate over live views."""
        from ..query.plan import compare_values
        self.count("ctx.tuple_scan")
        matched: set[str] = set()
        for uri, view in self.rvm.sync.live_views.items():
            try:
                candidate = view.tuple_component.get(attribute)
            except (DataSourceError, ComponentError) as error:
                self.degrade(_authority_of(uri), "tuple_scan", error,
                             views_unavailable=1)
                continue
            if candidate is None:
                continue
            try:
                if compare_values(op, candidate, value):
                    matched.add(uri)
            except QueryExecutionError:
                continue  # incomparable types never match
        return matched

    def component_value(self, uri: str, ref: QualifiedRef) -> object:
        """Resolve ``A.name`` / ``A.tuple.attr`` / ``A.class`` /
        ``A.content`` for a join key."""
        self.count(f"ctx.component_value.{ref.kind}")
        if ref.kind == "name":
            return self.rvm.indexes.name_of(uri) or None
        if ref.kind == "class":
            record = self.rvm.catalog.get(uri)
            return record.class_name if record else None
        if ref.kind == "tuple":
            component = self.rvm.indexes.tuple_index.tuple_of(uri)
            if component is None or component.is_empty:
                return None
            return component.get(canonical_attribute(ref.attribute or ""))
        if ref.kind == "content":
            try:
                view = self.rvm.view(uri)
                if view is None:
                    return None
                content = view.content
                return (content.text() if content.is_finite
                        else content.take(4096))
            except (DataSourceError, ComponentError) as error:
                self.degrade(_authority_of(uri), "component_value", error,
                             views_unavailable=1)
                return None
        raise QueryExecutionError(f"unknown component reference {ref.kind!r}")


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Hit:
    """One unary query result."""

    uri: str
    name: str
    class_name: str

    def view(self, rvm: ResourceViewManager) -> ResourceView | None:
        return rvm.view(self.uri)


@dataclass(frozen=True)
class JoinHit:
    """One join result pair."""

    left: Hit
    right: Hit


@dataclass
class QueryResult:
    """The result of one iQL execution."""

    query: str
    hits: list[Hit] = field(default_factory=list)
    pairs: list[JoinHit] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    expanded_views: int = 0
    plan_text: str = ""
    #: the engine's materialized result batches, in pipeline emission
    #: order (empty for joins) — the serving layer's result cache keeps
    #: these so cached streams replay without re-execution
    batches: tuple[Batch, ...] = ()
    #: the TraceCollector of a traced execution (None otherwise)
    trace: object = None
    #: what this execution had to do without (empty when healthy)
    degradation: DegradationReport = field(
        default_factory=DegradationReport
    )

    @property
    def is_degraded(self) -> bool:
        """True when the answer is partial: at least one source was
        skipped or a view's components were unreachable."""
        return self.degradation.is_degraded

    @property
    def is_join(self) -> bool:
        return self.plan_text.startswith("Join")

    def __len__(self) -> int:
        """Result cardinality: join hits for a join, hits otherwise.

        A join result counts its pairs even when that count is zero —
        it never falls back to the (always empty) unary hit list.
        """
        return len(self.pairs) if self.is_join else len(self.hits)

    def uris(self) -> list[str]:
        """The distinct matched URIs, sorted.

        For a join these are the deduplicated pair members (a URI
        appearing on both sides, or in several pairs, is listed once).
        """
        if self.is_join:
            members = {hit.uri for pair in self.pairs
                       for hit in (pair.left, pair.right)}
            return sorted(members)
        return [h.uri for h in self.hits]


class StreamingResult:
    """A lazily-evaluated query result: batches arrive as the engine
    pulls them, so the first rows are available before the scan
    finishes and an abandoned iteration stops the execution early.

    ``degradation`` and ``expanded_views`` reflect work done *so far*;
    they are complete once the stream is exhausted.
    """

    def __init__(self, query: str, plan_text: str, ctx: "ExecutionContext",
                 batches):
        self.query = query
        self.plan_text = plan_text
        self._ctx = ctx
        self._batches = batches

    @property
    def degradation(self) -> DegradationReport:
        return self._ctx.degradation

    @property
    def expanded_views(self) -> int:
        return self._ctx.expanded_views

    def batches(self):
        """The underlying batch iterator (consumes the stream)."""
        return self._batches

    def __iter__(self):
        for batch in self._batches:
            yield from batch.uris

    def close(self) -> None:
        """Abandon the stream; the engine closes its operators."""
        self._batches.close()

    def __enter__(self) -> "StreamingResult":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@dataclass
class PreparedQuery:
    """A parsed query, reusable across executions.

    The serving layer's plan cache stores these: parsing (and, under the
    rule optimizer, planning) happens once per distinct query text. The
    ``plan`` slot memoizes the physical plan when it is
    context-independent — rule-mode, non-join queries; cost-mode plans
    depend on live index statistics and are rebuilt per execution.
    """

    text: str
    ast: QueryExpr
    plan: PlanNode | None = None

    @property
    def is_join(self) -> bool:
        return isinstance(self.ast, JoinExpr)


# ---------------------------------------------------------------------------
# The processor
# ---------------------------------------------------------------------------

class QueryProcessor:
    """Parses, plans, optimizes and executes iQL queries over one RVM.

    ``optimizer`` selects plan refinement: ``"rule"`` is the 2006
    prototype's rule-based pass; ``"cost"`` additionally reorders
    intersections by live index statistics (the paper's future work).
    ``expansion`` selects the path-navigation strategy per [30]:
    ``"forward"`` (the prototype), ``"backward"``, or ``"auto"``
    (bidirectional heuristic).
    """

    def __init__(self, rvm: ResourceViewManager, *,
                 reference_datetime: datetime | None = None,
                 optimizer: str = "rule",
                 expansion: str = "forward"):
        if optimizer not in ("rule", "cost"):
            raise QueryExecutionError(f"unknown optimizer {optimizer!r}")
        if expansion not in ("forward", "backward", "auto"):
            raise QueryExecutionError(f"unknown expansion {expansion!r}")
        self.rvm = rvm
        self.functions = FunctionTable(reference_datetime)
        self.optimizer_mode = optimizer
        self.expansion = expansion

    def _optimize(self, plan: PlanNode,
                  ctx: ExecutionContext | None = None,
                  trace=None) -> PlanNode:
        if self.optimizer_mode == "cost":
            from .optimizer import optimize_with_statistics
            context = ctx if ctx is not None else ExecutionContext(
                self.rvm, self.functions
            )
            if trace is not None:
                # planning-time estimates must not pollute work counters
                with trace.paused():
                    return optimize_with_statistics(plan, context,
                                                    trace=trace)
            return optimize_with_statistics(plan, context, trace=trace)
        return optimize(plan, trace=trace)

    # -- public API -----------------------------------------------------------

    def execute(self, query_text: str, *, cancel_token=None,
                limit: int | None = None,
                engine: EngineConfig | None = None,
                tenant: str | None = None) -> QueryResult:
        return self.execute_prepared(self.prepare(query_text),
                                     cancel_token=cancel_token,
                                     limit=limit, engine=engine,
                                     tenant=tenant)

    def prepare(self, query_text: str) -> PreparedQuery:
        """Parse once; the result can be executed many times."""
        return PreparedQuery(text=query_text, ast=parse_iql(query_text))

    def execute_prepared(self, prepared: PreparedQuery, *,
                         cancel_token=None, trace=None,
                         limit: int | None = None,
                         engine: EngineConfig | None = None,
                         tenant: str | None = None) -> QueryResult:
        """Execute a prepared query.

        ``trace`` is an optional :class:`~repro.trace.TraceCollector`;
        when given, engine operators record spans, substrate calls
        record counters, and lazy component materializations are
        observed for the duration (the collector is installed as this
        thread's materialization sink).

        ``limit`` truncates the result after that many rows *with early
        termination*: the engine stops pulling from its scans, so the
        cost is bounded by the limit, not the corpus.

        ``tenant`` labels this execution's ``query.*`` telemetry (see
        :class:`ExecutionContext`); it does not affect the result.
        """
        ctx = ExecutionContext(self.rvm, self.functions,
                               cancel_token=cancel_token, trace=trace,
                               engine=engine, tenant=tenant)
        scope = trace.activate() if trace is not None else nullcontext()
        started = time.perf_counter()
        # retries/breaker events fired by source guards during this
        # execution land in the trace counters and the degradation report
        sink_token = install_resilience_sink(_ResilienceObserver(ctx))
        try:
            with scope:
                if isinstance(prepared.ast, JoinExpr):
                    plan = self._prepared_join(prepared, ctx, trace=trace)
                    pairs = plan.execute_pairs(ctx)
                    if limit is not None:
                        pairs = pairs[:limit]
                    elapsed = time.perf_counter() - started
                    self._record_execution(
                        prepared.text, elapsed, rows=len(pairs),
                        trace=trace, plan_text=plan.explain(),
                        degradation=ctx.degradation, tenant=tenant,
                    )
                    return QueryResult(
                        query=prepared.text,
                        pairs=[JoinHit(self._hit(l), self._hit(r))
                               for l, r in pairs],
                        elapsed_seconds=elapsed,
                        expanded_views=ctx.expanded_views,
                        plan_text=plan.explain(),
                        trace=trace,
                        degradation=ctx.degradation,
                    )
                plan = self._prepared_plan(prepared, ctx, trace=trace,
                                           limit=limit)
                uris: set[str] = set()
                batches: list[Batch] = []
                for batch in iter_batches(plan, ctx):
                    batches.append(batch)
                    uris.update(batch.uris)
        finally:
            uninstall_resilience_sink(sink_token)
        elapsed = time.perf_counter() - started
        self._record_execution(prepared.text, elapsed, rows=len(uris),
                               trace=trace, plan_text=plan.explain(),
                               degradation=ctx.degradation, tenant=tenant)
        hits = sorted((self._hit(uri) for uri in uris),
                      key=lambda h: h.uri)
        return QueryResult(
            query=prepared.text, hits=hits, elapsed_seconds=elapsed,
            expanded_views=ctx.expanded_views, plan_text=plan.explain(),
            batches=tuple(batches),
            trace=trace,
            degradation=ctx.degradation,
        )

    def execute_iter(self, query, *, cancel_token=None, trace=None,
                     limit: int | None = None,
                     engine: EngineConfig | None = None,
                     tenant: str | None = None) -> StreamingResult:
        """Execute a (non-join) query as a batch stream.

        Returns a :class:`StreamingResult` whose batches materialize on
        demand — iterate it (or call ``batches()``) to pull; abandoning
        the iteration closes the operator tree early. Joins have no
        streaming plan shape; use :meth:`execute_prepared`.
        """
        prepared = (query if isinstance(query, PreparedQuery)
                    else self.prepare(query))
        if isinstance(prepared.ast, JoinExpr):
            raise StreamingUnsupportedError(
                "joins do not stream; use execute()/execute_prepared()"
            )
        ctx = ExecutionContext(self.rvm, self.functions,
                               cancel_token=cancel_token, trace=trace,
                               engine=engine, tenant=tenant)
        plan = self._prepared_plan(prepared, ctx, trace=trace, limit=limit)

        def stream():
            scope = trace.activate() if trace is not None else nullcontext()
            sink_token = install_resilience_sink(_ResilienceObserver(ctx))
            started = time.perf_counter()
            rows = 0
            try:
                with scope:
                    for batch in iter_batches(plan, ctx):
                        rows += len(batch)
                        yield batch
            finally:
                uninstall_resilience_sink(sink_token)
                self._record_execution(
                    prepared.text, time.perf_counter() - started,
                    rows=rows, trace=trace, plan_text=plan.explain(),
                    degradation=ctx.degradation, streamed=True,
                    tenant=tenant,
                )

        return StreamingResult(prepared.text, plan.explain(), ctx, stream())

    def _record_execution(self, query_text: str, elapsed: float, *,
                          rows: int, trace, plan_text: str,
                          degradation: DegradationReport,
                          streamed: bool = False,
                          tenant: str | None = None) -> None:
        """Feed one finished execution into the global telemetry spine:
        ``query.*`` counters/histograms, a traced run's per-operator
        aggregates (the same ``query.op.*`` names the service folds
        traced requests into), and the slow-query log.

        A streamed execution's wall time includes consumer think-time
        between pulls, so it lands in ``query.stream_seconds`` instead
        of ``query.latency_seconds`` and never triggers slow-query
        capture. Recapture re-executions record nothing at all.

        With a ``tenant``, the headline series record *twice*: the
        unlabeled fleet-wide series (existing dashboards keep working)
        plus a ``{tenant="..."}`` -labeled series per metric.
        """
        if not obs.enabled() or obs.in_recapture():
            return
        by_tenant = {"tenant": tenant} if tenant else None
        obs.increment("query.executions")
        obs.increment("query.rows", rows)
        if by_tenant:
            obs.increment("query.executions", labels=by_tenant)
            obs.increment("query.rows", rows, labels=by_tenant)
        if streamed:
            obs.increment("query.streamed")
            obs.observe("query.stream_seconds", elapsed)
            if by_tenant:
                obs.observe("query.stream_seconds", elapsed,
                            labels=by_tenant)
        else:
            obs.observe("query.latency_seconds", elapsed)
            if by_tenant:
                obs.observe("query.latency_seconds", elapsed,
                            labels=by_tenant)
        if degradation.is_degraded:
            obs.increment("query.degraded")
            obs.emit_event(
                obs.WARNING, "query", "query.degraded",
                "query answered partially",
                query=query_text,
                sources_skipped=list(degradation.sources_skipped),
                retries_spent=degradation.retries_spent,
            )
        if trace is not None:
            for operator, agg in trace.aggregates().items():
                obs.increment(f"query.op.{operator}.calls",
                              int(agg["calls"]))
                obs.increment(f"query.op.{operator}.rows",
                              int(agg["rows"]))
                obs.observe(f"query.op.{operator}.seconds", agg["seconds"])
            for name, value in trace.counters.items():
                # resilience.* counters are already recorded globally at
                # the source guard; re-folding them would double count
                if not name.startswith("resilience."):
                    obs.increment(f"query.{name}", value)
        if not streamed:
            obs.record_slow_query(query_text, elapsed, trace=trace,
                                  plan_text=plan_text, processor=self,
                                  degraded=degradation.is_degraded)

    def _prepared_plan(self, prepared: PreparedQuery, ctx: ExecutionContext,
                       *, trace=None, limit: int | None = None) -> PlanNode:
        """The (memoized) optimized plan, wrapped with ``Limit`` when
        requested. The limit wrap happens after memoization — the cached
        plan stays limit-free, and the extra rule pass (limit pushdown)
        is idempotent over the already-optimized tree."""
        plan = prepared.plan
        if plan is None:
            plan = self._optimize(self._build(prepared.ast), ctx,
                                  trace=trace)
            if self.optimizer_mode == "rule":
                prepared.plan = plan
        if limit is not None:
            plan = optimize(Limit(part=plan, count=limit), trace=trace)
        return plan

    def _prepared_join(self, prepared: PreparedQuery,
                       ctx: ExecutionContext, trace=None) -> JoinPlan:
        if isinstance(prepared.plan, JoinPlan):
            return prepared.plan
        plan = self._build_join(prepared.ast, ctx, trace=trace)
        if self.optimizer_mode == "rule":
            prepared.plan = plan
        return plan

    def explain(self, query_text: str) -> str:
        """The optimized physical plan, without executing it."""
        ast = parse_iql(query_text)
        if isinstance(ast, JoinExpr):
            return self._build_join(ast).explain()
        return self._optimize(self._build(ast)).explain()

    def explain_analyze(self, query_text: str, *, cancel_token=None):
        """Execute the query under a fresh trace and return an
        :class:`~repro.trace.ExplainAnalyzeReport` — the annotated plan
        tree (estimate vs. actual rows, wall time per operator), the
        optimizer's rewrite log and the substrate counters, plus the
        ordinary :class:`QueryResult`."""
        from ..trace import ExplainAnalyzeReport, TraceCollector
        trace = TraceCollector()
        # a fresh PreparedQuery (not the cache's): the optimizer runs
        # under this trace, so applied rewrites land in the report
        prepared = self.prepare(query_text)
        result = self.execute_prepared(prepared, cancel_token=cancel_token,
                                       trace=trace)
        return ExplainAnalyzeReport(result=result, trace=trace)

    def _hit(self, uri: str) -> Hit:
        record = self.rvm.catalog.get(uri)
        if record is None:
            return Hit(uri=uri, name="", class_name="")
        return Hit(uri=uri, name=record.name, class_name=record.class_name)

    # -- AST -> plan ---------------------------------------------------------------

    def _build(self, ast: QueryExpr) -> PlanNode:
        if isinstance(ast, PredicateExpr):
            return self._build_predicate(ast.predicate)
        if isinstance(ast, PathExpr):
            return self._build_path(ast)
        if isinstance(ast, UnionExpr):
            return Union(tuple(self._build(p) for p in ast.parts))
        if isinstance(ast, IntersectExpr):
            return Intersect(tuple(self._build(p) for p in ast.parts))
        if isinstance(ast, JoinExpr):
            raise QueryExecutionError(
                "joins are only supported at the top level"
            )
        raise QueryExecutionError(f"cannot plan {type(ast).__name__}")

    def _build_path(self, path: PathExpr) -> PlanNode:
        first, *rest = path.steps
        plan = self._step_candidates(first, at_root=True)
        for step in rest:
            plan = ExpandStep(
                input=plan, axis=step.axis,
                candidates=self._step_filter(step),
                strategy=self.expansion,
            )
        return plan

    def _step_candidates(self, step, *, at_root: bool) -> PlanNode:
        """The index-computed candidate set of one step."""
        filter_plan = self._step_filter(step)
        if step.axis is Axis.CHILD and at_root:
            roots = RootViews()
            if filter_plan is None:
                return roots
            return Intersect((roots, filter_plan))
        # descendant from the dataspace root = any registered view
        return filter_plan if filter_plan is not None else AllViews()

    def _step_filter(self, step) -> PlanNode | None:
        parts: list[PlanNode] = []
        if step.name_test is not None:
            if step.has_wildcard:
                parts.append(NamePattern(pattern=step.name_test))
            else:
                parts.append(NameEquals(name=step.name_test))
        if step.predicate is not None:
            parts.append(self._build_predicate(step.predicate))
        if not parts:
            return None
        if len(parts) == 1:
            return parts[0]
        return Intersect(tuple(parts))

    def _build_predicate(self, predicate: Predicate) -> PlanNode:
        if isinstance(predicate, KeywordAtom):
            return ContentSearch(text=predicate.text,
                                 is_phrase=predicate.is_phrase,
                                 wildcard=predicate.wildcard)
        if isinstance(predicate, Comparison):
            return self._build_comparison(predicate)
        if isinstance(predicate, PredAnd):
            return Intersect(tuple(self._build_predicate(p)
                                   for p in predicate.parts))
        if isinstance(predicate, PredOr):
            return Union(tuple(self._build_predicate(p)
                               for p in predicate.parts))
        if isinstance(predicate, PredNot):
            return Complement(self._build_predicate(predicate.part))
        raise QueryExecutionError(
            f"cannot plan predicate {type(predicate).__name__}"
        )

    def _build_comparison(self, comparison: Comparison) -> PlanNode:
        value = self._operand_value(comparison.operand)
        attribute = comparison.attribute.lower()
        if attribute == "class":
            if comparison.op is CompareOp.EQ:
                return ClassLookup(class_name=str(value))
            if comparison.op is CompareOp.NE:
                return Complement(ClassLookup(class_name=str(value)))
            raise QueryExecutionError("class supports = and != only")
        if attribute == "name":
            text = str(value)
            if comparison.op is CompareOp.EQ:
                if "*" in text or "?" in text:
                    return NamePattern(pattern=text)
                return NameEquals(name=text)
            if comparison.op is CompareOp.NE:
                return Complement(NameEquals(name=text))
            raise QueryExecutionError("name supports = and != only")
        return TupleCompare(attribute=comparison.attribute,
                            op=comparison.op, value=value)

    def _operand_value(self, operand) -> object:
        if isinstance(operand, Literal):
            return operand.value
        if isinstance(operand, FunctionCall):
            return self.functions.call(operand.name)
        raise QueryExecutionError(
            "qualified references are only valid in join conditions"
        )

    def _build_join(self, join: JoinExpr,
                    ctx: ExecutionContext | None = None,
                    trace=None) -> JoinPlan:
        left_plan = self._optimize(self._build(join.left), ctx, trace=trace)
        right_plan = self._optimize(self._build(join.right), ctx, trace=trace)
        condition = join.condition
        # Normalize so left_ref refers to the left variable.
        left_ref: object = condition.left
        right_ref: object
        if isinstance(condition.right, QualifiedRef):
            right_ref = condition.right
        elif isinstance(condition.right, Literal):
            right_ref = condition.right.value
        elif isinstance(condition.right, FunctionCall):
            right_ref = self.functions.call(condition.right.name)
        else:
            raise QueryExecutionError("malformed join condition")
        if condition.left.variable == join.right_var:
            left_ref, right_ref = right_ref, left_ref
        return JoinPlan(left=left_plan, right=right_plan,
                        left_ref=left_ref, right_ref=right_ref,
                        op=condition.op)
