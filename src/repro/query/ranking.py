"""Ranked retrieval over resource views.

Section 5.1: "As ongoing work, we are extending iQL to support search
over all resource view components and ranking of query results." This
module implements that extension: :func:`ranked_search` scores views by
a weighted blend of TF-IDF over the content index and over the name
index (name hits weigh more — a file *called* ``budget.xls`` beats a
file that merely mentions budgets), optionally filtered by an iQL
query's result set.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..fulltext.scoring import score_tfidf
from ..rvm.manager import ResourceViewManager
from .engine import TopKHeap

#: Weight of a name-component match relative to a content match.
NAME_BOOST = 2.0


@dataclass(frozen=True)
class ScoredHit:
    """One ranked result."""

    uri: str
    name: str
    class_name: str
    score: float


def ranked_search(rvm: ResourceViewManager, text: str, *,
                  limit: int = 10,
                  within: set[str] | None = None,
                  name_boost: float = NAME_BOOST) -> list[ScoredHit]:
    """Rank views against free text, across name and content components.

    ``within`` restricts scoring to a pre-computed URI set (typically an
    iQL query's result — structure filters, ranking orders).

    Selection uses the engine's bounded :class:`TopKHeap` — O(n log k)
    over the scored stream instead of a full sort — and equal-score
    hits tie-break by URI ascending, the engine-wide determinism rule.
    """
    scores: dict[str, float] = {}
    for uri, score in score_tfidf(rvm.indexes.content_index, text):
        if within is None or uri in within:
            scores[uri] = scores.get(uri, 0.0) + score
    for uri, score in score_tfidf(rvm.indexes.name_index, text):
        if within is None or uri in within:
            scores[uri] = scores.get(uri, 0.0) + name_boost * score

    heap = TopKHeap(limit)
    for uri, score in scores.items():
        heap.push(uri, score)
    out = []
    for uri, score in heap.best_first():
        record = rvm.catalog.get(uri)
        out.append(ScoredHit(
            uri=uri,
            name=record.name if record else "",
            class_name=record.class_name if record else "",
            score=score,
        ))
    return out
