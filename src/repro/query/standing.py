"""Standing queries: information-filter notifications over the push bus.

The paper lists "publish/subscribe or information filter message
notifications [15]" among the stream use-cases, and its push operators
"may register for changes on any of the components of a resource view".
This module combines the two with iQL: a *standing query* is a
predicate registered once; every view that enters (or changes in) the
dataspace is matched against it immediately, and subscribers are
notified — AGILE-style filtering on top of iDM.

Standing queries use the predicate sub-language (keywords, phrases,
class/name/tuple comparisons, and/or/not); path navigation would need
graph context that a single change event does not carry.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable

from ..core.classes import BUILTIN_REGISTRY
from ..core.errors import QueryError
from ..core.resource_view import ResourceView
from ..fulltext.analyzer import DEFAULT_ANALYZER
from ..pushops import ChangeEvent, ChangeKind, PushBus
from .ast import (
    CompareOp,
    Comparison,
    FunctionCall,
    KeywordAtom,
    Literal,
    PredAnd,
    Predicate,
    PredicateExpr,
    PredNot,
    PredOr,
)
from .executor import canonical_attribute
from .functions import FunctionTable
from .parser import parse_iql
from .plan import compare_values, wildcard_regex


def matches_view(predicate: Predicate, view: ResourceView, *,
                 functions: FunctionTable | None = None,
                 content_window: int = 4096,
                 _terms: list[str] | None = None) -> bool:
    """Evaluate a predicate against one view, without any index.

    ``_terms`` lets callers that match many predicates against the same
    view (the standing-query registry) analyze its content only once.
    """
    functions = functions if functions is not None else FunctionTable()
    if isinstance(predicate, PredAnd):
        return all(matches_view(p, view, functions=functions,
                                content_window=content_window,
                                _terms=_terms)
                   for p in predicate.parts)
    if isinstance(predicate, PredOr):
        return any(matches_view(p, view, functions=functions,
                                content_window=content_window,
                                _terms=_terms)
                   for p in predicate.parts)
    if isinstance(predicate, PredNot):
        return not matches_view(predicate.part, view, functions=functions,
                                content_window=content_window,
                                _terms=_terms)
    if isinstance(predicate, KeywordAtom):
        return _matches_keyword(predicate, view, content_window, _terms)
    if isinstance(predicate, Comparison):
        return _matches_comparison(predicate, view, functions)
    raise QueryError(f"cannot match {type(predicate).__name__}")


def analyzed_terms(view: ResourceView, *,
                   content_window: int = 4096) -> list[str]:
    """The analyzed content terms of one view (for repeated matching)."""
    content = view.content
    text = (content.text() if content.is_finite
            else content.take(content_window))
    return DEFAULT_ANALYZER.terms(text)


def _matches_keyword(atom: KeywordAtom, view: ResourceView,
                     content_window: int,
                     terms: list[str] | None = None) -> bool:
    if terms is None:
        terms = analyzed_terms(view, content_window=content_window)
    if atom.wildcard:
        regex = wildcard_regex(atom.text.lower())
        return any(regex.match(term) for term in terms)
    needle = DEFAULT_ANALYZER.terms(atom.text)
    if not needle:
        return False
    if len(needle) == 1 and not atom.is_phrase:
        return needle[0] in terms
    # phrase: consecutive positions
    for start in range(len(terms) - len(needle) + 1):
        if terms[start:start + len(needle)] == needle:
            return True
    return False


def _matches_comparison(comparison: Comparison, view: ResourceView,
                        functions: FunctionTable) -> bool:
    operand = comparison.operand
    if isinstance(operand, Literal):
        value = operand.value
    elif isinstance(operand, FunctionCall):
        value = functions.call(operand.name)
    else:
        raise QueryError("standing queries cannot use join references")

    attribute = comparison.attribute.lower()
    if attribute == "class":
        if comparison.op not in (CompareOp.EQ, CompareOp.NE):
            raise QueryError("class supports = and != only")
        matches = (view.class_name is not None
                   and view.class_name in BUILTIN_REGISTRY
                   and BUILTIN_REGISTRY.is_subclass(view.class_name,
                                                    str(value)))
        if view.class_name == value:
            matches = True
        return matches if comparison.op is CompareOp.EQ else not matches
    if attribute == "name":
        if comparison.op not in (CompareOp.EQ, CompareOp.NE):
            raise QueryError("name supports = and != only")
        text = str(value)
        if "*" in text or "?" in text:
            matches = bool(wildcard_regex(text).match(view.name))
        else:
            matches = view.name == text
        return matches if comparison.op is CompareOp.EQ else not matches

    candidate = view.tuple_component.get(
        canonical_attribute(comparison.attribute)
    )
    if candidate is None:
        return False
    try:
        return compare_values(comparison.op, candidate, value)
    except QueryError:
        return False


@dataclass(frozen=True)
class Notification:
    """One standing-query match."""

    subscription_id: int
    query: str
    view: ResourceView
    kind: ChangeKind


class StandingQueries:
    """A registry of standing queries attached to a push bus.

    Events whose payload carries a :class:`ResourceView` (the sync
    manager publishes the view on registration) are matched against all
    registered predicates; matching subscribers are called synchronously
    with a :class:`Notification`.
    """

    def __init__(self, bus: PushBus, *,
                 functions: FunctionTable | None = None):
        self.bus = bus
        self.functions = functions if functions is not None else FunctionTable()
        self._subscriptions: dict[
            int, tuple[str, Predicate, Callable[[Notification], None],
                       frozenset[ChangeKind]]
        ] = {}
        self._ids = itertools.count(1)
        self.matched = 0
        bus.subscribe(self._on_event)

    def register(self, query_text: str,
                 callback: Callable[[Notification], None], *,
                 on: frozenset[ChangeKind] = frozenset({ChangeKind.ADDED}),
                 ) -> int:
        """Register a predicate; returns a subscription id."""
        ast = parse_iql(query_text)
        if not isinstance(ast, PredicateExpr):
            raise QueryError(
                "standing queries must be predicates (keywords, "
                "comparisons, boolean combinations)"
            )
        subscription_id = next(self._ids)
        self._subscriptions[subscription_id] = (
            query_text, ast.predicate, callback, on
        )
        return subscription_id

    def cancel(self, subscription_id: int) -> bool:
        return self._subscriptions.pop(subscription_id, None) is not None

    def __len__(self) -> int:
        return len(self._subscriptions)

    def _on_event(self, event: ChangeEvent) -> None:
        view = event.payload
        if not isinstance(view, ResourceView):
            return
        terms: list[str] | None = None
        for subscription_id, (text, predicate, callback, kinds) in list(
            self._subscriptions.items()
        ):
            if event.kind not in kinds:
                continue
            if terms is None:
                terms = analyzed_terms(view)
            if matches_view(predicate, view, functions=self.functions,
                            _terms=terms):
                self.matched += 1
                callback(Notification(
                    subscription_id=subscription_id, query=text,
                    view=view, kind=event.kind,
                ))
