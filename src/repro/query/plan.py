"""Physical query plans over the RVM's indexes and replicas.

Every plan node *describes* a set of view URIs. Leaf nodes name one
index access: the content full-text index, the name index/replica, the
catalog's class index, or the vertically partitioned tuple index. Inner
nodes combine sets (intersect/union/complement), navigate the group
replica (:class:`ExpandStep` — the prototype's *forward expansion*), or
truncate (:class:`Limit`).

Execution lives in :mod:`repro.query.engine`: the compiler lowers this
node tree to batched pull-based operators. :meth:`PlanNode.execute`
remains as the materializing compatibility shim — it runs the engine to
completion and returns the old ``set[str]``.

Cost estimates are deliberately coarse (rule-based optimization, like
the 2006 prototype — "cost based optimization will be explored as
another avenue of future work"): each node reports an ordinal cost class
used to order intersections.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from datetime import date, datetime
from typing import TYPE_CHECKING

from ..core.errors import QueryExecutionError
from .ast import Axis, CompareOp

if TYPE_CHECKING:  # pragma: no cover
    from .executor import ExecutionContext


def wildcard_regex(pattern: str) -> re.Pattern[str]:
    """Compile a ``*``/``?`` name pattern into an anchored regex."""
    parts = []
    for ch in pattern:
        if ch == "*":
            parts.append(".*")
        elif ch == "?":
            parts.append(".")
        else:
            parts.append(re.escape(ch))
    return re.compile("^" + "".join(parts) + "$")


class PlanNode:
    """Base class: a logical description the engine compiles and runs.

    :meth:`execute` is the compatibility shim kept at the root of the
    old contract: it drives the batched engine
    (:func:`repro.query.engine.materialize_set`) to completion and
    returns the full URI set. Tracing, cancellation and degradation all
    live at the engine's iterator boundary now — when the execution
    context carries a :class:`~repro.trace.TraceCollector`, the
    compiler wraps every operator in a span; without one, execution has
    no tracing overhead at all.
    """

    #: ordinal cost class; lower executes earlier inside intersections
    COST = 5

    def execute(self, ctx: "ExecutionContext") -> set[str]:
        from .engine import materialize_set
        return materialize_set(self, ctx)

    def estimate(self, ctx: "ExecutionContext") -> int:
        """Estimated result cardinality (for cost-based ordering and
        the analyze output's estimate-vs-actual column). Every concrete
        node overrides this with its honest best guess; the base default
        is the whole dataspace."""
        return len(ctx.all_uris())

    def explain(self, indent: int = 0) -> str:
        return "  " * indent + self.describe()

    def describe(self) -> str:
        return type(self).__name__


@dataclass
class AllViews(PlanNode):
    """Every registered view (the complement's universe)."""

    COST = 6

    def estimate(self, ctx: "ExecutionContext") -> int:
        return len(ctx.all_uris())  # exact: the universe itself

    def describe(self) -> str:
        return "AllViews"


@dataclass
class RootViews(PlanNode):
    """The data sources' root views (a leading child-axis step)."""

    COST = 1

    def estimate(self, ctx: "ExecutionContext") -> int:
        return len(ctx.root_uris())  # exact: one view per data source

    def describe(self) -> str:
        return "RootViews"


@dataclass
class ContentSearch(PlanNode):
    """Full-text lookup on the content index."""

    COST = 3
    text: str = ""
    is_phrase: bool = True
    wildcard: bool = False

    def estimate(self, ctx: "ExecutionContext") -> int:
        return ctx.content_estimate(self.text, is_phrase=self.is_phrase,
                                    wildcard=self.wildcard)

    def describe(self) -> str:
        form = "phrase" if self.is_phrase else ("wildcard" if self.wildcard
                                                else "term")
        return f"ContentSearch({form}: {self.text!r})"


@dataclass
class NameEquals(PlanNode):
    """Exact name lookup through the catalog's name index."""

    COST = 1
    name: str = ""

    def estimate(self, ctx: "ExecutionContext") -> int:
        return len(ctx.name_equals(self.name))

    def describe(self) -> str:
        return f"NameEquals({self.name!r})"


@dataclass
class NamePattern(PlanNode):
    """Wildcard name match — a scan over the name replica."""

    COST = 4
    pattern: str = ""

    def estimate(self, ctx: "ExecutionContext") -> int:
        return ctx.name_pattern_estimate(self.pattern)

    def describe(self) -> str:
        return f"NamePattern({self.pattern!r})"


@dataclass
class ClassLookup(PlanNode):
    """Class-index lookup, subclass-aware (a view of class ``figure``
    matches ``[class="environment"]`` when figure specializes it)."""

    COST = 1
    class_name: str = ""

    def estimate(self, ctx: "ExecutionContext") -> int:
        return ctx.class_estimate(self.class_name)

    def describe(self) -> str:
        return f"ClassLookup({self.class_name!r})"


@dataclass
class TupleCompare(PlanNode):
    """Comparison on a tuple-component attribute via the tuple index."""

    COST = 2
    attribute: str = ""
    op: CompareOp = CompareOp.EQ
    value: object = None

    def estimate(self, ctx: "ExecutionContext") -> int:
        return ctx.tuple_estimate(self.attribute, self.op)

    def describe(self) -> str:
        return f"TupleCompare({self.attribute} {self.op.value} {self.value!r})"


@dataclass
class Intersect(PlanNode):
    parts: tuple[PlanNode, ...] = ()

    @property
    def COST(self) -> int:  # type: ignore[override]
        return min((p.COST for p in self.parts), default=5)

    def estimate(self, ctx: "ExecutionContext") -> int:
        return min((p.estimate(ctx) for p in self.parts),
                   default=len(ctx.all_uris()))

    def explain(self, indent: int = 0) -> str:
        lines = ["  " * indent + "Intersect"]
        lines += [p.explain(indent + 1) for p in self.parts]
        return "\n".join(lines)


@dataclass
class Union(PlanNode):
    parts: tuple[PlanNode, ...] = ()

    @property
    def COST(self) -> int:  # type: ignore[override]
        return max((p.COST for p in self.parts), default=5)

    def estimate(self, ctx: "ExecutionContext") -> int:
        return min(len(ctx.all_uris()),
                   sum(p.estimate(ctx) for p in self.parts))

    def explain(self, indent: int = 0) -> str:
        lines = ["  " * indent + "Union"]
        lines += [p.explain(indent + 1) for p in self.parts]
        return "\n".join(lines)


@dataclass
class Complement(PlanNode):
    """All views not matched by the inner plan (NOT)."""

    part: PlanNode = field(default_factory=AllViews)
    COST = 6

    def estimate(self, ctx: "ExecutionContext") -> int:
        return max(0, len(ctx.all_uris()) - self.part.estimate(ctx))

    def explain(self, indent: int = 0) -> str:
        return "  " * indent + "Complement\n" + self.part.explain(indent + 1)


@dataclass
class Limit(PlanNode):
    """Truncate the inner stream after ``count`` rows.

    The engine's :class:`~repro.query.engine.operators.LimitOp` stops
    pulling its child once satisfied, so a streaming scan below halts
    mid-corpus — LIMIT cost no longer scales with dataspace size. Rows
    kept are the first ``count`` in the child's deterministic pipeline
    order (sorted order when the child stream is ordered).
    """

    part: PlanNode = field(default_factory=AllViews)
    count: int = 0

    @property
    def COST(self) -> int:  # type: ignore[override]
        return self.part.COST

    def estimate(self, ctx: "ExecutionContext") -> int:
        return min(self.count, self.part.estimate(ctx))

    def describe(self) -> str:
        return f"Limit({self.count})"

    def explain(self, indent: int = 0) -> str:
        return ("  " * indent + f"Limit({self.count})\n"
                + self.part.explain(indent + 1))


@dataclass
class ExpandStep(PlanNode):
    """Path-step navigation over the group replica.

    ``axis=DESCENDANT`` relates transitively, ``axis=CHILD`` over one
    hop. The candidate set is index-computed from the step's name test
    and predicate — navigation never touches data sources ("queries
    referring to the group component ... exploit the replicas only").

    Three strategies, after [30] (Kacholia et al.), which the paper
    names as the planned fix for Q8's forward-expansion cost:

    * ``forward`` — the 2006 prototype's strategy: multi-source BFS from
      the input set, intersect with the candidates; the engine runs it
      *pipelined*, streaming discoveries as they are made;
    * ``backward`` — start from the (index-computed) candidates and walk
      *up* the reverse edges until an input is met;
    * ``auto`` (bidirectional heuristic) — materialize both sides and
      expand from the smaller frontier.
    """

    input: PlanNode = field(default_factory=AllViews)
    axis: Axis = Axis.DESCENDANT
    candidates: PlanNode | None = None
    strategy: str = "forward"  # forward | backward | auto
    COST = 5

    def estimate(self, ctx: "ExecutionContext") -> int:
        """With a candidate filter the expansion returns a subset of the
        candidates; without one it is bounded by the input's fan-out
        (child axis) or the reachable universe (descendant axis)."""
        if self.candidates is not None:
            return self.candidates.estimate(ctx)
        return ctx.expand_estimate(self.input.estimate(ctx), self.axis)

    def describe(self) -> str:
        return (f"ExpandStep(axis={self.axis.value}, "
                f"strategy={self.strategy})")

    def explain(self, indent: int = 0) -> str:
        pad = "  " * indent
        lines = [f"{pad}ExpandStep(axis={self.axis.value}, "
                 f"strategy={self.strategy})",
                 self.input.explain(indent + 1)]
        if self.candidates is not None:
            lines.append(f"{pad}  candidates:")
            lines.append(self.candidates.explain(indent + 2))
        return "\n".join(lines)


@dataclass
class JoinPlan:
    """A binary join producing (left URI, right URI) pairs.

    Equality conditions run as hash joins (build on the smaller side);
    inequalities fall back to a nested loop. Key extraction follows the
    qualified references of the condition. The join inputs execute
    through the batched engine (their operator spans nest under the
    Join span).
    """

    left: PlanNode
    right: PlanNode
    left_ref: "object"
    right_ref: "object"
    op: CompareOp = CompareOp.EQ

    def execute_pairs(self, ctx: "ExecutionContext") -> list[tuple[str, str]]:
        trace = ctx.trace
        if trace is None:
            return self._run_pairs(ctx)
        with trace.paused():
            estimate = self.estimate(ctx)
        span = trace.begin("Join", self.describe(), estimate=estimate)
        try:
            pairs = self._run_pairs(ctx)
        except BaseException as error:
            trace.abort(span, error)
            raise
        trace.finish(span, rows=len(pairs))
        return pairs

    def estimate(self, ctx: "ExecutionContext") -> int:
        """Equality joins return at most min(|L|, |R|) pairs per matching
        key side; inequalities are bounded by the cross product."""
        left = self.left.estimate(ctx)
        right = self.right.estimate(ctx)
        if self.op is CompareOp.EQ:
            return min(left, right)
        return left * right

    def describe(self) -> str:
        return f"Join({self.op.value})"

    def _run_pairs(self, ctx: "ExecutionContext") -> list[tuple[str, str]]:
        from .ast import QualifiedRef

        left_uris = sorted(self.left.execute(ctx))
        right_uris = sorted(self.right.execute(ctx))

        def key_of(uri: str, ref: object) -> object:
            if isinstance(ref, QualifiedRef):
                return ctx.component_value(uri, ref)
            return ref  # a literal operand

        pairs: list[tuple[str, str]] = []
        if self.op is CompareOp.EQ:
            # hash join: build on the smaller input
            build_left = len(left_uris) <= len(right_uris)
            build, probe = ((left_uris, right_uris) if build_left
                            else (right_uris, left_uris))
            build_ref = self.left_ref if build_left else self.right_ref
            probe_ref = self.right_ref if build_left else self.left_ref
            table: dict[object, list[str]] = {}
            for uri in build:
                key = key_of(uri, build_ref)
                if key is not None:
                    table.setdefault(key, []).append(uri)
            for uri in probe:
                key = key_of(uri, probe_ref)
                if key is None:
                    continue
                for match in table.get(key, ()):
                    pairs.append((match, uri) if build_left else (uri, match))
        else:
            compare = _COMPARATORS[self.op]
            for left_uri in left_uris:
                left_key = key_of(left_uri, self.left_ref)
                if left_key is None:
                    continue
                for right_uri in right_uris:
                    right_key = key_of(right_uri, self.right_ref)
                    if right_key is None:
                        continue
                    try:
                        if compare(left_key, right_key):
                            pairs.append((left_uri, right_uri))
                    except TypeError:
                        continue
        return sorted(set(pairs))

    def explain(self, indent: int = 0) -> str:
        pad = "  " * indent
        return "\n".join([
            f"{pad}Join({self.op.value})",
            self.left.explain(indent + 1),
            self.right.explain(indent + 1),
        ])


def compare_values(op: CompareOp, left: object, right: object) -> bool:
    """Apply a comparison, tolerating date/datetime mixes."""
    left, right = _coerce_pair(left, right)
    try:
        return _COMPARATORS[op](left, right)
    except TypeError:
        raise QueryExecutionError(
            f"cannot compare {left!r} {op.value} {right!r}"
        ) from None


def _coerce_pair(left: object, right: object) -> tuple[object, object]:
    if isinstance(left, datetime) and isinstance(right, date) and not isinstance(right, datetime):
        right = datetime(right.year, right.month, right.day)
    if isinstance(right, datetime) and isinstance(left, date) and not isinstance(left, datetime):
        left = datetime(left.year, left.month, left.day)
    return left, right


_COMPARATORS = {
    CompareOp.EQ: lambda a, b: a == b,
    CompareOp.NE: lambda a, b: a != b,
    CompareOp.LT: lambda a, b: a < b,
    CompareOp.LE: lambda a, b: a <= b,
    CompareOp.GT: lambda a, b: a > b,
    CompareOp.GE: lambda a, b: a >= b,
}
