"""Built-in iQL functions.

The paper's example predicate ``lastmodified < yesterday()`` needs a
time anchor. Wall-clock time would make query results non-deterministic
across runs, so functions resolve against a *reference datetime* the
query processor is configured with (it defaults to just after the
simulated dataset's last timestamp).
"""

from __future__ import annotations

from datetime import datetime, timedelta
from typing import Any, Callable

from ..core.errors import QueryExecutionError

#: The default reference instant: "today" for a query processor that is
#: not told otherwise. Chosen to postdate the default logical clock's
#: range so date predicates behave as a user in late 2005 would expect.
DEFAULT_REFERENCE = datetime(2005, 12, 31, 12, 0, 0)


class FunctionTable:
    """Named zero-argument functions usable in iQL predicates."""

    def __init__(self, reference: datetime | None = None):
        self.reference = reference if reference is not None else DEFAULT_REFERENCE
        self._functions: dict[str, Callable[[], Any]] = {
            "now": lambda: self.reference,
            "today": lambda: self.reference.replace(
                hour=0, minute=0, second=0, microsecond=0
            ),
            "yesterday": lambda: self.reference.replace(
                hour=0, minute=0, second=0, microsecond=0
            ) - timedelta(days=1),
        }

    def register(self, name: str, function: Callable[[], Any]) -> None:
        self._functions[name] = function

    def call(self, name: str) -> Any:
        try:
            function = self._functions[name]
        except KeyError:
            raise QueryExecutionError(f"unknown function {name!r}()") from None
        return function()

    def names(self) -> list[str]:
        return sorted(self._functions)
