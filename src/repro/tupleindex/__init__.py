"""The tuple-component index & replica.

iMeMex keeps "a replica of all resource views' tuple components ...
in-memory and an auxiliary sorted index structure ... based on vertical
partitioning [11]" (the Copeland/Khoshafian decomposition storage
model). This package reproduces that structure: one sorted column per
attribute with binary-search equality and range lookups, plus the
in-memory replica the queries' tuple predicates evaluate against.
"""

from .vertical import TupleIndex, VerticalColumn

__all__ = ["TupleIndex", "VerticalColumn"]
