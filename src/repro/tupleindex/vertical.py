"""Vertically partitioned tuple index (decomposition storage model).

Every attribute that appears in any indexed tuple component gets its own
:class:`VerticalColumn`: a sorted array of ``(value, key)`` pairs.
Because schemas in iDM are per-tuple, different views contribute
different attribute subsets — vertical partitioning handles that
naturally, with each view appearing only in the columns of attributes it
actually has.

Values of mixed types sort within type groups (all ints/floats/dates
together, all strings together); cross-type comparisons never happen
because each query predicate compares against one concrete value and
only scans that value's group.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from datetime import date, datetime
from typing import Any, Iterator

from ..core.components import TupleComponent

#: Sort-group tags. Within a column, pairs are ordered by (group, value).
_GROUP_NUMBER = 0
_GROUP_TEXT = 1
_GROUP_OTHER = 2


def _sort_key(value: Any) -> tuple[int, Any]:
    if isinstance(value, bool):
        return (_GROUP_NUMBER, float(value))
    if isinstance(value, (int, float)):
        return (_GROUP_NUMBER, float(value))
    if isinstance(value, datetime):
        return (_GROUP_NUMBER, value.timestamp())
    if isinstance(value, date):
        return (_GROUP_NUMBER,
                datetime(value.year, value.month, value.day).timestamp())
    if isinstance(value, str):
        return (_GROUP_TEXT, value)
    return (_GROUP_OTHER, repr(value))


class VerticalColumn:
    """One attribute's sorted column of ``(value, key)`` pairs.

    Key-generic: :class:`TupleIndex` stores int catalog ids, the unit
    tests (and any standalone use) may store strings — one column must
    keep a single key type so equal-value runs stay comparable.
    """

    __slots__ = ("name", "_entries")

    def __init__(self, name: str):
        self.name = name
        # entries are ((group, comparable), key, original_value)
        self._entries: list[tuple[tuple[int, Any], Any, Any]] = []

    def insert(self, key: Any, value: Any) -> None:
        insort(self._entries, (_sort_key(value), key, value))

    def remove(self, key: Any, value: Any) -> bool:
        probe = (_sort_key(value), key, value)
        index = bisect_left(self._entries, probe)
        if index < len(self._entries) and self._entries[index] == probe:
            del self._entries[index]
            return True
        # fall back: same sort key, any position (e.g. equal-sorting values)
        sort_key = _sort_key(value)
        index = bisect_left(self._entries, (sort_key,))
        while index < len(self._entries) and self._entries[index][0] == sort_key:
            if self._entries[index][1] == key:
                del self._entries[index]
                return True
            index += 1
        return False

    def equals(self, value: Any) -> list[Any]:
        sort_key = _sort_key(value)
        low = bisect_left(self._entries, (sort_key,))
        out = []
        while low < len(self._entries) and self._entries[low][0] == sort_key:
            out.append(self._entries[low][1])
            low += 1
        return out

    def range(self, low: Any = None, high: Any = None, *,
              include_low: bool = True, include_high: bool = True) -> list[Any]:
        """Keys with ``low <= value <= high`` (one type group only)."""
        if low is None and high is None:
            return [key for _, key, _ in self._entries]
        anchor = low if low is not None else high
        group = _sort_key(anchor)[0]
        if low is not None:
            start = bisect_left(self._entries, (_sort_key(low),))
        else:
            start = bisect_left(self._entries, ((group,),))
        out = []
        for index in range(start, len(self._entries)):
            sort_key, key, _ = self._entries[index]
            if sort_key[0] != group:
                break
            if high is not None:
                high_key = _sort_key(high)
                if sort_key > high_key or (sort_key == high_key and not include_high):
                    break
            if low is not None and not include_low and sort_key == _sort_key(low):
                continue
            out.append(key)
        return out

    def values(self) -> Iterator[tuple[Any, Any]]:
        for _, key, value in self._entries:
            yield value, key

    def __len__(self) -> int:
        return len(self._entries)

    def size_bytes(self) -> int:
        total = 0
        for _, key, value in self._entries:
            # int keys are the catalog ids of the keyset layout (8
            # bytes); the column stays key-generic for string callers
            total += (8 if isinstance(key, int)
                      else len(key.encode("utf-8"))) + 8
            if isinstance(value, str):
                total += len(value.encode("utf-8", "replace")) + 4
            else:
                total += 8
        return total


def _global_dictionary():
    # deferred: repro.rvm imports this package (indexes -> TupleIndex)
    from ..rvm.uridict import global_uri_dictionary
    return global_uri_dictionary()


def _new_keyset():
    from ..rvm.keyset import KeySet
    return KeySet()


class TupleIndex:
    """Replica + vertically partitioned index of tuple components.

    ``add(key, tuple_component)`` replicates the component and spreads
    its attributes over the per-attribute sorted columns. Internally
    everything is keyed by the URI dictionary's dense **catalog ids**
    (the keyset refactor, DESIGN.md §4j): columns store int keys, the
    replica dict is id-keyed, and each ``*_ids`` lookup returns a
    :class:`~repro.rvm.keyset.KeySet` the query engine consumes with no
    string conversion. The string-returning lookups remain for the
    reference oracle and external callers; :meth:`tuple_of` serves the
    replica (this structure, unlike the content index, *is* a replica —
    queries can read tuple values back without touching the data
    source).
    """

    def __init__(self) -> None:
        self._dictionary = _global_dictionary()
        self._columns: dict[str, VerticalColumn] = {}
        self._replica: dict[int, TupleComponent] = {}
        self._ids = _new_keyset()

    # -- writes -----------------------------------------------------------------

    def add(self, key: str, component: TupleComponent) -> None:
        view_id = self._dictionary.intern(key)
        if view_id in self._replica:
            self._remove_id(view_id)
        self._replica[view_id] = component
        self._ids.add(view_id)
        if component.is_empty:
            return
        for attribute, value in component.as_dict().items():
            if value is None:
                continue
            column = self._columns.get(attribute)
            if column is None:
                column = self._columns[attribute] = VerticalColumn(attribute)
            column.insert(view_id, value)

    def remove(self, key: str) -> bool:
        view_id = self._dictionary.id_of(key)
        if view_id is None or view_id not in self._replica:
            return False
        return self._remove_id(view_id)

    def _remove_id(self, view_id: int) -> bool:
        component = self._replica.pop(view_id, None)
        if component is None:
            return False
        self._ids.discard(view_id)
        if not component.is_empty:
            for attribute, value in component.as_dict().items():
                if value is None:
                    continue
                column = self._columns.get(attribute)
                if column is not None:
                    column.remove(view_id, value)
                    if not len(column):
                        del self._columns[attribute]
        return True

    # -- reads -------------------------------------------------------------------

    def __contains__(self, key: object) -> bool:
        if not isinstance(key, str):
            return False
        view_id = self._dictionary.id_of(key)
        return view_id is not None and view_id in self._replica

    def __len__(self) -> int:
        return len(self._replica)

    def tuple_of(self, key: str) -> TupleComponent | None:
        """Serve the replicated tuple component."""
        view_id = self._dictionary.id_of(key)
        if view_id is None:
            return None
        return self._replica.get(view_id)

    def tuple_of_id(self, view_id: int) -> TupleComponent | None:
        return self._replica.get(view_id)

    def attributes(self) -> list[str]:
        return sorted(self._columns)

    # id-returning lookups (the engine's zero-copy path) ----------------------

    def equals_ids(self, attribute: str, value: Any):
        column = self._columns.get(attribute)
        if column is None:
            return _new_keyset()
        from ..rvm.keyset import KeySet
        return KeySet.from_iterable(column.equals(value))

    def range_ids(self, attribute: str, low: Any = None, high: Any = None,
                  **bounds: bool):
        column = self._columns.get(attribute)
        if column is None:
            return _new_keyset()
        from ..rvm.keyset import KeySet
        return KeySet.from_iterable(column.range(low, high, **bounds))

    def greater_than_ids(self, attribute: str, value: Any, *,
                         inclusive: bool = False):
        return self.range_ids(attribute, low=value, include_low=inclusive)

    def less_than_ids(self, attribute: str, value: Any, *,
                      inclusive: bool = False):
        return self.range_ids(attribute, high=value, include_high=inclusive)

    def ids_with_attribute(self, attribute: str):
        column = self._columns.get(attribute)
        if column is None:
            return _new_keyset()
        from ..rvm.keyset import KeySet
        return KeySet.from_iterable(key for _, key in column.values())

    def all_ids(self):
        """The live keyset of replicated ids (read-only by convention)."""
        return self._ids

    # string-returning lookups (reference oracle, external callers) -----------

    def _uris(self, ids) -> set[str]:
        uri_of = self._dictionary.uri_of
        return {uri_of(i) for i in ids}

    def equals(self, attribute: str, value: Any) -> set[str]:
        column = self._columns.get(attribute)
        return self._uris(column.equals(value)) if column else set()

    def range(self, attribute: str, low: Any = None, high: Any = None,
              **bounds: bool) -> set[str]:
        column = self._columns.get(attribute)
        if column is None:
            return set()
        return self._uris(column.range(low, high, **bounds))

    def greater_than(self, attribute: str, value: Any, *,
                     inclusive: bool = False) -> set[str]:
        return self.range(attribute, low=value, include_low=inclusive)

    def less_than(self, attribute: str, value: Any, *,
                  inclusive: bool = False) -> set[str]:
        return self.range(attribute, high=value, include_high=inclusive)

    def keys_with_attribute(self, attribute: str) -> set[str]:
        column = self._columns.get(attribute)
        if column is None:
            return set()
        return self._uris(key for _, key in column.values())

    def all_keys(self) -> set[str]:
        return self._uris(self._replica)

    # -- statistics -----------------------------------------------------------------

    def size_bytes(self) -> int:
        """Replica + columns footprint (the Tuple column of Table 3).
        Keys are 8-byte catalog ids plus the keyset's compressed id
        set; the URI strings live once, in the shared dictionary."""
        replica = self._ids.size_bytes()
        for component in self._replica.values():
            replica += 16  # id + component header
            if not component.is_empty:
                for attribute, value in component.as_dict().items():
                    replica += len(attribute.encode("utf-8")) + 4
                    if isinstance(value, str):
                        replica += len(value.encode("utf-8", "replace")) + 4
                    else:
                        replica += 8
        columns = sum(c.size_bytes() for c in self._columns.values())
        return replica + columns

    def stats(self) -> "IndexStats":
        """The shared :class:`~repro.obs.IndexStats` shape: entries are
        replicated tuples; the column count rides in ``detail``."""
        from ..obs import IndexStats
        return IndexStats(
            name="tuple",
            entries=len(self._replica),
            bytes_estimate=self.size_bytes(),
            detail={"attributes": len(self._columns)},
        )
