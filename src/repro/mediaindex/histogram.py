"""Histogram signatures and similarity search.

A content component that is not text (pictures, audio — in this
reproduction: pseudo-binary strings) still carries exploitable signal in
its symbol distribution. :func:`compute_histogram` buckets symbol
ordinals into a fixed-length normalized vector (the stand-in for a color
histogram); :class:`HistogramIndex` stores one signature per view and
answers k-nearest-neighbor queries under cosine similarity — the QBIC
flavour of content indexing the paper points at.
"""

from __future__ import annotations

import math

from ..core.errors import IdmError

#: Default signature length. 16 buckets keeps signatures tiny while
#: separating synthetic "image" palettes well.
DEFAULT_BUCKETS = 16


def compute_histogram(content: str, *, buckets: int = DEFAULT_BUCKETS,
                      sample: int = 65536) -> tuple[float, ...]:
    """The normalized bucket histogram of a content string's symbols.

    Only the first ``sample`` symbols are inspected, so signatures stay
    cheap for large (or infinite, pre-windowed) content.
    """
    if buckets <= 0:
        raise IdmError("histogram needs at least one bucket")
    counts = [0] * buckets
    total = 0
    for symbol in content[:sample]:
        counts[ord(symbol) % buckets] += 1
        total += 1
    if total == 0:
        return tuple(0.0 for _ in range(buckets))
    return tuple(count / total for count in counts)


def cosine_similarity(a: tuple[float, ...], b: tuple[float, ...]) -> float:
    """Cosine similarity of two signatures (0.0 when either is empty)."""
    if len(a) != len(b):
        raise IdmError("signatures of different lengths are not comparable")
    dot = sum(x * y for x, y in zip(a, b))
    norm_a = math.sqrt(sum(x * x for x in a))
    norm_b = math.sqrt(sum(y * y for y in b))
    if norm_a == 0 or norm_b == 0:
        return 0.0
    return dot / (norm_a * norm_b)


class HistogramIndex:
    """A content-component index over histogram signatures."""

    def __init__(self, *, buckets: int = DEFAULT_BUCKETS):
        self.buckets = buckets
        self._signatures: dict[str, tuple[float, ...]] = {}

    # -- writes -----------------------------------------------------------

    def add(self, key: str, content: str) -> tuple[float, ...]:
        signature = compute_histogram(content, buckets=self.buckets)
        self._signatures[key] = signature
        return signature

    def remove(self, key: str) -> bool:
        return self._signatures.pop(key, None) is not None

    # -- reads --------------------------------------------------------------

    def __contains__(self, key: object) -> bool:
        return key in self._signatures

    def __len__(self) -> int:
        return len(self._signatures)

    def signature_of(self, key: str) -> tuple[float, ...] | None:
        return self._signatures.get(key)

    def similar(self, probe: str | tuple[float, ...], *, k: int = 5,
                exclude: str | None = None) -> list[tuple[str, float]]:
        """The ``k`` most similar indexed contents to ``probe``.

        ``probe`` is raw content (hashed to a signature) or an existing
        signature; ``exclude`` drops one key (typically the probe's own)
        from the result. Ties break by key for determinism.
        """
        if isinstance(probe, str):
            signature = compute_histogram(probe, buckets=self.buckets)
        else:
            signature = probe
        scored = [
            (key, cosine_similarity(signature, candidate))
            for key, candidate in self._signatures.items()
            if key != exclude
        ]
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        return scored[:k]

    def similar_to_key(self, key: str, *, k: int = 5,
                       ) -> list[tuple[str, float]]:
        """Nearest neighbors of an already-indexed view."""
        signature = self._signatures.get(key)
        if signature is None:
            raise IdmError(f"no signature for {key!r}")
        return self.similar(signature, k=k, exclude=key)

    # -- statistics -------------------------------------------------------------

    def size_bytes(self) -> int:
        per_signature = 8 * self.buckets + 16
        keys = sum(len(k.encode("utf-8")) for k in self._signatures)
        return per_signature * len(self._signatures) + keys
