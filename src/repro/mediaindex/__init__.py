"""Similarity indexing for non-text content.

"Content indexes are not restricted to text indexes. An example of that
is a content index that uses histogram information to index pictures
based on image similarity [6]" (QBIC). This package provides that kind
of content-component index: byte-distribution histograms with
cosine-similarity search over them.
"""

from .histogram import HistogramIndex, compute_histogram, cosine_similarity

__all__ = ["HistogramIndex", "compute_histogram", "cosine_similarity"]
