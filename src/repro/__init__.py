"""repro — a from-scratch reproduction of "iDM: A Unified and Versatile
Data Model for Personal Dataspace Management" (Dittrich & Vaz Salles,
VLDB 2006).

The package mirrors the iMeMex PDSMS architecture:

* :mod:`repro.core` — the iMeMex Data Model itself (resource views,
  components, classes, graphs, lazy/intensional/infinite data).
* :mod:`repro.datamodel` — instantiations of specialized data models
  (files&folders, relational, XML, LaTeX, streams, email, ActiveXML).
* substrates — :mod:`repro.xmlp`, :mod:`repro.latexp`, :mod:`repro.vfs`,
  :mod:`repro.imapsim`, :mod:`repro.rss`, :mod:`repro.fulltext`,
  :mod:`repro.store`, :mod:`repro.tupleindex`, :mod:`repro.pushops`.
* :mod:`repro.rvm` — the Resource View Manager (plugins, converters,
  catalog, replicas & indexes, synchronization).
* :mod:`repro.query` — the iQL query language and its processor.
* :mod:`repro.dataset` — the synthetic personal-dataspace generator used
  by the evaluation harness.
* :mod:`repro.bench` — helpers that regenerate the paper's tables and
  figures.
* extensions the paper names as future work — :mod:`repro.p2p`
  (federated networks of instances), :mod:`repro.mediaindex`
  (histogram similarity for non-text content), :mod:`repro.apps`
  (reference reconciliation, clustering), :mod:`repro.cli`
  (``python -m repro``), plus ranking, standing queries, cost-based
  optimization, backward expansion and snapshots inside
  :mod:`repro.query` / :mod:`repro.rvm`.

Quickstart::

    from repro import Dataspace
    ds = Dataspace.demo()            # small built-in personal dataspace
    for hit in ds.query('//PIM//Introduction["Mike Franklin"]'):
        print(hit.name, hit.view_id)
"""

from .core import (
    ContentComponent,
    GroupComponent,
    ResourceView,
    Schema,
    TupleComponent,
    ViewId,
    view,
)

__version__ = "1.0.0"

__all__ = [
    "ContentComponent",
    "GroupComponent",
    "ResourceView",
    "Schema",
    "TupleComponent",
    "ViewId",
    "view",
    "__version__",
]


def __getattr__(name: str):
    # Dataspace pulls in the whole stack (rvm, query, dataset); import it
    # lazily so `import repro` stays cheap for users of the core model only.
    if name == "Dataspace":
        from .facade import Dataspace
        return Dataspace
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
