"""Content2iDM converters.

"The Content2iDM Converter further enriches the iDM graph provided by
the data source proxy ... by converting content components to iDM
subgraphs that reflect the structural information. Currently we provide
converters for XML and LaTeX." — and so do we, plus a registry so
applications can add converters for further formats.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ...core.identity import ViewId
from ...core.resource_view import ResourceView
from ...datamodel.latexmodel import latexfile_group_provider
from ...datamodel.xmlmodel import xmlfile_group_provider

#: (file name, content, base view id) -> subgraph views or None
Converter = Callable[[str, str, ViewId], Sequence[ResourceView] | None]


class ConverterRegistry:
    """An ordered chain of converters; the first that applies wins."""

    def __init__(self, converters: Sequence[Converter] = ()):
        self._converters: list[Converter] = list(converters)

    def register(self, converter: Converter) -> None:
        self._converters.append(converter)

    def __call__(self, name: str, content: str,
                 view_id: ViewId) -> Sequence[ResourceView] | None:
        for converter in self._converters:
            subgraph = converter(name, content, view_id)
            if subgraph:
                return subgraph
        return None

    def __len__(self) -> int:
        return len(self._converters)


def default_content_converter() -> ConverterRegistry:
    """The prototype's converter set: LaTeX and XML."""
    return ConverterRegistry([latexfile_group_provider,
                              xmlfile_group_provider])
