"""The Data Source Proxy.

"The Data Source Proxy provides connectivity to the different types of
subsystems. It contains a set of Data Source Plugins that represents
the data from the different subsystems as an initial iDM graph."

A plugin exposes root views, a way to re-resolve a view by id after a
change, and optional change subscriptions. The proxy is just the
registry the Synchronization Manager iterates over.
"""

from __future__ import annotations

from typing import Callable, Iterator, Protocol, runtime_checkable

from ..core.errors import DataSourceError
from ..core.identity import ViewId
from ..core.resource_view import ResourceView


@runtime_checkable
class DataSourcePlugin(Protocol):
    """The contract every data source plugin fulfills."""

    #: URI authority of all views this plugin exposes ("fs", "imap", ...).
    authority: str

    def root_views(self) -> list[ResourceView]:
        """The subsystem's entry points into the iDM graph."""
        ...

    def resolve(self, view_id: ViewId) -> ResourceView | None:
        """Re-resolve a view after a change (None when it is gone)."""
        ...

    def subscribe_changes(self,
                          callback: Callable[[ViewId], None]) -> bool:
        """Subscribe to change notifications for this source.

        Returns True when the source supports notifications; sources
        returning False are synchronized by polling only.
        """
        ...

    def poll_changes(self) -> list[ViewId]:
        """Poll for changes since the last poll (ids of changed roots)."""
        ...

    def data_source_seconds(self) -> float:
        """Cumulative simulated data-source access time (0 for local)."""
        ...


class DataSourceProxy:
    """The plugin registry."""

    def __init__(self) -> None:
        self._plugins: dict[str, DataSourcePlugin] = {}

    def register(self, plugin: DataSourcePlugin) -> None:
        if plugin.authority in self._plugins:
            raise DataSourceError(
                f"a plugin for authority {plugin.authority!r} is registered"
            )
        self._plugins[plugin.authority] = plugin

    def unregister(self, authority: str) -> None:
        if authority not in self._plugins:
            raise DataSourceError(f"no plugin for authority {authority!r}")
        del self._plugins[authority]

    def swap(self, authority: str, plugin: DataSourcePlugin) -> None:
        """Replace a registered plugin in place (same authority).

        The fault-injection layer uses this to wrap an already
        registered source; the authority must stay the same so catalog
        entries and guards keep their identity.
        """
        if authority not in self._plugins:
            raise DataSourceError(f"no plugin for authority {authority!r}")
        if plugin.authority != authority:
            raise DataSourceError(
                f"cannot swap authority {authority!r} for a plugin "
                f"claiming {plugin.authority!r}"
            )
        self._plugins[authority] = plugin

    def plugin_for(self, authority: str) -> DataSourcePlugin:
        try:
            return self._plugins[authority]
        except KeyError:
            raise DataSourceError(
                f"no plugin for authority {authority!r}"
            ) from None

    def __contains__(self, authority: object) -> bool:
        return authority in self._plugins

    def plugins(self) -> Iterator[DataSourcePlugin]:
        return iter(self._plugins.values())

    def authorities(self) -> list[str]:
        return sorted(self._plugins)

    def resolve(self, view_id: ViewId) -> ResourceView | None:
        """Route a resolve to the owning plugin."""
        plugin = self._plugins.get(view_id.authority)
        if plugin is None:
            return None
        return plugin.resolve(view_id)
