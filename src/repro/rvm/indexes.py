"""The Replica & Indexes module (Section 7.2's four structures).

The paper's initial implementation uses exactly these:

1. **Name Index & Replica** — a full-text index that *also stores* the
   name component values (``store_text=True``);
2. **Tuple Index & Replica** — an in-memory replica of all tuple
   components with a vertically partitioned sorted index;
3. **Content Index** — a full-text index over text extracted from
   content components; *not* a replica;
4. **Group Replica** — an in-memory replica of group components.

:class:`IndexSet` bundles them behind one ``add_view``/``remove_view``
API and produces the per-structure size report of Table 3. Since the
keyset refactor (DESIGN.md §4j) every structure here keys its entries by
the URI dictionary's dense catalog ids and stores its id sets as
compressed :class:`~repro.rvm.keyset.KeySet` s, so the size report
reflects the compressed layouts and query results flow to the engine as
id sets with no per-URI string work.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.identity import ViewId
from ..core.resource_view import ResourceView
from ..fulltext import InvertedIndex
from ..tupleindex import TupleIndex
from .replicas import GroupReplica


@dataclass(frozen=True)
class IndexingPolicy:
    """Which structures to maintain — the replication strategy.

    "As replication may require additional disk and memory space, there
    is a general trade-off between data versus query shipping [32] that
    has to be considered when creating replication strategies." Turning
    a structure off trades index space for query-time work: the query
    processor falls back to scanning live views (query shipping), which
    the replication-strategy ablation benchmark quantifies.
    """

    index_names: bool = True
    index_content: bool = True
    index_tuples: bool = True
    replicate_groups: bool = True
    #: similarity-index non-text content (histogram signatures, the
    #: QBIC-style content index of [6]); off by default, matching the
    #: 2006 prototype
    index_media: bool = False

    @classmethod
    def full(cls) -> "IndexingPolicy":
        return cls()

    @classmethod
    def with_media(cls) -> "IndexingPolicy":
        return cls(index_media=True)

    @classmethod
    def minimal(cls) -> "IndexingPolicy":
        """Catalog-only: everything answered by scanning live views."""
        return cls(index_names=False, index_content=False,
                   index_tuples=False, replicate_groups=False)


def _looks_like_text(sample: str, *, window: int = 512,
                     threshold: float = 0.7) -> bool:
    """Heuristic binary sniffing over a prefix of the content."""
    prefix = sample[:window]
    printable = sum(1 for ch in prefix if ch.isprintable() or ch in "\n\r\t")
    return printable / len(prefix) >= threshold


class IndexSet:
    """The four component index/replica structures of the prototype."""

    def __init__(self, *, infinite_content_window: int = 4096,
                 infinite_group_window: int = 256,
                 policy: IndexingPolicy | None = None):
        self.policy = policy if policy is not None else IndexingPolicy.full()
        self.name_index = InvertedIndex(store_text=True)
        self.tuple_index = TupleIndex()
        self.content_index = InvertedIndex(store_text=False)
        self.group_replica = GroupReplica(
            infinite_window=infinite_group_window
        )
        from ..mediaindex import HistogramIndex
        self.media_index = HistogramIndex()
        self.infinite_content_window = infinite_content_window
        self._net_input_bytes = 0

    # -- writes ------------------------------------------------------------------

    def add_view(self, view: ResourceView) -> str | None:
        """Index the components the policy covers.

        Returns the raw content text the content/media branch examined
        (``None`` when the policy skips content entirely) — the
        durability layer logs it, since the content index stores
        postings only and the raw text cannot be read back.
        """
        uri = view.view_id.uri
        if self.policy.index_names:
            name = view.name
            if name:
                self.name_index.add(uri, name)
        if self.policy.index_tuples:
            self.tuple_index.add(uri, view.tuple_component)
        raw = None
        if self.policy.index_content or self.policy.index_media:
            content = view.content
            raw = (content.text() if content.is_finite
                   else content.take(self.infinite_content_window))
            self.index_content_raw(uri, raw)
        if self.policy.replicate_groups:
            self.group_replica.add(view)
        return raw

    def index_content_raw(self, uri: str, raw: str) -> None:
        """Index one view's already-extracted content text.

        The single content dispatch point: text goes to the full-text
        index (and into the net-input accounting), non-text to the
        media index when enabled. WAL replay re-applies logged content
        through here, so replayed state matches live indexing exactly.
        """
        is_text = bool(raw) and _looks_like_text(raw)
        if self.policy.index_content and is_text:
            self.content_index.add(uri, raw)
            self._net_input_bytes += len(raw.encode("utf-8", "replace"))
        if self.policy.index_media and raw and not is_text:
            # non-text content: similarity-index its histogram
            self.media_index.add(uri, raw)

    def remove_view(self, view_id: ViewId | str) -> None:
        uri = view_id if isinstance(view_id, str) else view_id.uri
        self.name_index.remove(uri)
        self.tuple_index.remove(uri)
        self.content_index.remove(uri)
        self.group_replica.remove(uri)
        self.media_index.remove(uri)

    # The content path stands in for the prototype's text/PDF extractors:
    # content that does not look like text (images, archives — here: a
    # high ratio of non-printable characters) contributes nothing to the
    # full-text index or the *net input data size* of Table 3, matching
    # how the paper excludes unconvertible content; with index_media on,
    # that same content gets a histogram signature instead.

    # -- reads ---------------------------------------------------------------------

    def name_of(self, view_id: ViewId | str) -> str:
        """Serve a name from the name *replica*."""
        uri = view_id if isinstance(view_id, str) else view_id.uri
        if uri in self.name_index:
            return self.name_index.stored_text(uri)
        return ""

    # -- statistics -----------------------------------------------------------------

    @property
    def net_input_bytes(self) -> int:
        """Bytes of text handed to the content index (the paper's "net
        input data size": content that could be converted to text)."""
        return self._net_input_bytes

    def size_report(self) -> dict[str, int]:
        """Per-structure sizes in bytes (Table 3's columns, sans catalog)."""
        report = {
            "name": self.name_index.size_bytes(),
            "tuple": self.tuple_index.size_bytes(),
            "content": self.content_index.size_bytes(),
            "group": self.group_replica.size_bytes(),
        }
        if self.policy.index_media:
            report["media"] = self.media_index.size_bytes()
        return report

    def total_size_bytes(self) -> int:
        return sum(self.size_report().values())
